"""Setuptools shim.

Kept alongside pyproject.toml so `pip install -e .` works on environments
whose pip/setuptools predate PEP 660 editable wheels (and offline hosts
without the `wheel` package).  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
