"""Cross-run regression diffing over artifact bundles.

``repro-taps diff <run-a> <run-b>`` compares two artifact bundles — a
``run --out-dir`` directory (trace JSONL + telemetry JSONL + any perf
records), a bare ``trace.jsonl`` / ``telemetry.jsonl``, a single perf
record JSON, or a ``benchmarks/results/history/`` store (its newest
record) — and reports per-metric deltas with a severity model built
around one fact: **decision metrics are deterministic, wall-clock
metrics are not.**

* *Deterministic* metrics (trace-digest counts, admission-decision
  counters) carry a direction — fewer accepted tasks, more rejections,
  more expiries is worse — and **any** worsening is a blocking
  ``regression`` (exit 1).  Two identical-seed runs are guaranteed to
  produce zero of these, because their traces are byte-identical.
* *Timing* metrics (admission latency percentiles, span totals, perf
  record seconds, speedups) are compared against a **relative
  threshold** (default 10%).  A worsening beyond the threshold is a
  non-blocking ``warning`` by default — shared CI runners are too noisy
  to gate on wall clock — escalated to a blocking ``regression`` with
  ``strict_timing`` (the knob a quiet dedicated box can afford).

The report is machine-readable (:meth:`DiffReport.to_json`) and the CLI
exits non-zero exactly when a blocking regression was found, so CI can
gate merges on decision quality while only surfacing timing drift.

:func:`append_history` / :func:`latest_history` maintain the
append-only ``benchmarks/results/history/`` perf record store
(``0001-<name>.json``, ``0002-<name>.json``, …) the CI diff-smoke job
diffs each fresh perf record against.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.metrics.tracestats import TraceDigest, trace_digest
from repro.obs.export import TelemetryError, TelemetrySnapshot
from repro.obs.export import load_jsonl as load_telemetry_jsonl
from repro.obs.registry import Histogram
from repro.trace.recorder import load_jsonl as load_trace_jsonl

DIFF_SCHEMA_VERSION = 1
"""Version of the ``diff --json`` report shape."""

#: default relative threshold for timing comparisons (10%)
TIMING_THRESHOLD = 0.10


class DiffError(ValueError):
    """A bundle could not be loaded or the pair has nothing comparable."""


# -- bundle loading ------------------------------------------------------------


@dataclass(slots=True)
class Bundle:
    """One side of a diff: whatever artifacts the path held."""

    label: str
    source: Path
    digest: TraceDigest | None = None
    trace_meta: dict[str, Any] = field(default_factory=dict)
    trace_sha: str | None = None
    telemetry: TelemetrySnapshot | None = None
    perf: dict[str, dict] = field(default_factory=dict)


def _load_trace_into(bundle: Bundle, path: Path) -> None:
    trace = load_trace_jsonl(path)
    bundle.digest = trace_digest(trace.events)
    bundle.trace_meta = trace.meta
    bundle.trace_sha = hashlib.sha256(path.read_bytes()).hexdigest()


def _load_perf_json(path: Path) -> dict | None:
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise DiffError(f"{path}: not readable JSON: {exc}") from None
    # chrome traces and other arrays are not perf records
    return data if isinstance(data, dict) else None


def load_bundle(path: str | Path, label: str | None = None) -> Bundle:
    """Load whatever artifacts ``path`` holds (see module doc).

    Raises :class:`DiffError` when nothing comparable is found.
    """
    src = Path(path)
    bundle = Bundle(label=label or str(path), source=src)
    if src.is_dir():
        trace = src / "trace.jsonl"
        telem = src / "telemetry.jsonl"
        if trace.exists():
            _load_trace_into(bundle, trace)
        if telem.exists():
            try:
                bundle.telemetry = load_telemetry_jsonl(telem)
            except TelemetryError as exc:
                raise DiffError(f"{telem}: {exc}") from None
        records = {
            p.name: rec
            for p in sorted(src.glob("*.json"))
            if (rec := _load_perf_json(p)) is not None
        }
        if bundle.digest is None and bundle.telemetry is None and records:
            # a history store: compare only its newest record
            newest = sorted(records)[-1]
            bundle.perf = {"latest": records[newest]}
        else:
            bundle.perf = {Path(n).stem: r for n, r in records.items()}
    elif src.suffix == ".jsonl":
        first = src.read_text().split("\n", 1)[0] if src.exists() else ""
        try:
            head = json.loads(first) if first else {}
        except json.JSONDecodeError:
            head = {}
        kind = head.get("kind") if isinstance(head, dict) else None
        if kind == "trace-header":
            _load_trace_into(bundle, src)
        elif kind == "telemetry-header":
            try:
                bundle.telemetry = load_telemetry_jsonl(src)
            except TelemetryError as exc:
                raise DiffError(f"{src}: {exc}") from None
        else:
            raise DiffError(f"{src}: neither a trace nor a telemetry JSONL")
    elif src.suffix == ".json":
        rec = _load_perf_json(src)
        if rec is None:
            raise DiffError(f"{src}: JSON is not an object (perf record)")
        bundle.perf = {src.stem: rec}
    else:
        raise DiffError(f"{src}: no artifact bundle found")
    if bundle.digest is None and bundle.telemetry is None and not bundle.perf:
        raise DiffError(f"{src}: no artifact bundle found")
    return bundle


# -- metric model --------------------------------------------------------------

#: direction per decision-count name: True = higher is worse
_COUNT_DIRECTIONS = {
    "tasks_accepted": False,
    "flows_met": False,
    "tasks_rejected": True,
    "tasks_preempted": True,
    "tasks_dropped": True,
    "deadline_expiries": True,
}

#: digest fields compared with no direction (a change is informational)
_NEUTRAL_COUNTS = (
    "events", "tasks_arrived", "trial_attempts", "fault_reallocations",
    "link_state_changes", "slices", "flows_completed",
)

#: perf-record subtrees / leaves that are not comparable metrics
_PERF_SKIP = {"workload", "trace_events"}


@dataclass(slots=True)
class MetricDelta:
    """One compared metric."""

    metric: str
    kind: str  # "count" | "timing" | "info"
    a: float
    b: float
    severity: str  # "regression" | "warning" | "improvement" | "info" | "ok"
    direction: str = "neutral"  # "higher_worse" | "lower_worse" | "neutral"
    rel_change: float | None = None

    def to_json(self) -> dict[str, Any]:
        return {
            "metric": self.metric,
            "kind": self.kind,
            "a": self.a,
            "b": self.b,
            "severity": self.severity,
            "direction": self.direction,
            "rel_change": self.rel_change,
        }

    def line(self) -> str:
        arrow = f"{self.a:g} -> {self.b:g}"
        rel = (
            f" ({self.rel_change:+.1%})" if self.rel_change is not None else ""
        )
        return f"[{self.severity:<11}] {self.metric}: {arrow}{rel}"


@dataclass(slots=True)
class DiffReport:
    """Outcome of one bundle diff."""

    a_label: str
    b_label: str
    timing_threshold: float
    strict_timing: bool
    deltas: list[MetricDelta] = field(default_factory=list)
    metrics_compared: int = 0
    traces_identical: bool | None = None

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.severity == "regression"]

    @property
    def warnings(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.severity == "warning"]

    @property
    def improvements(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.severity == "improvement"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def findings(self) -> list[MetricDelta]:
        """Every delta worth surfacing (anything but ``ok``)."""
        return [d for d in self.deltas if d.severity != "ok"]

    def summary(self) -> str:
        return (
            f"diff: {len(self.regressions)} regression(s), "
            f"{len(self.warnings)} warning(s), "
            f"{len(self.improvements)} improvement(s) over "
            f"{self.metrics_compared} compared metric(s)"
        )

    def lines(self) -> list[str]:
        out = [f"a: {self.a_label}", f"b: {self.b_label}"]
        if self.traces_identical is not None:
            out.append(
                "traces byte-identical"
                if self.traces_identical
                else "traces differ"
            )
        order = {"regression": 0, "warning": 1, "improvement": 2, "info": 3}
        for d in sorted(self.findings(),
                        key=lambda d: (order[d.severity], d.metric)):
            out.append("  " + d.line())
        out.append(self.summary())
        return out

    def to_json(self) -> dict[str, Any]:
        return {
            "schema": DIFF_SCHEMA_VERSION,
            "a": self.a_label,
            "b": self.b_label,
            "timing_threshold": self.timing_threshold,
            "strict_timing": self.strict_timing,
            "traces_identical": self.traces_identical,
            "metrics_compared": self.metrics_compared,
            "regressions": len(self.regressions),
            "warnings": len(self.warnings),
            "improvements": len(self.improvements),
            "ok": self.ok,
            "deltas": [d.to_json() for d in self.findings()],
        }


def _count_delta(metric: str, a: float, b: float,
                 higher_worse: bool | None) -> MetricDelta | None:
    if a == b:
        return None
    if higher_worse is None:
        severity, direction = "info", "neutral"
    else:
        worsened = b > a if higher_worse else b < a
        severity = "regression" if worsened else "improvement"
        direction = "higher_worse" if higher_worse else "lower_worse"
    rel = (b - a) / a if a else None
    return MetricDelta(metric, "count", a, b, severity, direction, rel)


def _timing_delta(metric: str, a: float, b: float, threshold: float,
                  strict: bool, higher_worse: bool = True) -> MetricDelta:
    direction = "higher_worse" if higher_worse else "lower_worse"
    if a <= 0 or b < 0:
        severity = "ok" if a == b else "info"
        return MetricDelta(metric, "timing", a, b, severity, direction, None)
    rel = (b - a) / a
    worsened = rel > threshold if higher_worse else rel < -threshold
    improved = rel < -threshold if higher_worse else rel > threshold
    if worsened:
        severity = "regression" if strict else "warning"
    elif improved:
        severity = "improvement"
    else:
        severity = "ok"
    return MetricDelta(metric, "timing", a, b, severity, direction, rel)


def _digest_deltas(a: TraceDigest, b: TraceDigest) -> list[MetricDelta]:
    out = []
    for name, higher_worse in _COUNT_DIRECTIONS.items():
        d = _count_delta(f"trace/{name}", getattr(a, name),
                         getattr(b, name), higher_worse)
        if d:
            out.append(d)
    for name in _NEUTRAL_COUNTS:
        d = _count_delta(f"trace/{name}", getattr(a, name),
                         getattr(b, name), None)
        if d:
            out.append(d)
    clauses = sorted(set(a.rejects_by_clause) | set(b.rejects_by_clause))
    for c in clauses:
        d = _count_delta(
            f"trace/rejects[{c}]",
            a.rejects_by_clause.get(c, 0), b.rejects_by_clause.get(c, 0),
            None,
        )
        if d:
            out.append(d)
    return out


def _admission_hist(snap: TelemetrySnapshot) -> Histogram | None:
    reg = snap.to_registry()
    h = reg.get("controller/admission_latency_seconds")
    return h if isinstance(h, Histogram) and h.count else None


def _telemetry_deltas(
    a: TelemetrySnapshot, b: TelemetrySnapshot,
    threshold: float, strict: bool,
) -> tuple[list[MetricDelta], int]:
    out: list[MetricDelta] = []
    compared = 0
    for name, higher_worse in _COUNT_DIRECTIONS.items():
        ia, ib = a.get(f"controller/{name}"), b.get(f"controller/{name}")
        if ia is None or ib is None:
            continue
        compared += 1
        d = _count_delta(f"telemetry/controller/{name}",
                         ia["value"], ib["value"], higher_worse)
        if d:
            out.append(d)
    ha, hb = _admission_hist(a), _admission_hist(b)
    if ha is not None and hb is not None:
        for label, qa, qb in (
            ("p50", ha.quantile(0.5), hb.quantile(0.5)),
            ("p99", ha.quantile(0.99), hb.quantile(0.99)),
            ("mean", ha.mean, hb.mean),
        ):
            compared += 1
            out.append(_timing_delta(
                f"telemetry/admission_{label}_seconds", qa, qb,
                threshold, strict,
            ))
    for snap_pair in (("span/run", "telemetry/span_run_total_seconds"),):
        span_name, metric = snap_pair
        sa = next(iter(a.find(span_name)), None)
        sb = next(iter(b.find(span_name)), None)
        if sa is not None and sb is not None and sa["kind"] == "histogram":
            compared += 1
            out.append(_timing_delta(metric, sa["sum"], sb["sum"],
                                     threshold, strict))
    return out, compared


def _flatten(record: Any, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of a perf record as ``path/to/leaf -> value``."""
    out: dict[str, float] = {}
    if isinstance(record, dict):
        for k, v in record.items():
            if k in _PERF_SKIP:
                continue
            out.update(_flatten(v, f"{prefix}{k}/"))
    elif isinstance(record, bool):
        pass
    elif isinstance(record, (int, float)):
        out[prefix.rstrip("/")] = float(record)
    return out


def _perf_deltas(
    name: str, a: dict, b: dict, threshold: float, strict: bool,
) -> tuple[list[MetricDelta], int]:
    fa, fb = _flatten(a), _flatten(b)
    out: list[MetricDelta] = []
    compared = 0
    for key in sorted(set(fa) & set(fb)):
        va, vb = fa[key], fb[key]
        leaf = key.rsplit("/", 1)[-1]
        metric = f"perf/{name}/{key}"
        compared += 1
        if "seconds" in leaf:
            out.append(_timing_delta(metric, va, vb, threshold, strict))
        elif key.startswith("speedup/"):
            out.append(_timing_delta(metric, va, vb, threshold, strict,
                                     higher_worse=False))
        elif leaf in _COUNT_DIRECTIONS:
            d = _count_delta(metric, va, vb, _COUNT_DIRECTIONS[leaf])
            if d:
                out.append(d)
        else:
            d = _count_delta(metric, va, vb, None)
            if d:
                out.append(d)
    return out, compared


def diff_bundles(
    a: Bundle,
    b: Bundle,
    timing_threshold: float = TIMING_THRESHOLD,
    strict_timing: bool = False,
) -> DiffReport:
    """Compare two bundles over everything they have in common.

    Raises :class:`DiffError` when the pair shares no comparable
    artifact kind.
    """
    report = DiffReport(
        a_label=a.label, b_label=b.label,
        timing_threshold=timing_threshold, strict_timing=strict_timing,
    )
    comparable = False
    if a.digest is not None and b.digest is not None:
        comparable = True
        deltas = _digest_deltas(a.digest, b.digest)
        report.deltas.extend(deltas)
        report.metrics_compared += (
            len(_COUNT_DIRECTIONS) + len(_NEUTRAL_COUNTS)
        )
        if a.trace_sha and b.trace_sha:
            report.traces_identical = a.trace_sha == b.trace_sha
    if a.telemetry is not None and b.telemetry is not None:
        comparable = True
        deltas, compared = _telemetry_deltas(
            a.telemetry, b.telemetry, timing_threshold, strict_timing
        )
        report.deltas.extend(deltas)
        report.metrics_compared += compared
    shared_perf = sorted(set(a.perf) & set(b.perf))
    if not shared_perf and len(a.perf) == 1 and len(b.perf) == 1:
        # single records on both sides (e.g. history latest vs a fresh
        # perf JSON): compare them regardless of file name
        only_a, only_b = next(iter(a.perf)), next(iter(b.perf))
        deltas, compared = _perf_deltas(
            only_b, a.perf[only_a], b.perf[only_b],
            timing_threshold, strict_timing,
        )
        comparable = comparable or compared > 0
        report.deltas.extend(deltas)
        report.metrics_compared += compared
    for name in shared_perf:
        deltas, compared = _perf_deltas(
            name, a.perf[name], b.perf[name], timing_threshold, strict_timing
        )
        comparable = comparable or compared > 0
        report.deltas.extend(deltas)
        report.metrics_compared += compared
    if not comparable:
        raise DiffError(
            f"nothing comparable between {a.label} and {b.label} "
            f"(no shared artifact kind)"
        )
    return report


def diff_paths(
    path_a: str | Path,
    path_b: str | Path,
    timing_threshold: float = TIMING_THRESHOLD,
    strict_timing: bool = False,
) -> DiffReport:
    """Load and diff two artifact paths (the CLI entry point)."""
    return diff_bundles(
        load_bundle(path_a), load_bundle(path_b),
        timing_threshold=timing_threshold, strict_timing=strict_timing,
    )


# -- append-only perf history --------------------------------------------------


def append_history(
    record: dict, history_dir: str | Path, name: str = "perf"
) -> Path:
    """Append ``record`` to the history store as the next numbered file."""
    root = Path(history_dir)
    root.mkdir(parents=True, exist_ok=True)
    seq = len(list(root.glob("*.json"))) + 1
    out = root / f"{seq:04d}-{name}.json"
    out.write_text(json.dumps(record, indent=1, sort_keys=True))
    return out


def latest_history(history_dir: str | Path) -> Path | None:
    """The newest record file in the store, or ``None`` when empty."""
    records = sorted(Path(history_dir).glob("*.json"))
    return records[-1] if records else None
