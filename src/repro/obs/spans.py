"""Hierarchical span timers over a :class:`~repro.obs.registry.MetricsRegistry`.

A *span* is a named, timed region of code::

    with registry.spans.span("controller/admission"):
        ...

Spans nest: while one is open, inner spans extend its path, so the
controller's ``path_calculation`` span opened inside the engine's
``arrival`` span lands in the histogram
``span/engine/arrival/controller/admission/path_calculation`` — the full
causal pipeline is readable straight off the instrument name, and the
``repro-taps stats`` report renders the tree with each node's call count
and total/mean time.

Every span exit records its wall duration into a histogram named
``span/<full-path>``, so span timings inherit everything histograms give
us: percentiles, and exact cross-process merging (a sweep's span tree is
the elementwise sum of its workers' trees).

One :class:`SpanTimers` (one stack) is shared per registry via
``registry.spans`` — components must not construct private instances, or
their spans would not nest into the shared tree.  The timers are not
thread-safe (neither is anything else in a simulation run); the parallel
executor gives each worker process its own registry instead.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter


class SpanTimers:
    """Span-name stack + duration recording for one registry."""

    __slots__ = ("_registry", "_stack")

    def __init__(self, registry) -> None:
        self._registry = registry
        self._stack: list[str] = []

    @property
    def current_path(self) -> str:
        """The open span path ("" at top level) — diagnostics only."""
        return "/".join(self._stack)

    @contextmanager
    def span(self, name: str):
        """Time a region under ``name`` (nested under any open span)."""
        if not self._registry.enabled:
            yield
            return
        self._stack.append(name)
        t0 = perf_counter()
        try:
            yield
        finally:
            dt = perf_counter() - t0
            path = "/".join(self._stack)
            self._stack.pop()
            self._registry.histogram("span/" + path).observe(dt)
