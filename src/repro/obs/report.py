"""Render a human-readable run report from an exported telemetry snapshot.

``repro-taps stats <run-dir>`` loads ``telemetry.jsonl`` and calls
:func:`render_stats` — everything in the report is computed from the
exported artifact alone, with no re-simulation.  Sections degrade
gracefully: a snapshot that never saw the engine (e.g. a bare controller
benchmark) simply omits the engine/link sections rather than erroring.

Instrument names consumed here are the contract published in DESIGN.md
§7; renaming an instrument means updating both.
"""

from __future__ import annotations

from repro.obs.export import TelemetrySnapshot
from repro.obs.registry import Histogram, MetricsRegistry

#: span histograms start with this prefix; the remainder is the /-path
SPAN_PREFIX = "span/"


def _fmt_seconds(s: float) -> str:
    if s == 0:
        return "0"
    if s < 1e-3:
        return f"{s * 1e6:.1f}µs"
    if s < 1.0:
        return f"{s * 1e3:.2f}ms"
    return f"{s:.3f}s"


def _fmt_rate(num: float, den: float) -> str:
    return f"{num / den:6.1%}" if den else "   n/a"


def _section(title: str) -> list[str]:
    return ["", title, "-" * len(title)]


def _counter_value(snap: TelemetrySnapshot, name: str) -> float | None:
    item = snap.get(name)
    return item["value"] if item is not None else None


def _admission_section(reg: MetricsRegistry) -> list[str]:
    hist = reg.get("controller/admission_latency_seconds")
    if not isinstance(hist, Histogram) or hist.count == 0:
        return []
    out = _section("Admission latency")
    pcts = hist.percentiles(0.50, 0.90, 0.99)
    out.append(
        f"  {hist.count} admissions, mean {_fmt_seconds(hist.mean)}, "
        f"total {_fmt_seconds(hist.sum)}"
    )
    out.append(
        "  p50 {p50}  p90 {p90}  p99 {p99}  max {mx}".format(
            p50=_fmt_seconds(pcts["p50"]),
            p90=_fmt_seconds(pcts["p90"]),
            p99=_fmt_seconds(pcts["p99"]),
            mx=_fmt_seconds(hist.max),
        )
    )
    return out


def _decisions_section(snap: TelemetrySnapshot) -> list[str]:
    accepted = _counter_value(snap, "controller/tasks_accepted")
    rejected = _counter_value(snap, "controller/tasks_rejected")
    if accepted is None and rejected is None:
        return []
    accepted = accepted or 0
    rejected = rejected or 0
    total = accepted + rejected
    out = _section("Admission decisions")
    out.append(f"  accepted   {accepted:>8}  ({_fmt_rate(accepted, total)})")
    out.append(f"  rejected   {rejected:>8}  ({_fmt_rate(rejected, total)})")
    preempted = _counter_value(snap, "controller/tasks_preempted")
    if preempted:
        out.append(f"  preempted  {preempted:>8}  (victim tasks discarded)")
    rounds = _counter_value(snap, "controller/reallocations")
    rollbacks = _counter_value(snap, "alloc/trials_rolled_back")
    if rounds is not None:
        out.append(
            f"  reallocation rounds {rounds:>8}"
            + (f"  ({rollbacks:g} trials rolled back)" if rollbacks else "")
        )
    return out


def _cache_section(snap: TelemetrySnapshot) -> list[str]:
    pairs = [
        ("union cache", "alloc/union_cache_hits", "alloc/union_cache_misses"),
        ("result cache", "executor/cache_hits", "executor/cache_misses"),
    ]
    rows = []
    for label, hit_name, miss_name in pairs:
        hits = _counter_value(snap, hit_name)
        misses = _counter_value(snap, miss_name)
        if hits is None and misses is None:
            continue
        hits = hits or 0
        misses = misses or 0
        rows.append(
            f"  {label:<13} {_fmt_rate(hits, hits + misses)}  "
            f"({hits} hits / {misses} misses)"
        )
    pruned = _counter_value(snap, "alloc/candidates_pruned")
    evaluated = _counter_value(snap, "alloc/candidates_evaluated")
    if evaluated is not None:
        rows.append(
            f"  {'path prune':<13} {_fmt_rate(pruned or 0, evaluated)}  "
            f"({pruned or 0} of {evaluated} candidates)"
        )
    if not rows:
        return []
    return _section("Cache and prune effectiveness") + rows


def _links_section(reg: MetricsRegistry, top: int = 10) -> list[str]:
    peaks = reg.find("net/link_peak_utilization")
    if not peaks:
        return []
    ranked = sorted(peaks, key=lambda g: g.max, reverse=True)
    out = _section(f"Per-link peak utilization (top {min(top, len(ranked))} "
                   f"of {len(ranked)} links)")
    for g in ranked[:top]:
        labels = dict(g.labels)
        name = labels.get("link", "?")
        ends = (
            f" ({labels['src']}→{labels['dst']})"
            if "src" in labels and "dst" in labels
            else ""
        )
        out.append(f"  link {name:>4}{ends:<14} peak {g.max:6.1%}")
    return out


def _span_tree(reg: MetricsRegistry) -> list[str]:
    spans = [
        h for h in reg.instruments()
        if isinstance(h, Histogram) and h.name.startswith(SPAN_PREFIX)
    ]
    if not spans:
        return []
    total = sum(h.sum for h in spans if "/" not in h.name[len(SPAN_PREFIX):])
    out = _section("Span-time breakdown")
    out.append(f"  {'span':<44} {'calls':>8} {'total':>10} {'mean':>10}")
    for h in sorted(spans, key=lambda h: h.name):
        path = h.name[len(SPAN_PREFIX):]
        depth = path.count("/")
        leaf = path.rsplit("/", 1)[-1]
        label = "  " * depth + leaf
        share = f"  {h.sum / total:5.1%}" if depth == 0 and total else ""
        out.append(
            f"  {label:<44} {h.count:>8} {_fmt_seconds(h.sum):>10} "
            f"{_fmt_seconds(h.mean):>10}{share}"
        )
    return out


def stats_json(snap: TelemetrySnapshot) -> dict:
    """The ``repro-taps stats --json`` payload: the same sections as
    :func:`render_stats`, as a machine-readable dict (CI and scripts
    consume this instead of scraping the text report)."""
    reg = snap.to_registry()
    out: dict = {"schema": snap.schema, "meta": dict(snap.meta)}
    hist = reg.get("controller/admission_latency_seconds")
    if isinstance(hist, Histogram) and hist.count:
        pcts = hist.percentiles(0.50, 0.90, 0.99)
        out["admission_latency"] = {
            "count": hist.count, "mean": hist.mean, "sum": hist.sum,
            "max": hist.max, **pcts,
        }
    decisions = {}
    for key, name in (
        ("accepted", "controller/tasks_accepted"),
        ("rejected", "controller/tasks_rejected"),
        ("preempted", "controller/tasks_preempted"),
        ("reallocations", "controller/reallocations"),
        ("trials_rolled_back", "alloc/trials_rolled_back"),
    ):
        value = _counter_value(snap, name)
        if value is not None:
            decisions[key] = value
    if decisions:
        out["decisions"] = decisions
    caches = {}
    for key, hit_name, miss_name in (
        ("union_cache", "alloc/union_cache_hits", "alloc/union_cache_misses"),
        ("result_cache", "executor/cache_hits", "executor/cache_misses"),
    ):
        hits = _counter_value(snap, hit_name)
        misses = _counter_value(snap, miss_name)
        if hits is None and misses is None:
            continue
        caches[key] = {"hits": hits or 0, "misses": misses or 0}
    if caches:
        out["caches"] = caches
    peaks = reg.find("net/link_peak_utilization")
    if peaks:
        out["links"] = [
            {"labels": dict(g.labels), "peak": g.max}
            for g in sorted(peaks,
                            key=lambda g: (-g.max, sorted(dict(g.labels))))
        ]
    spans = [
        h for h in reg.instruments()
        if isinstance(h, Histogram) and h.name.startswith(SPAN_PREFIX)
    ]
    if spans:
        out["spans"] = [
            {"path": h.name[len(SPAN_PREFIX):], "calls": h.count,
             "total_seconds": h.sum, "mean_seconds": h.mean}
            for h in sorted(spans, key=lambda h: h.name)
        ]
    return out


def render_stats(snap: TelemetrySnapshot) -> str:
    """The full ``repro-taps stats`` report for one telemetry snapshot."""
    reg = snap.to_registry()
    lines = ["Telemetry report" + (f" (schema {snap.schema})" if snap.schema else "")]
    if snap.meta:
        lines.extend(
            f"  {k}: {v}" for k, v in sorted(snap.meta.items())
        )
    if not snap.instruments:
        lines.append("  (no instruments recorded)")
        return "\n".join(lines) + "\n"
    for section in (
        _admission_section(reg),
        _decisions_section(snap),
        _cache_section(snap),
        _links_section(reg),
        _span_tree(reg),
    ):
        lines.extend(section)
    return "\n".join(lines) + "\n"
