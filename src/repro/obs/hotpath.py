"""Hot-path work counters for the allocation inner loop.

The controller's single hottest loop is :func:`~repro.core.allocation.
path_calculation`: on every task arrival it re-plans all in-flight flows,
and for each flow it evaluates every candidate path against the per-link
occupancy sets.  :class:`HotPathCounters` instruments that loop — how
often the :class:`~repro.core.occupancy.OccupancyLedger` union cache
hits, how many occupancy intervals the union merges scan, how many
candidate paths the lower-bound prune skips, and how much wall time path
calculation costs — so benchmarks report *work done*, not just elapsed
seconds, and optimisation PRs have a trajectory to beat.

One instance lives on :class:`~repro.core.controller.TapsStats` (as
``stats.profile``); the controller hands it to every ledger it creates
and to every ``path_calculation`` call.  The counters are deliberately
plain attribute increments so the instrumented hot path stays cheap, and
the consumers (``occupancy``/``allocation``) treat the profile as an
optional duck-typed object — passing ``None`` disables counting
entirely.  This is the one instrumentation surface that does *not* go
through :class:`~repro.obs.registry.MetricsRegistry` instruments inline:
at millions of increments per run, even a dict-free counter object is
borderline, so the counts accumulate here and are published into a
registry once per run via :meth:`publish_to`.

Snapshots are mergeable (:meth:`merge` / :meth:`from_dict`): the
parallel sweep executor ships each worker's counters back with its
result, so hot-path work done in child processes aggregates instead of
silently vanishing (it used to).

``repro.metrics.profiling.ProfileCounters`` remains as a compatibility
alias of this class.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(slots=True)
class HotPathCounters:
    """Counters for the controller's allocation hot path.

    Attributes
    ----------
    union_cache_hits, union_cache_misses:
        ``OccupancyLedger.union_for`` calls served from / missing the
        per-path union cache.  On a cache-disabled ledger every call
        counts as a miss (the recompute path), so hit rates compare
        cleanly across modes.
    intervals_scanned:
        Occupancy intervals fed into union recomputation — the merge work
        the cache avoids repeating.
    candidates_evaluated:
        Candidate paths considered by Alg. 2's multi-path comparison
        (single-candidate flows skip the comparison and are not counted).
    candidates_pruned:
        Candidates skipped outright because their contention-free
        completion (``release + duration``) could not beat the best
        candidate so far; mid-scan ``stop_at`` aborts are not counted
        here (their partial scan is real work).
    path_calculation_calls, path_calculation_seconds:
        Invocations of, and total wall time inside,
        :func:`~repro.core.allocation.path_calculation`.
    trials_rolled_back:
        Ledger trials undone via the rollback journal (discard-victim
        retries and rejected incremental admissions).
    max_reallocation_depth:
        Largest number of victims discarded while admitting one task —
        how deep the Alg. 1 retry loop has ever gone.
    """

    union_cache_hits: int = 0
    union_cache_misses: int = 0
    intervals_scanned: int = 0
    candidates_evaluated: int = 0
    candidates_pruned: int = 0
    path_calculation_calls: int = 0
    path_calculation_seconds: float = 0.0
    trials_rolled_back: int = 0
    max_reallocation_depth: int = 0

    @property
    def union_cache_hit_rate(self) -> float:
        """Fraction of ``union_for`` calls served from the cache."""
        total = self.union_cache_hits + self.union_cache_misses
        return self.union_cache_hits / total if total else 0.0

    @property
    def prune_rate(self) -> float:
        """Fraction of evaluated candidates skipped by the lower bound."""
        return (
            self.candidates_pruned / self.candidates_evaluated
            if self.candidates_evaluated
            else 0.0
        )

    def as_dict(self) -> dict[str, float]:
        """All counters plus the derived rates, JSON-ready."""
        out: dict[str, float] = {
            f.name: getattr(self, f.name) for f in fields(self)
        }
        out["union_cache_hit_rate"] = self.union_cache_hit_rate
        out["prune_rate"] = self.prune_rate
        return out

    def reset(self) -> None:
        """Zero every counter in place."""
        for f in fields(self):
            setattr(self, f.name, type(getattr(self, f.name))())

    # -- aggregation ---------------------------------------------------------

    def merge(self, other: "HotPathCounters | dict") -> "HotPathCounters":
        """Fold another counter set (or its ``as_dict``) into this one.

        Sums every additive counter and takes the max of
        ``max_reallocation_depth``; derived-rate keys in a dict input are
        ignored.  Returns ``self``, so worker snapshots fold in one pass:
        ``reduce(HotPathCounters.merge, snaps, HotPathCounters())``.
        """
        get = other.get if isinstance(other, dict) else (
            lambda name, _default=0: getattr(other, name)
        )
        for f in fields(self):
            v = get(f.name, 0)
            if f.name == "max_reallocation_depth":
                if v > self.max_reallocation_depth:
                    self.max_reallocation_depth = v
            else:
                setattr(self, f.name, getattr(self, f.name) + v)
        return self

    @classmethod
    def from_dict(cls, data: dict) -> "HotPathCounters":
        """Rebuild from :meth:`as_dict` output (rate keys ignored)."""
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})

    def publish_to(self, registry, prefix: str = "alloc/") -> None:
        """Mirror the counters into a registry (once, at end of run).

        Additive counters become registry counters named
        ``<prefix><field>``; ``max_reallocation_depth`` becomes a gauge
        (its merge semantics are max, matching the field's meaning).
        """
        for f in fields(self):
            v = getattr(self, f.name)
            if f.name == "max_reallocation_depth":
                registry.gauge(prefix + f.name).set(v)
            else:
                registry.counter(prefix + f.name).inc(v)
