"""Per-entity timelines reconstructed from a decision trace.

The decision trace (:mod:`repro.trace.events`) is a flat causal stream:
one line per decision or physical fact.  Operators ask entity-shaped
questions — *what happened to task 17*, *when was link 12 busy and for
whom*, *how did task 9's deadline slack evolve as the controller
re-planned around it* — so this module pivots the stream into per-task,
per-flow, and per-link timelines:

* :class:`TaskTimeline` — arrival → trials → accept/reject →
  preemption/drop → completion/expiry, plus a deadline-slack series
  sampled at every committed plan table that mentions the task;
* :class:`FlowTimeline` — the physical transmission slices (after
  down-link zeroing), completion, expiry;
* :class:`LinkTimeline` — busy intervals (which flow of which task held
  the link when) and outage windows.

Everything is trace-in, timeline-out: nothing here imports the scheduler
or the engine, so a JSONL file from any run — or any machine — can be
pivoted offline.  The timeline is the shared substrate for the Chrome
trace exporter (:mod:`repro.obs.chrometrace`) and the rejection
explainer (:mod:`repro.obs.explain`).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.trace.events import PlanRecord, TraceEvent
from repro.trace.recorder import LoadedTrace, TraceRecorder


@dataclass(slots=True)
class TrialRecord:
    """One Alg. 1 trial during a task's admission."""

    attempt: int
    time: float
    num_flows: int
    #: set when the trial ended in discard-victim (the retried victim)
    rollback_victim: int | None = None
    victim_ratio: float | None = None
    new_ratio: float | None = None


@dataclass(slots=True)
class FlowSlice:
    """One physical transmission interval of a flow."""

    start: float
    end: float | None
    path: tuple[int, ...]

    def duration(self, until: float) -> float:
        return max(0.0, (self.end if self.end is not None else until) - self.start)


@dataclass(slots=True)
class FlowTimeline:
    """One flow's physical lifecycle."""

    flow_id: int
    task_id: int
    slices: list[FlowSlice] = field(default_factory=list)
    completed_at: float | None = None
    met_deadline: bool | None = None
    expired_at: float | None = None


@dataclass(slots=True)
class TaskTimeline:
    """One task's full lifecycle, admission through settlement."""

    task_id: int
    arrival: float | None = None
    deadline: float | None = None
    num_flows: int = 0
    total_bytes: float = 0.0
    flows: list[int] = field(default_factory=list)
    trials: list[TrialRecord] = field(default_factory=list)
    #: admission decision: ``"accepted"`` / ``"rejected"`` / ``None``
    decision: str | None = None
    decision_time: float | None = None
    decision_seq: int | None = None
    victims: tuple[int, ...] = ()
    reject_reason: str | None = None
    reject_clause: int | None = None
    reject_missing: tuple[tuple[int, int], ...] = ()
    reject_lateness: tuple[tuple[int, float], ...] = ()
    reject_victim_ratio: float | None = None
    reject_new_ratio: float | None = None
    preempted_by: int | None = None
    preempted_at: float | None = None
    killed_flows: tuple[int, ...] = ()
    dropped_cause: str | None = None
    dropped_at: float | None = None
    completed_at: float | None = None
    flows_completed: int = 0
    flows_expired: int = 0
    #: ``(time, slack)`` samples: min over the task's planned flows of
    #: ``deadline − planned completion``, one point per committed table
    slack_series: list[tuple[float, float]] = field(default_factory=list)

    @property
    def outcome(self) -> str:
        """The settled fate: ``rejected`` / ``preempted`` / ``dropped`` /
        ``completed`` / ``expired`` / ``incomplete``."""
        if self.decision == "rejected":
            return "rejected"
        if self.preempted_by is not None:
            return "preempted"
        if self.dropped_cause is not None:
            return "dropped"
        if self.completed_at is not None:
            return "completed"
        if self.flows_expired:
            return "expired"
        return "incomplete"

    @property
    def settled_at(self) -> float | None:
        """When the fate was sealed (decision, preemption, drop, or last
        flow completion) — ``None`` for incomplete tasks."""
        if self.decision == "rejected":
            return self.decision_time
        if self.preempted_by is not None:
            return self.preempted_at
        if self.dropped_cause is not None:
            return self.dropped_at
        return self.completed_at


@dataclass(slots=True)
class LinkInterval:
    """One exclusive occupancy of a link by a flow."""

    start: float
    end: float | None
    flow_id: int
    task_id: int


@dataclass(slots=True)
class LinkTimeline:
    """One link's busy intervals and outage windows."""

    link: int
    busy: list[LinkInterval] = field(default_factory=list)
    outages: list[tuple[float, float | None]] = field(default_factory=list)

    def busy_time(self, until: float) -> float:
        """Total occupied time up to ``until`` (open intervals clipped)."""
        total = 0.0
        for iv in self.busy:
            end = iv.end if iv.end is not None else until
            total += max(0.0, min(end, until) - iv.start)
        return total

    def utilization(self, until: float) -> float:
        """Occupied fraction of ``[0, until]``."""
        return self.busy_time(until) / until if until > 0 else 0.0

    def down_at(self, t: float) -> bool:
        """Whether the link was inside an outage window at ``t``."""
        return any(
            s <= t and (e is None or t < e) for s, e in self.outages
        )


@dataclass(slots=True)
class PlanSnapshot:
    """One committed plan table (accept or fault-reallocation)."""

    time: float
    seq: int
    kind: str
    plans: tuple[PlanRecord, ...]


@dataclass(slots=True)
class RunTimeline:
    """The pivoted view of one run's decision trace."""

    meta: dict[str, Any] = field(default_factory=dict)
    tasks: dict[int, TaskTimeline] = field(default_factory=dict)
    flows: dict[int, FlowTimeline] = field(default_factory=dict)
    links: dict[int, LinkTimeline] = field(default_factory=dict)
    plan_snapshots: list[PlanSnapshot] = field(default_factory=list)
    end_time: float = 0.0
    events: int = 0

    def snapshot_before(self, seq: int) -> PlanSnapshot | None:
        """The plan table in force just before event ``seq`` (the latest
        accept/reallocation with a smaller sequence number)."""
        seqs = [s.seq for s in self.plan_snapshots]
        i = bisect.bisect_left(seqs, seq)
        return self.plan_snapshots[i - 1] if i else None

    def outcomes(self) -> dict[str, list[int]]:
        """Task ids grouped by settled outcome, each list sorted."""
        out: dict[str, list[int]] = {}
        for tid in sorted(self.tasks):
            out.setdefault(self.tasks[tid].outcome, []).append(tid)
        return out


def _task(tl: RunTimeline, task_id: int) -> TaskTimeline:
    t = tl.tasks.get(task_id)
    if t is None:
        t = tl.tasks[task_id] = TaskTimeline(task_id=task_id)
    return t


def _link(tl: RunTimeline, link: int) -> LinkTimeline:
    entry = tl.links.get(link)
    if entry is None:
        entry = tl.links[link] = LinkTimeline(link=link)
    return entry


def _sample_slack(tl: RunTimeline, time: float,
                  plans: tuple[PlanRecord, ...]) -> None:
    by_task: dict[int, float] = {}
    for pr in plans:
        slack = pr.deadline - pr.completion
        prev = by_task.get(pr.task_id)
        by_task[pr.task_id] = slack if prev is None else min(prev, slack)
    for task_id, slack in by_task.items():
        _task(tl, task_id).slack_series.append((time, slack))


def build_timeline(
    events: Iterable[TraceEvent], meta: dict[str, Any] | None = None
) -> RunTimeline:
    """Pivot an event stream into a :class:`RunTimeline` (single pass)."""
    tl = RunTimeline(meta=dict(meta) if meta else {})
    open_slices: dict[int, FlowSlice] = {}
    open_links: dict[int, dict[int, LinkInterval]] = {}  # flow -> link -> iv
    down: set[int] = set()
    for ev in events:
        tl.events += 1
        tl.end_time = max(tl.end_time, ev.time)
        kind = ev.kind
        if kind == "task-arrival":
            task = _task(tl, ev.task_id)
            task.arrival = ev.time
            task.deadline = ev.deadline
            task.num_flows = ev.num_flows
            task.total_bytes = ev.total_bytes
        elif kind == "trial-begin":
            _task(tl, ev.task_id).trials.append(
                TrialRecord(ev.attempt, ev.time, len(ev.flows))
            )
        elif kind == "trial-rollback":
            trials = _task(tl, ev.task_id).trials
            if trials:
                trials[-1].rollback_victim = ev.victim_task_id
                trials[-1].victim_ratio = ev.victim_ratio
                trials[-1].new_ratio = ev.new_ratio
        elif kind == "task-accept":
            task = _task(tl, ev.task_id)
            task.decision = "accepted"
            task.decision_time = ev.time
            task.decision_seq = ev.seq
            task.victims = ev.victims
            tl.plan_snapshots.append(
                PlanSnapshot(ev.time, ev.seq, kind, ev.plans)
            )
            _sample_slack(tl, ev.time, ev.plans)
        elif kind == "task-reject":
            task = _task(tl, ev.task_id)
            task.decision = "rejected"
            task.decision_time = ev.time
            task.decision_seq = ev.seq
            task.reject_reason = ev.reason
            task.reject_clause = ev.clause
            task.reject_missing = ev.missing
            task.reject_lateness = ev.lateness
            task.reject_victim_ratio = ev.victim_ratio
            task.reject_new_ratio = ev.new_ratio
        elif kind == "preemption":
            task = _task(tl, ev.victim_task_id)
            task.preempted_by = ev.by_task_id
            task.preempted_at = ev.time
            task.killed_flows = ev.killed_flows
        elif kind == "fault-reallocation":
            tl.plan_snapshots.append(
                PlanSnapshot(ev.time, ev.seq, kind, ev.plans)
            )
            _sample_slack(tl, ev.time, ev.plans)
        elif kind == "task-drop":
            task = _task(tl, ev.task_id)
            task.dropped_cause = ev.cause
            task.dropped_at = ev.time
        elif kind == "link-state-change":
            new_down = set(ev.down_links)
            for link in sorted(new_down - down):
                _link(tl, link).outages.append((ev.time, None))
            for link in sorted(down - new_down):
                entry = _link(tl, link)
                if entry.outages and entry.outages[-1][1] is None:
                    entry.outages[-1] = (entry.outages[-1][0], ev.time)
            down = new_down
        elif kind == "slice-start":
            flow = tl.flows.get(ev.flow_id)
            if flow is None:
                flow = tl.flows[ev.flow_id] = FlowTimeline(
                    ev.flow_id, ev.task_id
                )
                _task(tl, ev.task_id).flows.append(ev.flow_id)
            sl = FlowSlice(ev.time, None, ev.path)
            flow.slices.append(sl)
            open_slices[ev.flow_id] = sl
            held = open_links.setdefault(ev.flow_id, {})
            for link in ev.path:
                iv = LinkInterval(ev.time, None, ev.flow_id, ev.task_id)
                _link(tl, link).busy.append(iv)
                held[link] = iv
        elif kind == "slice-end":
            sl = open_slices.pop(ev.flow_id, None)
            if sl is not None:
                sl.end = ev.time
            for iv in open_links.pop(ev.flow_id, {}).values():
                iv.end = ev.time
        elif kind == "flow-completed":
            flow = tl.flows.get(ev.flow_id)
            if flow is None:
                flow = tl.flows[ev.flow_id] = FlowTimeline(
                    ev.flow_id, ev.task_id
                )
                _task(tl, ev.task_id).flows.append(ev.flow_id)
            flow.completed_at = ev.time
            flow.met_deadline = ev.met_deadline
            task = _task(tl, ev.task_id)
            task.flows_completed += 1
            if task.num_flows and task.flows_completed == task.num_flows:
                task.completed_at = ev.time
        elif kind == "deadline-expired":
            flow = tl.flows.get(ev.flow_id)
            if flow is not None:
                flow.expired_at = ev.time
            _task(tl, ev.task_id).flows_expired += 1
    # close whatever the horizon cut mid-interval
    for sl in open_slices.values():
        sl.end = tl.end_time
    for held in open_links.values():
        for iv in held.values():
            iv.end = tl.end_time
    return tl


def timeline_from(trace: TraceRecorder | LoadedTrace) -> RunTimeline:
    """Pivot a recorder's buffer or a loaded JSONL trace."""
    return build_timeline(trace.events, trace.meta)
