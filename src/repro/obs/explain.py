"""Human-readable verdicts for tasks the controller refused or killed.

``repro-taps explain <run-dir> --task T`` answers the operator question
the raw trace only implies: *why* did task T not finish?  For each
rejected / preempted / dropped / expired task the explainer renders a
:class:`TaskVerdict` naming

* the Alg. 1 reject clause that fired — both as *recorded* by the
  controller and as *re-derived* here from the missing-flow evidence,
  using exactly the classification the trace auditor
  (:mod:`repro.trace.audit`) checks, so an inconsistent clause is
  surfaced rather than papered over;
* the busiest links over the task's admission window and the competing
  tasks whose committed occupancy blocked it (from the plan table in
  force at the decision);
* the deadline slack at decision time and the worst per-flow lateness.

Everything is computed from the :class:`~repro.obs.timeline.RunTimeline`
alone — no re-simulation, no scheduler imports — so a verdict can be
rendered for any exported trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.timeline import RunTimeline, TaskTimeline

#: clause meanings, for report text (paper Alg. 1 reject rule)
CLAUSE_TEXT = {
    1: "several existing tasks would miss their deadlines",
    2: "the newcomer's own flows cannot meet their deadlines",
    3: "one victim task would miss, and the completion-ratio "
       "comparison kept it",
}

#: non-clause rejection reasons, for report text
REASON_TEXT = {
    "deadline-expired": "the deadline had already passed on arrival "
                        "(admission latency)",
    "unreachable": "no usable path existed between the endpoints",
    "would-miss": "the trial allocation missed at least one deadline",
    "table-limit": "the controller's plan table was full",
}


def derive_clause(task_id: int, missing: tuple[tuple[int, int], ...]) -> int | None:
    """Re-derive the Alg. 1 reject clause from the missing-flow evidence.

    Mirrors the auditor's classification: the newcomer among the missing
    tasks → clause 2; exactly one *other* task missing → clause 3;
    several other tasks missing → clause 1.  ``None`` when there is no
    missing-flow evidence (rejections outside the three-clause rule).
    """
    tasks = {tid for _, tid in missing}
    if not tasks:
        return None
    if task_id in tasks:
        return 2
    if len(tasks) == 1:
        return 3
    return 1


@dataclass(slots=True)
class LinkPressure:
    """One link's committed occupancy over a task's admission window."""

    link: int
    busy_fraction: float
    holders: tuple[int, ...]  # task ids, by held time desc


@dataclass(slots=True)
class TaskVerdict:
    """The explainer's full answer for one task."""

    task_id: int
    outcome: str
    time: float | None
    headline: str
    details: list[str] = field(default_factory=list)
    reject_reason: str | None = None
    clause_recorded: int | None = None
    clause_derived: int | None = None
    clause_consistent: bool = True
    slack_at_decision: float | None = None
    worst_lateness: float | None = None
    saturated_links: list[LinkPressure] = field(default_factory=list)
    competing_tasks: tuple[int, ...] = ()

    def lines(self) -> list[str]:
        out = [self.headline]
        out.extend(f"  {d}" for d in self.details)
        return out

    def to_json(self) -> dict[str, Any]:
        return {
            "task": self.task_id,
            "outcome": self.outcome,
            "time": self.time,
            "headline": self.headline,
            "details": list(self.details),
            "reject_reason": self.reject_reason,
            "clause_recorded": self.clause_recorded,
            "clause_derived": self.clause_derived,
            "clause_consistent": self.clause_consistent,
            "slack_at_decision": self.slack_at_decision,
            "worst_lateness": self.worst_lateness,
            "saturated_links": [
                {"link": p.link, "busy_fraction": p.busy_fraction,
                 "holders": list(p.holders)}
                for p in self.saturated_links
            ],
            "competing_tasks": list(self.competing_tasks),
        }


def _window_pressure(
    tl: RunTimeline, task: TaskTimeline, top: int = 5
) -> tuple[list[LinkPressure], tuple[int, ...]]:
    """Committed link occupancy over ``[decision, deadline]`` from the
    plan table in force when the decision was made."""
    if (
        task.decision_seq is None
        or task.decision_time is None
        or task.deadline is None
        or task.deadline <= task.decision_time
    ):
        return [], ()
    snap = tl.snapshot_before(task.decision_seq)
    if snap is None:
        return [], ()
    w0, w1 = task.decision_time, task.deadline
    span = w1 - w0
    held: dict[int, float] = {}          # link -> occupied time
    holders: dict[int, dict[int, float]] = {}  # link -> task -> time
    for pr in snap.plans:
        if pr.task_id == task.task_id:
            continue
        occupied = 0.0
        for i in range(0, len(pr.slices), 2):
            s, e = pr.slices[i], pr.slices[i + 1]
            occupied += max(0.0, min(e, w1) - max(s, w0))
        if occupied <= 0.0:
            continue
        for link in pr.path:
            held[link] = held.get(link, 0.0) + occupied
            by_task = holders.setdefault(link, {})
            by_task[pr.task_id] = by_task.get(pr.task_id, 0.0) + occupied
    ranked = sorted(held, key=lambda k: (-held[k], k))[:top]
    pressures = [
        LinkPressure(
            link=link,
            busy_fraction=min(1.0, held[link] / span),
            holders=tuple(sorted(
                holders[link], key=lambda t: (-holders[link][t], t)
            )),
        )
        for link in ranked
    ]
    blocking: dict[int, float] = {}
    for link in ranked:
        for tid, t in holders[link].items():
            blocking[tid] = blocking.get(tid, 0.0) + t
    competing = tuple(sorted(blocking, key=lambda t: (-blocking[t], t)))
    return pressures, competing


def _explain_rejected(tl: RunTimeline, task: TaskTimeline) -> TaskVerdict:
    derived = derive_clause(task.task_id, task.reject_missing)
    consistent = (
        task.reject_clause == derived
        if task.reject_reason == "would-miss"
        else task.reject_clause is None
    )
    worst = max((late for _, late in task.reject_lateness), default=None)
    slack = (
        task.deadline - task.decision_time
        if task.deadline is not None and task.decision_time is not None
        else None
    )
    clause_bit = (
        f", clause {task.reject_clause}" if task.reject_clause else ""
    )
    v = TaskVerdict(
        task_id=task.task_id,
        outcome="rejected",
        time=task.decision_time,
        headline=(
            f"task {task.task_id}: REJECTED at t={task.decision_time:.4f} "
            f"(reason {task.reject_reason}{clause_bit})"
        ),
        reject_reason=task.reject_reason,
        clause_recorded=task.reject_clause,
        clause_derived=derived,
        clause_consistent=consistent,
        slack_at_decision=slack,
        worst_lateness=worst,
    )
    why = REASON_TEXT.get(task.reject_reason, task.reject_reason)
    if task.reject_clause in CLAUSE_TEXT:
        why = CLAUSE_TEXT[task.reject_clause]
    v.details.append(f"why: {why}")
    if task.reject_reason == "would-miss":
        mark = "consistent" if consistent else "INCONSISTENT"
        v.details.append(
            f"clause evidence: recorded {task.reject_clause}, derived "
            f"{derived} from {len(task.reject_missing)} missing flow(s) "
            f"across tasks "
            f"{sorted({t for _, t in task.reject_missing})} — {mark} "
            f"with the auditor's classification"
        )
    if task.reject_clause == 3 and task.reject_victim_ratio is not None:
        v.details.append(
            f"ratio comparison: victim {task.reject_victim_ratio:.3f} vs "
            f"newcomer {task.reject_new_ratio:.3f} — victim kept"
        )
    if slack is not None:
        v.details.append(
            f"slack at decision: {slack:.4f}s to deadline "
            f"t={task.deadline:.4f}"
        )
    if worst is not None:
        v.details.append(f"worst projected lateness: {worst:.4f}s")
    pressures, competing = _window_pressure(tl, task)
    v.saturated_links = pressures
    v.competing_tasks = competing
    if pressures:
        w1 = task.deadline
        v.details.append(
            f"busiest committed links over "
            f"[{task.decision_time:.4f}, {w1:.4f}]:"
        )
        for p in pressures:
            v.details.append(
                f"  link {p.link}: {p.busy_fraction:6.1%} occupied, held "
                f"by task(s) {', '.join(str(t) for t in p.holders)}"
            )
    if competing:
        v.details.append(
            "competing tasks holding blocking occupancy: "
            + ", ".join(str(t) for t in competing)
        )
    return v


def _explain_preempted(tl: RunTimeline, task: TaskTimeline) -> TaskVerdict:
    v = TaskVerdict(
        task_id=task.task_id,
        outcome="preempted",
        time=task.preempted_at,
        headline=(
            f"task {task.task_id}: PREEMPTED at t={task.preempted_at:.4f} "
            f"by task {task.preempted_by} "
            f"({len(task.killed_flows)} flow(s) killed)"
        ),
    )
    v.details.append(
        "why: discard-victim — the newcomer's admission only succeeded "
        "after discarding this task's flows (paper Alg. 1)"
    )
    preemptor = tl.tasks.get(task.preempted_by)
    if preemptor is not None:
        for trial in preemptor.trials:
            if trial.rollback_victim == task.task_id:
                v.details.append(
                    f"ratio comparison at trial {trial.attempt}: victim "
                    f"{trial.victim_ratio:.3f} < newcomer "
                    f"{trial.new_ratio:.3f} — victim discarded"
                )
                break
    v.competing_tasks = (task.preempted_by,)
    return v


def _explain_dropped(tl: RunTimeline, task: TaskTimeline) -> TaskVerdict:
    v = TaskVerdict(
        task_id=task.task_id,
        outcome="dropped",
        time=task.dropped_at,
        headline=(
            f"task {task.task_id}: DROPPED at t={task.dropped_at:.4f} "
            f"(cause {task.dropped_cause})"
        ),
    )
    if task.dropped_cause == "fault":
        down = sorted(
            link for link, entry in tl.links.items()
            if entry.down_at(task.dropped_at)
        )
        v.details.append(
            "why: a link outage made the remaining flows unmeetable; "
            f"links down at the drop: {down or '(recovered by drop time)'}"
        )
    else:
        v.details.append(
            "why: backstop — a stranded flow crossed its deadline and "
            "the task was killed rather than allowed to dribble"
        )
    return v


def explain_task(tl: RunTimeline, task_id: int) -> TaskVerdict:
    """The verdict for one task; raises ``KeyError`` on an unknown id."""
    task = tl.tasks[task_id]
    outcome = task.outcome
    if outcome == "rejected":
        return _explain_rejected(tl, task)
    if outcome == "preempted":
        return _explain_preempted(tl, task)
    if outcome == "dropped":
        return _explain_dropped(tl, task)
    if outcome == "completed":
        return TaskVerdict(
            task_id=task_id, outcome=outcome, time=task.completed_at,
            headline=(
                f"task {task_id}: COMPLETED at t={task.completed_at:.4f} "
                f"({task.flows_completed} flow(s), deadline "
                f"t={task.deadline:.4f})"
            ),
        )
    if outcome == "expired":
        v = TaskVerdict(
            task_id=task_id, outcome=outcome, time=task.deadline,
            headline=(
                f"task {task_id}: EXPIRED — {task.flows_expired} flow(s) "
                f"crossed deadline t={task.deadline:.4f}"
            ),
        )
        had_faults = any(entry.outages for entry in tl.links.values())
        v.details.append(
            "why: an outage disrupted the committed schedule"
            if had_faults else
            "why: the run's schedule let an accepted flow miss — this "
            "should have been flagged by the auditor"
        )
        return v
    return TaskVerdict(
        task_id=task_id, outcome=outcome, time=None,
        headline=(
            f"task {task_id}: INCOMPLETE — the trace ends (t="
            f"{tl.end_time:.4f}) before the task settled"
        ),
    )


def explain_run(tl: RunTimeline) -> list[TaskVerdict]:
    """Verdicts for every task that did **not** complete, by task id."""
    return [
        explain_task(tl, tid)
        for tid in sorted(tl.tasks)
        if tl.tasks[tid].outcome != "completed"
    ]
