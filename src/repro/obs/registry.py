"""Typed metrics registry: Counter / Gauge / Histogram instruments.

The registry is the single sink for everything the runtime observes about
itself — controller decision counts, admission-latency distributions,
span timings, link-utilization gauges, cache hit counters.  Design rules
(see DESIGN.md §7):

* **Negligible when absent.**  Every instrumented component takes
  ``telemetry=None`` and guards with one ``is None`` test — no registry,
  no work.  A *disabled* registry (``MetricsRegistry(enabled=False)``)
  additionally hands out shared no-op instruments, so code holding a
  registry reference unconditionally still costs one attribute call.
* **Mergeable.**  Every instrument's state is a pure monoid:
  ``snapshot()`` emits JSON-able dicts and :meth:`MetricsRegistry.
  merge_snapshot` folds them into another registry.  Counters and
  histogram buckets add, gauges take the max — all associative and
  commutative, so process-pool sweep workers
  (:mod:`repro.exp.executor`) can ship snapshots back in any completion
  order and the aggregate is order-independent.
* **Outside the trace.**  Telemetry records *how long and how much*,
  never *what was decided*; decision facts belong to :mod:`repro.trace`.
  Nothing here may be consulted by scheduling code, which is what keeps
  fast/slow-mode traces byte-identical with telemetry on.

Instrument names are hierarchical ``/``-separated paths
(``controller/admission_latency_seconds``); an optional ``labels`` dict
(e.g. ``{"link": "12"}``) distinguishes per-entity series under one name.
"""

from __future__ import annotations

from bisect import bisect_right
from math import inf


def _label_key(labels: dict[str, str] | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonic event count.  Merge: sum."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        self.value += n

    def snapshot(self) -> dict:
        return {
            "kind": "counter",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }

    def merge(self, snap: dict) -> None:
        self.value += snap["value"]


class Gauge:
    """Last-observed value, with the peak retained.

    Merge semantics take the **max** of both ``value`` and ``max`` —
    across sweep workers "the last value" of a shared gauge is
    meaningless, while "the highest anyone saw" (peak queue depth, peak
    link utilization) is the quantity the SLO questions ask.  Max is
    associative and commutative, keeping merges order-independent.
    """

    __slots__ = ("name", "labels", "value", "max")
    kind = "gauge"

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.max = -inf

    def set(self, v: float) -> None:
        self.value = v
        if v > self.max:
            self.max = v

    def snapshot(self) -> dict:
        return {
            "kind": "gauge",
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
            "max": self.value if self.max == -inf else self.max,
        }

    def merge(self, snap: dict) -> None:
        self.set(max(self.value, snap["value"]))
        if snap["max"] > self.max:
            self.max = snap["max"]


#: default histogram shape: half-decade-ish log buckets from 100 ns up to
#: ~3e7 s — wide enough for any duration this codebase times, fine enough
#: that a quantile is exact to within a factor of √2
DEFAULT_LO = 1e-7
DEFAULT_GROWTH = 2.0 ** 0.5
DEFAULT_BUCKETS = 96


class Histogram:
    """Fixed log-bucketed histogram with quantile extraction.

    Bucket ``i`` (0-based, ``0 <= i < buckets``) covers
    ``[lo * growth**i, lo * growth**(i+1))``; two extra buckets catch
    underflow (``< lo``) and overflow.  The bucket layout is *fixed at
    construction* so histograms of the same name merge exactly across
    processes (elementwise count addition — no rebinning, no
    approximation drift).

    :meth:`quantile` walks the cumulative counts to the target rank and
    returns the containing bucket's upper edge clamped into the observed
    ``[min, max]`` — the estimate always lies inside the bucket that
    holds the true order statistic, i.e. within one ``growth`` factor of
    the exact percentile (property-tested against numpy in
    ``tests/obs/test_registry.py``).
    """

    __slots__ = ("name", "labels", "lo", "growth", "buckets", "counts",
                 "sum", "count", "min", "max", "_edges")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...] = (),
        lo: float = DEFAULT_LO,
        growth: float = DEFAULT_GROWTH,
        buckets: int = DEFAULT_BUCKETS,
    ):
        if lo <= 0 or growth <= 1 or buckets < 1:
            raise ValueError("need lo > 0, growth > 1, buckets >= 1")
        self.name = name
        self.labels = labels
        self.lo = lo
        self.growth = growth
        self.buckets = buckets
        #: [underflow] + buckets + [overflow]
        self.counts = [0] * (buckets + 2)
        self.sum = 0.0
        self.count = 0
        self.min = inf
        self.max = -inf
        #: upper edge of bucket i is _edges[i]; _edges[0] == lo is the
        #: upper edge of the underflow bucket
        self._edges = [lo * growth ** i for i in range(buckets + 1)]

    def observe(self, v: float) -> None:
        self.sum += v
        self.count += 1
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        # index 0 = underflow, 1..buckets = log buckets, buckets+1 = overflow
        self.counts[bisect_right(self._edges, v)] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The q-quantile (0 <= q <= 1), exact to one bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cum = 0
        idx = len(self.counts) - 1
        for i, c in enumerate(self.counts):
            cum += c
            if cum >= rank and c:
                idx = i
                break
        if idx >= self.buckets + 1:  # overflow bucket: only max is known
            return self.max
        # upper edge of the containing bucket, clamped into observed range
        return max(self.min, min(self._edges[idx], self.max))

    def percentiles(self, *qs: float) -> dict[str, float]:
        """``{"p50": ..., "p99": ...}`` for the requested quantiles."""
        return {f"p{100 * q:g}": self.quantile(q) for q in qs}

    def snapshot(self) -> dict:
        return {
            "kind": "histogram",
            "name": self.name,
            "labels": dict(self.labels),
            "lo": self.lo,
            "growth": self.growth,
            "buckets": self.buckets,
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
            "min": 0.0 if self.count == 0 else self.min,
            "max": 0.0 if self.count == 0 else self.max,
        }

    def merge(self, snap: dict) -> None:
        if (snap["lo"], snap["growth"], snap["buckets"]) != (
            self.lo, self.growth, self.buckets
        ):
            raise ValueError(
                f"histogram {self.name!r}: incompatible bucket layout "
                f"{(snap['lo'], snap['growth'], snap['buckets'])} vs "
                f"{(self.lo, self.growth, self.buckets)}"
            )
        self.counts = [a + b for a, b in zip(self.counts, snap["counts"])]
        self.sum += snap["sum"]
        self.count += snap["count"]
        if snap["count"]:
            self.min = min(self.min, snap["min"])
            self.max = max(self.max, snap["max"])


class _NullInstrument:
    """Shared no-op stand-in handed out by a disabled registry."""

    __slots__ = ()
    value = 0
    max = 0.0
    sum = 0.0
    count = 0
    mean = 0.0

    def inc(self, n=1):
        pass

    def set(self, v):
        pass

    def observe(self, v):
        pass

    def quantile(self, q):
        return 0.0


_NULL = _NullInstrument()

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create instrument store with mergeable snapshots.

    One registry observes one scope — a run, a sweep, a service.  The
    same ``(name, labels)`` always returns the same instrument;
    requesting an existing name as a different kind raises.

    ``enabled=False`` builds a registry whose factory methods return a
    shared no-op instrument and whose :meth:`snapshot` is empty — the
    cheap way to hand "telemetry" to code unconditionally while paying
    only an attribute access on the hot path.
    """

    def __init__(self, enabled: bool = True, meta: dict | None = None):
        self.enabled = enabled
        self.meta: dict = dict(meta) if meta else {}
        self._instruments: dict[tuple[str, tuple], Counter | Gauge | Histogram] = {}
        self._spans = None

    # -- instrument factories ------------------------------------------------

    def _get(self, cls, name: str, labels: dict[str, str] | None, **kwargs):
        if not self.enabled:
            return _NULL
        if not name:
            raise ValueError("instrument name must be non-empty")
        key = (name, _label_key(labels))
        got = self._instruments.get(key)
        if got is None:
            got = cls(name, key[1], **kwargs)
            self._instruments[key] = got
        elif type(got) is not cls:
            raise TypeError(
                f"instrument {name!r} already registered as {got.kind}"
            )
        return got

    def counter(self, name: str, labels: dict[str, str] | None = None) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, labels: dict[str, str] | None = None) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        labels: dict[str, str] | None = None,
        lo: float = DEFAULT_LO,
        growth: float = DEFAULT_GROWTH,
        buckets: int = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(Histogram, name, labels,
                         lo=lo, growth=growth, buckets=buckets)

    # -- spans ---------------------------------------------------------------

    @property
    def spans(self):
        """This registry's hierarchical span timers (one shared stack, so
        spans opened by different components nest into one tree)."""
        if self._spans is None:
            from repro.obs.spans import SpanTimers

            self._spans = SpanTimers(self)
        return self._spans

    # -- snapshots -----------------------------------------------------------

    def set_meta(self, **kwargs) -> None:
        """Merge metadata into the export header (scheduler, topology…)."""
        self.meta.update(kwargs)

    def __len__(self) -> int:
        return len(self._instruments)

    def instruments(self) -> list:
        """All instruments, sorted by (name, labels) for stable export."""
        return [self._instruments[k] for k in sorted(self._instruments)]

    def find(self, name: str) -> list:
        """Every instrument with this name (one per label set)."""
        return [inst for (n, _), inst in sorted(self._instruments.items())
                if n == name]

    def get(self, name: str, labels: dict[str, str] | None = None):
        """The instrument at (name, labels), or ``None``."""
        return self._instruments.get((name, _label_key(labels)))

    def snapshot(self) -> list[dict]:
        """Every instrument as a JSON-able dict, stably ordered."""
        return [inst.snapshot() for inst in self.instruments()]

    def merge_snapshot(self, snap: list[dict] | dict) -> None:
        """Fold instrument snapshots (from :meth:`snapshot` or a loaded
        JSONL export) into this registry, creating instruments as needed.

        Counters add, gauges max, histogram buckets add elementwise —
        associative and commutative, so worker snapshots may arrive in
        any order (property-tested).
        """
        if isinstance(snap, dict):
            snap = [snap]
        for item in snap:
            cls = _KINDS.get(item.get("kind"))
            if cls is None:
                raise ValueError(f"unknown instrument kind {item.get('kind')!r}")
            kwargs = {}
            if cls is Histogram:
                kwargs = {k: item[k] for k in ("lo", "growth", "buckets")}
            inst = self._get(cls, item["name"], item.get("labels"), **kwargs)
            if inst is _NULL:  # disabled registry swallows merges too
                continue
            inst.merge(item)
