"""Export a run timeline as Chrome trace-event JSON (Perfetto-viewable).

``repro-taps timeline <run-dir>`` turns the artifact bundle into one
``trace.chrome.json`` — a plain JSON array in the Chrome trace-event
format, loadable in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``:

* **tasks** (pid 1) — one async track per task (``b``/``e`` events) from
  arrival to settlement, with instant markers invisible at this level
  left to the controller track;
* **network** (pid 2) — one thread lane per link carrying its exclusive
  transmission slices as complete (``X``) events, outage windows as
  ``X`` events in a ``fault`` category, plus counter (``C``) tracks for
  active flows, busy links, and down links;
* **controller** (pid 3) — admission decisions (accept / reject /
  preemption / drop / reallocation) as instant (``i``) events;
* **profile** (pid 4, only when telemetry is supplied) — the span-timer
  *aggregates* laid out as a flame graph: spans are recorded as
  histograms (DESIGN.md §7), so each ``X`` event here is a span's
  **total** wall time with children nested inside their parent, not an
  individual invocation.

Sim-time timelines use microseconds (``ts = sim seconds × 1e6``), the
unit the format specifies.  Export is deterministic: the same timeline
serializes byte-identically.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.export import TelemetrySnapshot
from repro.obs.registry import Histogram
from repro.obs.report import SPAN_PREFIX
from repro.obs.timeline import RunTimeline

PID_TASKS = 1
PID_NET = 2
PID_CONTROLLER = 3
PID_PROFILE = 4

_US = 1e6  # trace-event timestamps are microseconds


def _us(t: float) -> float:
    return round(t * _US, 3)


def _meta(pid: int, tid: int, name: str, what: str = "process_name") -> dict:
    return {"ph": "M", "ts": 0, "pid": pid, "tid": tid, "name": what,
            "args": {"name": name}}


def _instant(time: float, name: str, args: dict[str, Any]) -> dict:
    return {"ph": "i", "ts": _us(time), "pid": PID_CONTROLLER, "tid": 0,
            "s": "t", "name": name, "cat": "decision", "args": args}


def _counter(pid: int, time: float, name: str, value: float,
             series: str) -> dict:
    return {"ph": "C", "ts": _us(time), "pid": pid, "tid": 0,
            "name": name, "args": {series: value}}


def _task_events(tl: RunTimeline) -> list[dict]:
    out: list[dict] = []
    for tid in sorted(tl.tasks):
        task = tl.tasks[tid]
        start = task.arrival if task.arrival is not None else 0.0
        end = task.settled_at
        if end is None:
            end = tl.end_time
        name = f"task {tid}"
        common = {"cat": "task", "id": tid, "pid": PID_TASKS, "tid": 0,
                  "name": name}
        out.append({**common, "ph": "b", "ts": _us(start),
                    "args": {"deadline": task.deadline,
                             "flows": task.num_flows,
                             "bytes": task.total_bytes,
                             "outcome": task.outcome}})
        out.append({**common, "ph": "e", "ts": _us(max(end, start)),
                    "args": {}})
        # decision markers live on the controller track
        if task.decision == "accepted":
            out.append(_instant(task.decision_time, f"accept task {tid}",
                                {"victims": list(task.victims),
                                 "trials": len(task.trials)}))
        elif task.decision == "rejected":
            out.append(_instant(task.decision_time, f"reject task {tid}",
                                {"reason": task.reject_reason,
                                 "clause": task.reject_clause}))
        if task.preempted_by is not None:
            out.append(_instant(task.preempted_at, f"preempt task {tid}",
                                {"by": task.preempted_by,
                                 "killed_flows": list(task.killed_flows)}))
        if task.dropped_cause is not None:
            out.append(_instant(task.dropped_at, f"drop task {tid}",
                                {"cause": task.dropped_cause}))
    for snap in tl.plan_snapshots:
        if snap.kind == "fault-reallocation":
            out.append(_instant(snap.time, "fault reallocation",
                                {"plans": len(snap.plans)}))
    return out


def _net_events(tl: RunTimeline) -> list[dict]:
    out: list[dict] = []
    deltas: dict[str, list[tuple[float, int]]] = {
        "active flows": [], "busy links": [], "down links": [],
    }
    for fid in sorted(tl.flows):
        for sl in tl.flows[fid].slices:
            end = sl.end if sl.end is not None else tl.end_time
            deltas["active flows"].append((sl.start, 1))
            deltas["active flows"].append((end, -1))
    for link in sorted(tl.links):
        entry = tl.links[link]
        for iv in entry.busy:
            end = iv.end if iv.end is not None else tl.end_time
            out.append({"ph": "X", "ts": _us(iv.start),
                        "dur": _us(max(0.0, end - iv.start)),
                        "pid": PID_NET, "tid": link, "cat": "slice",
                        "name": f"flow {iv.flow_id}",
                        "args": {"task": iv.task_id}})
            deltas["busy links"].append((iv.start, 1))
            deltas["busy links"].append((end, -1))
        for start, end in entry.outages:
            end = end if end is not None else tl.end_time
            out.append({"ph": "X", "ts": _us(start),
                        "dur": _us(max(0.0, end - start)),
                        "pid": PID_NET, "tid": link, "cat": "fault",
                        "cname": "terrible", "name": "outage", "args": {}})
            deltas["down links"].append((start, 1))
            deltas["down links"].append((end, -1))
    for name, series in deltas.items():
        if not series:
            continue
        level = 0
        merged: dict[float, int] = {}
        for t, d in series:
            merged[t] = merged.get(t, 0) + d
        for t in sorted(merged):
            if merged[t] == 0:
                continue  # zero-sum instant (end meets start): no step
            level += merged[t]
            out.append(_counter(PID_NET, t, name, level, "n"))
    return out


def _span_flame(snapshot: TelemetrySnapshot) -> list[dict]:
    """The span-timer aggregates as one flame-graph layout.

    Spans are histograms (no per-invocation timestamps), so each frame
    is a span's *total* wall time; children are packed left-to-right
    inside their parent.  Lexicographic order over ``/``-paths visits
    every parent before its children.
    """
    reg = snapshot.to_registry()
    spans = sorted(
        (h for h in reg.instruments()
         if isinstance(h, Histogram) and h.name.startswith(SPAN_PREFIX)),
        key=lambda h: h.name,
    )
    out: list[dict] = []
    cursor: dict[str, float] = {"": 0.0}  # parent path -> next child offset
    start_of: dict[str, float] = {}
    for h in spans:
        path = h.name[len(SPAN_PREFIX):]
        parent = path.rsplit("/", 1)[0] if "/" in path else ""
        start = cursor.get(parent, 0.0)
        start_of[path] = start
        cursor[parent] = start + h.sum
        cursor[path] = start
        out.append({"ph": "X", "ts": _us(start), "dur": _us(h.sum),
                    "pid": PID_PROFILE, "tid": 0, "cat": "span-aggregate",
                    "name": path.rsplit("/", 1)[-1],
                    "args": {"path": path, "calls": h.count,
                             "mean_s": h.mean, "total_s": h.sum}})
    return out


def chrome_events(
    tl: RunTimeline, telemetry: TelemetrySnapshot | None = None
) -> list[dict]:
    """The timeline (and optional telemetry spans) as trace-event dicts."""
    out: list[dict] = [
        _meta(PID_TASKS, 0, "tasks"),
        _meta(PID_NET, 0, "network"),
        _meta(PID_CONTROLLER, 0, "controller"),
        _meta(PID_CONTROLLER, 0, "admission decisions", "thread_name"),
    ]
    for link in sorted(tl.links):
        out.append(_meta(PID_NET, link, f"link {link}", "thread_name"))
    body = _task_events(tl) + _net_events(tl)
    if telemetry is not None:
        out.append(_meta(PID_PROFILE, 0, "controller wall-time profile"))
        body += _span_flame(telemetry)
    body.sort(key=lambda e: (e["ts"], e["pid"], e["tid"]))
    return out + body


def dumps_chrome(
    tl: RunTimeline, telemetry: TelemetrySnapshot | None = None
) -> str:
    """The trace-event array as a compact JSON string."""
    return json.dumps(chrome_events(tl, telemetry), separators=(",", ":"))


def write_chrome_trace(
    path: str | Path,
    tl: RunTimeline,
    telemetry: TelemetrySnapshot | None = None,
) -> Path:
    """Write the Chrome trace-event JSON to ``path``; returns the path."""
    out = Path(path)
    out.write_text(dumps_chrome(tl, telemetry))
    return out
