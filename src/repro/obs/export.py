"""Telemetry export: versioned JSONL snapshots and Prometheus text format.

Two artifacts, written next to a run's trace output:

* ``telemetry.jsonl`` — the source of truth.  One header object
  (``telemetry-header`` with :data:`TELEMETRY_SCHEMA_VERSION` and the run
  meta) followed by one object per instrument, stably ordered by
  ``(name, labels)``.  :func:`load_jsonl` reads it back with **strict**
  validation (exact field sets, types, bucket-layout consistency) and
  raises :class:`TelemetryError` on any deviation — ``repro-taps stats``
  turns that into a non-zero exit, so a schema drift can never render as
  a half-plausible report.
* ``telemetry.prom`` — the same snapshot in Prometheus text exposition
  format (counters as ``_total``, histograms as cumulative
  ``_bucket{le=…}`` + ``_sum``/``_count``, gauges with a ``_max``
  companion), for scraping or pasting into promtool.  Export-only; the
  stats CLI never reads it.

Serialization is deterministic: equal registries produce byte-identical
files (the round-trip tests assert export → load → merge-into-empty →
export equality).
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Iterable

from repro.obs.registry import MetricsRegistry

TELEMETRY_SCHEMA_VERSION = 1
"""Version of the telemetry JSONL schema.

Bump on any change to the header shape, instrument kinds, their field
sets, or the default histogram bucket layout's *meaning*.  Checked on
load; ``repro-taps stats`` refuses mismatched files.
"""


class TelemetryError(ValueError):
    """A telemetry artifact violated the schema."""


# -- JSONL ---------------------------------------------------------------------

#: exact field sets per instrument kind (validation is closed-world:
#: unknown or missing fields are schema violations, not extensions)
_FIELDS = {
    "counter": {"kind", "name", "labels", "value"},
    "gauge": {"kind", "name", "labels", "value", "max"},
    "histogram": {"kind", "name", "labels", "lo", "growth", "buckets",
                  "counts", "sum", "count", "min", "max"},
}


def header(registry: MetricsRegistry) -> dict[str, Any]:
    return {
        "kind": "telemetry-header",
        "schema": TELEMETRY_SCHEMA_VERSION,
        "meta": dict(sorted(registry.meta.items())),
    }


def dumps_jsonl(registry: MetricsRegistry) -> str:
    """The registry as a JSONL string (header + one line per instrument)."""
    lines = [json.dumps(header(registry), separators=(",", ":"), sort_keys=True)]
    lines.extend(
        json.dumps(snap, separators=(",", ":"), sort_keys=True)
        for snap in registry.snapshot()
    )
    return "\n".join(lines) + "\n"


def write_jsonl(registry: MetricsRegistry, path: str | Path) -> Path:
    out = Path(path)
    out.write_text(dumps_jsonl(registry))
    return out


def _fail(msg: str) -> None:
    raise TelemetryError(msg)


def _validate_instrument(item: Any, lineno: int) -> dict:
    if not isinstance(item, dict):
        _fail(f"line {lineno}: instrument must be an object")
    kind = item.get("kind")
    want = _FIELDS.get(kind)
    if want is None:
        _fail(f"line {lineno}: unknown instrument kind {kind!r}")
    if set(item) != want:
        _fail(f"line {lineno}: field mismatch for {kind}: "
              f"{sorted(set(item) ^ want)}")
    if not isinstance(item["name"], str) or not item["name"]:
        _fail(f"line {lineno}: name must be a non-empty string")
    labels = item["labels"]
    if not isinstance(labels, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in labels.items()
    ):
        _fail(f"line {lineno}: labels must be a str→str object")
    numeric = (int, float)
    if kind == "counter":
        if isinstance(item["value"], bool) or not isinstance(item["value"], numeric):
            _fail(f"line {lineno}: counter value must be a number")
    elif kind == "gauge":
        for k in ("value", "max"):
            if isinstance(item[k], bool) or not isinstance(item[k], numeric):
                _fail(f"line {lineno}: gauge {k} must be a number")
    else:  # histogram
        for k in ("lo", "growth", "sum", "min", "max"):
            if isinstance(item[k], bool) or not isinstance(item[k], numeric):
                _fail(f"line {lineno}: histogram {k} must be a number")
        for k in ("buckets", "count"):
            if isinstance(item[k], bool) or not isinstance(item[k], int):
                _fail(f"line {lineno}: histogram {k} must be an int")
        counts = item["counts"]
        if (
            not isinstance(counts, list)
            or len(counts) != item["buckets"] + 2
            or not all(isinstance(c, int) and not isinstance(c, bool)
                       and c >= 0 for c in counts)
        ):
            _fail(f"line {lineno}: histogram counts must be "
                  f"{item['buckets'] + 2} non-negative ints")
        if sum(counts) != item["count"]:
            _fail(f"line {lineno}: histogram counts sum to {sum(counts)}, "
                  f"count says {item['count']}")
    return item


class TelemetrySnapshot:
    """A validated telemetry export, read back from JSONL."""

    __slots__ = ("schema", "meta", "instruments")

    def __init__(self, schema: int, meta: dict, instruments: list[dict]):
        self.schema = schema
        self.meta = meta
        self.instruments = instruments

    def find(self, name: str) -> list[dict]:
        """Instrument snapshots with this name (one per label set)."""
        return [i for i in self.instruments if i["name"] == name]

    def get(self, name: str) -> dict | None:
        """The single unlabelled instrument of this name, or ``None``."""
        for i in self.instruments:
            if i["name"] == name and not i["labels"]:
                return i
        return None

    def to_registry(self) -> MetricsRegistry:
        """Rebuild a live registry (quantiles etc.) from the snapshot."""
        reg = MetricsRegistry(meta=dict(self.meta))
        reg.merge_snapshot(self.instruments)
        return reg


def load_jsonl(source: str | Path | Iterable[str]) -> TelemetrySnapshot:
    """Parse and strictly validate a telemetry JSONL export.

    Raises :class:`TelemetryError` on a missing/foreign header, a schema
    version mismatch, or any malformed instrument line.
    """
    if isinstance(source, (str, Path)):
        lines: Iterable[str] = Path(source).read_text().splitlines()
    else:
        lines = source
    it = iter(lines)
    try:
        first = next(it)
    except StopIteration:
        _fail("empty telemetry file: no header line")
    try:
        head = json.loads(first)
    except json.JSONDecodeError as exc:
        raise TelemetryError(f"header is not JSON: {exc}") from None
    if not isinstance(head, dict) or head.get("kind") != "telemetry-header":
        _fail("not a telemetry file: first line is not a telemetry-header")
    if set(head) != {"kind", "schema", "meta"}:
        _fail(f"header field mismatch: "
              f"{sorted(set(head) ^ {'kind', 'schema', 'meta'})}")
    if head["schema"] != TELEMETRY_SCHEMA_VERSION:
        _fail(f"unsupported telemetry schema {head['schema']!r} "
              f"(this build reads schema {TELEMETRY_SCHEMA_VERSION})")
    if not isinstance(head["meta"], dict):
        _fail("header meta must be an object")
    instruments = []
    for lineno, line in enumerate(it, start=2):
        if not line.strip():
            continue
        try:
            item = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TelemetryError(f"line {lineno}: not JSON: {exc}") from None
        instruments.append(_validate_instrument(item, lineno))
    return TelemetrySnapshot(head["schema"], head["meta"], instruments)


# -- Prometheus text exposition ------------------------------------------------

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_]")
_PROM_PREFIX = "taps_"

#: help text for the instrument names published in DESIGN.md §7; names
#: not listed fall back to a pointer at the contract table
_HELP_TEXT = {
    "controller/admission_latency_seconds":
        "Wall time of one admission decision (Alg. 1 pipeline).",
    "controller/tasks_accepted": "Tasks admitted by the controller.",
    "controller/tasks_rejected": "Tasks refused by the reject rule.",
    "controller/tasks_preempted":
        "Victim tasks discarded by admissions (discard-victim).",
    "controller/reallocations": "Global re-plan rounds executed.",
    "alloc/trials_rolled_back":
        "Trial allocations rolled back for a discard-victim retry.",
    "alloc/union_cache_hits": "Occupancy union cache hits.",
    "alloc/union_cache_misses": "Occupancy union cache misses.",
    "alloc/candidates_evaluated": "Candidate path slots evaluated.",
    "alloc/candidates_pruned": "Candidate path slots pruned unevaluated.",
    "net/link_utilization":
        "Per-link utilization over the run (busy time / makespan).",
    "net/link_peak_utilization":
        "Per-link peak instantaneous utilization.",
}


def prom_name(name: str) -> str:
    """``controller/admission_latency_seconds`` → ``taps_controller_…``."""
    return _PROM_PREFIX + _NAME_SANITIZE.sub("_", name)


def _help_line(series: str, name: str, suffix_note: str = "") -> str:
    """A ``# HELP`` line per the exposition format: the text has ``\\``
    escaped as ``\\\\`` and newlines as ``\\n`` (quotes stay verbatim)."""
    text = _HELP_TEXT.get(
        name,
        f"Instrument {name} (see DESIGN.md section 7)."
    ) + suffix_note
    text = text.replace("\\", r"\\").replace("\n", r"\n")
    return f"# HELP {series} {text}"


def _prom_labels(labels: dict[str, str], extra: str = "") -> str:
    parts = [
        f'{k}="' + v.replace("\\", r"\\").replace('"', r"\"")
        .replace("\n", r"\n") + '"'
        for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt(v: float) -> str:
    if v == float("inf"):
        return "+Inf"
    if v == float("-inf"):
        return "-Inf"
    return repr(v) if isinstance(v, float) else str(v)


def dumps_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (0.0.4)."""
    by_name: dict[str, list[dict]] = {}
    for snap in registry.snapshot():
        by_name.setdefault(snap["name"], []).append(snap)
    out: list[str] = []
    for name in sorted(by_name):
        series = by_name[name]
        kind = series[0]["kind"]
        base = prom_name(name)
        if kind == "counter":
            out.append(_help_line(f"{base}_total", name))
            out.append(f"# TYPE {base}_total counter")
            for s in series:
                out.append(f"{base}_total{_prom_labels(s['labels'])} "
                           f"{_fmt(s['value'])}")
        elif kind == "gauge":
            out.append(_help_line(base, name))
            out.append(f"# TYPE {base} gauge")
            for s in series:
                out.append(f"{base}{_prom_labels(s['labels'])} {_fmt(s['value'])}")
            out.append(_help_line(f"{base}_max", name,
                                  " (peak observed value)"))
            out.append(f"# TYPE {base}_max gauge")
            for s in series:
                out.append(f"{base}_max{_prom_labels(s['labels'])} "
                           f"{_fmt(s['max'])}")
        else:  # histogram
            out.append(_help_line(base, name))
            out.append(f"# TYPE {base} histogram")
            for s in series:
                edges = [s["lo"] * s["growth"] ** i
                         for i in range(s["buckets"] + 1)]
                cum = 0
                for edge, c in zip(edges, s["counts"]):
                    cum += c
                    le = 'le="' + _fmt(edge) + '"'
                    out.append(
                        f"{base}_bucket{_prom_labels(s['labels'], le)} {cum}"
                    )
                le_inf = 'le="+Inf"'
                out.append(
                    f"{base}_bucket{_prom_labels(s['labels'], le_inf)} "
                    f"{s['count']}"
                )
                out.append(f"{base}_sum{_prom_labels(s['labels'])} "
                           f"{_fmt(s['sum'])}")
                out.append(f"{base}_count{_prom_labels(s['labels'])} "
                           f"{s['count']}")
    return "\n".join(out) + "\n"


def write_prometheus(registry: MetricsRegistry, path: str | Path) -> Path:
    out = Path(path)
    out.write_text(dumps_prometheus(registry))
    return out
