"""Runtime telemetry: metrics registry, span timers, exporters, reports.

See DESIGN.md §7 for the schema, the instrument naming convention, and
the telemetry-vs-trace boundary.  The short version: telemetry measures
*how long and how much* (histograms, counters, gauges — mergeable across
sweep workers), the decision trace records *what was decided*, and
nothing in this package is ever consulted by scheduling code.
"""

from repro.obs.export import (
    TELEMETRY_SCHEMA_VERSION,
    TelemetryError,
    TelemetrySnapshot,
    dumps_jsonl,
    dumps_prometheus,
    load_jsonl,
    write_jsonl,
    write_prometheus,
)
from repro.obs.hotpath import HotPathCounters
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.report import render_stats
from repro.obs.spans import SpanTimers

__all__ = [
    "TELEMETRY_SCHEMA_VERSION",
    "TelemetryError",
    "TelemetrySnapshot",
    "Counter",
    "Gauge",
    "Histogram",
    "HotPathCounters",
    "MetricsRegistry",
    "SpanTimers",
    "dumps_jsonl",
    "dumps_prometheus",
    "load_jsonl",
    "render_stats",
    "write_jsonl",
    "write_prometheus",
]
