"""Runtime telemetry: metrics registry, span timers, exporters, reports.

See DESIGN.md §7 for the schema, the instrument naming convention, and
the telemetry-vs-trace boundary.  The short version: telemetry measures
*how long and how much* (histograms, counters, gauges — mergeable across
sweep workers), the decision trace records *what was decided*, and
nothing in this package is ever consulted by scheduling code.

On top of the raw artifacts sits the diagnosis layer (all offline,
trace-in / report-out): :mod:`repro.obs.timeline` pivots a decision
trace into per-task / per-flow / per-link timelines,
:mod:`repro.obs.chrometrace` exports them as Perfetto-viewable Chrome
trace-event JSON, :mod:`repro.obs.explain` renders reject/preempt/drop
verdicts, and :mod:`repro.obs.diffing` compares two runs' artifact
bundles with regression detection.
"""

from repro.obs.chrometrace import (
    chrome_events,
    dumps_chrome,
    write_chrome_trace,
)
from repro.obs.diffing import (
    DIFF_SCHEMA_VERSION,
    Bundle,
    DiffError,
    DiffReport,
    MetricDelta,
    append_history,
    diff_bundles,
    diff_paths,
    latest_history,
    load_bundle,
)
from repro.obs.explain import TaskVerdict, derive_clause, explain_run, explain_task
from repro.obs.export import (
    TELEMETRY_SCHEMA_VERSION,
    TelemetryError,
    TelemetrySnapshot,
    dumps_jsonl,
    dumps_prometheus,
    load_jsonl,
    write_jsonl,
    write_prometheus,
)
from repro.obs.hotpath import HotPathCounters
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.report import render_stats, stats_json
from repro.obs.spans import SpanTimers
from repro.obs.timeline import (
    RunTimeline,
    TaskTimeline,
    build_timeline,
    timeline_from,
)

__all__ = [
    "DIFF_SCHEMA_VERSION",
    "TELEMETRY_SCHEMA_VERSION",
    "Bundle",
    "Counter",
    "DiffError",
    "DiffReport",
    "Gauge",
    "Histogram",
    "HotPathCounters",
    "MetricDelta",
    "MetricsRegistry",
    "RunTimeline",
    "SpanTimers",
    "TaskTimeline",
    "TaskVerdict",
    "TelemetryError",
    "TelemetrySnapshot",
    "append_history",
    "build_timeline",
    "chrome_events",
    "derive_clause",
    "diff_bundles",
    "diff_paths",
    "dumps_chrome",
    "dumps_jsonl",
    "dumps_prometheus",
    "explain_run",
    "explain_task",
    "latest_history",
    "load_bundle",
    "load_jsonl",
    "render_stats",
    "stats_json",
    "timeline_from",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
]
