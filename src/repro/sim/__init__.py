"""Event-driven fluid (flow-level) network simulator.

The paper evaluates every scheduler with "flow-level simulations" (§V): no
packets, no queues — each flow has a size and progresses at a rate set by
the scheduling policy; the engine advances time from event to event
(task arrivals, flow completions, deadline expiries, scheduler-initiated
rate changes) integrating progress in between.

The engine is policy-agnostic: schedulers implement
:class:`repro.sched.base.Scheduler` and own all admission/rate decisions.
"""

from repro.sim.state import FlowState, FlowStatus, TaskState, TaskOutcome
from repro.sim.engine import Engine, SimulationResult
from repro.sim.faults import FaultSchedule, LinkFault
from repro.sim.packet import PacketSimulator

__all__ = [
    "Engine",
    "SimulationResult",
    "FlowState",
    "FlowStatus",
    "TaskState",
    "TaskOutcome",
    "FaultSchedule",
    "LinkFault",
    "PacketSimulator",
]
