"""The fluid simulation engine.

Time advances from event to event; between events every flow's rate is
constant, so progress integrates exactly.  Event kinds:

* **task arrival** — the scheduler admits/rejects and (re)allocates;
* **flow completion** — earliest ``remaining / rate`` among active flows;
* **deadline expiry** — the scheduler reacts (quit, kill, or ignore);
* **scheduler change point** — e.g. a TAPS time-slice boundary.

The engine never decides policy: admission, routing, rates, and reactions
to deadline misses all live in the attached
:class:`~repro.sched.base.Scheduler`.

Performance: rates are recomputed only when the allocation is *dirty*
(arrival / completion / kill / scheduler change point), so long quiet
stretches cost one ``min`` scan each, per the HPC guide's "recompute only
what changed".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields

from repro.net.paths import PathService
from repro.net.topology import Topology
from repro.sim.state import FlowState, FlowStatus, TaskState, TaskOutcome
from repro.trace.events import (
    DeadlineExpired,
    FlowCompleted,
    LinkStateChange,
    RunEnd,
    SliceEnd,
    SliceStart,
    TaskArrival,
)
from repro.trace.recorder import TraceRecorder
from repro.util.errors import SimulationError
from repro.util.intervals import EPS
from repro.workload.flow import Task

BYTES_REL_EPS = 1e-5
"""A flow is complete when its residue drops below this fraction of its
size.  The residue comes from two sources: float rounding in ``rate * dt``
integration (~1e-16 relative) and the ±EPS slice-edge probing of the TAPS
sender model (≤ a few bytes on a 200 KB flow, ~1e-5 relative)."""

BYTES_ABS_EPS = 1e-9
"""Absolute floor of the completion tolerance, for unit-sized toy flows."""


def _done(remaining: float, size: float) -> bool:
    return remaining <= max(BYTES_ABS_EPS, BYTES_REL_EPS * size)


@dataclass(slots=True)
class EngineCounters:
    """Work counters for benchmarking the simulation itself."""

    events: int = 0
    arrivals: int = 0
    completions: int = 0
    deadline_events: int = 0
    rate_recomputes: int = 0
    stalled_kills: int = 0
    deadline_scan_skips: int = 0
    """Events where the per-flow deadline-expiry scan was skipped because
    ``now`` had not reached the min-deadline watermark — proof the
    watermark short-circuit is actually firing."""


@dataclass(slots=True)
class SimulationResult:
    """Everything a run produced, for the metrics layer to digest."""

    scheduler_name: str
    topology_name: str
    flow_states: list[FlowState]
    task_states: list[TaskState]
    finished_at: float
    counters: EngineCounters = field(default_factory=EngineCounters)

    @property
    def tasks_completed(self) -> int:
        return sum(1 for ts in self.task_states if ts.outcome is TaskOutcome.COMPLETED)

    @property
    def flows_met(self) -> int:
        return sum(1 for fs in self.flow_states if fs.met_deadline)


class Engine:
    """Runs one workload under one scheduler on one topology.

    Parameters
    ----------
    topology:
        The network; paths come from ``path_service`` (constructed with
        defaults when omitted).
    tasks:
        Workload; any order (sorted internally by arrival, then id).
    scheduler:
        A :class:`~repro.sched.base.Scheduler`; :meth:`run` attaches it.
    path_service:
        Shared path cache; pass one when sweeping many runs on a topology.
    hooks:
        Objects with optional ``on_advance(t0, t1, flows)``,
        ``on_flow_settled(fs, now)``, ``on_task_settled(ts, now)``
        callbacks (see :mod:`repro.metrics.timeseries`).
    max_events:
        Safety valve against runaway loops; ``SimulationError`` when hit.
    horizon:
        Optional hard stop (seconds): at this time every still-active
        flow is terminated and the run settles.  Useful for fixed-window
        measurements of deadline-oblivious policies whose doomed flows
        would otherwise run long past every deadline.
    trace:
        Optional :class:`~repro.trace.recorder.TraceRecorder`.  The
        engine emits the physical timeline (arrivals, slice
        transitions after down-link zeroing, completions, deadline
        expiries, link-state changes, run end) into it, and — when the
        scheduler supports tracing but was built without a recorder —
        hands the same recorder to the scheduler before ``attach`` so
        controller decisions and engine facts interleave in one stream.
    telemetry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`.  The
        engine opens a ``run`` span over the whole simulation with
        ``arrival``/``rates`` phase spans nested inside (scheduler spans
        nest further, e.g. ``span/run/arrival/admission``), tracks the
        ``engine/active_flows`` gauge, auto-attaches a
        :class:`~repro.metrics.linkload.LinkLoadCollector` hook (reusing
        a caller-supplied one), and at end of run publishes its work
        counters, per-link ``net/link_utilization`` /
        ``net/link_peak_utilization`` gauges, and the scheduler's own
        telemetry (via ``publish_telemetry``, when the scheduler has
        one).  Like ``trace``, the registry is handed to a
        telemetry-capable scheduler before ``attach``.  Telemetry never
        feeds back into decisions, so traces stay byte-identical with it
        on or off.
    """

    def __init__(
        self,
        topology: Topology,
        tasks: list[Task],
        scheduler,
        path_service: PathService | None = None,
        hooks: tuple = (),
        max_events: int = 10_000_000,
        faults=None,
        horizon: float | None = None,
        trace: TraceRecorder | None = None,
        telemetry=None,
    ) -> None:
        from repro.sim.faults import FaultSchedule

        self.topology = topology
        self.path_service = path_service or PathService(topology)
        self.scheduler = scheduler
        self.hooks = hooks
        self.max_events = max_events
        if horizon is not None and horizon <= 0:
            raise SimulationError("horizon must be positive")
        self.horizon = horizon
        if faults is None:
            self.faults = FaultSchedule([])
        elif isinstance(faults, FaultSchedule):
            self.faults = faults
        else:
            self.faults = FaultSchedule(list(faults))

        self._arrivals: list[TaskState] = []
        self.flow_states: list[FlowState] = []
        self.task_states: list[TaskState] = []
        for task in sorted(tasks, key=lambda t: (t.arrival, t.task_id)):
            ts = TaskState(task=task)
            ts.flow_states = [FlowState(flow=f) for f in task.flows]
            self._arrivals.append(ts)
            self.task_states.append(ts)
            self.flow_states.extend(ts.flow_states)
        self._task_by_id = {ts.task.task_id: ts for ts in self.task_states}
        self.counters = EngineCounters()
        self.trace = trace
        self.telemetry = telemetry
        self._tel_linkload = None
        if telemetry is not None and getattr(telemetry, "enabled", True):
            # lazy import: repro.metrics.summary imports this module back
            from repro.metrics.linkload import LinkLoadCollector

            for hook in self.hooks:
                if isinstance(hook, LinkLoadCollector):
                    self._tel_linkload = hook
                    break
            else:
                self._tel_linkload = LinkLoadCollector(topology)
                self.hooks = (*self.hooks, self._tel_linkload)
        # flow_id -> (path, task_id) of flows physically transmitting now;
        # diffed against the post-recompute picture to emit slice events
        self._transmitting: dict[int, tuple[tuple[int, ...], int]] = {}

    # -- main loop -----------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the simulation to quiescence and return the result.

        Single-shot: flow/task states are consumed by the run, so a second
        ``run()`` on the same engine raises — build a fresh Engine (state
        construction is cheap; workloads are immutable and reusable).
        """
        if getattr(self, "_ran", False):
            raise SimulationError(
                "Engine.run() is single-shot; construct a new Engine to replay"
            )
        self._ran = True
        sched = self.scheduler
        trace = self.trace
        if trace is not None and getattr(sched, "trace", False) is None:
            # the scheduler supports tracing but has no recorder: share ours
            # (must happen before attach — that's where meta is stamped)
            sched.trace = trace
        tel = self.telemetry
        if tel is not None and getattr(sched, "telemetry", False) is None:
            # same handoff for telemetry: a telemetry-capable scheduler
            # built without a registry records into ours
            sched.telemetry = tel
        sched.attach(self.topology, self.path_service)
        run_span = None
        if tel is not None:
            tel.set_meta(
                topology=self.topology.name,
                num_tasks=len(self.task_states),
            )
            active_gauge = tel.gauge("engine/active_flows")
            run_span = tel.spans.span("run")
            run_span.__enter__()

        now = 0.0
        next_arrival_idx = 0
        active: list[FlowState] = []
        unsettled_tasks: set[int] = set()
        dirty = True
        down_links: set[int] = set()
        # Lower bound on the earliest deadline of any active, not-yet-
        # notified flow.  Kills may leave it stale-low (costing one wasted
        # scan, never a missed expiry); each scan re-tightens it.
        next_deadline = math.inf

        while True:
            self.counters.events += 1
            if self.counters.events > self.max_events:
                raise SimulationError(
                    f"exceeded max_events={self.max_events} at t={now:g}"
                )

            # hard horizon: terminate everything still running
            if self.horizon is not None and now >= self.horizon - EPS:
                for fs in active:
                    fs.kill(FlowStatus.TERMINATED)
                active.clear()
                self._settle_tasks(unsettled_tasks, now)
                break

            # 1. deliver arrivals due now
            while (
                next_arrival_idx < len(self._arrivals)
                and self._arrivals[next_arrival_idx].task.arrival <= now + EPS
            ):
                ts = self._arrivals[next_arrival_idx]
                next_arrival_idx += 1
                self.counters.arrivals += 1
                if trace is not None:
                    trace.emit(TaskArrival(
                        now,
                        task_id=ts.task.task_id,
                        deadline=ts.task.deadline,
                        num_flows=len(ts.task.flows),
                        total_bytes=ts.task.total_size,
                    ))
                if tel is None:
                    sched.on_task_arrival(ts, now)
                else:
                    with tel.spans.span("arrival"):
                        sched.on_task_arrival(ts, now)
                unsettled_tasks.add(ts.task.task_id)
                for fs in ts.flow_states:
                    if fs.active:
                        active.append(fs)
                        if fs.flow.deadline < next_deadline:
                            next_deadline = fs.flow.deadline
                dirty = True

            # 2. deadline expiries due now (notify each flow once)
            # (hot loops test FlowStatus directly — `fs.active` is a
            # property call, measurable at millions of events × flows)
            # The whole scan is skipped while `now` is before the earliest
            # unexpired deadline; most events in a healthy run never pay it.
            if now + EPS >= next_deadline:
                nd = math.inf
                for fs in active:
                    if fs.status is not FlowStatus.PENDING or fs.deadline_notified:
                        continue
                    if fs.flow.deadline <= now + EPS:
                        if not _done(fs.remaining, fs.flow.size):
                            fs.deadline_notified = True
                            self.counters.deadline_events += 1
                            if trace is not None:
                                trace.emit(DeadlineExpired(
                                    now, flow_id=fs.flow.flow_id,
                                    task_id=fs.flow.task_id,
                                ))
                            sched.on_deadline_expired(fs, now)
                            if fs.status is not FlowStatus.PENDING:
                                dirty = True
                        # else: already (numerically) complete — it settles
                        # as a completion this same event, never an expiry
                    elif fs.flow.deadline < nd:
                        nd = fs.flow.deadline
                next_deadline = nd
            else:
                self.counters.deadline_scan_skips += 1

            active = [fs for fs in active if fs.status is FlowStatus.PENDING]

            # 2b. fault transitions: notify the scheduler, then physically
            # stop transmission across down links below
            if self.faults:
                current_down = self.faults.down_links(now)
                if current_down != down_links:
                    down_links = current_down
                    if trace is not None:
                        trace.emit(LinkStateChange(
                            now, down_links=tuple(sorted(down_links))
                        ))
                    on_change = getattr(sched, "on_link_state_change", None)
                    if on_change is not None:
                        on_change(frozenset(down_links), now)
                    dirty = True

            # 3. (re)compute rates
            if dirty:
                self.counters.rate_recomputes += 1
                if tel is None:
                    sched.assign_rates(now)
                else:
                    with tel.spans.span("rates"):
                        sched.assign_rates(now)
                # physics: a down link carries nothing, whatever was asked
                if down_links:
                    for fs in active:
                        if fs.rate > 0 and fs.path is not None and any(
                            l in down_links for l in fs.path
                        ):
                            fs.rate = 0.0
                dirty = False
                if trace is not None:
                    self._sync_slices(active, now)
            if tel is not None:
                active_gauge.set(len(active))

            # 4. choose the next event time
            t_next = math.inf
            if self.faults:
                fb = self.faults.next_boundary(now)
                if fb is not None:
                    t_next = fb
            if next_arrival_idx < len(self._arrivals):
                t_next = min(t_next, self._arrivals[next_arrival_idx].task.arrival)
            for fs in active:
                if fs.rate > 0:
                    t_next = min(t_next, now + fs.remaining / fs.rate)
                if fs.flow.deadline > now + EPS:
                    t_next = min(t_next, fs.flow.deadline)
            t_sched = sched.next_change(now)
            if t_sched is not None and t_sched > now + EPS:
                t_next = min(t_next, t_sched)
            if self.horizon is not None:
                t_next = min(t_next, self.horizon)

            if not math.isfinite(t_next):
                # Nothing will ever happen again.  Any still-active flow is
                # stalled (rate 0 forever): kill it so the run terminates.
                for fs in active:
                    fs.kill(FlowStatus.TERMINATED)
                    self.counters.stalled_kills += 1
                active.clear()
                self._settle_tasks(unsettled_tasks, now)
                break

            # guard against zero-length steps looping forever
            t_next = max(t_next, now)

            # 5. integrate progress over [now, t_next)
            dt = t_next - now
            if dt > 0:
                for fs in active:
                    fs.advance(dt)
                for hook in self.hooks:
                    on_advance = getattr(hook, "on_advance", None)
                    if on_advance is not None:
                        on_advance(now, t_next, active)
            prev_now = now
            now = t_next
            if now <= prev_now and dt == 0 and not dirty:
                # A scheduler change point at 'now' that changed nothing;
                # treat the allocation as dirty to force progress next turn.
                dirty = True

            # 6. settle completions
            still_active: list[FlowState] = []
            for fs in active:
                if fs.status is not FlowStatus.PENDING:
                    dirty = True  # killed by a callback during this step
                elif _done(fs.remaining, fs.flow.size):
                    fs.finish(now)
                    self.counters.completions += 1
                    if trace is not None:
                        trace.emit(FlowCompleted(
                            now,
                            flow_id=fs.flow.flow_id,
                            task_id=fs.flow.task_id,
                            met_deadline=fs.met_deadline,
                        ))
                    sched.on_flow_completed(fs, now)
                    for hook in self.hooks:
                        cb = getattr(hook, "on_flow_settled", None)
                        if cb is not None:
                            cb(fs, now)
                    dirty = True
                else:
                    still_active.append(fs)
            active = still_active
            if trace is not None:
                # completed/killed flows stop transmitting at this instant
                self._sync_slices(active, now)

            # mark a scheduler change point as needing a rate refresh
            if t_sched is not None and abs(now - t_sched) <= EPS:
                dirty = True

            self._settle_tasks(unsettled_tasks, now)

        if trace is not None:
            self._flush_slices(now)
            trace.emit(RunEnd(now))
        if run_span is not None:
            run_span.__exit__(None, None, None)
        if tel is not None:
            self._publish_telemetry(tel, now)
        result = SimulationResult(
            scheduler_name=getattr(sched, "name", type(sched).__name__),
            topology_name=self.topology.name,
            flow_states=self.flow_states,
            task_states=self.task_states,
            finished_at=now,
            counters=self.counters,
        )
        return result

    # -- helpers -----------------------------------------------------------

    def _publish_telemetry(self, tel, now: float) -> None:
        """End-of-run publication: engine work counters, the scheduler's
        own counters, and per-link utilization gauges."""
        for f in fields(EngineCounters):
            tel.counter("engine/" + f.name).inc(getattr(self.counters, f.name))
        publish = getattr(self.scheduler, "publish_telemetry", None)
        if publish is not None:
            publish()
        collector = self._tel_linkload
        if collector is None:
            return
        collector.finalize(self.flow_states)
        links = self.topology.links

        def labels(l: int) -> dict[str, str]:
            return {"link": str(l), "src": links[l].src, "dst": links[l].dst}

        if now > 0:
            for load in collector.utilization(now):
                tel.gauge(
                    "net/link_utilization", labels(load.link_index)
                ).set(load.utilization)
        for l, frac in sorted(collector.peak_utilization().items()):
            tel.gauge("net/link_peak_utilization", labels(l)).set(frac)

    def _sync_slices(self, active: list[FlowState], now: float) -> None:
        """Diff the physically-transmitting set against the last picture and
        emit slice events (ends before starts; a path change is both).

        Called after every rate recompute (post down-link zeroing — the
        trace records what the network actually carried) and after
        completions, so a flow's slice closes at the instant it stopped.
        """
        current: dict[int, tuple[tuple[int, ...], int]] = {}
        for fs in active:
            if fs.rate > 0 and fs.path is not None:
                current[fs.flow.flow_id] = (tuple(fs.path), fs.flow.task_id)
        prev = self._transmitting
        if current == prev:
            return
        trace = self.trace
        ended = [f for f, v in prev.items() if current.get(f) != v]
        started = [f for f, v in current.items() if prev.get(f) != v]
        for fid in sorted(ended):
            trace.emit(SliceEnd(now, flow_id=fid, task_id=prev[fid][1]))
        for fid in sorted(started):
            path, tid = current[fid]
            trace.emit(SliceStart(now, flow_id=fid, task_id=tid, path=path))
        self._transmitting = current

    def _flush_slices(self, now: float) -> None:
        """Close every still-open slice at the end of the run."""
        prev = self._transmitting
        for fid in sorted(prev):
            self.trace.emit(SliceEnd(now, flow_id=fid, task_id=prev[fid][1]))
        self._transmitting = {}

    def _settle_tasks(self, unsettled: set[int], now: float) -> None:
        """Finalize tasks whose flows have all reached a terminal status."""
        done: list[int] = []
        for tid in unsettled:
            ts = self._task_by_id[tid]
            if all(not fs.active for fs in ts.flow_states):
                ts.settle()
                done.append(tid)
                for hook in self.hooks:
                    cb = getattr(hook, "on_task_settled", None)
                    if cb is not None:
                        cb(ts, now)
        for tid in done:
            unsettled.discard(tid)
