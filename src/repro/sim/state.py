"""Runtime state of flows and tasks inside the simulator.

:class:`~repro.workload.flow.Flow`/:class:`~repro.workload.flow.Task` are
immutable workload descriptions; the classes here carry everything that
changes during a run — bytes remaining, current rate, lifecycle status —
so one workload can be replayed across all six schedulers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.net.topology import Path
from repro.util.intervals import EPS
from repro.workload.flow import Flow, Task


class FlowStatus(enum.Enum):
    """Lifecycle of a flow inside a run."""

    PENDING = "pending"
    """Arrived and admitted (or not yet decided); not finished."""

    COMPLETED = "completed"
    """All bytes delivered. Whether the deadline was met is a separate check."""

    REJECTED = "rejected"
    """Refused at admission; never transmitted a byte."""

    TERMINATED = "terminated"
    """Killed mid-flight (early termination, quit-on-miss, task preemption)."""


class TaskOutcome(enum.Enum):
    """Final disposition of a task."""

    PENDING = "pending"
    COMPLETED = "completed"  # every flow done by the deadline
    FAILED = "failed"  # at least one flow missed/rejected/terminated


@dataclass(slots=True, eq=False)
class FlowState:
    """Mutable per-flow simulation state.

    Attributes
    ----------
    flow:
        The immutable workload record.
    remaining:
        Bytes left to deliver.
    rate:
        Current sending rate (bytes/s); owned by the scheduler, integrated
        by the engine.
    path:
        Link-index path the flow is (or would be) routed on; set by the
        scheduler at admission.
    status, completed_at, bytes_sent:
        Lifecycle bookkeeping.
    """

    flow: Flow
    remaining: float = field(default=-1.0)
    rate: float = 0.0
    path: Path | None = None
    status: FlowStatus = FlowStatus.PENDING
    completed_at: float | None = None
    bytes_sent: float = 0.0
    deadline_notified: bool = False
    """Engine-internal: the scheduler was told this flow's deadline passed."""

    def __post_init__(self) -> None:
        if self.remaining < 0:
            self.remaining = self.flow.size

    @property
    def active(self) -> bool:
        """Whether the flow can still transmit."""
        return self.status is FlowStatus.PENDING

    @property
    def met_deadline(self) -> bool:
        """Completed at or before its deadline (equality counts as met)."""
        return (
            self.status is FlowStatus.COMPLETED
            and self.completed_at is not None
            and self.completed_at <= self.flow.deadline + EPS
        )

    def advance(self, dt: float) -> None:
        """Integrate ``rate`` over ``dt`` seconds."""
        if dt < 0:
            raise ValueError(f"negative dt {dt}")
        if self.rate > 0 and self.status is FlowStatus.PENDING:
            sent = min(self.rate * dt, self.remaining)
            self.remaining -= sent
            self.bytes_sent += sent

    def finish(self, now: float) -> None:
        """Mark the flow completed at time ``now``."""
        self.status = FlowStatus.COMPLETED
        self.completed_at = now
        self.remaining = 0.0
        self.rate = 0.0

    def kill(self, status: FlowStatus) -> None:
        """Terminate or reject the flow; it stops transmitting for good."""
        if status not in (FlowStatus.TERMINATED, FlowStatus.REJECTED):
            raise ValueError(f"kill() takes TERMINATED/REJECTED, got {status}")
        self.status = status
        self.rate = 0.0


@dataclass(slots=True, eq=False)
class TaskState:
    """Mutable per-task simulation state."""

    task: Task
    flow_states: list[FlowState] = field(default_factory=list)
    outcome: TaskOutcome = TaskOutcome.PENDING
    accepted: bool | None = None
    """Admission decision, if the scheduler makes one (TAPS/Varys)."""

    @property
    def bytes_sent(self) -> float:
        return sum(fs.bytes_sent for fs in self.flow_states)

    @property
    def completion_ratio(self) -> float:
        """Fraction of the task's bytes already delivered.

        This is the "completion ratio" the TAPS reject rule compares when
        choosing a preemption victim (§IV-B reject rule, case 3).
        """
        total = self.task.total_size
        return self.bytes_sent / total if total > 0 else 0.0

    def settle(self) -> TaskOutcome:
        """Derive the final outcome once every flow has settled."""
        if all(fs.met_deadline for fs in self.flow_states):
            self.outcome = TaskOutcome.COMPLETED
        else:
            self.outcome = TaskOutcome.FAILED
        return self.outcome

    @property
    def unfinished_flows(self) -> list[FlowState]:
        return [fs for fs in self.flow_states if fs.active]
