"""Packet-granularity cross-validation of the fluid model.

The reproduction (like the paper's own evaluation) is a *fluid* flow-level
simulation.  Real networks move packets through store-and-forward queues —
so how much does the fluid abstraction distort completion times?  This
module answers that with a deliberately small slotted packet simulator:

* time advances in fixed slots ``dt``; a packet carries
  ``capacity · dt`` bytes and traverses one link per slot
  (store-and-forward, uniform capacity);
* each link serves **one packet per slot** from per-flow FIFO queues,
  selected by deficit-free round-robin (the packet analogue of max-min
  fair sharing) — or strict slice gating for pre-allocated TAPS plans;
* sources inject packets the moment the policy allows.

The validation tests assert that packet-level completion times match the
fluid engine within the pipeline error bound — ``(hops + queueing) · dt``
— on the motivation topologies.  This is a *validation instrument*, not a
performance simulator: O(packets × hops) and proud of it.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.net.topology import Topology
from repro.util.errors import ConfigurationError, SimulationError
from repro.util.intervals import IntervalSet
from repro.workload.flow import Task


@dataclass(slots=True)
class PacketFlowResult:
    """Per-flow outcome of a packet-level run."""

    flow_id: int
    completed_at: float | None
    packets: int


@dataclass(slots=True)
class _PFlow:
    flow_id: int
    path: tuple[int, ...]
    total_packets: int
    release_slot: int
    injected: int = 0
    delivered: int = 0
    done_slot: int | None = None
    slices: IntervalSet | None = None  # TAPS gating, in seconds


class PacketSimulator:
    """Slotted store-and-forward simulator over a topology.

    Parameters
    ----------
    topology:
        Uniform-capacity network.
    dt:
        Slot length in seconds; one packet = ``capacity·dt`` bytes.
        Smaller ``dt`` → finer packets → closer to the fluid limit.
    """

    def __init__(self, topology: Topology, dt: float) -> None:
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        self.topology = topology
        self.capacity = topology.uniform_capacity()
        self.dt = dt
        self.packet_bytes = self.capacity * dt
        self._flows: list[_PFlow] = []
        # per link: per-flow queues in round-robin order
        self._queues: dict[int, dict[int, deque]] = {}
        self._rr: dict[int, deque] = {}

    # -- setup ------------------------------------------------------------------

    def add_flow(
        self,
        flow_id: int,
        path: tuple[int, ...],
        size: float,
        release: float,
        slices: IntervalSet | None = None,
    ) -> None:
        """Register one flow; ``slices`` gates injection (TAPS mode)."""
        packets = max(1, math.ceil(size / self.packet_bytes))
        self._flows.append(
            _PFlow(
                flow_id=flow_id,
                path=path,
                total_packets=packets,
                release_slot=math.ceil(release / self.dt),
                slices=slices,
            )
        )

    def add_tasks(self, tasks: list[Task], paths) -> None:
        """Register every flow of ``tasks`` routed by a path service."""
        for t in tasks:
            for f in t.flows:
                self.add_flow(
                    f.flow_id,
                    paths.ecmp_path(f.flow_id, f.src, f.dst),
                    f.size,
                    f.release,
                )

    # -- run --------------------------------------------------------------------

    def run(self, max_slots: int = 2_000_000) -> dict[int, PacketFlowResult]:
        """Simulate until every flow delivers; per-flow completion times."""
        flows = {f.flow_id: f for f in self._flows}
        pending = set(flows)
        slot = 0
        while pending:
            if slot > max_slots:
                raise SimulationError(f"exceeded {max_slots} slots")
            t = slot * self.dt

            # 1. source injection: one packet per flow per slot, if allowed
            for f in self._flows:
                if (
                    f.done_slot is None
                    and f.injected < f.total_packets
                    and slot >= f.release_slot
                    and (f.slices is None or f.slices.contains(t + 1e-12))
                ):
                    self._enqueue(f.path[0], f.flow_id, 0)
                    f.injected += 1

            # 2. every link forwards one packet (fair round-robin)
            deliveries: list[tuple[int, int]] = []  # (flow_id, hop_index)
            for link, rr in self._rr.items():
                qs = self._queues[link]
                for _ in range(len(rr)):
                    fid = rr[0]
                    rr.rotate(-1)
                    if qs[fid]:
                        hop = qs[fid].popleft()
                        deliveries.append((fid, hop))
                        break

            # 3. packets arrive at the next hop at the end of the slot
            for fid, hop in deliveries:
                f = flows[fid]
                if hop + 1 < len(f.path):
                    self._enqueue(f.path[hop + 1], fid, hop + 1)
                else:
                    f.delivered += 1
                    if f.delivered >= f.total_packets:
                        f.done_slot = slot + 1
                        pending.discard(fid)
            slot += 1

        return {
            f.flow_id: PacketFlowResult(
                flow_id=f.flow_id,
                completed_at=(
                    f.done_slot * self.dt if f.done_slot is not None else None
                ),
                packets=f.total_packets,
            )
            for f in self._flows
        }

    def _enqueue(self, link: int, flow_id: int, hop: int) -> None:
        qs = self._queues.setdefault(link, {})
        if flow_id not in qs:
            qs[flow_id] = deque()
            self._rr.setdefault(link, deque()).append(flow_id)
        qs[flow_id].append(hop)
