"""Link-failure injection.

Data center links fail; a centralized controller is supposed to notice
and reroute (one of SDN's selling points, and implicit in the paper's
"online response to tasks in dynamic data center network" design goal).
This module adds scheduled link outages to the fluid simulator:

* a :class:`LinkFault` takes one directed link down over ``[start, end)``;
* the engine zeroes the rate of any flow whose path crosses a down link
  (transmission physically stops regardless of what the scheduler asked
  for) and wakes the scheduler at every fault boundary via
  ``on_link_state_change`` so it can react;
* schedulers that don't react simply stall the affected flows until the
  link returns (or the deadline kills them); the TAPS controller
  reallocates around the outage (see
  :meth:`repro.core.controller.TapsScheduler.on_link_state_change`).
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Sequence
from dataclasses import dataclass

from repro.util.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class LinkFault:
    """One outage of one directed link.

    Attributes
    ----------
    link_index:
        The failed link.
    start, end:
        Outage window ``[start, end)``; ``end = inf`` is permanent.
    """

    link_index: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ConfigurationError(
                f"fault on link {self.link_index}: end {self.end} "
                f"not after start {self.start}"
            )
        if self.start < 0:
            raise ConfigurationError("fault start must be >= 0")


class FaultSchedule:
    """The set of outages of a run, queryable by time."""

    def __init__(self, faults: Sequence[LinkFault] = ()) -> None:
        self.faults = sorted(faults, key=lambda f: (f.start, f.link_index))
        self._boundaries = sorted(
            {f.start for f in self.faults}
            | {f.end for f in self.faults if f.end != float("inf")}
        )
        self._by_link: dict[int, list[LinkFault]] = {}
        for f in self.faults:
            self._by_link.setdefault(f.link_index, []).append(f)

    def __bool__(self) -> bool:
        return bool(self.faults)

    def down_links(self, t: float) -> set[int]:
        """Links that are down at time ``t``."""
        return {
            f.link_index for f in self.faults if f.start <= t < f.end
        }

    def next_boundary(self, t: float) -> float | None:
        """The first fault start/end strictly after ``t``.

        Exact comparison, no tolerance: the engine integrates up to the
        boundary it was given, so a fuzzy ``> t + eps`` here would *skip*
        a boundary landing within eps after ``t`` — the outage (or
        recovery) would be applied one event late, or never.  Bisect over
        the sorted boundary list keeps this O(log n) per query.
        """
        i = bisect_right(self._boundaries, t)
        if i < len(self._boundaries):
            return self._boundaries[i]
        return None

    def outage_of(self, link_index: int, t: float) -> LinkFault | None:
        """The fault covering ``link_index`` at ``t``, if any.

        When several scheduled outages of the same link overlap at ``t``,
        the one extending furthest is returned — the link stays down until
        the *last* covering window closes, so callers asking "until when?"
        get the honest answer rather than whichever window happened to
        sort first.
        """
        best: LinkFault | None = None
        for f in self._by_link.get(link_index, ()):
            if f.start <= t < f.end and (best is None or f.end > best.end):
                best = f
        return best
