"""TAPS switches: dumb forwarding with a bounded flow table (paper §IV-C/E).

"The switches in TAPS do not need any modification … only need to take
charge of the data forwarding" — so the switch model is a flow table plus
a forward lookup.  The table enforces the §IV-C constraint that "the flow
table size of an SDN switch is very limited (usually less than 2000
entries), only the first 1k entries are installed on a particular switch."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import ConfigurationError


class FlowTable:
    """Bounded match→action table.

    Parameters
    ----------
    capacity:
        Hardware table size (paper: "usually less than 2000 entries").
    install_limit:
        Controller-imposed cap on entries it will install ("only the
        first 1k entries"); must not exceed ``capacity``.
    """

    def __init__(self, capacity: int = 2000, install_limit: int = 1000) -> None:
        if install_limit > capacity:
            raise ConfigurationError(
                f"install_limit {install_limit} exceeds table capacity {capacity}"
            )
        self.capacity = capacity
        self.install_limit = install_limit
        self._entries: dict[int, str] = {}
        self.rejected_installs = 0

    def __len__(self) -> int:
        return len(self._entries)

    def install(self, flow_id: int, out_port: str) -> bool:
        """Install an entry; returns False when the install limit is hit."""
        if flow_id in self._entries:
            self._entries[flow_id] = out_port
            return True
        if len(self._entries) >= self.install_limit:
            self.rejected_installs += 1
            return False
        self._entries[flow_id] = out_port
        return True

    def withdraw(self, flow_id: int) -> bool:
        """Remove an entry; returns whether it existed."""
        return self._entries.pop(flow_id, None) is not None

    def lookup(self, flow_id: int) -> str | None:
        return self._entries.get(flow_id)

    def utilization(self) -> float:
        return len(self._entries) / self.install_limit if self.install_limit else 0.0


@dataclass(slots=True)
class SdnSwitch:
    """One forwarding element.

    Counts forwarded and dropped lookups so tests can assert that data
    only ever flows along controller-installed routes.
    """

    name: str
    table: FlowTable = field(default_factory=FlowTable)
    forwarded: int = 0
    dropped: int = 0

    def forward(self, flow_id: int) -> str | None:
        """Next hop for a packet of ``flow_id``; None = dropped."""
        nxt = self.table.lookup(flow_id)
        if nxt is None:
            self.dropped += 1
        else:
            self.forwarded += 1
        return nxt
