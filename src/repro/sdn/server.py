"""The TAPS sender agent (paper §IV-D).

Each sender maintains, per local flow: the deadline ``d_ij``, expected
transmission time ``E_ij``, and allocated slices ``A_ij``; it emits the
probe when a task arrives, honours accept/reject replies, transmits only
inside its allocated slices, and reports TERM on completion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sdn.messages import AcceptReply, ProbePacket, RejectReply, TermPacket
from repro.util.errors import SimulationError
from repro.util.intervals import EPS, IntervalSet
from repro.workload.flow import Task


@dataclass(slots=True)
class _LocalFlow:
    """Sender-side per-flow state variables (§IV-D list)."""

    flow_id: int
    deadline: float
    expected_time: float
    slices: IntervalSet | None = None
    sent_time: float = 0.0  # transmission time consumed so far
    done: bool = False


@dataclass(slots=True)
class SenderAgent:
    """One host's TAPS module.

    The agent is deliberately dumb: everything it knows arrived in a
    controller message, mirroring the paper's claim that intelligence
    lives only in the controller.

    ``clock_skew`` models §IV-D's "monitor the time and keep in touch
    with the controller to ensure time consistency": a sender whose clock
    runs ``skew`` seconds ahead starts and stops its slices early by that
    much.  Zero (synchronised) is the paper's assumption;
    :meth:`slice_violation` quantifies what a drifted clock would do —
    transmission outside the controller's pre-allocation, i.e. collisions
    on links the controller believed idle.
    """

    host: str
    capacity: float
    clock_skew: float = 0.0
    flows: dict[int, _LocalFlow] = field(default_factory=dict)

    def probe_for(self, task: Task, now: float) -> ProbePacket:
        """Build the probe for the locally-originated flows of a task."""
        local = [f for f in task.flows if f.src == self.host]
        if not local:
            raise SimulationError(f"{self.host} has no flows in task {task.task_id}")
        for f in local:
            self.flows[f.flow_id] = _LocalFlow(
                flow_id=f.flow_id,
                deadline=f.deadline,
                expected_time=f.size / self.capacity,
            )
        return ProbePacket(
            time=now,
            sender=self.host,
            task_id=task.task_id,
            flow_ids=tuple(f.flow_id for f in local),
            srcs=tuple(f.src for f in local),
            dsts=tuple(f.dst for f in local),
            sizes=tuple(f.size for f in local),
            deadline=task.deadline,
        )

    def on_accept(self, reply: AcceptReply) -> None:
        lf = self.flows.get(reply.flow_id)
        if lf is None:
            raise SimulationError(
                f"{self.host}: accept for unknown flow {reply.flow_id}"
            )
        lf.slices = reply.slices

    def on_reject(self, reply: RejectReply) -> None:
        for lf in self.flows.values():
            if lf.slices is None and not lf.done:
                lf.done = True  # never transmitted

    def sending_at(self, flow_id: int, t: float) -> bool:
        """Whether this sender transmits ``flow_id`` at (true) time ``t``.

        The sender consults its *local* clock, ``t + clock_skew``.
        """
        lf = self.flows.get(flow_id)
        if lf is None or lf.done or lf.slices is None:
            return False
        return lf.slices.contains(t + self.clock_skew + 2 * EPS)

    def slice_violation(self, flow_id: int, t: float) -> bool:
        """Whether, at true time ``t``, this sender transmits *outside*
        its controller-allocated slices (only possible with skew)."""
        lf = self.flows.get(flow_id)
        if lf is None or lf.done or lf.slices is None:
            return False
        local = lf.slices.contains(t + self.clock_skew + 2 * EPS)
        true = lf.slices.contains(t + 2 * EPS)
        return local and not true

    def advance(self, flow_id: int, dt: float, now: float) -> TermPacket | None:
        """Account ``dt`` seconds of transmission; TERM when finished."""
        lf = self.flows[flow_id]
        lf.sent_time += dt
        if lf.sent_time >= lf.expected_time - 1e-9:
            lf.done = True
            return TermPacket(time=now, sender=self.host,
                              flow_id=flow_id, completed_at=now)
        return None
