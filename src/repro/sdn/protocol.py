"""Protocol driver: runs a workload through the full Fig. 4 exchange.

Wraps the fluid simulation with an instrumented TAPS controller that emits
the control-plane messages of paper Fig. 4 as its decisions happen:
probe on task arrival, accept replies with pre-allocated slices plus
route installs on acceptance, reject notices otherwise, and
TERM → withdraw on flow completion.  Switch flow-table limits are enforced
(§IV-C), and the transcript can be audited afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.controller import TapsScheduler
from repro.core.reject import PreemptionPolicy
from repro.net.topology import Path, Topology
from repro.sdn.messages import (
    AcceptReply,
    InstallEntry,
    Message,
    RejectReply,
    TermPacket,
    UpdateReply,
    WithdrawEntry,
)
from repro.sdn.server import SenderAgent
from repro.sdn.switch import SdnSwitch
from repro.sim.engine import Engine, SimulationResult
from repro.sim.state import FlowState, TaskState
from repro.workload.flow import Task


@dataclass(slots=True)
class ProtocolTranscript:
    """Everything that crossed the control plane during a run."""

    messages: list[Message] = field(default_factory=list)
    installs_refused: int = 0

    def of_type(self, cls: type) -> list[Message]:
        return [m for m in self.messages if isinstance(m, cls)]

    def count(self, cls: type) -> int:
        return sum(1 for m in self.messages if isinstance(m, cls))


class _InstrumentedTaps(TapsScheduler):
    """TAPS controller that narrates its decisions as Fig. 4 messages."""

    def __init__(self, driver: "ProtocolDriver", preemption: PreemptionPolicy) -> None:
        super().__init__(preemption=preemption)
        self._driver = driver

    def on_task_arrival(self, task_state: TaskState, now: float) -> None:
        self._driver.emit_probes(task_state.task, now)
        before = self.stats.tasks_accepted
        super().on_task_arrival(task_state, now)
        if self.stats.tasks_accepted > before:
            self._driver.emit_accepts(task_state, self, now)
        else:
            self._driver.emit_reject(task_state, now)

    def on_flow_completed(self, fs: FlowState, now: float) -> None:
        self._driver.emit_term(fs, now)
        super().on_flow_completed(fs, now)


class ProtocolDriver:
    """Runs one workload under TAPS with the control plane materialised.

    Parameters
    ----------
    topology, tasks:
        As for :class:`~repro.sim.engine.Engine`.
    table_capacity, install_limit:
        Per-switch flow-table bounds (paper defaults 2000 / 1000).
    """

    def __init__(
        self,
        topology: Topology,
        tasks: list[Task],
        table_capacity: int = 2000,
        install_limit: int = 1000,
        preemption: PreemptionPolicy = PreemptionPolicy.PROGRESS,
    ) -> None:
        self.topology = topology
        self.tasks = tasks
        self.transcript = ProtocolTranscript()
        self.switches = {
            name: SdnSwitch(name=name) for name in topology.switches
        }
        for sw in self.switches.values():
            sw.table.capacity = table_capacity
            sw.table.install_limit = install_limit
        capacity = topology.uniform_capacity()
        self.senders = {h: SenderAgent(host=h, capacity=capacity) for h in topology.hosts}
        self._emitted: dict[int, tuple] = {}
        self._scheduler = _InstrumentedTaps(self, preemption)

    # -- driving ------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the workload; transcript fills in as a side effect."""
        return Engine(self.topology, self.tasks, self._scheduler).run()

    # -- emission callbacks ------------------------------------------------------

    def emit_probes(self, task: Task, now: float) -> None:
        for host in sorted({f.src for f in task.flows}):
            probe = self.senders[host].probe_for(task, now)
            self.transcript.messages.append(probe)

    def emit_accepts(self, task_state: TaskState, sched: TapsScheduler, now: float) -> None:
        new_ids = {fs.flow.flow_id for fs in task_state.flow_states}
        for fs in task_state.flow_states:
            plan = sched.plan_of(fs.flow.flow_id)
            if plan is None:
                continue
            nodes = self._path_nodes(plan.path)
            reply = AcceptReply(
                time=now,
                sender="controller",
                task_id=task_state.task.task_id,
                flow_id=fs.flow.flow_id,
                slices=plan.slices.copy(),
                path_nodes=nodes,
            )
            self.transcript.messages.append(reply)
            self.senders[fs.flow.src].on_accept(reply)
            self._emitted[fs.flow.flow_id] = (plan.path, plan.slices.copy())
            self._install_route(fs.flow.flow_id, nodes, now)
        # global reallocation may have moved in-flight flows: push updates
        for fid, plan in sched.plans.items():
            if fid in new_ids or not plan.flow_state.active:
                continue
            prev = self._emitted.get(fid)
            if prev is not None and prev[0] == plan.path and prev[1] == plan.slices:
                continue
            rerouted = prev is not None and prev[0] != plan.path
            nodes = self._path_nodes(plan.path)
            update = UpdateReply(
                time=now,
                sender="controller",
                flow_id=fid,
                slices=plan.slices.copy(),
                path_nodes=nodes,
                rerouted=rerouted,
            )
            self.transcript.messages.append(update)
            # the sender swaps to the new pre-allocation (duck-typed:
            # UpdateReply carries the same flow_id/slices fields)
            self.senders[plan.flow_state.flow.src].on_accept(update)
            if rerouted:
                self._withdraw_route(fid, now)
                self._install_route(fid, nodes, now)
            self._emitted[fid] = (plan.path, plan.slices.copy())

    def emit_reject(self, task_state: TaskState, now: float) -> None:
        reply = RejectReply(
            time=now,
            sender="controller",
            task_id=task_state.task.task_id,
            reason="reject rule",
        )
        self.transcript.messages.append(reply)
        for host in {f.src for f in task_state.task.flows}:
            self.senders[host].on_reject(reply)

    def emit_term(self, fs: FlowState, now: float) -> None:
        self.transcript.messages.append(
            TermPacket(time=now, sender=fs.flow.src,
                       flow_id=fs.flow.flow_id, completed_at=now)
        )
        self._withdraw_route(fs.flow.flow_id, now)

    # -- switch programming ------------------------------------------------------

    def _path_nodes(self, path: Path) -> tuple[str, ...]:
        links = self.topology.links
        nodes = [links[path[0]].src]
        nodes.extend(links[l].dst for l in path)
        return tuple(nodes)

    def _install_route(self, flow_id: int, nodes: tuple[str, ...], now: float) -> None:
        for here, nxt in zip(nodes[:-1], nodes[1:]):
            sw = self.switches.get(here)
            if sw is None:  # the sending host itself
                continue
            ok = sw.table.install(flow_id, nxt)
            if ok:
                self.transcript.messages.append(
                    InstallEntry(time=now, sender="controller",
                                 switch=here, flow_id=flow_id, out_port=nxt)
                )
            else:
                self.transcript.installs_refused += 1

    def _withdraw_route(self, flow_id: int, now: float) -> None:
        for sw in self.switches.values():
            if sw.table.withdraw(flow_id):
                self.transcript.messages.append(
                    WithdrawEntry(time=now, sender="controller",
                                  switch=sw.name, flow_id=flow_id)
                )
