"""Message vocabulary of the TAPS control plane (paper Fig. 4).

The numbered steps in Fig. 4 map to these records:

2. servers → controller: :class:`ProbePacket` with task info
   ``⟨Src, Dst, s, d⟩`` per flow;
4A. controller → switches: :class:`InstallEntry` forwarding rules;
4B. controller → senders: :class:`AcceptReply` with pre-allocated time
    slices;
5.  controller → senders: :class:`RejectReply` ("discard this task");
―   senders → controller: :class:`TermPacket` when a flow completes
    (§IV-D), triggering :class:`WithdrawEntry` to the switches (§IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.intervals import IntervalSet


@dataclass(frozen=True, slots=True)
class Message:
    """Base class: every message is timestamped and attributable."""

    time: float
    sender: str


@dataclass(frozen=True, slots=True)
class ProbePacket(Message):
    """Scheduling header sent to the controller when a task arrives.

    Carries the task-related variables of §IV-D: one entry per flow with
    source/destination ids, flow size, and deadline.
    """

    task_id: int
    flow_ids: tuple[int, ...]
    srcs: tuple[str, ...]
    dsts: tuple[str, ...]
    sizes: tuple[float, ...]
    deadline: float


@dataclass(frozen=True, slots=True)
class AcceptReply(Message):
    """Controller → sender: the task is accepted; transmit in these slices."""

    task_id: int
    flow_id: int
    slices: IntervalSet
    path_nodes: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class UpdateReply(Message):
    """Controller → sender: an in-flight flow's allocation moved.

    Alg. 1's global reallocation can re-slice (and re-route) flows that
    were already accepted; the controller must push the new pre-allocation
    to the sender, or it would keep transmitting on the stale plan.
    """

    flow_id: int
    slices: IntervalSet
    path_nodes: tuple[str, ...]
    rerouted: bool


@dataclass(frozen=True, slots=True)
class RejectReply(Message):
    """Controller → senders: discard the task (Fig. 4 step 5)."""

    task_id: int
    reason: str


@dataclass(frozen=True, slots=True)
class InstallEntry(Message):
    """Controller → switch: install a forwarding entry for one flow."""

    switch: str
    flow_id: int
    out_port: str  # next-hop node name


@dataclass(frozen=True, slots=True)
class WithdrawEntry(Message):
    """Controller → switch: remove the entry after completion/miss."""

    switch: str
    flow_id: int


@dataclass(frozen=True, slots=True)
class TermPacket(Message):
    """Sender → controller: the flow has been completed (§IV-D)."""

    flow_id: int
    completed_at: float
