"""SDN substrate: the message-level protocol of paper §IV (Fig. 4).

The fluid simulator treats TAPS as an oracle scheduler; this package
models the *machinery* the paper builds around it:

* :mod:`~repro.sdn.messages` — the probe / accept / reject / install /
  withdraw / TERM message vocabulary exchanged among senders, the
  controller, and switches;
* :mod:`~repro.sdn.switch` — switches with bounded flow tables ("only the
  first 1k entries are installed … flow table size … usually less than
  2000 entries", §IV-C) that do nothing but forward;
* :mod:`~repro.sdn.server` — the sender agent keeping per-flow state
  (deadline, expected transmission time, allocated slices) and sending
  exactly within its slices (§IV-D);
* :mod:`~repro.sdn.protocol` — a driver that runs a workload through the
  full message exchange and records the transcript, used by tests and the
  protocol example to show the control plane is faithful to Fig. 4.
"""

from repro.sdn.messages import (
    ProbePacket,
    AcceptReply,
    RejectReply,
    UpdateReply,
    InstallEntry,
    WithdrawEntry,
    TermPacket,
    Message,
)
from repro.sdn.switch import FlowTable, SdnSwitch
from repro.sdn.server import SenderAgent
from repro.sdn.protocol import ProtocolDriver, ProtocolTranscript

__all__ = [
    "Message",
    "ProbePacket",
    "AcceptReply",
    "RejectReply",
    "UpdateReply",
    "InstallEntry",
    "WithdrawEntry",
    "TermPacket",
    "FlowTable",
    "SdnSwitch",
    "SenderAgent",
    "ProtocolDriver",
    "ProtocolTranscript",
]
