"""``python -m repro`` → the CLI."""

import sys

from repro.cli import main

sys.exit(main())
