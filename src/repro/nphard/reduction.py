"""Hamiltonian-Circuit → single-link task scheduling (paper §IV-B).

Construction, verbatim from the paper: given ``G = ⟨V, E⟩`` with
``|V| = n``, each edge ``(v_i1, v_i2)`` becomes a task of four flows, each
of size ``1/2``, all released at time zero on one link of capacity 1, with
deadlines ``i1+1``, ``2n−i1``, ``i2+1`` and ``2n−i2``.  The claim: some
``n`` tasks can all be completed iff ``G`` has a Hamiltonian circuit.

Single-link scheduling of release-0 flows is solved exactly by EDF, so
feasibility of a chosen edge subset reduces to the classic check
``work(deadline ≤ d) ≤ d`` for every distinct deadline ``d``.
"""

from __future__ import annotations

import itertools

import networkx as nx

from repro.util.errors import ConfigurationError


class ReductionTask:
    """A task whose flows carry *individual* deadlines.

    The paper's general model gives all flows of a task one deadline
    (§IV-B: ``d_ij = d_i``), but its NP-hardness construction needs four
    distinct deadlines per task — so the reduction uses this thin record
    instead of :class:`~repro.workload.flow.Task`.
    """

    __slots__ = ("task_id", "flows")

    def __init__(self, task_id: int, flows: list[tuple[float, float]]) -> None:
        self.task_id = task_id
        #: list of (size, deadline)
        self.flows = flows

    def __repr__(self) -> str:
        return f"ReductionTask({self.task_id}, {self.flows})"


def edge_task(task_id: int, i1: int, i2: int, n: int) -> ReductionTask:
    """The 4-flow task for edge ``(v_i1, v_i2)`` of an ``n``-vertex graph."""
    if not (0 <= i1 < n and 0 <= i2 < n):
        raise ConfigurationError(f"vertex ids {i1},{i2} out of range for n={n}")
    deadlines = (i1 + 1.0, 2.0 * n - i1, i2 + 1.0, 2.0 * n - i2)
    return ReductionTask(task_id, [(0.5, d) for d in deadlines])


def build_instance(graph: nx.Graph) -> list[ReductionTask]:
    """All edge-tasks of a graph, with vertices renumbered 0..n-1."""
    index = {v: i for i, v in enumerate(sorted(graph.nodes(), key=str))}
    n = graph.number_of_nodes()
    tasks = []
    for t, (u, v) in enumerate(sorted(graph.edges(), key=str)):
        i1, i2 = index[u], index[v]
        deadlines = (i1 + 1.0, 2.0 * n - i1, i2 + 1.0, 2.0 * n - i2)
        tasks.append(ReductionTask(t, [(0.5, d) for d in deadlines]))
    return tasks


def edf_feasible(tasks: list[ReductionTask]) -> bool:
    """Whether every flow of every task meets its deadline on one unit link.

    For same-release jobs on a single machine EDF is optimal, so the
    subset is feasible iff for every deadline ``d``:
    ``Σ size(flows with deadline ≤ d) ≤ d``.
    """
    flows = sorted(
        (d, size) for t in tasks for (size, d) in t.flows
    )
    work = 0.0
    for d, size in flows:
        work += size
        if work > d + 1e-9:
            return False
    return True


def schedulable_subset_exists(tasks: list[ReductionTask], k: int) -> bool:
    """Whether some ``k`` of the tasks are simultaneously feasible.

    Exhaustive over subsets with a prefix-pruned recursion — exact, and
    fine for the ≤ ~12-edge graphs the tests use (the whole point of the
    reduction is that this blows up in general).
    """
    tasks = list(tasks)

    def recurse(start: int, chosen: list[ReductionTask]) -> bool:
        if len(chosen) == k:
            return True
        if len(chosen) + (len(tasks) - start) < k:
            return False
        for i in range(start, len(tasks)):
            cand = chosen + [tasks[i]]
            if edf_feasible(cand) and recurse(i + 1, cand):
                return True
        return False

    return recurse(0, [])


def has_hamiltonian_circuit(graph: nx.Graph) -> bool:
    """Brute-force Hamiltonian circuit check (small graphs only)."""
    nodes = list(graph.nodes())
    n = len(nodes)
    if n < 3:
        return False
    first, rest = nodes[0], nodes[1:]
    for perm in itertools.permutations(rest):
        cycle = (first, *perm, first)
        if all(graph.has_edge(a, b) for a, b in zip(cycle, cycle[1:])):
            return True
    return False


def has_two_factor(graph: nx.Graph) -> bool:
    """Whether some |V|-edge subset gives every vertex degree exactly 2.

    This is what the paper's construction actually certifies (see the
    package docstring); a Hamiltonian circuit is the connected special
    case.
    """
    n = graph.number_of_nodes()
    edges = list(graph.edges())
    if len(edges) < n:
        return False
    for subset in itertools.combinations(edges, n):
        deg: dict = {}
        for u, v in subset:
            deg[u] = deg.get(u, 0) + 1
            deg[v] = deg.get(v, 0) + 1
        if len(deg) == n and all(d == 2 for d in deg.values()):
            return True
    return False
