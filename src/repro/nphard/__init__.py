"""Executable version of the paper's NP-hardness argument (§IV-B).

The paper reduces Hamiltonian Circuit to task-level flow scheduling on a
single link: every edge of a graph becomes a 4-flow task, and "n tasks can
be completed iff a circuit can be found".  This package builds those
instances, solves them exactly (branch-and-bound over task subsets with an
EDF feasibility oracle), and cross-checks against direct cycle search —
making the reduction a testable artifact rather than a prose claim.

Note (documented in EXPERIMENTS.md): as stated, the construction actually
certifies a *2-factor* (every vertex covered by exactly two chosen edges),
which coincides with a Hamiltonian circuit on many small graphs but not in
general — the property tests pin down exactly this behaviour.
"""

from repro.nphard.reduction import (
    ReductionTask,
    edge_task,
    build_instance,
    schedulable_subset_exists,
    edf_feasible,
    has_hamiltonian_circuit,
    has_two_factor,
)

__all__ = [
    "ReductionTask",
    "edge_task",
    "build_instance",
    "schedulable_subset_exists",
    "edf_feasible",
    "has_hamiltonian_circuit",
    "has_two_factor",
]
