"""Utility primitives shared across the TAPS reproduction.

Submodules
----------
``intervals``
    Interval-set arithmetic used by the TAPS occupancy ledger (Alg. 3).
``units``
    Unit constants (bytes, seconds, rates) so experiment configs read like
    the paper ("200 KB", "40 ms", "1 Gbps").
``rng``
    Seeded random-source helpers for reproducible workloads.
``errors``
    Exception hierarchy for the package.
"""

from repro.util.errors import (
    ReproError,
    ConfigurationError,
    SimulationError,
    AllocationError,
    TopologyError,
)
from repro.util.intervals import IntervalSet
from repro.util.units import KB, MB, GB, Gbps, Mbps, ms, us, seconds

__all__ = [
    "IntervalSet",
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "AllocationError",
    "TopologyError",
    "KB",
    "MB",
    "GB",
    "Gbps",
    "Mbps",
    "ms",
    "us",
    "seconds",
]
