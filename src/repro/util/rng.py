"""Seeded random-source helpers.

Every stochastic component takes an explicit ``numpy.random.Generator`` so
experiments are reproducible and sub-streams are independent.  The paper's
workloads (§V-A) draw task inter-arrivals, deadlines, flow sizes, and
endpoints; we give each draw family its own child generator so changing,
say, the number of size draws does not perturb the endpoint sequence.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 20150710  # ICPP 2015 vintage


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator``.

    Accepts ``None`` (use :data:`DEFAULT_SEED`), an integer seed, or an
    existing generator (returned unchanged, so call sites can be composed).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators."""
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
