"""Unit constants for the simulation's canonical units.

The simulator works in **seconds**, **bytes**, and **bytes per second**.
These constants let experiment configurations read like the paper's prose:

>>> from repro.util.units import KB, ms, Gbps
>>> mean_flow_size = 200 * KB
>>> mean_deadline = 40 * ms
>>> link_capacity = 1 * Gbps

Network rates follow telecom convention (1 Gbps = 1e9 bits/s = 1.25e8
bytes/s); sizes follow the paper's KB/MB usage (decimal, 1 KB = 1000 bytes —
the distinction is immaterial to the reproduction's shapes but is kept
consistent everywhere).
"""

from __future__ import annotations

# --- sizes (bytes) -------------------------------------------------------
KB: float = 1_000.0
MB: float = 1_000_000.0
GB: float = 1_000_000_000.0

# --- times (seconds) -----------------------------------------------------
seconds: float = 1.0
ms: float = 1e-3
us: float = 1e-6

# --- rates (bytes / second) ----------------------------------------------
Mbps: float = 1e6 / 8.0
Gbps: float = 1e9 / 8.0


def transmission_time(size_bytes: float, rate_bytes_per_s: float) -> float:
    """Time to push ``size_bytes`` through a link of the given rate.

    This is the paper's "expected transmission time" ``E_ij`` (§IV-B): with
    uniform link capacity every flow can always run at the full link rate,
    so size and duration are interchangeable.
    """
    if rate_bytes_per_s <= 0:
        raise ValueError(f"rate must be positive, got {rate_bytes_per_s!r}")
    if size_bytes < 0:
        raise ValueError(f"size must be non-negative, got {size_bytes!r}")
    return size_bytes / rate_bytes_per_s
