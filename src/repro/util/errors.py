"""Exception hierarchy for the TAPS reproduction.

All package-raised exceptions derive from :class:`ReproError` so callers can
catch everything originating here with one handler while still letting
programming errors (``TypeError`` et al.) propagate untouched.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An experiment or component was configured with invalid parameters."""


class TopologyError(ReproError):
    """A topology is malformed or an endpoint/link lookup failed."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class AllocationError(ReproError):
    """Time-slice or rate allocation failed an internal invariant."""
