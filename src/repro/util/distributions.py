"""Empirical and heavy-tailed samplers for realistic workload shapes.

The paper's §V-A uses a normal flow-size distribution; real data center
measurements (the DCTCP/Baraat traces its related work cites) are heavy
tailed.  This module provides:

* :class:`EmpiricalCDF` — inverse-transform sampling from a piecewise-
  linear CDF given as (value, probability) knots, the standard way
  published trace CDFs are digitised;
* :func:`bounded_pareto` — the classic heavy-tail model for flow sizes;
* :data:`WEB_SEARCH_SIZE_CDF` / :data:`DATA_MINING_SIZE_CDF` — widely
  used flow-size CDFs (digitised from the DCTCP and VL2 papers'
  published curves) for drop-in realistic workloads.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ConfigurationError


class EmpiricalCDF:
    """Piecewise-linear inverse-CDF sampler.

    Parameters
    ----------
    knots:
        ``(value, cum_prob)`` pairs; probabilities must start at 0, end
        at 1, and both coordinates must be non-decreasing.
    """

    def __init__(self, knots: list[tuple[float, float]]) -> None:
        if len(knots) < 2:
            raise ConfigurationError("need at least two CDF knots")
        values = np.array([v for v, _ in knots], dtype=float)
        probs = np.array([p for _, p in knots], dtype=float)
        if probs[0] != 0.0 or probs[-1] != 1.0:
            raise ConfigurationError("CDF must span probability 0..1")
        if np.any(np.diff(probs) < 0) or np.any(np.diff(values) < 0):
            raise ConfigurationError("CDF knots must be non-decreasing")
        self.values = values
        self.probs = probs

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` values by inverse-transform sampling."""
        u = rng.random(size)
        return np.interp(u, self.probs, self.values)

    def mean(self, n: int = 200_001) -> float:
        """Numeric mean of the distribution (trapezoid over the inverse CDF)."""
        u = np.linspace(0.0, 1.0, n)
        return float(np.trapezoid(np.interp(u, self.probs, self.values), u))

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0,1], got {q}")
        return float(np.interp(q, self.probs, self.values))


def bounded_pareto(
    rng: np.random.Generator,
    size: int,
    alpha: float = 1.2,
    lo: float = 1e3,
    hi: float = 1e8,
) -> np.ndarray:
    """Bounded Pareto draws (heavy-tailed flow sizes)."""
    if not (alpha > 0 and 0 < lo < hi):
        raise ConfigurationError("need alpha > 0 and 0 < lo < hi")
    u = rng.random(size)
    la, ha = lo**alpha, hi**alpha
    return (-(u * (ha - la) - ha) / (ha * la)) ** (-1.0 / alpha)


#: Web-search flow sizes (DCTCP, Fig. 4 there): mostly small queries with
#: a heavy background-flow tail; knots in bytes.
WEB_SEARCH_SIZE_CDF = EmpiricalCDF([
    (6e3, 0.00),
    (10e3, 0.15),
    (20e3, 0.30),
    (50e3, 0.50),
    (100e3, 0.60),
    (300e3, 0.70),
    (1e6, 0.80),
    (3e6, 0.90),
    (10e6, 0.97),
    (30e6, 1.00),
])

#: Data-mining flow sizes (VL2-style): even heavier tail.
DATA_MINING_SIZE_CDF = EmpiricalCDF([
    (1e2, 0.00),
    (1e3, 0.25),
    (1e4, 0.50),
    (1e5, 0.65),
    (1e6, 0.80),
    (1e7, 0.90),
    (1e8, 0.98),
    (1e9, 1.00),
])
