"""Interval-set arithmetic over the real line.

This module implements the occupancy bookkeeping that TAPS' centralized
algorithm (paper Alg. 3, *TimeAllocation*) is built on.  Every link keeps an
*occupied* set ``O_x`` of time intervals; allocating a flow on a path means

1. unioning the occupied sets of all links on the path (``T_ocp``),
2. complementing it to get the *idle* set, and
3. carving the first ``E_i`` time units of idle time (after the flow's
   release time) into transmission slices.

The representation is a flat, sorted ``list[float]`` of boundaries
``[s0, e0, s1, e1, ...]`` encoding disjoint, non-empty, non-touching
half-open intervals ``[s0, e0) ∪ [s1, e1) ∪ …``.  A flat list keeps the hot
merge loops allocation-free and cache-friendly (per the HPC guide: avoid
per-element object churn in inner loops).

All operations treat intervals closer than :data:`EPS` as touching and merge
them, which keeps floating-point dust from fragmenting allocations.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections.abc import Iterable, Iterator

EPS: float = 1e-9
"""Two boundaries closer than this are considered equal.

The simulator's natural time quantum is ~1e-6 s (microseconds) and horizons
are ~1e2 s, so 1e-9 is far below any meaningful gap while far above float64
noise accumulated by the arithmetic here.
"""

Interval = tuple[float, float]


class IntervalSet:
    """A set of disjoint half-open intervals ``[start, end)`` on the reals.

    Instances are mutable; the in-place operations (:meth:`add`,
    :meth:`subtract`, :meth:`union_update`) are used by the occupancy
    ledger, while the pure operations (:meth:`union`, :meth:`complement`,
    :meth:`intersection`) are used by the allocation algorithms.

    Invariants (checked by :meth:`check_invariants` and the property
    tests): boundaries strictly increase, every interval is wider than
    :data:`EPS`, and consecutive intervals are separated by more than
    :data:`EPS`.
    """

    __slots__ = ("_b",)

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._b: list[float] = []
        for start, end in intervals:
            self.add(start, end)

    # -- construction -----------------------------------------------------

    @classmethod
    def empty(cls) -> "IntervalSet":
        """Return a new empty set."""
        return cls()

    @classmethod
    def single(cls, start: float, end: float) -> "IntervalSet":
        """Return a set holding the single interval ``[start, end)``."""
        out = cls()
        out.add(start, end)
        return out

    @classmethod
    def _from_boundaries(cls, boundaries: list[float]) -> "IntervalSet":
        out = cls()
        out._b = boundaries
        return out

    def copy(self) -> "IntervalSet":
        """Return an independent copy."""
        out = IntervalSet()
        out._b = list(self._b)
        return out

    # -- basic queries ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._b) // 2

    def __bool__(self) -> bool:
        return bool(self._b)

    def __iter__(self) -> Iterator[Interval]:
        b = self._b
        for i in range(0, len(b), 2):
            yield (b[i], b[i + 1])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        if len(self._b) != len(other._b):
            return False
        return all(abs(x - y) <= EPS for x, y in zip(self._b, other._b))

    def __hash__(self) -> int:  # pragma: no cover - sets are mutable
        raise TypeError("IntervalSet is mutable and unhashable")

    def __repr__(self) -> str:
        parts = ", ".join(f"[{s:g}, {e:g})" for s, e in self)
        return f"IntervalSet({parts})"

    def intervals(self) -> list[Interval]:
        """Return the intervals as a list of ``(start, end)`` tuples."""
        return list(self)

    def measure(self) -> float:
        """Total length covered by the set."""
        b = self._b
        return sum(b[i + 1] - b[i] for i in range(0, len(b), 2))

    def start(self) -> float:
        """Leftmost boundary. Raises ``ValueError`` on an empty set."""
        if not self._b:
            raise ValueError("empty IntervalSet has no start")
        return self._b[0]

    def end(self) -> float:
        """Rightmost boundary. Raises ``ValueError`` on an empty set."""
        if not self._b:
            raise ValueError("empty IntervalSet has no end")
        return self._b[-1]

    def contains(self, t: float) -> bool:
        """Whether time ``t`` lies inside the set (half-open semantics)."""
        b = self._b
        # binary search over the flat boundary list
        lo, hi = 0, len(b)
        while lo < hi:
            mid = (lo + hi) // 2
            if b[mid] <= t:
                lo = mid + 1
            else:
                hi = mid
        # lo = count of boundaries <= t; odd count means inside an interval
        return lo % 2 == 1

    def overlaps(self, start: float, end: float) -> bool:
        """Whether ``[start, end)`` intersects the set by more than EPS."""
        if end - start <= EPS:
            return False
        b = self._b
        for i in range(0, len(b), 2):
            if b[i] >= end - EPS:
                break
            if b[i + 1] > start + EPS:
                return True
        return False

    # -- mutation ------------------------------------------------------------

    def add(self, start: float, end: float) -> None:
        """Insert ``[start, end)``, merging with touching/overlapping spans.

        Intervals narrower than :data:`EPS` are ignored.
        """
        if end - start <= EPS:
            return
        b = self._b
        if not b:
            b.extend((start, end))
            return
        if start > b[-1] + EPS:  # fast path: append at the right edge
            b.extend((start, end))
            return
        if start <= b[-1] + EPS and start >= b[-2] - EPS and end >= b[-1] - EPS:
            # fast path: extend the last interval
            b[-2] = min(b[-2], start)
            b[-1] = max(b[-1], end)
            return
        merged: list[float] = []
        i = 0
        n = len(b)
        # copy intervals entirely left of the new one
        while i < n and b[i + 1] < start - EPS:
            merged.extend((b[i], b[i + 1]))
            i += 2
        # absorb all intervals that touch [start, end)
        new_s, new_e = start, end
        while i < n and b[i] <= end + EPS:
            new_s = min(new_s, b[i])
            new_e = max(new_e, b[i + 1])
            i += 2
        merged.extend((new_s, new_e))
        merged.extend(b[i:])
        self._b = merged

    def subtract(self, start: float, end: float) -> None:
        """Remove ``[start, end)`` from the set."""
        if end - start <= EPS:
            return
        b = self._b
        out: list[float] = []
        for i in range(0, len(b), 2):
            s, e = b[i], b[i + 1]
            if e <= start + EPS or s >= end - EPS:
                out.extend((s, e))
                continue
            if s < start - EPS:
                out.extend((s, start))
            if e > end + EPS:
                out.extend((end, e))
        self._b = out

    def union_update(self, other: "IntervalSet") -> None:
        """In-place union with ``other``."""
        self._b = _merge_union(self._b, other._b)

    def clear(self) -> None:
        """Remove all intervals."""
        self._b.clear()

    # -- pure set algebra ------------------------------------------------------

    def union(self, other: "IntervalSet") -> "IntervalSet":
        """Return the union of the two sets."""
        return IntervalSet._from_boundaries(_merge_union(self._b, other._b))

    def intersection(self, other: "IntervalSet") -> "IntervalSet":
        """Return the intersection of the two sets."""
        out: list[float] = []
        a, b = self._b, other._b
        i = j = 0
        while i < len(a) and j < len(b):
            s = max(a[i], b[j])
            e = min(a[i + 1], b[j + 1])
            if e - s > EPS:
                out.extend((s, e))
            if a[i + 1] < b[j + 1]:
                i += 2
            else:
                j += 2
        return IntervalSet._from_boundaries(out)

    def complement(self, lo: float, hi: float) -> "IntervalSet":
        """Return ``[lo, hi)`` minus this set — the *idle* time window.

        This is the complement step of paper Alg. 3 line 5.
        """
        out: list[float] = []
        cursor = lo
        for s, e in self:
            if e <= lo + EPS:
                continue
            if s >= hi - EPS:
                break
            s_clip = max(s, lo)
            e_clip = min(e, hi)
            if s_clip - cursor > EPS:
                out.extend((cursor, s_clip))
            cursor = max(cursor, e_clip)
        if hi - cursor > EPS:
            out.extend((cursor, hi))
        return IntervalSet._from_boundaries(out)

    # -- allocation ---------------------------------------------------------

    def first_fit(self, duration: float, after: float) -> "IntervalSet":
        """Carve the earliest ``duration`` units of *this* set at/after ``after``.

        ``self`` is interpreted as an **idle** set.  Returns the allocated
        slices (possibly split across several idle gaps — TAPS flows are
        preemptible, so an allocation may pause and resume).  The last slice
        ends at the flow's completion time.

        Used for paper Alg. 3 line 5: "first ``E_i`` time slices in the
        complementary set of ``T_ocp``".

        Note: ``self`` must extend far enough to the right to fit
        ``duration``; callers complement over a horizon past any deadline.
        Raises ``ValueError`` if the idle time available is insufficient.
        """
        if duration <= EPS:
            return IntervalSet()
        remaining = duration
        out: list[float] = []
        for s, e in self:
            if e <= after + EPS:
                continue
            s = max(s, after)
            width = e - s
            if width <= EPS:
                continue
            if width >= remaining - EPS:
                # final gap: a shortfall within EPS counts as a full fit,
                # mirroring idle_fit_end exactly
                out.extend((s, s + min(width, remaining)))
                return IntervalSet._from_boundaries(out)
            out.extend((s, e))
            remaining -= width
        raise ValueError(
            f"insufficient idle time: needed {duration:g}, "
            f"short by {remaining:g} after t={after:g}"
        )

    def idle_fit_end(self, duration: float, after: float) -> float:
        """Completion time of a :meth:`first_fit` allocation, without building it.

        Cheaper than :meth:`first_fit` when only the completion time is
        needed (path comparison in Alg. 2 evaluates many candidate paths and
        keeps slices only for the winner).
        """
        if duration <= EPS:
            return after
        remaining = duration
        b = self._b
        for i in range(0, len(b), 2):
            s, e = b[i], b[i + 1]
            if e <= after + EPS:
                continue
            s = max(s, after)
            width = e - s
            if width <= EPS:
                continue
            if width >= remaining - EPS:
                return s + min(width, remaining)
            remaining -= width
        raise ValueError(
            f"insufficient idle time: needed {duration:g}, "
            f"short by {remaining:g} after t={after:g}"
        )

    def first_idle_after(self, lo: float, hi: float) -> float | None:
        """Start of the first gap of ``complement(lo, hi)``, without building it.

        Treats ``self`` as an **occupied** set.  Equivalent to
        ``self.complement(lo, hi).start()`` (``None`` when the complement
        is empty), but stops at the first gap instead of materialising the
        whole idle set.  Used by the candidate-pruning step of Alg. 2: a
        flow's completion on a path can never precede the path's first
        idle instant plus the flow's duration, so paths whose bound cannot
        beat the current best are skipped without a full fit scan.
        """
        b = self._b
        cursor = lo
        # bisect past every interval ending at/before lo (cheap history skip)
        k = bisect_right(b, lo + EPS)
        for i in range(k - (k & 1), len(b), 2):
            s, e = b[i], b[i + 1]
            if e <= lo + EPS:
                continue
            if s >= hi - EPS:
                break
            if max(s, lo) - cursor > EPS:
                return cursor
            e_clip = min(e, hi)
            if e_clip > cursor:
                cursor = e_clip
        if hi - cursor > EPS:
            return cursor
        return None

    def occupied_fit_end(
        self,
        duration: float,
        lo: float,
        hi: float,
        stop_at: float = float("inf"),
    ) -> float:
        """First-fit completion treating *this* set as **occupied**.

        Exactly ``self.complement(lo, hi).idle_fit_end(duration, lo)`` —
        one fused scan instead of materialising the idle set and scanning
        it again.  This is the per-candidate evaluation of Alg. 2/3 when
        only the completion time is needed; the winner still builds its
        slices via :meth:`complement` + :meth:`first_fit`.

        ``stop_at`` aborts the scan once the completion provably cannot
        fall below it: at any point the fit cannot end before
        ``cursor + remaining``, so when that reaches ``stop_at`` the exact
        value no longer matters and ``inf`` is returned.  Alg. 2 passes
        the current best completion — losing candidates stop scanning as
        soon as they are beaten instead of walking the whole backlog.

        Raises ``ValueError`` when ``[lo, hi)`` holds less than
        ``duration`` of idle time (never raised after an abort).
        """
        if duration <= EPS:
            return lo
        remaining = duration
        b = self._b
        cursor = lo
        k = bisect_right(b, lo + EPS)
        for i in range(k - (k & 1), len(b), 2):
            s, e = b[i], b[i + 1]
            if e <= lo + EPS:
                continue
            if s >= hi - EPS:
                break
            gap = (s if s > lo else lo) - cursor
            if gap > EPS:
                if gap >= remaining - EPS:
                    return cursor + (gap if gap < remaining else remaining)
                remaining -= gap
            e_clip = min(e, hi)
            if e_clip > cursor:
                cursor = e_clip
                if cursor + remaining >= stop_at:
                    return float("inf")
        gap = hi - cursor
        if gap > EPS and gap >= remaining - EPS:
            return cursor + (gap if gap < remaining else remaining)
        raise ValueError(
            f"insufficient idle time: needed {duration:g}, "
            f"short by {remaining:g} after t={lo:g}"
        )

    def occupied_first_fit(self, duration: float, lo: float, hi: float) -> "IntervalSet":
        """First-fit slices treating *this* set as **occupied**.

        Exactly ``self.complement(lo, hi).first_fit(duration, lo)`` — one
        fused scan instead of materialising the idle set first.  Used by
        Alg. 3 to build the winning path's slices.

        Raises ``ValueError`` when ``[lo, hi)`` holds less than
        ``duration`` of idle time.
        """
        if duration <= EPS:
            return IntervalSet()
        remaining = duration
        b = self._b
        cursor = lo
        out: list[float] = []
        k = bisect_right(b, lo + EPS)
        for i in range(k - (k & 1), len(b), 2):
            s, e = b[i], b[i + 1]
            if e <= lo + EPS:
                continue
            if s >= hi - EPS:
                break
            gs = s if s > lo else lo
            width = gs - cursor
            if width > EPS:
                if width >= remaining - EPS:
                    out.extend(
                        (cursor,
                         cursor + (width if width < remaining else remaining))
                    )
                    return IntervalSet._from_boundaries(out)
                out.extend((cursor, gs))
                remaining -= width
            e_clip = min(e, hi)
            if e_clip > cursor:
                cursor = e_clip
        width = hi - cursor
        if width > EPS and width >= remaining - EPS:
            out.extend(
                (cursor, cursor + (width if width < remaining else remaining))
            )
            return IntervalSet._from_boundaries(out)
        raise ValueError(
            f"insufficient idle time: needed {duration:g}, "
            f"short by {remaining:g} after t={lo:g}"
        )

    def next_boundary(self, t: float) -> float | None:
        """Earliest boundary strictly after ``t`` (slice starts and ends).

        Used by the TAPS sender model to know when its rate next changes
        (a slice begins or ends).  Returns ``None`` past the last boundary.
        """
        b = self._b
        lo, hi = 0, len(b)
        while lo < hi:
            mid = (lo + hi) // 2
            if b[mid] <= t + EPS:
                lo = mid + 1
            else:
                hi = mid
        return b[lo] if lo < len(b) else None

    # -- validation -----------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert the canonical-form invariants; used by tests."""
        b = self._b
        if len(b) % 2 != 0:
            raise AssertionError("odd boundary count")
        for i in range(0, len(b), 2):
            if not b[i + 1] - b[i] > EPS:
                raise AssertionError(f"degenerate interval at {i}: {b[i]}..{b[i+1]}")
        for i in range(1, len(b) - 1, 2):
            if not b[i + 1] - b[i] > EPS:
                raise AssertionError(f"touching intervals at boundary {i}")


def _merge_union(a: list[float], b: list[float]) -> list[float]:
    """Union two flat boundary lists with a two-pointer sweep."""
    if not a:
        return list(b)
    if not b:
        return list(a)
    out: list[float] = []
    i = j = 0
    la, lb = len(a), len(b)
    # pull the earlier-starting interval each step, merging overlaps into out
    while i < la or j < lb:
        if j >= lb or (i < la and a[i] <= b[j]):
            s, e = a[i], a[i + 1]
            i += 2
        else:
            s, e = b[j], b[j + 1]
            j += 2
        if out and s <= out[-1] + EPS:
            if e > out[-1]:
                out[-1] = e
        else:
            out.extend((s, e))
    return out


def merge_boundaries(a: list[float], b: list[float]) -> list[float]:
    """Union two flat boundary lists, returning a new list.

    Same result as :func:`_merge_union` (the union is association-free,
    so any strategy must agree float-for-float), but when one side is much
    shorter it splices each of its intervals into a copy of the longer
    side by bisection — O(small · log(large)) Python steps plus C-level
    ``memmove``, instead of walking the whole long list element-wise.
    """
    if not a:
        return list(b)
    if not b:
        return list(a)
    if len(b) > len(a):
        a, b = b, a
    if len(b) * 4 > len(a):
        return _merge_union(a, b)
    out = list(a)
    for j in range(0, len(b), 2):
        s, e = b[j], b[j + 1]
        # intervals of `out` gluing with [s, e): those with end >= s - EPS
        # and start <= e + EPS (the flat list is globally sorted, so plain
        # bisect positions translate directly to interval indices).  The
        # bisect lands within one interval of the exact spot; refine with
        # the two-pointer sweep's literal glue predicate so hairline
        # cases resolve identically.
        n = len(out) >> 1
        k0 = bisect_left(out, s - EPS) >> 1
        while k0 > 0 and s <= out[2 * k0 - 1] + EPS:
            k0 -= 1
        while k0 < n and out[2 * k0 + 1] + EPS < s:
            k0 += 1
        k1 = (bisect_right(out, e + EPS) - 1) >> 1
        if k1 < k0:
            out[2 * k0 : 2 * k0] = (s, e)
        else:
            lo = out[2 * k0]
            hi = out[2 * k1 + 1]
            out[2 * k0 : 2 * k1 + 2] = (
                s if s < lo else lo,
                e if e > hi else hi,
            )
    return out


def occupied_fit_end_pair(
    a: list[float],
    b: list[float],
    duration: float,
    lo: float,
    hi: float,
    stop_at: float = float("inf"),
) -> float:
    """First-fit completion over the **union** of two occupied boundary
    lists, without materialising the union.

    Exactly ``merge(a, b) → complement(lo, hi) → idle_fit_end(duration,
    lo)``, as one two-pointer scan.  Intervals are visited in start order
    and grouped into the union's canonical intervals with the merge's own
    glue predicate — a new union interval starts only where ``s`` exceeds
    the running *unclipped* union end (``uend``) by more than ``EPS``, the
    literal ``s <= out[-1] + EPS`` test of :func:`_merge_union` — and the
    fit's gap logic runs once per group start, against the fit's clipped
    ``cursor``.  Keeping the two predicates separate matters: on
    EPS-chained boundaries the addition form (``s > uend + EPS``) and the
    subtraction form (``s - cursor > EPS``) can disagree by one ulp, and
    only this composition reproduces ``merge → fit`` float-for-float.
    This is Alg. 2's per-candidate score when the candidate's union is
    available as two partial folds (shared prefix + interior segment);
    only the winning candidate ever materialises its union.

    ``stop_at`` aborts with ``inf`` once ``cursor + remaining`` reaches
    it (the fit provably cannot end earlier — see
    :meth:`IntervalSet.occupied_fit_end`).  Raises ``ValueError`` when
    ``[lo, hi)`` holds less than ``duration`` of idle time.
    """
    if duration <= EPS:
        return lo
    remaining = duration
    cursor = lo
    i = bisect_right(a, lo + EPS)
    i -= i & 1
    j = bisect_right(b, lo + EPS)
    j -= j & 1
    la, lb = len(a), len(b)
    # The bisects skip intervals ending at/before lo+EPS, but a skipped
    # interval of one list may still EPS-glue to the first visited
    # interval of the other (lists are canonical individually, not
    # jointly): seed ``uend`` with the latest skipped end so head glue
    # suppresses a phantom sub-2·EPS gap exactly as the real merge would.
    uend = a[i - 1] if i else lo - 1.0
    if j and b[j - 1] > uend:
        uend = b[j - 1]
    while i < la or j < lb:
        if j >= lb or (i < la and a[i] <= b[j]):
            s, e = a[i], a[i + 1]
            i += 2
        else:
            s, e = b[j], b[j + 1]
            j += 2
        if s > uend + EPS:
            # the merge would start a new union interval here: close the
            # previous group and run the union fit's per-interval step
            if s >= hi - EPS:
                break
            gap = (s if s > lo else lo) - cursor
            if gap > EPS:
                if gap >= remaining - EPS:
                    return cursor + (gap if gap < remaining else remaining)
                remaining -= gap
        if e > uend:
            uend = e
        if e <= lo + EPS:
            continue
        e_clip = e if e < hi else hi
        if e_clip > cursor:
            cursor = e_clip
            if cursor + remaining >= stop_at:
                return float("inf")
    gap = hi - cursor
    if gap > EPS and gap >= remaining - EPS:
        return cursor + (gap if gap < remaining else remaining)
    raise ValueError(
        f"insufficient idle time: needed {duration:g}, "
        f"short by {remaining:g} after t={lo:g}"
    )


def union_all(sets: Iterable[IntervalSet]) -> IntervalSet:
    """Union an iterable of interval sets (paper Alg. 3 lines 1–4).

    Pairwise-merges in sequence; occupancy sets per link are short in
    practice (one interval per allocated slice), so a sweep is adequate.
    The union is association-free — any fold order yields the identical
    boundary list, because the EPS-glue groups are determined by the
    multiset of input intervals alone — which is what lets the occupancy
    ledger's fast path share partial folds across candidate paths without
    changing a single float.
    """
    acc: list[float] = []
    for s in sets:
        acc = _merge_union(acc, s._b)
    return IntervalSet._from_boundaries(acc)
