"""ASCII Gantt charts of TAPS allocations.

The paper's motivation figures (Figs. 1–3) draw bottleneck-link occupancy
over time; these renderers reproduce that view from a set of committed
:class:`~repro.core.allocation.FlowPlan`\\ s — one row per flow, or one
row per link — so examples and notebooks can *show* a schedule instead of
describing it.

Characters: ``█`` = transmitting, ``·`` = idle, ``|`` = the flow's
deadline falling inside that cell.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.core.allocation import FlowPlan
from repro.util.intervals import IntervalSet


def _grid(span: tuple[float, float], width: int) -> list[float]:
    t0, t1 = span
    step = (t1 - t0) / width
    return [t0 + i * step for i in range(width + 1)]


def _row(slices: IntervalSet, grid: list[float], deadline: float | None) -> str:
    cells = []
    for a, b in zip(grid, grid[1:]):
        mid = (a + b) / 2
        ch = "█" if slices.contains(mid) else "·"
        if deadline is not None and a <= deadline < b:
            ch = "|"
        cells.append(ch)
    return "".join(cells)


def render_flow_gantt(
    plans: Iterable[FlowPlan],
    width: int = 60,
    span: tuple[float, float] | None = None,
    labels: Mapping[int, str] | None = None,
) -> str:
    """One row per flow: its allocated transmission slices over time.

    ``labels`` optionally maps flow ids to display names; by default rows
    are labelled ``f<task>.<flow>``.
    """
    plans = list(plans)
    if not plans:
        return "(no plans)"
    if span is None:
        lo = min(p.slices.start() for p in plans if p.slices)
        hi = max(
            max(p.completion for p in plans),
            max(p.flow_state.flow.deadline for p in plans),
        )
        span = (min(lo, 0.0), hi * 1.02)
    grid = _grid(span, width)
    name_w = 0
    rows = []
    for p in sorted(plans, key=lambda p: p.flow_state.flow.flow_id):
        f = p.flow_state.flow
        label = (labels or {}).get(f.flow_id, f"f{f.task_id}.{f.flow_id}")
        name_w = max(name_w, len(label))
        rows.append((label, _row(p.slices, grid, f.deadline), p.meets_deadline))
    lines = [
        f"t ∈ [{span[0]:g}, {span[1]:g})   █ transmit   · idle   | deadline"
    ]
    for label, row, ok in rows:
        mark = " " if ok else " MISS"
        lines.append(f"{label.rjust(name_w)} {row}{mark}")
    return "\n".join(lines)


def render_link_gantt(
    occupancy: Mapping[str, IntervalSet],
    width: int = 60,
    span: tuple[float, float] | None = None,
) -> str:
    """One row per link: its occupied time (the ledger's ``O_x`` sets)."""
    items = [(name, occ) for name, occ in occupancy.items() if occ]
    if not items:
        return "(all links idle)"
    if span is None:
        lo = min(occ.start() for _, occ in items)
        hi = max(occ.end() for _, occ in items)
        span = (min(lo, 0.0), hi * 1.02)
    grid = _grid(span, width)
    name_w = max(len(name) for name, _ in items)
    lines = [f"t ∈ [{span[0]:g}, {span[1]:g})   █ occupied   · idle"]
    for name, occ in sorted(items):
        lines.append(f"{name.rjust(name_w)} {_row(occ, grid, None)}")
    return "\n".join(lines)
