"""Text rendering of schedules: Gantt charts of flow slices and per-link
occupancy, in the style of the paper's Fig. 1/2 throughput diagrams."""

from repro.viz.gantt import render_flow_gantt, render_link_gantt

__all__ = ["render_flow_gantt", "render_link_gantt"]
