"""Alg. 2 (*PathCalculation*) and Alg. 3 (*TimeAllocation*).

Given a priority-ordered flow list, each flow greedily claims the earliest
idle time it can find across its candidate paths; committed claims become
occupancy that lower-priority flows must schedule around.  Flows are never
refused here — a flow that cannot fit before its deadline is still
allocated (past the deadline); detecting and acting on such misses is the
reject rule's job (:mod:`repro.core.reject`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.occupancy import OccupancyLedger
from repro.net.paths import PathService
from repro.net.topology import Path
from repro.sim.state import FlowState
from repro.util.errors import AllocationError
from repro.util.intervals import EPS, IntervalSet


@dataclass(slots=True, eq=False)
class FlowPlan:
    """One flow's committed allocation: ``⟨L_ij, A_ij⟩`` of paper Table I.

    Attributes
    ----------
    flow_state:
        The flow this plan serves.
    path:
        Chosen route (link indices) — ``L_ij``.
    slices:
        Pre-allocated transmission intervals — ``A_ij``; their total
        measure equals the flow's remaining transmission time at planning.
    completion:
        End of the last slice; compared against the deadline by the
        reject rule.
    """

    flow_state: FlowState
    path: Path
    slices: IntervalSet
    completion: float

    @property
    def meets_deadline(self) -> bool:
        return self.completion <= self.flow_state.flow.deadline + EPS


def time_allocation(
    ledger: OccupancyLedger,
    path: Path,
    duration: float,
    release: float,
    horizon: float,
) -> tuple[IntervalSet, float]:
    """Alg. 3: allocate ``duration`` of idle time on ``path`` after ``release``.

    Returns ``(slices, completion_time)``.  ``horizon`` must be generous
    enough that the fit always succeeds (callers size it as
    max-deadline + total backlog); running out is a programming error.
    """
    occupied = ledger.union_for(path)
    idle = occupied.complement(release, horizon)
    try:
        slices = idle.first_fit(duration, release)
    except ValueError as exc:
        raise AllocationError(
            f"horizon {horizon:g} too small for duration {duration:g} "
            f"after t={release:g}"
        ) from exc
    return slices, slices.end()


def completion_on_path(
    ledger: OccupancyLedger,
    path: Path,
    duration: float,
    release: float,
    horizon: float,
) -> float:
    """Completion time a flow would get on ``path`` — Alg. 3 without
    materialising the slices (used to compare candidate paths cheaply)."""
    occupied = ledger.union_for(path)
    idle = occupied.complement(release, horizon)
    try:
        return idle.idle_fit_end(duration, release)
    except ValueError as exc:
        raise AllocationError(
            f"horizon {horizon:g} too small for duration {duration:g} "
            f"after t={release:g}"
        ) from exc


def path_calculation(
    flows: list[FlowState],
    ledger: OccupancyLedger,
    paths: PathService,
    capacity: float,
    now: float,
    horizon: float,
    on_unplannable: str = "raise",
) -> dict[int, FlowPlan]:
    """Alg. 2: allocate every flow, in the order given, onto its best path.

    ``flows`` must already be sorted by the caller (Alg. 1 line 9 sorts by
    EDF then SJF).  The ledger is mutated: each flow's winning slices are
    committed before the next flow is considered.

    ``on_unplannable`` controls what happens when *no* candidate path can
    fit a flow within the horizon (only possible when the caller blocked
    links, e.g. for outages): ``"raise"`` propagates
    :class:`~repro.util.errors.AllocationError`; ``"skip"`` omits the flow
    from the returned plans (it simply does not transmit for now).

    Returns plans keyed by flow id.
    """
    if on_unplannable not in ("raise", "skip"):
        raise ValueError(f"bad on_unplannable {on_unplannable!r}")
    plans: dict[int, FlowPlan] = {}
    for fs in flows:
        f = fs.flow
        duration = fs.remaining / capacity
        release = max(now, f.release)
        candidates = paths.candidates(f.src, f.dst)
        if not candidates:
            raise AllocationError(f"no path for flow {f.flow_id}: {f.src}->{f.dst}")

        if len(candidates) == 1:
            best_path = candidates[0]
        else:
            # line 7–14: keep the path with the earliest completion
            best_path, best_end = None, float("inf")
            for p in candidates:
                try:
                    end = completion_on_path(ledger, p, duration, release, horizon)
                except AllocationError:
                    continue  # this candidate cannot fit (blocked link)
                if end < best_end - EPS:
                    best_end, best_path = end, p
        if best_path is None:
            if on_unplannable == "skip":
                continue
            raise AllocationError(
                f"no candidate path can fit flow {f.flow_id} "
                f"({f.src}->{f.dst}) within horizon {horizon:g}"
            )

        try:
            slices, completion = time_allocation(
                ledger, best_path, duration, release, horizon
            )
        except AllocationError:
            if on_unplannable == "skip":
                continue
            raise
        ledger.commit(best_path, slices)
        plans[f.flow_id] = FlowPlan(
            flow_state=fs, path=best_path, slices=slices, completion=completion
        )
    return plans


def allocation_horizon(flows: list[FlowState], capacity: float, now: float) -> float:
    """A horizon that guarantees every fit succeeds.

    Worst case every flow is scheduled serially after the latest deadline:
    ``max(deadline, now) + Σ durations`` plus one second of slack.
    """
    if not flows:
        return now + 1.0
    latest = max(fs.flow.deadline for fs in flows)
    backlog = sum(fs.remaining for fs in flows) / capacity
    return max(latest, now) + backlog + 1.0
