"""Alg. 2 (*PathCalculation*) and Alg. 3 (*TimeAllocation*).

Given a priority-ordered flow list, each flow greedily claims the earliest
idle time it can find across its candidate paths; committed claims become
occupancy that lower-priority flows must schedule around.  Flows are never
refused here — a flow that cannot fit before its deadline is still
allocated (past the deadline); detecting and acting on such misses is the
reject rule's job (:mod:`repro.core.reject`).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

from repro.core.occupancy import OccupancyLedger
from repro.net.paths import PathService
from repro.net.topology import Path
from repro.sim.state import FlowState
from repro.util.errors import AllocationError
from repro.util.intervals import (
    EPS,
    IntervalSet,
    merge_boundaries,
    occupied_fit_end_pair,
)


@dataclass(slots=True, eq=False)
class FlowPlan:
    """One flow's committed allocation: ``⟨L_ij, A_ij⟩`` of paper Table I.

    Attributes
    ----------
    flow_state:
        The flow this plan serves.
    path:
        Chosen route (link indices) — ``L_ij``.
    slices:
        Pre-allocated transmission intervals — ``A_ij``; their total
        measure equals the flow's remaining transmission time at planning.
    completion:
        End of the last slice; compared against the deadline by the
        reject rule.
    """

    flow_state: FlowState
    path: Path
    slices: IntervalSet
    completion: float

    @property
    def meets_deadline(self) -> bool:
        return self.completion <= self.flow_state.flow.deadline + EPS


def time_allocation(
    ledger: OccupancyLedger,
    path: Path,
    duration: float,
    release: float,
    horizon: float,
    occupied: IntervalSet | None = None,
) -> tuple[IntervalSet, float]:
    """Alg. 3: allocate ``duration`` of idle time on ``path`` after ``release``.

    Returns ``(slices, completion_time)``.  ``horizon`` must be generous
    enough that the fit always succeeds (callers size it as
    max-deadline + total backlog); running out is a programming error.
    ``occupied`` lets a caller that already holds the path's occupancy
    union (Alg. 2 just computed it for the winning candidate) skip the
    ledger re-query; it must match ``ledger.union_for(path)``.
    """
    if occupied is None:
        occupied = ledger.union_for(path)
    try:
        slices = occupied.occupied_first_fit(duration, release, horizon)
    except ValueError as exc:
        raise AllocationError(
            f"horizon {horizon:g} too small for duration {duration:g} "
            f"after t={release:g}"
        ) from exc
    return slices, slices.end()


def completion_on_path(
    ledger: OccupancyLedger,
    path: Path,
    duration: float,
    release: float,
    horizon: float,
) -> float:
    """Completion time a flow would get on ``path`` — Alg. 3 without
    materialising the slices (used to compare candidate paths cheaply)."""
    occupied = ledger.union_for(path)
    idle = occupied.complement(release, horizon)
    try:
        return idle.idle_fit_end(duration, release)
    except ValueError as exc:
        raise AllocationError(
            f"horizon {horizon:g} too small for duration {duration:g} "
            f"after t={release:g}"
        ) from exc


def path_calculation(
    flows: list[FlowState],
    ledger: OccupancyLedger,
    paths: PathService,
    capacity: float,
    now: float,
    horizon: float,
    on_unplannable: str = "raise",
    profile=None,
    prune: bool = True,
    spans=None,
) -> dict[int, FlowPlan]:
    """Alg. 2: allocate every flow, in the order given, onto its best path.

    ``flows`` must already be sorted by the caller (Alg. 1 line 9 sorts by
    EDF then SJF).  The ledger is mutated: each flow's winning slices are
    committed before the next flow is considered.

    ``on_unplannable`` controls what happens when *no* candidate path can
    fit a flow within the horizon (only possible when the caller blocked
    links, e.g. for outages): ``"raise"`` propagates
    :class:`~repro.util.errors.AllocationError`; ``"skip"`` omits the flow
    from the returned plans (it simply does not transmit for now).

    ``profile`` (optional :class:`~repro.obs.hotpath.HotPathCounters`)
    counts work done and wall time; ``spans`` (optional
    :class:`~repro.obs.spans.SpanTimers`) additionally records each call's
    duration as a ``path_calculation`` span nested under whatever span the
    caller has open.  ``prune`` enables the fast candidate
    evaluation: candidates whose contention-free completion (``release +
    duration``, a hard lower bound on any path) cannot beat the current
    best are skipped outright, and the survivors are scored with a fused
    pair scan over the path's partial union folds that aborts the moment
    it is provably beaten — instead of materialising each candidate's
    union and idle complement.  Both cut-offs are exact (they only ever
    drop candidates that compare as losers), and the fused scan computes
    the identical completion, so pruning never changes the chosen path.
    ``prune=False`` reproduces the pre-fast-path evaluation (full union +
    complement + fit per candidate) for the reference mode of the
    equivalence tests and benchmarks.

    Returns plans keyed by flow id.
    """
    if on_unplannable not in ("raise", "skip"):
        raise ValueError(f"bad on_unplannable {on_unplannable!r}")
    if spans is not None:
        with spans.span("path_calculation"):
            return _profiled_path_calculation(
                flows, ledger, paths, capacity, now, horizon, on_unplannable,
                profile, prune,
            )
    return _profiled_path_calculation(
        flows, ledger, paths, capacity, now, horizon, on_unplannable,
        profile, prune,
    )


def _profiled_path_calculation(
    flows, ledger, paths, capacity, now, horizon, on_unplannable, profile, prune
) -> dict[int, FlowPlan]:
    if profile is None:
        return _path_calculation(
            flows, ledger, paths, capacity, now, horizon, on_unplannable,
            profile, prune,
        )
    profile.path_calculation_calls += 1
    t0 = perf_counter()
    try:
        return _path_calculation(
            flows, ledger, paths, capacity, now, horizon, on_unplannable,
            profile, prune,
        )
    finally:
        profile.path_calculation_seconds += perf_counter() - t0


def _path_calculation(
    flows: list[FlowState],
    ledger: OccupancyLedger,
    paths: PathService,
    capacity: float,
    now: float,
    horizon: float,
    on_unplannable: str,
    profile,
    prune: bool,
) -> dict[int, FlowPlan]:
    plans: dict[int, FlowPlan] = {}
    for fs in flows:
        f = fs.flow
        duration = fs.remaining / capacity
        release = max(now, f.release)
        candidates = paths.candidates(f.src, f.dst)
        if not candidates:
            raise AllocationError(f"no path for flow {f.flow_id}: {f.src}->{f.dst}")

        best_occ: IntervalSet | None = None
        if len(candidates) == 1:
            best_path = candidates[0]
        else:
            # line 7–14: keep the path with the earliest completion.
            # Fast path: each candidate's union is available as two
            # partial folds (shared endpoint fold + cached interior
            # segment), and its completion is scored straight off the
            # pair with one fused scan — no union is materialised for
            # losing candidates.  Two exact cut-offs skip work:
            #   1. release + duration >= best_end: free; kills every
            #      later candidate once one found a contention-free fit;
            #   2. the scan aborts the moment its earliest possible
            #      completion reaches best_end (stop_at).
            # Only the winner's union is merged, for slice building.
            best_path, best_end = None, float("inf")
            best_parts: tuple[list[float], list[float]] | None = None
            union_memo: dict[Path, list[float]] | None = {} if prune else None
            for p in candidates:
                if profile is not None:
                    profile.candidates_evaluated += 1
                if prune:
                    if (
                        best_path is not None
                        and release + duration >= best_end - EPS
                    ):
                        if profile is not None:
                            profile.candidates_pruned += 1
                        continue
                    shared, inter = ledger.union_parts(p, union_memo)
                    try:
                        end = occupied_fit_end_pair(
                            shared, inter, duration, release, horizon,
                            stop_at=best_end - EPS,
                        )
                    except ValueError:
                        continue  # this candidate cannot fit (blocked link)
                    if end < best_end - EPS:
                        best_end, best_path = end, p
                        best_parts = (shared, inter)
                else:
                    # reference mode: the pre-fast-path evaluation
                    occupied = ledger.union_for(p)
                    idle = occupied.complement(release, horizon)
                    try:
                        end = idle.idle_fit_end(duration, release)
                    except ValueError:
                        continue  # this candidate cannot fit (blocked link)
                    if end < best_end - EPS:
                        best_end, best_path = end, p
            if best_parts is not None:
                best_occ = IntervalSet._from_boundaries(
                    merge_boundaries(best_parts[0], best_parts[1])
                )
        if best_path is None:
            if on_unplannable == "skip":
                continue
            raise AllocationError(
                f"no candidate path can fit flow {f.flow_id} "
                f"({f.src}->{f.dst}) within horizon {horizon:g}"
            )

        try:
            slices, completion = time_allocation(
                ledger, best_path, duration, release, horizon,
                occupied=best_occ,
            )
        except AllocationError:
            if on_unplannable == "skip":
                continue
            raise
        ledger.commit(best_path, slices)
        plans[f.flow_id] = FlowPlan(
            flow_state=fs, path=best_path, slices=slices, completion=completion
        )
    return plans


def allocation_horizon(flows: list[FlowState], capacity: float, now: float) -> float:
    """A horizon that guarantees every fit succeeds.

    Worst case every flow is scheduled serially after the latest deadline:
    ``max(deadline, now) + Σ durations`` plus one second of slack.
    """
    if not flows:
        return now + 1.0
    latest = max(fs.flow.deadline for fs in flows)
    backlog = sum(fs.remaining for fs in flows) / capacity
    return max(latest, now) + backlog + 1.0
