"""Alg. 1 — the TAPS controller as a simulator scheduler.

On every task arrival the controller:

1. gathers ``Ftmp`` = the new task's flows + every in-flight accepted flow
   (their *remaining* sizes — progress made so far is kept);
2. sorts by EDF then SJF and runs :func:`~repro.core.allocation.path_calculation`
   on a **fresh** trial ledger (global re-optimisation: in-flight flows may
   be moved to new slices and even new paths — this is TAPS' preemption);
3. applies the :class:`~repro.core.reject.RejectRule`; on *discard-victim*
   the victim's flows are killed and the trial repeats without them;
4. on acceptance commits the trial (plans + ledger); on rejection drops it
   — in-flight flows keep their previous slices untouched, and the rejected
   task never sends a byte.

Senders then transmit at full link rate exactly inside their allocated
slices (paper §IV-D); accepted flows meet their deadlines by construction,
so the only wasted bytes TAPS can produce come from preempted victims.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from time import perf_counter

from repro.core.allocation import (
    FlowPlan,
    allocation_horizon,
    path_calculation,
)
from repro.core.reject import Decision, PreemptionPolicy, RejectRule
from repro.core.occupancy import OccupancyLedger
from repro.obs.hotpath import HotPathCounters as ProfileCounters
from repro.obs.registry import MetricsRegistry
from repro.sched.base import PRIORITY_KEYS, Scheduler
from repro.sim.state import FlowState, FlowStatus, TaskState
from repro.trace.events import (
    FaultReallocation,
    PlanRecord,
    Preemption,
    TaskAccept,
    TaskDrop,
    TaskReject,
    TrialBegin,
    TrialRollback,
)
from repro.trace.recorder import TraceRecorder
from repro.util.intervals import EPS, IntervalSet

#: how far into the future a down link is considered unusable; the
#: controller does not know outage durations, so "forever" — recovery
#: triggers a fresh reallocation that lifts the block
_BLOCK_HORIZON = 1e15


@dataclass(frozen=True, slots=True)
class RejectionDiagnostics:
    """Why a task was rejected — the controller's explain-mode record.

    Attributes
    ----------
    task_id, time:
        The rejected task and when the decision was made.
    reason:
        ``"deadline-expired"`` (dead on arrival, incl. control latency),
        ``"unreachable"`` (no usable path — outage), ``"would-miss"``
        (the trial allocation missed deadlines; see ``lateness``),
        ``"table-limit"`` (per-switch install budget exceeded).
    lateness:
        For ``would-miss``: ``(flow_id, seconds past its deadline)`` of
        the trial's missing flows — how far from admissible the task was.
    """

    task_id: int
    time: float
    reason: str
    lateness: tuple[tuple[int, float], ...] = ()


@dataclass(slots=True)
class TapsStats:
    """Controller decision counters (reported by experiments).

    ``profile`` holds the hot-path work counters (union-cache hit rate,
    intervals scanned, candidates pruned, time in path calculation) — see
    :class:`~repro.obs.hotpath.HotPathCounters`.
    """

    tasks_accepted: int = 0
    tasks_rejected: int = 0
    tasks_preempted: int = 0
    reallocations: int = 0
    backstop_kills: int = 0
    flows_planned: int = 0
    fault_reroutes: int = 0
    tasks_dropped_on_fault: int = 0
    profile: ProfileCounters = field(default_factory=ProfileCounters)


class TapsScheduler(Scheduler):
    """TAPS: task-level deadline-aware preemptive flow scheduling.

    Parameters
    ----------
    preemption:
        Case-3 comparison policy of the reject rule (see
        :class:`~repro.core.reject.PreemptionPolicy`); the default is the
        paper's literal transmitted-bytes reading.
    batch_window:
        Alg. 1 line 7's wait interval ``T``: tasks arriving within the
        window are admitted together at its end, most urgent first —
        batching buys admission-order freedom at the cost of start
        latency.  0 (default) admits immediately, which is exact for the
        paper's workloads (all flows of a task arrive together anyway).
    control_latency:
        One controller round-trip (probe → compute → install, Fig. 4).
        Transmission slices are only allocated from ``now + latency``;
        reallocation of in-flight flows likewise pauses them for one
        RTT (a conservative model of rule installation delay).
    flow_table_limit:
        §IV-C's switch constraint: "only the first 1k entries are
        installed on a particular switch."  When set, a task whose
        admission would put more than this many concurrently-planned
        flows through any one switch is rejected.  ``None`` (default)
        models unconstrained tables, like the paper's simulations.
    reallocate_inflight:
        Alg. 1 re-path-calculates *all* of ``Ftmp`` on each arrival —
        in-flight flows may move to new slices and paths (the paper's
        global preemptive re-optimisation; default).  ``False`` switches
        to **incremental admission**: existing plans are frozen and only
        the new task's flows are packed around them (cheaper, Varys-like
        rigidity) — the ablation benchmark measures what the global
        reallocation buys.
    priority:
        The ``Ftmp`` sort order of Alg. 1 line 9.  The paper prescribes
        ``"edf_sjf"``; ``"edf"``, ``"sjf"`` and ``"fifo"`` are ablation
        variants (see :data:`repro.sched.base.PRIORITY_KEYS`).
    explain:
        Record a :class:`RejectionDiagnostics` (reason + per-flow
        lateness) for every rejected task in ``self.diagnostics`` —
        the operator's "why was my task refused?" trail.
    fast_path:
        Enable the allocation fast path (default): per-path union caching
        with link-level dirty tracking in the occupancy ledger, candidate
        pruning in Alg. 2, and journal-based trial rollback instead of
        ledger deep copies.  All three are exact — scheduling decisions
        and flow plans are identical either way (asserted by
        ``benchmarks/test_perf_controller.py``); ``False`` is the
        pre-fast-path reference mode those comparisons run against.
    trace:
        Optional :class:`~repro.trace.recorder.TraceRecorder`: the
        controller emits its decision pipeline into it as typed events
        (trial begin/rollback, accept with the full committed plan
        table, reject with the rule clause that fired, preemptions,
        fault reallocations) for offline auditing
        (:func:`~repro.trace.audit.audit_trace`).  Events record
        decisions only — never fast-path internals — so decision-equal
        runs emit identical streams.  When the engine is constructed
        with a recorder it hands it to an un-traced TAPS scheduler
        automatically.
    telemetry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`.  The
        controller records each admission's wall latency into the
        ``controller/admission_latency_seconds`` histogram, opens
        ``admission``/``trial``/``commit``/``rollback`` spans around the
        Alg. 1 pipeline (with ``path_calculation`` nested inside), and
        publishes its decision and hot-path counters at end of run via
        :meth:`publish_telemetry`.  Telemetry is strictly one-way
        observation — no decision ever reads it — so traces stay
        byte-identical with it on or off (see DESIGN.md §7).  ``None``
        (default) disables instrumentation entirely; like ``trace``, the
        engine hands its registry to an uninstrumented TAPS scheduler
        automatically.
    """

    name = "TAPS"

    def __init__(
        self,
        preemption: PreemptionPolicy = PreemptionPolicy.PROGRESS,
        batch_window: float = 0.0,
        control_latency: float = 0.0,
        flow_table_limit: int | None = None,
        reallocate_inflight: bool = True,
        priority: str = "edf_sjf",
        explain: bool = False,
        fast_path: bool = True,
        trace: TraceRecorder | None = None,
        telemetry: MetricsRegistry | None = None,
    ) -> None:
        super().__init__()
        if batch_window < 0 or control_latency < 0:
            raise ValueError("batch_window/control_latency must be >= 0")
        if flow_table_limit is not None and flow_table_limit < 1:
            raise ValueError("flow_table_limit must be >= 1")
        self.rule = RejectRule(preemption)
        self.batch_window = batch_window
        self.control_latency = control_latency
        self.flow_table_limit = flow_table_limit
        self.reallocate_inflight = reallocate_inflight
        if priority not in PRIORITY_KEYS:
            raise ValueError(
                f"unknown priority {priority!r}; known: {sorted(PRIORITY_KEYS)}"
            )
        self.priority = priority
        self._priority_key = PRIORITY_KEYS[priority]
        self.explain = explain
        self.fast_path = fast_path
        self.trace = trace
        self.telemetry = telemetry
        self.diagnostics: list[RejectionDiagnostics] = []
        self._switch_of_link: dict[int, str] = {}
        self.stats = TapsStats()
        self.ledger = self._new_ledger()
        self.plans: dict[int, FlowPlan] = {}
        self._capacity: float = 0.0
        self._task_states: dict[int, TaskState] = {}
        self._pending: list[TaskState] = []
        self._flush_at: float | None = None
        self._down_links: frozenset[int] = frozenset()
        self._accepted_flows: dict[int, FlowState] = {}

    def _new_ledger(self) -> OccupancyLedger:
        """A fresh ledger in this controller's mode, wired to the profile."""
        return OccupancyLedger(profile=self.stats.profile, cache=self.fast_path)

    def attach(self, topology, paths) -> None:
        super().attach(topology, paths)
        self.stats = TapsStats()
        self.ledger = self._new_ledger()
        self.plans = {}
        self._task_states = {}
        self._pending = []
        self._flush_at = None
        self._down_links = frozenset()
        self._accepted_flows = {}
        self.diagnostics = []
        self._capacity = topology.uniform_capacity()
        switch_set = set(topology.switches)
        self._switch_of_link = {
            l.index: l.src for l in topology.links if l.src in switch_set
        }
        if self.trace is not None:
            # trace identity: what the auditor needs to pick invariants.
            # Deliberately excludes fast_path — decision-equal modes must
            # serialize identically (asserted by the equivalence tests).
            self.trace.set_meta(
                scheduler=self.name,
                priority=self.priority,
                preemption=self.rule.policy.value,
                reallocate_inflight=self.reallocate_inflight,
                exclusive_links=True,
            )
        if self.telemetry is not None:
            # telemetry identity may include fast_path — unlike trace meta
            # it is not under the byte-identity contract
            self.telemetry.set_meta(
                scheduler=self.name,
                priority=self.priority,
                preemption=self.rule.policy.value,
                fast_path=self.fast_path,
            )

    # -- telemetry ----------------------------------------------------------

    def _span(self, name: str):
        """A telemetry span, or a free no-op when telemetry is off."""
        tel = self.telemetry
        return tel.spans.span(name) if tel is not None else nullcontext()

    def publish_telemetry(self) -> None:
        """Mirror decision and hot-path counters into the registry.

        Called once at end of run (the engine does it automatically);
        counters accumulate cheaply on :class:`TapsStats` during the run
        and land in the registry here, so the admission hot path never
        touches registry instruments.
        """
        tel = self.telemetry
        if tel is None:
            return
        s = self.stats
        for name in (
            "tasks_accepted", "tasks_rejected", "tasks_preempted",
            "reallocations", "backstop_kills", "flows_planned",
            "fault_reroutes", "tasks_dropped_on_fault",
        ):
            tel.counter("controller/" + name).inc(getattr(s, name))
        s.profile.publish_to(tel, prefix="alloc/")

    # -- decision tracing ---------------------------------------------------

    def _emit(self, event) -> None:
        if self.trace is not None:
            self.trace.emit(event)

    def _plan_records(self) -> tuple[PlanRecord, ...]:
        """The committed plan table as trace records (sorted by flow id —
        construction-order independent, so snapshots diff cleanly)."""
        return tuple(
            PlanRecord(
                flow_id=fid,
                task_id=p.flow_state.flow.task_id,
                path=tuple(p.path),
                slices=tuple(p.slices._b),
                completion=p.completion,
                deadline=p.flow_state.flow.deadline,
            )
            for fid, p in sorted(self.plans.items())
        )

    @staticmethod
    def _trial_flows(
        ftmp: list[FlowState],
    ) -> tuple[tuple[int, float, float, float], ...]:
        """``Ftmp`` in trial order, with the sort-key fields the auditor
        re-checks: ``(flow_id, deadline, remaining, release)``."""
        return tuple(
            (fs.flow.flow_id, fs.flow.deadline, fs.remaining, fs.flow.release)
            for fs in ftmp
        )

    # -- admission (Alg. 1) ------------------------------------------------

    def on_task_arrival(self, task_state: TaskState, now: float) -> None:
        if self.batch_window > 0:
            # Alg. 1 line 7: wait T, gathering concurrent arrivals
            self._pending.append(task_state)
            if self._flush_at is None:
                self._flush_at = now + self.batch_window
            return
        self._admit_task(task_state, now)

    def _flush_pending(self, now: float) -> None:
        """Admit the batched tasks, most urgent (EDF) first."""
        pending, self._pending = self._pending, []
        self._flush_at = None
        for ts in sorted(pending, key=lambda t: (t.task.deadline, t.task.task_id)):
            self._admit_task(ts, now)

    def _admit_task(self, task_state: TaskState, now: float) -> None:
        tel = self.telemetry
        if tel is None:
            self._admit(task_state, now)
            return
        with tel.spans.span("admission"):
            t0 = perf_counter()
            try:
                self._admit(task_state, now)
            finally:
                tel.histogram(
                    "controller/admission_latency_seconds"
                ).observe(perf_counter() - t0)

    def _admit(self, task_state: TaskState, now: float) -> None:
        assert self.paths is not None
        self._task_states[task_state.task.task_id] = task_state
        # one controller round-trip before any new slice can start
        start = now + self.control_latency

        new_flows = [fs for fs in task_state.flow_states if fs.active]
        if task_state.task.deadline <= start + EPS or not new_flows:
            self._reject(task_state, reason="deadline-expired", now=now)
            return
        now = start

        old_flows = [fs for fs in self._accepted_flows.values() if fs.active]
        victims: list[int] = []

        if not self.reallocate_inflight:
            self._admit_incremental(task_state, new_flows, now)
            return

        # fast path: one outage-only base ledger, reset between retries by
        # the rollback journal instead of being rebuilt from scratch
        trial_base = self._outage_ledger() if self.fast_path else None
        spans = None if self.telemetry is None else self.telemetry.spans
        attempt = 0
        while True:
            attempt += 1
            with self._span("trial"):
                ftmp = sorted(old_flows + new_flows, key=self._priority_key)
                if self.trace is not None:
                    self.trace.emit(TrialBegin(
                        now, task_id=task_state.task.task_id, attempt=attempt,
                        flows=self._trial_flows(ftmp),
                    ))
                if trial_base is not None:
                    trial_ledger = trial_base
                    trial_ledger.begin_trial()
                else:
                    trial_ledger = self._outage_ledger()
                horizon = allocation_horizon(ftmp, self._capacity, now)
                trial_plans = path_calculation(
                    ftmp, trial_ledger, self.paths, self._capacity, now,
                    horizon, on_unplannable="skip",
                    profile=self.stats.profile, prune=self.fast_path,
                    spans=spans,
                )
                self.stats.reallocations += 1
                self.stats.flows_planned += len(trial_plans)

                # a new-task flow with no usable path at all (outage) → reject
                if any(fs.flow.flow_id not in trial_plans for fs in new_flows):
                    missing = tuple(
                        (fs.flow.flow_id, fs.flow.task_id)
                        for fs in new_flows
                        if fs.flow.flow_id not in trial_plans
                    )
                    self._reject(task_state, reason="unreachable", now=now,
                                 missing=missing)
                    return

                decision = self.rule.evaluate(
                    trial_plans, task_state, self._task_states
                )

            if decision.decision is Decision.ACCEPT:
                if not self._tables_fit(trial_plans):
                    # §IV-C: some switch would exceed its install budget
                    self._reject(task_state, reason="table-limit", now=now)
                    return
                with self._span("commit"):
                    if trial_base is not None:
                        trial_ledger.commit_trial()
                    self._commit(
                        task_state, trial_plans, trial_ledger, victims, now
                    )
                return

            if decision.decision is Decision.REJECT_NEW:
                # drop the trial; previous plans (untouched) stay in force.
                # A missing flow that got no plan at all (skipped as
                # unplannable) is reported with infinite lateness rather
                # than silently omitted.
                lateness = tuple(
                    (fid, trial_plans[fid].completion
                     - trial_plans[fid].flow_state.flow.deadline)
                    if fid in trial_plans
                    else (fid, float("inf"))
                    for fid in decision.missing_flow_ids
                )
                missing = tuple(
                    (fid,
                     trial_plans[fid].flow_state.flow.task_id
                     if fid in trial_plans else task_state.task.task_id)
                    for fid in decision.missing_flow_ids
                )
                self._reject(task_state, reason="would-miss",
                             lateness=lateness, now=now,
                             clause=decision.clause, missing=missing,
                             victim_ratio=decision.victim_ratio,
                             new_ratio=decision.new_ratio)
                return

            # DISCARD_VICTIM: retry the trial without the victim's flows.
            # The kill is DEFERRED to commit time — if the newcomer ends
            # up rejected anyway (e.g. by the table limit), the victim's
            # committed plans were never touched and it survives intact.
            assert decision.victim_task_id is not None
            self._emit(TrialRollback(
                now, task_id=task_state.task.task_id, attempt=attempt,
                victim_task_id=decision.victim_task_id,
                victim_ratio=decision.victim_ratio,
                new_ratio=decision.new_ratio,
            ))
            with self._span("rollback"):
                victims.append(decision.victim_task_id)
                old_flows = [
                    fs for fs in old_flows
                    if fs.flow.task_id != decision.victim_task_id
                ]
                if trial_base is not None:
                    trial_base.rollback_trial()

    def _commit(
        self,
        task_state: TaskState,
        trial_plans: dict[int, FlowPlan],
        trial_ledger: OccupancyLedger,
        victims: list[int],
        now: float,
    ) -> None:
        # the preemption decided during the trial becomes real only now:
        # kill the victims' flows (their bytes become TAPS' only waste).
        # They keep accepted=True — they *were* admitted; the preemption
        # shows up as a FAILED outcome.
        for victim_id in victims:
            victim_state = self._task_states[victim_id]
            killed: list[int] = []
            for fs in victim_state.flow_states:
                if fs.active:
                    fs.kill(FlowStatus.TERMINATED)
                    killed.append(fs.flow.flow_id)
                self.plans.pop(fs.flow.flow_id, None)
                self._accepted_flows.pop(fs.flow.flow_id, None)
            self._emit(Preemption(
                now, victim_task_id=victim_id,
                by_task_id=task_state.task.task_id,
                killed_flows=tuple(killed),
            ))

        self.plans = dict(trial_plans)
        self.ledger = trial_ledger
        for plan in trial_plans.values():
            plan.flow_state.path = plan.path
        task_state.accepted = True
        for fs in task_state.flow_states:
            if fs.active:
                self._accepted_flows[fs.flow.flow_id] = fs
        self.stats.tasks_accepted += 1
        self.stats.tasks_preempted += len(victims)
        profile = self.stats.profile
        if len(victims) > profile.max_reallocation_depth:
            profile.max_reallocation_depth = len(victims)
        self.active_flows = [
            fs for fs in self._accepted_flows.values() if fs.active
        ]
        if self.trace is not None:
            self.trace.emit(TaskAccept(
                now, task_id=task_state.task.task_id,
                victims=tuple(sorted(victims)),
                plans=self._plan_records(),
            ))

    def _admit_incremental(
        self, task_state: TaskState, new_flows: list[FlowState], now: float
    ) -> None:
        """Incremental admission: pack only the new flows around the
        frozen existing plans; accept iff they all meet their deadlines.

        No reordering, no preemption — deliberately rigid, for the
        reallocation ablation.
        """
        assert self.paths is not None
        ftmp = sorted(new_flows, key=self._priority_key)
        if self.trace is not None:
            self.trace.emit(TrialBegin(
                now, task_id=task_state.task.task_id, attempt=1,
                flows=self._trial_flows(ftmp),
            ))
        if self.fast_path:
            # trial directly on the live ledger; the journal undoes a
            # rejected trial instead of deep-copying every link upfront
            trial_ledger = self.ledger
            trial_ledger.begin_trial()
        else:
            trial_ledger = self.ledger.copy()
        if self._down_links:
            block = IntervalSet.single(0.0, _BLOCK_HORIZON)
            for l in self._down_links:
                trial_ledger.commit((l,), block)
        horizon = allocation_horizon(
            ftmp + [fs for fs in self._accepted_flows.values() if fs.active],
            self._capacity,
            now,
        )
        trial_plans = path_calculation(
            ftmp, trial_ledger, self.paths, self._capacity, now, horizon,
            on_unplannable="skip",
            profile=self.stats.profile, prune=self.fast_path,
            spans=None if self.telemetry is None else self.telemetry.spans,
        )
        self.stats.reallocations += 1
        self.stats.flows_planned += len(trial_plans)

        reject_reason: str | None = None
        lateness: tuple = ()
        missing: tuple = ()
        clause: int | None = None
        task_id = task_state.task.task_id
        if len(trial_plans) < len(new_flows):
            reject_reason = "unreachable"
            missing = tuple(
                (fs.flow.flow_id, task_id)
                for fs in new_flows
                if fs.flow.flow_id not in trial_plans
            )
        elif any(not p.meets_deadline for p in trial_plans.values()):
            # only the newcomer's flows were (re)planned, so a miss here
            # is always the new task's own — the rule's clause 2
            reject_reason = "would-miss"
            clause = 2
            lateness = tuple(
                (fid, p.completion - p.flow_state.flow.deadline)
                for fid, p in trial_plans.items()
                if not p.meets_deadline
            )
            missing = tuple((fid, task_id) for fid, _ in lateness)
        elif not self._tables_fit({**self.plans, **trial_plans}):
            reject_reason = "table-limit"
        if reject_reason is not None:
            if self.fast_path:
                trial_ledger.rollback_trial()
            self._reject(task_state, reason=reject_reason,
                         lateness=lateness, now=now,
                         clause=clause, missing=missing)
            return

        if self.fast_path:
            trial_ledger.commit_trial()
        else:
            self.ledger = trial_ledger
        self.plans.update(trial_plans)
        for plan in trial_plans.values():
            plan.flow_state.path = plan.path
        task_state.accepted = True
        for fs in task_state.flow_states:
            if fs.active:
                self._accepted_flows[fs.flow.flow_id] = fs
        self.stats.tasks_accepted += 1
        if self.trace is not None:
            self.trace.emit(TaskAccept(
                now, task_id=task_state.task.task_id, victims=(),
                plans=self._plan_records(),
            ))

    def _reject(
        self,
        task_state: TaskState,
        reason: str = "would-miss",
        lateness: tuple = (),
        now: float = 0.0,
        clause: int | None = None,
        missing: tuple = (),
        victim_ratio: float | None = None,
        new_ratio: float | None = None,
    ) -> None:
        self._reject_task(task_state)
        self.stats.tasks_rejected += 1
        self._emit(TaskReject(
            now, task_id=task_state.task.task_id, reason=reason,
            clause=clause, missing=tuple(missing), lateness=tuple(lateness),
            victim_ratio=victim_ratio, new_ratio=new_ratio,
        ))
        if self.explain:
            self.diagnostics.append(
                RejectionDiagnostics(
                    task_id=task_state.task.task_id,
                    time=now,
                    reason=reason,
                    lateness=tuple(lateness),
                )
            )

    def _tables_fit(self, trial_plans: dict[int, FlowPlan]) -> bool:
        """Whether every switch's concurrent planned-flow count fits its
        install budget (``flow_table_limit``)."""
        if self.flow_table_limit is None:
            return True
        per_switch: dict[str, int] = {}
        for plan in trial_plans.values():
            if not plan.flow_state.active:
                continue
            for sw in {self._switch_of_link[l] for l in plan.path
                       if l in self._switch_of_link}:
                count = per_switch.get(sw, 0) + 1
                if count > self.flow_table_limit:
                    return False
                per_switch[sw] = count
        return True

    # -- sender model (paper §IV-D) -------------------------------------------

    def assign_rates(self, now: float) -> None:
        if self._flush_at is not None and now >= self._flush_at - EPS:
            self._flush_pending(now)
        # probe just inside 'now' so a boundary landing within float dust
        # of a slice edge resolves to the correct side
        probe = now + 2 * EPS
        capacity = self._capacity
        for plan in self.plans.values():
            fs = plan.flow_state
            if fs.status is not FlowStatus.PENDING:
                continue
            fs.rate = capacity if plan.slices.contains(probe) else 0.0

    def next_change(self, now: float) -> float | None:
        """Earliest upcoming slice boundary or batch-flush time."""
        best: float | None = None
        if self._flush_at is not None and self._flush_at > now + EPS:
            best = self._flush_at
        for plan in self.plans.values():
            if plan.flow_state.status is not FlowStatus.PENDING:
                continue
            b = plan.slices.next_boundary(now)
            if b is not None and (best is None or b < best):
                best = b
        return best

    # -- faults -------------------------------------------------------------

    def _outage_ledger(self) -> OccupancyLedger:
        """A fresh ledger with every down link blocked "forever"."""
        ledger = self._new_ledger()
        if self._down_links:
            block = IntervalSet.single(0.0, _BLOCK_HORIZON)
            for l in self._down_links:
                ledger.commit((l,), block)
        return ledger

    def on_link_state_change(self, down_links: frozenset[int], now: float) -> None:
        """Reroute: globally reallocate all in-flight flows around the new
        outage picture (and back onto recovered links)."""
        self._down_links = frozenset(down_links)
        with self._span("fault_reallocation"):
            self._reallocate_inflight(now)

    def _reallocate_inflight(self, now: float) -> None:
        flows = [fs for fs in self._accepted_flows.values() if fs.active]
        trial_base = self._outage_ledger() if self.fast_path else None
        spans = None if self.telemetry is None else self.telemetry.spans
        dropped: list[int] = []
        while True:
            ftmp = sorted(flows, key=self._priority_key)
            if trial_base is not None:
                ledger = trial_base
                ledger.begin_trial()
            else:
                ledger = self._outage_ledger()
            horizon = allocation_horizon(ftmp, self._capacity, now)
            plans = path_calculation(
                ftmp, ledger, self.paths, self._capacity, now, horizon,
                on_unplannable="skip",
                profile=self.stats.profile, prune=self.fast_path,
                spans=spans,
            )
            self.stats.reallocations += 1
            missing_tasks = {
                p.flow_state.flow.task_id
                for p in plans.values()
                if not p.meets_deadline
            }
            if not missing_tasks:
                if trial_base is not None:
                    ledger.commit_trial()
                self.plans = plans
                self.ledger = ledger
                for p in plans.values():
                    p.flow_state.path = p.path
                self.stats.fault_reroutes += 1
                if self.trace is not None:
                    self.trace.emit(FaultReallocation(
                        now,
                        down_links=tuple(sorted(self._down_links)),
                        dropped_tasks=tuple(sorted(dropped)),
                        plans=self._plan_records(),
                    ))
                return
            # a task the outage made unmeetable: stop it now rather than
            # waste bandwidth on a doomed transfer (task-level philosophy)
            for tid in missing_tasks:
                if self._drop_task_on_fault(tid, now):
                    dropped.append(tid)
            flows = [fs for fs in flows if fs.flow.task_id not in missing_tasks]
            if trial_base is not None:
                trial_base.rollback_trial()

    def _drop_task_on_fault(
        self, task_id: int, now: float = 0.0, cause: str = "fault"
    ) -> bool:
        """Kill the task's flows and count the drop.

        Returns whether anything was dropped — ``False`` when the task was
        never registered (e.g. still pending in a batch window), in which
        case the counter is *not* incremented and callers must not adjust
        it either.
        """
        ts = self._task_states.get(task_id)
        if ts is None:  # still pending in a batch window
            return False
        for fs in ts.flow_states:
            if fs.active:
                fs.kill(FlowStatus.TERMINATED)
            self.plans.pop(fs.flow.flow_id, None)
            self._accepted_flows.pop(fs.flow.flow_id, None)
        self.stats.tasks_dropped_on_fault += 1
        self._emit(TaskDrop(now, task_id=task_id, cause=cause))
        return True

    # -- lifecycle -------------------------------------------------------------

    def on_flow_completed(self, fs: FlowState, now: float) -> None:
        self.plans.pop(fs.flow.flow_id, None)
        self._accepted_flows.pop(fs.flow.flow_id, None)
        super().on_flow_completed(fs, now)

    def on_deadline_expired(self, fs: FlowState, now: float) -> None:
        # Accepted flows meet deadlines by construction; reaching this
        # means an outage stranded the flow past its deadline (or a
        # numerical corner case).  Task-level no-waste: stop the whole
        # task, not just this flow.
        self.stats.backstop_kills += 1
        if self._drop_task_on_fault(fs.flow.task_id, now, cause="backstop"):
            # reclassify: this drop is a backstop kill, not a fault drop.
            # When the task was never registered (still pending in a batch
            # window) nothing was counted, so nothing may be decremented —
            # the unconditional decrement used to drive the counter negative.
            self.stats.tasks_dropped_on_fault -= 1
        if fs.active:
            fs.kill(FlowStatus.TERMINATED)
        self._drop(fs)

    def plan_of(self, flow_id: int) -> FlowPlan | None:
        """The committed plan for a flow (None once completed/never planned)."""
        return self.plans.get(flow_id)
