"""Per-link occupancy ledger — the ``O_x`` sets of paper Table I.

The ledger records, for every link, the union of transmission slices of all
flows allocated onto it.  TAPS rebuilds the ledger from scratch on every
task arrival (Alg. 1 re-path-calculates all of ``Ftmp``), so the ledger
also knows how to reconstruct itself from a set of committed flow plans —
that reconstruction is the rollback path of the reject rule.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.net.topology import Path
from repro.util.intervals import IntervalSet, union_all


class OccupancyLedger:
    """Occupied-time sets for every link of a topology.

    Only links that have ever been touched hold an entry; untouched links
    are implicitly idle everywhere (important on 36k-server topologies
    where a workload touches a tiny fraction of links).
    """

    def __init__(self) -> None:
        self._occ: dict[int, IntervalSet] = {}

    def occupied(self, link_index: int) -> IntervalSet:
        """The occupied set of one link (empty set if untouched)."""
        got = self._occ.get(link_index)
        return got if got is not None else IntervalSet()

    def union_for(self, path: Path) -> IntervalSet:
        """``T_ocp`` — union of occupied sets along a path (Alg. 3 lines 1–4)."""
        sets = [s for l in path if (s := self._occ.get(l)) is not None]
        if not sets:
            return IntervalSet()
        if len(sets) == 1:
            return sets[0].copy()
        return union_all(sets)

    def commit(self, path: Path, slices: IntervalSet) -> None:
        """Mark ``slices`` occupied on every link of ``path`` (Alg. 2 line 15)."""
        for l in path:
            existing = self._occ.get(l)
            if existing is None:
                self._occ[l] = slices.copy()
            else:
                existing.union_update(slices)

    def clear(self) -> None:
        self._occ.clear()

    def copy(self) -> "OccupancyLedger":
        """Deep copy (used by incremental admission trials)."""
        out = OccupancyLedger()
        out._occ = {l: s.copy() for l, s in self._occ.items()}
        return out

    def rebuild(self, plans: Iterable[tuple[Path, IntervalSet]]) -> None:
        """Reset to exactly the union of the given committed plans.

        Used both for the per-arrival fresh ledger (rebuild from surviving
        flows) and for reject-rule rollback (rebuild from the pre-trial
        plans, which restores the previous allocation verbatim).
        """
        self.clear()
        for path, slices in plans:
            self.commit(path, slices)

    def touched_links(self) -> list[int]:
        """Indices of links with any occupancy (diagnostics)."""
        return sorted(l for l, s in self._occ.items() if s)

    def assert_exclusive(self, plans: list[tuple[Path, IntervalSet]]) -> None:
        """Invariant check: no two plans overlap in time on a shared link.

        O(n² · slices) — test/debug use only.
        """
        by_link: dict[int, list[IntervalSet]] = {}
        for path, slices in plans:
            for l in path:
                by_link.setdefault(l, []).append(slices)
        for l, sets in by_link.items():
            for i in range(len(sets)):
                for j in range(i + 1, len(sets)):
                    inter = sets[i].intersection(sets[j])
                    if inter.measure() > 1e-9:
                        raise AssertionError(
                            f"link {l}: overlapping slices {inter!r}"
                        )
