"""Per-link occupancy ledger — the ``O_x`` sets of paper Table I.

The ledger records, for every link, the union of transmission slices of all
flows allocated onto it.  TAPS rebuilds the ledger from scratch on every
task arrival (Alg. 1 re-path-calculates all of ``Ftmp``), so the ledger
also knows how to reconstruct itself from a set of committed flow plans —
that reconstruction is the rollback path of the reject rule.

Two fast-path mechanisms live here (both default-on, both exact):

**Per-path union cache.**  Alg. 2 evaluates every candidate path of every
flow, and :meth:`OccupancyLedger.union_for` is its inner loop.  Within one
``path_calculation`` run, committing a flow only dirties the links of its
winning path — the unions of all disjoint candidate paths stay valid.  The
ledger therefore memoises ``union_for`` per path and tracks dirtiness at
link granularity: :meth:`commit` (and journal rollback) evict exactly the
cached unions that include a changed link, via a link → cached-paths
reverse index.  Cached entries store the union's boundary list; lookups
return an independent copy, preserving ``union_for``'s value semantics.

**Trial journal.**  Admission trials used to deep-copy the whole ledger
(or rebuild it per retry).  :meth:`begin_trial` instead snapshots each
link's boundary list lazily on first touch; :meth:`rollback_trial`
restores exactly those links (and evicts their cached unions), and
:meth:`commit_trial` simply drops the journal.  Undo cost is proportional
to what the trial touched, not to the whole network.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.net.topology import Path
from repro.util.intervals import IntervalSet, merge_boundaries, union_all


class OccupancyLedger:
    """Occupied-time sets for every link of a topology.

    Only links that have ever been touched hold an entry; untouched links
    are implicitly idle everywhere (important on 36k-server topologies
    where a workload touches a tiny fraction of links).

    Parameters
    ----------
    profile:
        Optional :class:`~repro.obs.hotpath.HotPathCounters`
        (duck-typed — any object with the counter attributes works).
        Counts union-cache hits/misses and intervals scanned; ``None``
        disables counting.
    cache:
        Enable the per-path union cache.  ``False`` restores the
        always-recompute behaviour (the pre-fast-path reference mode used
        by the perf benchmark and the equivalence tests).

    Note: :meth:`occupied` returns the ledger's internal set for zero-copy
    reads — callers must not mutate it, or cached unions go stale.
    """

    __slots__ = ("_occ", "_cache_enabled", "_unions", "_paths_by_link",
                 "_seen", "_profile", "_journal")

    def __init__(self, profile=None, cache: bool = True) -> None:
        self._occ: dict[int, IntervalSet] = {}
        self._cache_enabled = cache
        #: path → boundary list of its cached union
        self._unions: dict[Path, list[float]] = {}
        #: link → cached paths that include it (eviction reverse index)
        self._paths_by_link: dict[int, set[Path]] = {}
        #: second-chance admission filter: paths requested at least once.
        #: A union is only stored on its *second* miss — most candidate
        #: paths are queried exactly once between evictions, and storing
        #: them (boundary copy + reverse-index upkeep) would cost more
        #: than the cache ever gives back.
        self._seen: set[Path] = set()
        self._profile = profile
        #: link → pre-trial boundary list (None = link did not exist)
        self._journal: dict[int, list[float] | None] | None = None

    def occupied(self, link_index: int) -> IntervalSet:
        """The occupied set of one link (empty set if untouched)."""
        got = self._occ.get(link_index)
        return got if got is not None else IntervalSet()

    def union_for(
        self, path: Path, memo: dict[Path, list[float]] | None = None
    ) -> IntervalSet:
        """``T_ocp`` — union of occupied sets along a path (Alg. 3 lines 1–4).

        Served from the per-path cache when every link of ``path`` is
        clean since the union was last computed; always returns a copy the
        caller may freely mutate.

        ``memo`` (link-tuple → partial-union boundary list) shares partial
        folds across the candidate paths of one flow: candidates of an
        endpoint pair all run through the same access links and often the
        same aggregation links, and the ledger does not change between
        candidate evaluations.  The union is association-free (see
        :func:`~repro.util.intervals.union_all`), so folding the shared
        links first yields bit-identical boundary lists.  Callers own the
        memo's lifetime and must drop it on any ledger mutation.
        """
        profile = self._profile
        occ = self._occ
        if not self._cache_enabled:
            # reference mode: the pre-fast-path pairwise fold, recomputed
            # on every call
            sets = []
            scanned = 0
            for l in path:
                s = occ.get(l)
                if s is not None:
                    sets.append(s)
                    scanned += len(s._b)
            if profile is not None:
                profile.union_cache_misses += 1
                profile.intervals_scanned += scanned >> 1
            return union_all(sets)
        cached = self._unions.get(path)
        if cached is not None:
            if profile is not None:
                profile.union_cache_hits += 1
            return IntervalSet._from_boundaries(list(cached))
        if profile is not None:
            profile.union_cache_misses += 1
            scanned = 0
            for l in path:
                s = occ.get(l)
                if s is not None:
                    scanned += len(s._b)
            profile.intervals_scanned += scanned >> 1
        if memo is not None and len(path) >= 3:
            out = self._shared_fold(path, memo)
        else:
            out = []
            for l in path:
                s = occ.get(l)
                if s is not None and s._b:
                    out = merge_boundaries(out, s._b) if out else list(s._b)
        seen = self._seen
        if path in seen:
            self._unions[path] = out
            by_link = self._paths_by_link
            for l in path:
                bucket = by_link.get(l)
                if bucket is None:
                    by_link[l] = {path}
                else:
                    bucket.add(path)
            out = list(out)
        else:
            seen.add(path)
        return IntervalSet._from_boundaries(out)

    def _shared_fold(self, path: Path, memo: dict[Path, list[float]]) -> list[float]:
        """Fold a path's link occupancies, memoising shared partials.

        Level 1 folds the access links ``(path[0], path[-1])`` — common to
        every candidate of the endpoint pair.  Level 2 (paths of ≥ 5
        links) adds ``(path[1], path[-2])``, shared by candidates routed
        through the same aggregation pair.  The remaining interior links
        are folded on top per candidate.  Always returns a list the caller
        may keep (copied when it is a memoised partial itself).
        """
        occ = self._occ
        k1 = (path[0], path[-1])
        acc = memo.get(k1)
        if acc is None:
            acc = []
            for l in k1:
                s = occ.get(l)
                if s is not None and s._b:
                    acc = merge_boundaries(acc, s._b) if acc else list(s._b)
            memo[k1] = acc
        shared = acc
        if len(path) >= 5:
            k2 = (path[0], path[-1], path[1], path[-2])
            acc2 = memo.get(k2)
            if acc2 is None:
                acc2 = acc
                for l in (path[1], path[-2]):
                    s = occ.get(l)
                    if s is not None and s._b:
                        acc2 = merge_boundaries(acc2, s._b) if acc2 else list(s._b)
                if acc2 is acc:
                    acc2 = list(acc)
                memo[k2] = acc2
            shared = acc2
            interior = path[2:-2]
        else:
            interior = path[1:-1]
        if len(interior) >= 2:
            # Interior (agg↔core) segments are only dirtied by commits
            # that actually route through them — unlike access links,
            # which every commit of the endpoint host touches — so their
            # folds survive across flows and live in the ledger-level
            # cache (same eviction index as full-path unions).
            inter_b = self._segment_fold(interior)
            if not inter_b:
                return list(shared)
            return merge_boundaries(shared, inter_b) if shared else list(inter_b)
        out = shared
        for l in interior:
            s = occ.get(l)
            if s is not None and s._b:
                out = merge_boundaries(out, s._b) if out else list(s._b)
        if out is shared:
            out = list(shared)
        return out

    def union_parts(
        self, path: Path, memo: dict[Path, list[float]]
    ) -> tuple[list[float], list[float]]:
        """``union_for(path)`` as two partial folds, for the fused pair scan.

        Returns ``(shared, interior)`` boundary lists whose union is
        exactly the path's occupancy union: ``shared`` is the per-flow
        memoised fold of the access/aggregation links common to the
        endpoint pair's candidates, ``interior`` the ledger-cached fold of
        the remaining links (see :meth:`_segment_fold`).  Alg. 2 scores a
        candidate straight off the pair via
        :func:`~repro.util.intervals.occupied_fit_end_pair` — no union is
        materialised for losing candidates.  Both lists are shared
        internals: callers may use them as merge/scan inputs only, never
        mutate them.
        """
        occ = self._occ
        k1 = (path[0], path[-1])
        acc = memo.get(k1)
        if acc is None:
            acc = []
            for l in k1:
                s = occ.get(l)
                if s is not None and s._b:
                    acc = merge_boundaries(acc, s._b) if acc else s._b
            memo[k1] = acc
        shared = acc
        if len(path) >= 5:
            k2 = (path[0], path[-1], path[1], path[-2])
            acc2 = memo.get(k2)
            if acc2 is None:
                acc2 = acc
                for l in (path[1], path[-2]):
                    s = occ.get(l)
                    if s is not None and s._b:
                        acc2 = merge_boundaries(acc2, s._b) if acc2 else s._b
                memo[k2] = acc2
            shared = acc2
            interior = path[2:-2]
        else:
            interior = path[1:-1]
        n = len(interior)
        if n >= 2:
            return shared, self._segment_fold(interior)
        if n == 1:
            s = occ.get(interior[0])
            return shared, (s._b if s is not None else [])
        return shared, []

    def _segment_fold(self, seg: Path) -> list[float]:
        """Cached fold of a link segment's occupancies.

        Keyed in the same ``_unions`` store as full paths (a segment *is*
        a link tuple, and its union value is the same either way), with
        the same second-chance admission and link-level eviction.  The
        returned list may be the cached entry itself — callers use it as
        merge input only and must not mutate it.
        """
        profile = self._profile
        if self._cache_enabled:
            cached = self._unions.get(seg)
            if cached is not None:
                if profile is not None:
                    profile.union_cache_hits += 1
                return cached
        if profile is not None:
            profile.union_cache_misses += 1
        occ = self._occ
        acc: list[float] = []
        for l in seg:
            s = occ.get(l)
            if s is not None and s._b:
                acc = merge_boundaries(acc, s._b) if acc else list(s._b)
        if not self._cache_enabled:
            # commit() only evicts when caching is on; storing here would
            # go stale (pruning may run against an uncached ledger)
            return acc
        # no second-chance gate here: unlike full paths (whose access
        # links are dirtied by every commit of the endpoint host),
        # interior segments are re-queried many times between evictions,
        # so storing on the first miss always pays
        self._unions[seg] = acc
        by_link = self._paths_by_link
        for l in seg:
            bucket = by_link.get(l)
            if bucket is None:
                by_link[l] = {seg}
            else:
                bucket.add(seg)
        return acc

    def commit(self, path: Path, slices: IntervalSet) -> None:
        """Mark ``slices`` occupied on every link of ``path`` (Alg. 2 line 15)."""
        occ = self._occ
        journal = self._journal
        for l in path:
            existing = occ.get(l)
            if journal is not None and l not in journal:
                # Reference snapshot, not a copy: ledger-owned boundary
                # lists are only ever *rebound* (union_update builds a new
                # list), never mutated in place, so the old list survives
                # untouched for rollback to restore.
                journal[l] = None if existing is None else existing._b
            if existing is None:
                occ[l] = slices.copy()
            else:
                # rebind, never mutate in place: the trial journal and the
                # union cache both rely on old boundary lists surviving
                existing._b = merge_boundaries(existing._b, slices._b)
        if self._cache_enabled:
            self._evict(path)

    def _evict(self, links: Iterable[int]) -> None:
        """Drop every cached union that includes one of ``links``."""
        unions = self._unions
        by_link = self._paths_by_link
        for l in links:
            stale = by_link.pop(l, None)
            if stale:
                for p in stale:
                    unions.pop(p, None)

    # -- trial journal -------------------------------------------------------

    def begin_trial(self) -> None:
        """Start recording commits so :meth:`rollback_trial` can undo them.

        Exactly one trial may be active at a time; :meth:`clear` /
        :meth:`rebuild` abort any active trial.
        """
        if self._journal is not None:
            raise RuntimeError("a ledger trial is already active")
        self._journal = {}

    @property
    def in_trial(self) -> bool:
        """Whether a trial journal is currently recording."""
        return self._journal is not None

    def commit_trial(self) -> None:
        """Keep the trial's commits; forget the undo journal."""
        if self._journal is None:
            raise RuntimeError("no active ledger trial")
        self._journal = None

    def rollback_trial(self) -> None:
        """Restore every link touched since :meth:`begin_trial`."""
        if self._journal is None:
            raise RuntimeError("no active ledger trial")
        journal, self._journal = self._journal, None
        occ = self._occ
        for l, prev in journal.items():
            if prev is None:
                occ.pop(l, None)
            else:
                occ[l] = IntervalSet._from_boundaries(prev)
        if self._cache_enabled and journal:
            self._evict(journal.keys())
        if self._profile is not None:
            self._profile.trials_rolled_back += 1

    # -- bulk state ----------------------------------------------------------

    def clear(self) -> None:
        self._occ.clear()
        self._unions.clear()
        self._paths_by_link.clear()
        self._seen.clear()
        self._journal = None

    def copy(self) -> "OccupancyLedger":
        """Deep copy (used by reference-mode incremental admission trials)."""
        out = OccupancyLedger(profile=self._profile, cache=self._cache_enabled)
        out._occ = {l: s.copy() for l, s in self._occ.items()}
        return out

    def rebuild(self, plans: Iterable[tuple[Path, IntervalSet]]) -> None:
        """Reset to exactly the union of the given committed plans.

        Used both for the per-arrival fresh ledger (rebuild from surviving
        flows) and for reject-rule rollback (rebuild from the pre-trial
        plans, which restores the previous allocation verbatim).
        """
        self.clear()
        for path, slices in plans:
            self.commit(path, slices)

    # -- diagnostics ---------------------------------------------------------

    def touched_links(self) -> list[int]:
        """Indices of links with any occupancy (diagnostics)."""
        return sorted(l for l, s in self._occ.items() if s)

    def cache_info(self) -> dict[str, int]:
        """Diagnostics: cached unions and reverse-index size."""
        return {
            "entries": len(self._unions),
            "indexed_links": len(self._paths_by_link),
        }

    def assert_exclusive(self, plans: list[tuple[Path, IntervalSet]]) -> None:
        """Invariant check: no two plans overlap in time on a shared link.

        O(n² · slices) — test/debug use only.
        """
        by_link: dict[int, list[IntervalSet]] = {}
        for path, slices in plans:
            for l in path:
                by_link.setdefault(l, []).append(slices)
        for l, sets in by_link.items():
            for i in range(len(sets)):
                for j in range(i + 1, len(sets)):
                    inter = sets[i].intersection(sets[j])
                    if inter.measure() > 1e-9:
                        raise AssertionError(
                            f"link {l}: overlapping slices {inter!r}"
                        )
