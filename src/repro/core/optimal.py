"""Offline task-subset bound — how close is TAPS to "near-optimal"?

The paper claims near-optimality but cannot compare against an optimum
(the problem is the NP-hard one of §IV-B).  For small instances we can:
an **offline EDF-packing optimum** searches all task subsets for the
largest one whose flows — with full knowledge of future arrivals — can be
packed by the same EDF/SJF greedy allocator TAPS uses (Alg. 2/3).

Two properties make the search sound and fast enough:

* *monotonicity*: under the EDF-greedy evaluator, adding a task can only
  delay existing flows (a higher-priority insertion never speeds anyone
  up), so an infeasible chosen set prunes all its supersets;
* *branch and bound*: sets that cannot beat the incumbent are cut.

Caveat (documented, tested): the bound is an optimum *of the evaluator*,
not of the scheduling problem — TAPS' incremental reallocation could in
principle pack a set the one-shot greedy rejects, so the measured "gap"
is approximate in both directions; on the benchmark workloads it behaves
as an upper bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.allocation import allocation_horizon, path_calculation
from repro.core.occupancy import OccupancyLedger
from repro.net.paths import PathService
from repro.sched.base import edf_sjf_key
from repro.sim.state import FlowState
from repro.util.errors import ConfigurationError
from repro.util.intervals import EPS
from repro.workload.flow import Task


@dataclass(frozen=True, slots=True)
class OfflineBound:
    """Result of the offline subset search."""

    best_count: int
    best_task_ids: tuple[int, ...]
    nodes_explored: int
    feasibility_checks: int


def edf_packing_feasible(
    tasks: list[Task], paths: PathService, capacity: float
) -> bool:
    """Whether every flow of every task meets its deadline when packed by
    the EDF/SJF greedy allocator with offline knowledge (flows released at
    their true arrival times, full sizes)."""
    flows = [FlowState(flow=f) for t in tasks for f in t.flows]
    if not flows:
        return True
    flows.sort(key=edf_sjf_key)
    horizon = allocation_horizon(flows, capacity, now=0.0)
    plans = path_calculation(
        flows, OccupancyLedger(), paths, capacity, now=0.0, horizon=horizon
    )
    return all(
        p.completion <= p.flow_state.flow.deadline + EPS for p in plans.values()
    )


def offline_best_subset(
    tasks: list[Task],
    paths: PathService,
    capacity: float,
    max_nodes: int = 200_000,
) -> OfflineBound:
    """Largest task subset feasible under offline EDF packing.

    Exponential in the number of tasks; intended for ≤ ~15 tasks (the
    optimality-gap benchmarks).  ``max_nodes`` caps the search; hitting
    it raises so a truncated bound is never mistaken for the optimum.
    """
    order = sorted(tasks, key=lambda t: (t.deadline, t.task_id))
    n = len(order)
    state = {"nodes": 0, "checks": 0, "best": 0, "best_ids": ()}

    def recurse(i: int, chosen: list[Task]) -> None:
        state["nodes"] += 1
        if state["nodes"] > max_nodes:
            raise ConfigurationError(
                f"offline search exceeded max_nodes={max_nodes}; "
                "reduce the instance size"
            )
        if len(chosen) > state["best"]:
            state["best"] = len(chosen)
            state["best_ids"] = tuple(t.task_id for t in chosen)
        if i == n or len(chosen) + (n - i) <= state["best"]:
            return
        # include order[i] if still feasible (monotone: prune else)
        candidate = chosen + [order[i]]
        state["checks"] += 1
        if edf_packing_feasible(candidate, paths, capacity):
            recurse(i + 1, candidate)
        recurse(i + 1, chosen)

    recurse(0, [])
    return OfflineBound(
        best_count=state["best"],
        best_task_ids=state["best_ids"],
        nodes_explored=state["nodes"],
        feasibility_checks=state["checks"],
    )
