"""The TAPS reject rule (paper §IV-B, Alg. 1 line 11).

After the trial allocation of ``Ftmp`` (new task + all in-flight flows),
the controller inspects which flows would miss their deadlines and decides:

1. flows of **more than one** task would miss  → *reject the new task*;
2. flows of the **new task itself** would miss → *reject the new task*;
3. all missing flows belong to exactly one **other** task ``V``:
   compare completion ratios — if ``ratio(V) >= ratio(new)`` *reject the
   new task*, else *discard* ``V`` (task preemption) and retry.

The paper leaves "completion ratio" underspecified for a task that has not
yet sent a byte (the newcomer's transmitted-bytes ratio is always 0, which
under a literal reading makes case-3 preemption unreachable — consistent
with §IV-B's "we would not discard flows in tasks which are accepted and
transmitting", but in tension with the abstract's task preemption claim).
We therefore expose the comparison as a policy knob and benchmark the
choice as an ablation:

* ``PROGRESS`` (default, literal): ratio = bytes already transmitted /
  task size.  The incumbent wins ties, so a transmitting task is never
  discarded; only a task with *strictly less* progress than the newcomer
  can be preempted.
* ``PROSPECTIVE``: ratio = fraction of the task's flows that would meet
  their deadline under the trial allocation.  The victim (which by
  definition has missing flows) always loses to the newcomer (whose flows
  all fit in case 3), making preemption aggressive.
* ``NEVER``: unconditional newcomer rejection in case 3 (a conservative
  Varys-like admission, for ablation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.allocation import FlowPlan
from repro.sim.state import TaskState
from repro.util.intervals import EPS


class PreemptionPolicy(enum.Enum):
    """How case 3 of the reject rule compares the victim and the newcomer."""

    PROGRESS = "progress"
    PROSPECTIVE = "prospective"
    NEVER = "never"


class Decision(enum.Enum):
    ACCEPT = "accept"
    REJECT_NEW = "reject-new"
    DISCARD_VICTIM = "discard-victim"


@dataclass(slots=True)
class RejectDecision:
    """Outcome of one rule evaluation.

    ``clause`` names which clause of the rule fired (for the decision
    trace and the auditor): 1 — flows of several tasks missing, 2 — the
    new task's own flows missing, 3 — the single-victim ratio comparison
    (either direction).  ``None`` on a clean accept.  ``victim_ratio`` /
    ``new_ratio`` are the completion ratios clause 3 compared, recorded
    so the comparison can be re-checked offline.
    """

    decision: Decision
    victim_task_id: int | None = None
    missing_flow_ids: tuple[int, ...] = ()
    clause: int | None = None
    victim_ratio: float | None = None
    new_ratio: float | None = None


class RejectRule:
    """Evaluates the reject rule over a trial allocation."""

    def __init__(self, policy: PreemptionPolicy = PreemptionPolicy.PROGRESS) -> None:
        self.policy = policy

    def evaluate(
        self,
        plans: dict[int, FlowPlan],
        new_task: TaskState,
        task_states: dict[int, TaskState],
    ) -> RejectDecision:
        """Apply the rule to a trial allocation.

        ``plans`` is the output of
        :func:`~repro.core.allocation.path_calculation` over ``Ftmp``;
        ``task_states`` maps task id → state for every task with a plan.
        """
        missing = [p for p in plans.values() if not p.meets_deadline]
        if not missing:
            return RejectDecision(Decision.ACCEPT)

        missing_ids = tuple(p.flow_state.flow.flow_id for p in missing)
        missing_tasks = {p.flow_state.flow.task_id for p in missing}
        new_id = new_task.task.task_id

        if new_id in missing_tasks:
            # clause 2: the newcomer's own flows cannot make it
            return RejectDecision(
                Decision.REJECT_NEW, missing_flow_ids=missing_ids, clause=2
            )
        if len(missing_tasks) > 1:
            # clause 1: the newcomer would wreck several incumbents
            return RejectDecision(
                Decision.REJECT_NEW, missing_flow_ids=missing_ids, clause=1
            )

        # clause 3: exactly one other task would miss — compare ratios
        (victim_id,) = missing_tasks
        victim = task_states[victim_id]
        victim_ratio, new_ratio = self._ratios(plans, victim, new_task)
        if self._newcomer_wins(victim_ratio, new_ratio):
            return RejectDecision(
                Decision.DISCARD_VICTIM,
                victim_task_id=victim_id,
                missing_flow_ids=missing_ids,
                clause=3,
                victim_ratio=victim_ratio,
                new_ratio=new_ratio,
            )
        return RejectDecision(
            Decision.REJECT_NEW,
            missing_flow_ids=missing_ids,
            clause=3,
            victim_ratio=victim_ratio,
            new_ratio=new_ratio,
        )

    def _ratios(
        self,
        plans: dict[int, FlowPlan],
        victim: TaskState,
        new_task: TaskState,
    ) -> tuple[float, float]:
        """The (victim, newcomer) completion ratios clause 3 compares.

        Under ``NEVER`` the comparison is unconditional, but the progress
        ratios are still recorded for the decision trace.
        """
        if self.policy is PreemptionPolicy.PROSPECTIVE:
            return self._prospective(plans, victim), self._prospective(plans, new_task)
        return victim.completion_ratio, new_task.completion_ratio

    def _newcomer_wins(self, victim_ratio: float, new_ratio: float) -> bool:
        if self.policy is PreemptionPolicy.NEVER:
            return False
        if self.policy is PreemptionPolicy.PROGRESS:
            # "if the completion ratio of [the victim] is less than tid,
            # discard [the victim]" — strict, so ties keep the incumbent.
            return victim_ratio < new_ratio - 1e-12
        # PROSPECTIVE: fraction of flows meeting deadlines under the trial
        return victim_ratio < new_ratio

    @staticmethod
    def _prospective(plans: dict[int, FlowPlan], ts: TaskState) -> float:
        total = len(ts.flow_states)
        if total == 0:
            return 1.0
        ok = 0
        for fs in ts.flow_states:
            plan = plans.get(fs.flow.flow_id)
            if plan is not None:
                if plan.meets_deadline:
                    ok += 1
            elif fs.met_deadline or (
                fs.completed_at is not None
                and fs.completed_at <= fs.flow.deadline + EPS
            ):
                ok += 1  # already finished in time, no plan needed
        return ok / total
