"""TAPS: the paper's centralized task-aware preemptive scheduler.

Pieces map one-to-one onto the paper's §IV:

* :class:`~repro.core.occupancy.OccupancyLedger` — the per-link occupied
  time sets ``O_x`` (Table I).
* :func:`~repro.core.allocation.time_allocation` — Alg. 3
  (*TimeAllocation*): idle-time complement + first-``E_i`` carve.
* :func:`~repro.core.allocation.path_calculation` — Alg. 2
  (*PathCalculation*): per-flow best-path search over the candidate set.
* :class:`~repro.core.reject.RejectRule` — the accept/discard policy of
  Alg. 1 line 11.
* :class:`~repro.core.controller.TapsScheduler` — Alg. 1 wired into the
  simulator's :class:`~repro.sched.base.Scheduler` contract.
"""

from repro.core.occupancy import OccupancyLedger
from repro.core.allocation import FlowPlan, time_allocation, path_calculation
from repro.core.reject import RejectRule, RejectDecision, PreemptionPolicy
from repro.core.controller import TapsScheduler

__all__ = [
    "OccupancyLedger",
    "FlowPlan",
    "time_allocation",
    "path_calculation",
    "RejectRule",
    "RejectDecision",
    "PreemptionPolicy",
    "TapsScheduler",
]
