"""Scheduler registry: name → factory, for experiment configs and the CLI.

The six names match the paper's figure legends exactly (including the
paper's own "Barrat" typo being normalised to "Baraat").
"""

from __future__ import annotations

from collections.abc import Callable

from repro.sched.base import Scheduler
from repro.sched.baraat import Baraat
from repro.sched.d2tcp import D2TCP
from repro.sched.d3 import D3
from repro.sched.fair import FairSharing
from repro.sched.pdq import PDQ
from repro.sched.varys import Varys
from repro.util.errors import ConfigurationError


def _taps() -> Scheduler:
    # imported lazily: repro.core imports repro.sched.base
    from repro.core.controller import TapsScheduler

    return TapsScheduler()


SCHEDULERS: dict[str, Callable[[], Scheduler]] = {
    "Fair Sharing": FairSharing,
    "D3": D3,
    "PDQ": PDQ,
    "Baraat": Baraat,
    "Varys": Varys,
    "TAPS": _taps,
    "D2TCP": D2TCP,
}

#: the paper's canonical legend order (Fig. 6–12)
PAPER_ORDER: tuple[str, ...] = ("Fair Sharing", "D3", "PDQ", "Baraat", "Varys", "TAPS")

#: PAPER_ORDER plus the §II-discussed extension baselines built here
EXTENDED_ORDER: tuple[str, ...] = PAPER_ORDER[:2] + ("D2TCP",) + PAPER_ORDER[2:]


def make_scheduler(name: str) -> Scheduler:
    """Instantiate a fresh scheduler by figure-legend name."""
    try:
        factory = SCHEDULERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheduler {name!r}; known: {sorted(SCHEDULERS)}"
        ) from None
    return factory()
