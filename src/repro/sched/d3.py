"""D3: Deadline-Driven Delivery control protocol (Wilson et al., SIGCOMM'11).

Per the paper's description (§II, Fig. 1(c) walk-through):

* each deadline flow *requests* a rate ``r = remaining / time-to-deadline``;
* allocation is greedy **in arrival order** (FCFS — the paper calls out that
  this lets "large flows that arrived earlier occupy the bottleneck
  bandwidth, but blocks small flows arrived later");
* a flow whose request cannot be fully met receives whatever its bottleneck
  has left (D3's base-rate behaviour: it keeps sending header-paced packets,
  i.e. it takes the leftover share rather than zero);
* leftover capacity after all requests is spread across flows max-min
  fashion (D3 distributes spare capacity as fair share on top of granted
  requests).

Flows that miss their deadline quit (§V-A), and "the implementation of D3
includes the improvement introduced by [PDQ's comparison]" — we realise
that improvement as the quit-on-miss plus leftover redistribution.
"""

from __future__ import annotations

import math

from repro.sched.base import Scheduler
from repro.sched.waterfill import weighted_max_min
from repro.sim.state import TaskState


class D3(Scheduler):
    """Greedy FCFS deadline-rate allocation with leftover fair share.

    Parameters
    ----------
    allocation_period:
        Real D3 renegotiates rates once per RTT, not continuously; when
        set, the fluid model schedules a rate-refresh change point every
        ``allocation_period`` seconds (requests use the then-current
        remaining size and slack).  ``None`` (default) refreshes only on
        events — the idealised instantaneous-signalling model, slightly
        *stronger* than deployable D3 (see docs/baselines.md).
    """

    name = "D3"

    def __init__(self, allocation_period: float | None = None) -> None:
        super().__init__()
        if allocation_period is not None and allocation_period <= 0:
            raise ValueError("allocation_period must be positive")
        self.allocation_period = allocation_period

    def next_change(self, now: float) -> float | None:
        if self.allocation_period is None or not self.active_flows:
            return None
        return now + self.allocation_period

    def on_task_arrival(self, task_state: TaskState, now: float) -> None:
        task_state.accepted = True
        self._admit_flows(task_state)

    def assign_rates(self, now: float) -> None:
        assert self.topology is not None
        flows = self.active_flows
        if not flows:
            return

        links = self.topology.links
        avail: dict[int, float] = {}
        for fs in flows:
            for l in fs.path:  # type: ignore[union-attr]
                if l not in avail:
                    avail[l] = links[l].capacity

        # pass 1: grant requests FCFS (arrival order == flow_id order,
        # since ids are assigned in arrival order)
        ordered = sorted(flows, key=lambda fs: fs.flow.flow_id)
        for fs in ordered:
            ttd = fs.flow.deadline - now
            request = fs.remaining / ttd if ttd > 1e-12 else math.inf
            bottleneck = min(avail[l] for l in fs.path)  # type: ignore[union-attr]
            grant = min(request, bottleneck)
            fs.rate = grant
            if grant > 0:
                for l in fs.path:  # type: ignore[union-attr]
                    avail[l] -= grant

        # pass 2: distribute leftovers max-min among all flows
        extras = weighted_max_min(
            ordered,
            [1.0] * len(ordered),
            link_capacity=lambda l: avail[l],
        )
        for fs, e in zip(ordered, extras):
            fs.rate += e
