"""Varys: efficient coflow scheduling (Chowdhury et al., SIGCOMM'14),
in its deadline-sensitive admission-control mode.

Per the paper (§II, Fig. 2(c) walk-through, §V-A "Pseudocode 1 and 2
adapted to the deadline-sensitive simulations"):

* tasks (coflows) are handled **FIFO by arrival**; no preemption — "Once a
  task is scheduled, it would not be rejected";
* on arrival, each flow of the task asks for the constant rate
  ``r = s / d`` that finishes it exactly at the deadline (the
  minimum-allocation-for-desired-duration idea of Varys' MADD);
* the task is **admitted iff every link can carry its flows' rates on top
  of existing reservations**; otherwise the whole task is rejected before
  sending a single byte (which is why Varys wastes almost no bandwidth in
  the paper's Fig. 8);
* admitted flows hold their reservation until completion, which lands on
  the deadline by construction.

The paper's criticism — "Varys is very sensitive to the task arrival
order, which may make later-arrived but more urgent tasks miss deadlines"
— falls straight out of this model and is demonstrated by the Fig. 2
motivation example.
"""

from __future__ import annotations

from repro.sim.state import FlowState, FlowStatus, TaskState
from repro.sched.base import Scheduler


class Varys(Scheduler):
    """Varys coflow scheduling.

    Two modes:

    * ``mode="deadline"`` (default — what the paper compares against):
      admission control with ``r = s/d`` reservations, FIFO, no
      preemption.
    * ``mode="sebf"``: Varys' primary (deadline-agnostic) algorithm —
      Smallest-Effective-Bottleneck-First.  Coflows are ordered by their
      bottleneck duration ``Γ`` (the longest per-link backlog of the
      coflow alone); the head coflow gets MADD rates (every flow paced to
      finish exactly at the coflow's own bottleneck time, wasting nothing
      on early finishers) and lower-priority coflows backfill leftover
      capacity.  SEBF minimises *average coflow completion time*, not
      deadline hits — the extension benchmark measures exactly that.
    """

    name = "Varys"

    def __init__(self, mode: str = "deadline") -> None:
        super().__init__()
        if mode not in ("deadline", "sebf"):
            raise ValueError(f"unknown Varys mode {mode!r}")
        self.mode = mode
        self._reserved: dict[int, float] = {}  # link index -> reserved rate
        self._rate_of: dict[int, float] = {}  # flow id -> reserved rate
        self._coflows: dict[int, list] = {}  # task id -> active flow states

    def attach(self, topology, paths) -> None:
        super().attach(topology, paths)
        self._reserved = {}
        self._rate_of = {}
        self._coflows = {}

    # -- SEBF mode -----------------------------------------------------------

    def _sebf_arrival(self, task_state: TaskState, now: float) -> None:
        assert self.paths is not None
        task_state.accepted = True  # SEBF admits everything
        flows = [fs for fs in task_state.flow_states if fs.active]
        for fs in flows:
            f = fs.flow
            fs.path = self.paths.ecmp_path(f.flow_id, f.src, f.dst)
            self.active_flows.append(fs)
        self._coflows[task_state.task.task_id] = flows

    def _bottleneck_time(self, flows: list) -> float:
        """Γ: the coflow's longest per-link backlog, alone on the fabric."""
        assert self.topology is not None
        links = self.topology.links
        backlog: dict[int, float] = {}
        for fs in flows:
            for l in fs.path:
                backlog[l] = backlog.get(l, 0.0) + fs.remaining
        return max(
            (b / links[l].capacity for l, b in backlog.items()), default=0.0
        )

    def _sebf_rates(self, now: float) -> None:
        assert self.topology is not None
        links = self.topology.links
        avail = {}
        order = []
        for tid, flows in self._coflows.items():
            live = [fs for fs in flows if fs.active]
            if live:
                order.append((self._bottleneck_time(live), tid, live))
        order.sort()
        for fs in self.active_flows:
            fs.rate = 0.0
        for gamma, _tid, live in order:
            if gamma <= 0:
                continue
            # MADD: pace every flow to finish at the coflow's Γ, scaled
            # down if higher-priority coflows already claimed capacity
            demands = [(fs, fs.remaining / gamma) for fs in live]
            scale = 1.0
            need: dict[int, float] = {}
            for fs, d in demands:
                for l in fs.path:
                    need[l] = need.get(l, 0.0) + d
            for l, d in need.items():
                free = avail.get(l, links[l].capacity)
                if d > 1e-15:
                    scale = min(scale, max(0.0, free) / d)
            if scale <= 1e-12:
                continue
            for fs, d in demands:
                fs.rate = d * scale
                for l in fs.path:
                    avail[l] = avail.get(l, links[l].capacity) - fs.rate

    # -- shared entry points -----------------------------------------------------

    def on_task_arrival(self, task_state: TaskState, now: float) -> None:
        if self.mode == "sebf":
            self._sebf_arrival(task_state, now)
            return
        self._deadline_arrival(task_state, now)

    def _deadline_arrival(self, task_state: TaskState, now: float) -> None:
        assert self.topology is not None and self.paths is not None
        links = self.topology.links

        # route first (flow-level ECMP), then test feasibility link by link
        demands: dict[int, float] = {}
        flow_rates: list[tuple[FlowState, float]] = []
        feasible = True
        for fs in task_state.flow_states:
            f = fs.flow
            ttd = f.deadline - now
            if ttd <= 1e-12:
                feasible = False
                break
            rate = fs.remaining / ttd
            path = self.paths.ecmp_path(f.flow_id, f.src, f.dst)
            fs.path = path
            flow_rates.append((fs, rate))
            for l in path:
                demands[l] = demands.get(l, 0.0) + rate

        if feasible:
            for l, demand in demands.items():
                if self._reserved.get(l, 0.0) + demand > links[l].capacity * (1 + 1e-9):
                    feasible = False
                    break

        if not feasible:
            self._reject_task(task_state)
            return

        task_state.accepted = True
        for fs, rate in flow_rates:
            self._rate_of[fs.flow.flow_id] = rate
            for l in fs.path:  # type: ignore[union-attr]
                self._reserved[l] = self._reserved.get(l, 0.0) + rate
            self.active_flows.append(fs)

    def assign_rates(self, now: float) -> None:
        if self.mode == "sebf":
            self._sebf_rates(now)
            return
        for fs in self.active_flows:
            fs.rate = self._rate_of[fs.flow.flow_id]

    def _release(self, fs: FlowState) -> None:
        rate = self._rate_of.pop(fs.flow.flow_id, None)
        if rate is not None and fs.path is not None:
            for l in fs.path:
                self._reserved[l] = max(0.0, self._reserved[l] - rate)

    def on_flow_completed(self, fs: FlowState, now: float) -> None:
        self._release(fs)
        super().on_flow_completed(fs, now)

    def on_deadline_expired(self, fs: FlowState, now: float) -> None:
        if self.mode == "sebf":
            # SEBF is deadline-agnostic: flows run to completion (their
            # lateness shows up in the CCT metric, not as termination)
            return
        # deadline mode: unreachable under exact reservations (completion
        # == deadline); backstop so numerical corner cases free capacity.
        self._release(fs)
        fs.kill(FlowStatus.TERMINATED)
        self._drop(fs)
