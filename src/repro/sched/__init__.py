"""Flow/task schedulers: the five baselines evaluated in the paper plus
the shared scheduler contract.

* :class:`~repro.sched.fair.FairSharing` — deadline/task-agnostic max-min
  fair sharing (the TCP/RCP stand-in; §II, §V-A).
* :class:`~repro.sched.d3.D3` — Deadline-Driven Delivery: per-flow rate
  requests ``r = remaining / time-to-deadline`` granted greedily in FCFS
  order (§II).
* :class:`~repro.sched.pdq.PDQ` — Preemptive Distributed Quick flow
  scheduling: EDF+SJF criticality, exclusive full-rate links, Early
  Termination (§II).
* :class:`~repro.sched.baraat.Baraat` — task-aware, deadline-agnostic FIFO
  task order with SJF inside a task (§II).
* :class:`~repro.sched.varys.Varys` — coflow-aware admission control with
  ``r = s/d`` reservations, FIFO, no preemption (§II).

TAPS itself lives in :mod:`repro.core` (it is the paper's contribution, not
a baseline) but implements the same :class:`~repro.sched.base.Scheduler`
contract, so the engine treats all six identically.
"""

from repro.sched.base import Scheduler
from repro.sched.fair import FairSharing
from repro.sched.d2tcp import D2TCP
from repro.sched.d3 import D3
from repro.sched.pdq import PDQ
from repro.sched.baraat import Baraat
from repro.sched.varys import Varys
from repro.sched.registry import SCHEDULERS, make_scheduler

__all__ = [
    "Scheduler",
    "FairSharing",
    "D2TCP",
    "D3",
    "PDQ",
    "Baraat",
    "Varys",
    "SCHEDULERS",
    "make_scheduler",
]
