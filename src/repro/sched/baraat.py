"""Baraat: decentralized task-aware scheduling (Dogar et al., SIGCOMM'14).

Per the paper (§II, Fig. 2(b) walk-through):

* tasks are prioritised **FIFO by arrival** ("earlier-arrived task has
  higher priority" — task serial number);
* within a task, flows are ordered by **SJF**;
* "The flow scheduling of Baraat is similar to PDQ except the flow
  priority" — i.e. the same exclusive full-rate preemptive transmission
  model, but ranked by (task arrival, intra-task SJF);
* Baraat is **deadline-agnostic in its scheduling**: no Early Termination,
  no deadline-based priorities — so it happily pushes flows that are
  doomed, which is why its waste is the highest of the deadline-aware
  field in the paper's Fig. 8(b).  The §V-A simulation courtesy ("useless
  transmission can be avoided") still stops a flow once its deadline has
  actually *passed*; set ``stop_missed_flows=False`` for the fully
  oblivious variant that transmits to completion.
"""

from __future__ import annotations

from repro.sched.base import Scheduler, exclusive_full_rate
from repro.sim.state import FlowState, TaskState


class Baraat(Scheduler):
    """FIFO task order, SJF within task, exclusive full-rate links."""

    name = "Baraat"

    def __init__(self, stop_missed_flows: bool = True) -> None:
        super().__init__()
        self.stop_missed_flows = stop_missed_flows
        self._task_serial: dict[int, int] = {}
        self._next_serial = 0

    def on_task_arrival(self, task_state: TaskState, now: float) -> None:
        task_state.accepted = True
        self._task_serial[task_state.task.task_id] = self._next_serial
        self._next_serial += 1
        self._admit_flows(task_state)

    def _priority(self, fs: FlowState) -> tuple[int, float, int]:
        return (
            self._task_serial[fs.flow.task_id],
            fs.remaining,  # SJF within the task
            fs.flow.flow_id,
        )

    def assign_rates(self, now: float) -> None:
        assert self.topology is not None
        if not self.active_flows:
            return
        links = self.topology.links
        exclusive_full_rate(
            self.active_flows,
            priority_key=self._priority,
            capacity_of=lambda path: min(links[l].capacity for l in path),
        )

    def on_deadline_expired(self, fs: FlowState, now: float) -> None:
        if self.stop_missed_flows:
            super().on_deadline_expired(fs, now)
        # else: fully deadline-oblivious, keep transmitting
