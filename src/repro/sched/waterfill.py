"""Weighted max-min fairness by progressive filling.

The fluid ideal of window-based congestion control: repeatedly find the
most-contended link (smallest capacity per unit weight), freeze the fair
share of all its unfrozen flows, subtract, repeat.  With unit weights
this is classic max-min (Fair Sharing); with deadline-derived weights it
is the fluid model of D2TCP; it also distributes D3's leftover capacity.

Complexity O(L·F) per call — fine at experiment scale; the engine only
recomputes when the active set changes.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.sim.state import FlowState


def weighted_max_min(
    flows: Sequence[FlowState],
    weights: Sequence[float],
    link_capacity,
    base: dict[int, float] | None = None,
) -> list[float]:
    """Rates for ``flows`` under weighted max-min fairness.

    Parameters
    ----------
    flows:
        Flow states; each must have a routed ``path``.
    weights:
        Positive per-flow weights; a flow's share on its bottleneck is
        proportional to its weight.
    link_capacity:
        ``link_capacity(link_index) -> float`` available capacity.
    base:
        Optional pre-consumed capacity per link (D3's granted requests);
        the filling runs on what remains.

    Returns the per-flow rates, aligned with ``flows``.
    """
    if len(flows) != len(weights):
        raise ValueError("flows and weights must align")
    if any(w <= 0 for w in weights):
        raise ValueError("weights must be positive")

    # per-link state, maintained incrementally: remaining capacity and the
    # weight-sum of still-unfrozen flows (the naive per-round rescan is
    # O(rounds·L·F); this is O(rounds·L + Σ path lengths))
    remaining: dict[int, float] = {}
    wsum: dict[int, float] = {}
    link_flows: dict[int, list[int]] = {}
    for idx, fs in enumerate(flows):
        assert fs.path is not None, f"flow {fs.flow.flow_id} unrouted"
        w = weights[idx]
        for l in fs.path:
            if l not in remaining:
                consumed = 0.0 if base is None else base.get(l, 0.0)
                remaining[l] = max(0.0, link_capacity(l) - consumed)
                wsum[l] = 0.0
                link_flows[l] = []
            link_flows[l].append(idx)
            wsum[l] += w

    unfrozen = [True] * len(flows)
    rates = [0.0] * len(flows)
    count = len(flows)
    while count > 0:
        best_link, best_fill = -1, math.inf
        for l, ws in wsum.items():
            if ws <= 1e-15:
                continue
            fill = remaining[l] / ws
            if fill < best_fill:
                best_fill, best_link = fill, l
        if best_link < 0:
            break
        for i in link_flows[best_link]:
            if unfrozen[i]:
                unfrozen[i] = False
                count -= 1
                rate = best_fill * weights[i]
                rates[i] = rate
                for l in flows[i].path:  # type: ignore[union-attr]
                    remaining[l] = max(0.0, remaining[l] - rate)
                    wsum[l] -= weights[i]
        wsum[best_link] = 0.0  # exactly saturated; guard float residue
    return rates
