"""The scheduler contract shared by all six policies.

A scheduler owns four decisions, invoked by the engine:

1. **Admission** (:meth:`Scheduler.on_task_arrival`): accept, reject, or
   preempt; route flows (set ``FlowState.path``).
2. **Rates** (:meth:`Scheduler.assign_rates`): write ``FlowState.rate`` for
   every flow it manages; called only when the allocation is dirty.
3. **Change points** (:meth:`Scheduler.next_change`): the next time rates
   would change with no external event (e.g. a TAPS slice boundary, a
   Varys reservation expiry that frees capacity).
4. **Deadline reaction** (:meth:`Scheduler.on_deadline_expired`): quit the
   flow, kill it, or let it keep transmitting (Baraat).

Helper mixins here implement the common "exclusive full-rate links by
priority" allocation used by PDQ, Baraat, and the motivation examples.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.net.paths import PathService
from repro.net.topology import Topology
from repro.sim.state import FlowState, FlowStatus, TaskState


class Scheduler(ABC):
    """Base class: lifecycle hooks with safe defaults."""

    #: short name used in reports and figure legends
    name: str = "scheduler"

    def __init__(self) -> None:
        self.topology: Topology | None = None
        self.paths: PathService | None = None
        self.active_flows: list[FlowState] = []

    # -- lifecycle ----------------------------------------------------------

    def attach(self, topology: Topology, paths: PathService) -> None:
        """Bind to a network; called once by the engine before the run."""
        self.topology = topology
        self.paths = paths
        self.active_flows = []

    @abstractmethod
    def on_task_arrival(self, task_state: TaskState, now: float) -> None:
        """Admit/reject the task and route its flows."""

    @abstractmethod
    def assign_rates(self, now: float) -> None:
        """Write ``rate`` on every managed flow state."""

    def next_change(self, now: float) -> float | None:
        """Next spontaneous rate-change time, or ``None``."""
        return None

    def on_flow_completed(self, fs: FlowState, now: float) -> None:
        """A managed flow delivered its last byte."""
        self._drop(fs)

    def on_deadline_expired(self, fs: FlowState, now: float) -> None:
        """Default policy: quit-on-miss (paper §V-A: D3/Fair Sharing "will
        not send more packets from flows already missed their deadlines").
        Deadline-agnostic schedulers override this with a no-op."""
        fs.kill(FlowStatus.TERMINATED)
        self._drop(fs)

    def on_link_state_change(self, down_links: frozenset[int], now: float) -> None:
        """A link failed or recovered (``down_links`` is the full current
        outage set).  Default: do nothing — the engine already stops
        transmission across down links, so an oblivious scheduler's flows
        stall until recovery.  Reactive schedulers (the TAPS controller)
        override this to reroute."""

    # -- shared bookkeeping ---------------------------------------------------

    def _admit_flows(self, task_state: TaskState, use_ecmp: bool = True) -> None:
        """Route and start tracking every flow of a task."""
        assert self.paths is not None
        for fs in task_state.flow_states:
            if fs.path is None and use_ecmp:
                f = fs.flow
                fs.path = self.paths.ecmp_path(f.flow_id, f.src, f.dst)
            self.active_flows.append(fs)

    def _reject_task(self, task_state: TaskState) -> None:
        """Reject a task outright: no flow ever transmits."""
        task_state.accepted = False
        for fs in task_state.flow_states:
            fs.kill(FlowStatus.REJECTED)

    def _drop(self, fs: FlowState) -> None:
        try:
            self.active_flows.remove(fs)
        except ValueError:
            pass


def exclusive_full_rate(
    flows: list[FlowState],
    priority_key,
    capacity_of,
) -> None:
    """Greedy exclusive-link allocation (PDQ's transmission model, §IV-A).

    Flows are visited in ``priority_key`` order; a flow transmits at the
    full rate of its path iff *every* link on its path is still unclaimed;
    otherwise its rate is zero ("at most one flow on transmission on each
    link at any time").

    ``capacity_of(path)`` returns the bottleneck rate of the path (uniform
    capacity in the paper, but kept general).
    """
    busy: set[int] = set()
    for fs in sorted(flows, key=priority_key):
        path = fs.path
        assert path is not None, f"flow {fs.flow.flow_id} has no path"
        if any(l in busy for l in path):
            fs.rate = 0.0
        else:
            fs.rate = capacity_of(path)
            busy.update(path)


def edf_sjf_key(fs: FlowState) -> tuple[float, float, int]:
    """EDF first, SJF (remaining) second, flow id as the stable tie-break.

    The priority used by PDQ's criticality and TAPS' ``Ftmp`` sort
    (paper Alg. 1 line 9: "sort Ftmp according to EDF and SJF").
    """
    return (fs.flow.deadline, fs.remaining, fs.flow.flow_id)


def edf_key(fs: FlowState) -> tuple[float, int]:
    """Pure EDF (ablation variant of the Ftmp sort)."""
    return (fs.flow.deadline, fs.flow.flow_id)


def sjf_key(fs: FlowState) -> tuple[float, int]:
    """Pure SJF on remaining size (ablation variant)."""
    return (fs.remaining, fs.flow.flow_id)


def fifo_key(fs: FlowState) -> tuple[float, int]:
    """Release-order FIFO (ablation variant; D3-like arrival priority)."""
    return (fs.flow.release, fs.flow.flow_id)


#: the Ftmp orderings the priority ablation sweeps
PRIORITY_KEYS = {
    "edf_sjf": edf_sjf_key,
    "edf": edf_key,
    "sjf": sjf_key,
    "fifo": fifo_key,
}
