"""Fair Sharing: max-min fair rate allocation, deadline- and task-agnostic.

The paper's stand-in for TCP/RCP-style transports (§II, §V-A): "Each flow
that competes for a bottleneck link gets a fair share of the link
capacity."  We realise the fluid ideal of that competition — **max-min
fairness** via progressive filling: repeatedly find the most-contended link,
freeze the fair share of all its unfrozen flows, subtract, repeat.

Per §V-A, flows that have already missed their deadline stop sending
(inherited default :meth:`~repro.sched.base.Scheduler.on_deadline_expired`),
"so that useless transmission can be avoided" — the bytes they sent still
count as wasted bandwidth in the metrics.
"""

from __future__ import annotations

from repro.sched.base import Scheduler
from repro.sched.waterfill import weighted_max_min
from repro.sim.state import TaskState


class FairSharing(Scheduler):
    """Max-min fair sharing over ECMP paths.

    Parameters
    ----------
    quit_on_miss:
        §V-A grants the simulated Fair Sharing the courtesy of stopping
        flows that have already missed their deadlines.  The *testbed*
        Fair Sharing of §VI is plain TCP with no deadline knowledge, so
        the Fig. 14 experiment runs with ``quit_on_miss=False`` — doomed
        flows keep competing (and wasting) until they finish.
    """

    name = "Fair Sharing"

    def __init__(self, quit_on_miss: bool = True) -> None:
        super().__init__()
        self.quit_on_miss = quit_on_miss

    def on_deadline_expired(self, fs, now: float) -> None:
        if self.quit_on_miss:
            super().on_deadline_expired(fs, now)
        # else: deadline-oblivious, keep transmitting

    def on_task_arrival(self, task_state: TaskState, now: float) -> None:
        task_state.accepted = True  # fair sharing admits everything
        self._admit_flows(task_state)

    def assign_rates(self, now: float) -> None:
        assert self.topology is not None
        flows = self.active_flows
        if not flows:
            return
        links = self.topology.links
        rates = weighted_max_min(
            flows, [1.0] * len(flows), link_capacity=lambda l: links[l].capacity
        )
        for fs, r in zip(flows, rates):
            fs.rate = r
