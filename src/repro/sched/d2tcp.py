"""D2TCP: Deadline-aware Datacenter TCP (Vamanan et al., SIGCOMM 2012).

The paper discusses D2TCP as the flow-level deadline-aware transport that
still "cannot minimize the deadline-missing tasks" (§II).  D2TCP keeps
DCTCP's congestion control but scales each flow's window backoff by a
deadline factor

    d = Tc / D   (time needed at the current rate / time left),

clamped to [0.5, 2]: far-deadline flows back off more, near-deadline
flows back off less, so bottleneck bandwidth tilts toward urgency.

Fluid model: weighted max-min fairness with weight ``d`` recomputed at
every allocation event — the stationary bandwidth split D2TCP's gamma-
correction converges to on a shared bottleneck.  Like the other
simulated transports it stops flows that have already missed their
deadline (§V-A's no-useless-transmission courtesy).

D2TCP is *not* part of the paper's evaluated six; it is provided as an
extension baseline (``EXTENDED_ORDER`` in the registry) and exercised by
the extension tests and the d2tcp example sweep.
"""

from __future__ import annotations

from repro.sched.base import Scheduler
from repro.sched.waterfill import weighted_max_min
from repro.sim.state import TaskState

#: the clamp D2TCP applies to its deadline factor
D_MIN, D_MAX = 0.5, 2.0


class D2TCP(Scheduler):
    """Deadline-weighted fair sharing (fluid D2TCP).

    Real D2TCP re-evaluates its gamma factor every RTT; the fluid model
    mirrors that by scheduling a rate-refresh change point a fraction of
    the most urgent flow's remaining slack ahead (parameter
    ``refresh_fraction``), so a flow that falls behind sees its weight —
    and share — grow over time.
    """

    name = "D2TCP"

    def __init__(self, refresh_fraction: float = 0.125) -> None:
        super().__init__()
        if not 0 < refresh_fraction <= 1:
            raise ValueError("refresh_fraction must be in (0, 1]")
        self.refresh_fraction = refresh_fraction

    def on_task_arrival(self, task_state: TaskState, now: float) -> None:
        task_state.accepted = True
        self._admit_flows(task_state)

    def next_change(self, now: float) -> float | None:
        """Re-evaluate weights well before the tightest deadline."""
        slacks = [
            fs.flow.deadline - now for fs in self.active_flows
            if fs.flow.deadline > now
        ]
        if not slacks:
            return None
        return now + max(min(slacks) * self.refresh_fraction, 1e-6)

    def deadline_factor(self, fs, now: float, capacity: float) -> float:
        """``d = Tc/D`` clamped to [0.5, 2] (the D2TCP paper's bounds)."""
        ttd = fs.flow.deadline - now
        if ttd <= 0:
            return D_MAX
        needed = fs.remaining / capacity
        return min(D_MAX, max(D_MIN, needed / ttd))

    def assign_rates(self, now: float) -> None:
        assert self.topology is not None
        flows = self.active_flows
        if not flows:
            return
        links = self.topology.links
        # the factor uses the flow's own bottleneck capacity as the
        # "current rate" reference, as D2TCP's Tc does with line rate
        weights = [
            self.deadline_factor(
                fs, now, min(links[l].capacity for l in fs.path)  # type: ignore[union-attr]
            )
            for fs in flows
        ]
        rates = weighted_max_min(
            flows, weights, link_capacity=lambda l: links[l].capacity
        )
        for fs, r in zip(flows, rates):
            fs.rate = r
