"""PDQ: Preemptive Distributed Quick flow scheduling (Hong et al., SIGCOMM'12).

Per the paper (§II, §V-A, Fig. 1(d)/Fig. 3 walk-throughs):

* flows are ranked by **criticality** — EDF first, SJF tie-break;
* the most critical flow on each link transmits **alone at full rate**;
  less critical flows are *paused* (preemption);
* **Early Termination (ET)**: a flow that cannot finish before its deadline
  even running alone at full rate is killed immediately, freeing bandwidth
  ("We simulated PDQ with the basic Early Termination function" — §V-A;
  Suppressed Probing and Early Start are packet-level and excluded there);
* switches hold per-flow state in a bounded **flow list**; flows that do
  not fit in some switch's list are paused regardless of link state (this
  reproduces the paper's Fig. 3 example where "the flow list in S3 is
  full").  The default limit is effectively unbounded, matching §V's
  large-scale runs.

PDQ is distributed in reality; at flow level its behaviour is the greedy
priority allocation below (the paper simulates it the same way).
"""

from __future__ import annotations

from repro.sched.base import Scheduler, edf_sjf_key
from repro.sim.state import FlowState, FlowStatus, TaskState


class PDQ(Scheduler):
    """EDF+SJF preemptive exclusive-link scheduling with Early Termination.

    Parameters
    ----------
    early_termination:
        Kill flows that cannot meet their deadline even alone (default on).
    flow_list_limit:
        Per-switch flow-list capacity; flows beyond it are paused at that
        switch.  ``None`` = unbounded.
    """

    name = "PDQ"

    def __init__(
        self,
        early_termination: bool = True,
        flow_list_limit: int | None = None,
    ) -> None:
        super().__init__()
        self.early_termination = early_termination
        self.flow_list_limit = flow_list_limit
        self._switch_of_link: dict[int, str] = {}

    def attach(self, topology, paths) -> None:
        super().attach(topology, paths)
        # a flow "occupies a slot" at the switch that forwards it, i.e. the
        # source node of each link it traverses that is a switch
        self._switch_of_link = {
            l.index: l.src for l in topology.links if l.src in set(topology.switches)
        }

    def on_task_arrival(self, task_state: TaskState, now: float) -> None:
        task_state.accepted = True
        self._admit_flows(task_state)

    def assign_rates(self, now: float) -> None:
        assert self.topology is not None
        flows = self.active_flows
        if not flows:
            return
        links = self.topology.links

        # Early Termination: hopeless even at full rate, alone
        if self.early_termination:
            doomed: list[FlowState] = []
            for fs in flows:
                cap = min(links[l].capacity for l in fs.path)  # type: ignore[union-attr]
                if fs.remaining > (fs.flow.deadline - now) * cap + 1e-6:
                    doomed.append(fs)
            for fs in doomed:
                fs.kill(FlowStatus.TERMINATED)
                self._drop(fs)
            flows = self.active_flows
            if not flows:
                return

        busy: set[int] = set()
        slots: dict[str, int] = {}
        limit = self.flow_list_limit
        for fs in sorted(flows, key=edf_sjf_key):
            path = fs.path
            assert path is not None
            if limit is not None:
                switches = {self._switch_of_link[l] for l in path if l in self._switch_of_link}
                if any(slots.get(sw, 0) >= limit for sw in switches):
                    fs.rate = 0.0  # no room in some switch's flow list
                    continue
                for sw in switches:
                    slots[sw] = slots.get(sw, 0) + 1
            if any(l in busy for l in path):
                fs.rate = 0.0
            else:
                fs.rate = min(links[l].capacity for l in path)
                busy.update(path)

    def on_deadline_expired(self, fs: FlowState, now: float) -> None:
        # With ET on, a flow is killed before its deadline ever fires; this
        # is the backstop for early_termination=False.
        fs.kill(FlowStatus.TERMINATED)
        self._drop(fs)
