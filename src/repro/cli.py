"""Command-line entry point: ``repro-taps`` / ``python -m repro``.

Subcommands::

    repro-taps motivation            # replay paper Figs. 1–3
    repro-taps figure fig6           # regenerate a figure's series
    repro-taps figure fig6 --scale medium --jobs 4
    repro-taps all --scale small     # every figure, printed as tables
    repro-taps report --jobs 0 --csv-dir out/   # full repro, all cores
    repro-taps nphard                # demo the §IV-B reduction
    repro-taps zoo                   # TAPS on tree/fat-tree/BCube/FiConn
    repro-taps optimality            # online TAPS vs the offline bound
    repro-taps run --trace out.jsonl # one traced TAPS run (fat-tree)
    repro-taps run --out-dir run1/   # run + telemetry artifacts in run1/
    repro-taps stats run1/           # inspect a run from its artifacts
    repro-taps audit out.jsonl       # replay a trace against invariants

``figure``, ``all``, ``zoo``, and ``report`` accept ``--jobs N`` (fan
independent sweep points over N worker processes; 0 = one per CPU),
``--cache-dir DIR`` / ``--no-cache`` (content-addressed on-disk result
cache, default ``~/.cache/repro-taps``), and — for ``all``/``report`` —
``--csv-dir DIR`` to dump each figure's raw per-seed series.  Results
are bit-identical across job counts and cache states; the run footer
reports cache hits/misses/invalidations.

Figures print the same rows/series the paper reports; absolute values
differ (simulated substrate, scaled topology) but orderings and trends
should match — see EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.exp.configs import SCALES
from repro.exp.executor import ExecutorConfig, make_executor
from repro.exp.figures import FIGURES, run_figure
from repro.exp.motivation import run_all
from repro.exp.report import render_sweep, render_timeseries


def _executor_from_args(args) -> ExecutorConfig:
    """``--jobs/--cache-dir/--no-cache`` → an ExecutorConfig."""
    return make_executor(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
    )


def _add_executor_args(parser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan sweep points out over N worker processes "
             "(default: serial; 0 = one per CPU)")
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache directory (default: ~/.cache/repro-taps)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every point; skip the on-disk result cache")


def _print_cache_footer(executor: ExecutorConfig) -> None:
    """One greppable stats line per run — CI asserts on it."""
    if executor.cache is not None:
        print(f"{executor.cache.stats.line()} ({executor.cache.root})")


def _cmd_motivation(_args) -> int:
    for fig, outcomes in run_all().items():
        print(f"== {fig} ==")
        for o in outcomes:
            ref = (
                f"(paper: {o.paper_flows} flows / {o.paper_tasks} tasks)"
                if o.paper_flows is not None
                else "(paper: see docstring)"
            )
            mark = "ok" if o.matches_paper else "MISMATCH"
            print(
                f"  {o.scheduler:14s} {o.flows_met} flows / "
                f"{o.tasks_completed} tasks  {ref} [{mark}]"
            )
    return 0


def _print_figure(figure_id: str, scale_name: str,
                  executor: ExecutorConfig | None = None):
    scale = SCALES[scale_name]
    t0 = time.time()
    run = run_figure(figure_id, scale, executor)
    took = time.time() - t0
    print(f"== {run.figure_id}: {run.title} (scale={scale_name}, {took:.1f}s) ==")
    if run.notes:
        print(f"   {run.notes}")
    if run.sweep is not None:
        for metric in run.primary_metrics:
            print(render_sweep(run.sweep, metric))
            print()
    if run.timeseries:
        print(render_timeseries(run.timeseries))
        print()
    return run


def _cmd_figure(args) -> int:
    executor = _executor_from_args(args)
    run = _print_figure(args.figure, args.scale, executor)
    if args.csv is not None:
        if run.sweep is None:
            print(f"(no sweep data for {args.figure}; csv skipped)")
        else:
            run.sweep.to_csv(args.csv)
            print(f"wrote {args.csv}")
    _print_cache_footer(executor)
    return 0


def _cmd_all(args) -> int:
    from repro.exp.runner import export_figure_csv

    executor = _executor_from_args(args)
    for fid in sorted(FIGURES):
        run = _print_figure(fid, args.scale, executor)
        if args.csv_dir is not None:
            out = export_figure_csv(run, args.csv_dir)
            if out is not None:
                print(f"wrote {out}")
    _print_cache_footer(executor)
    return 0


def _cmd_nphard(_args) -> int:
    import networkx as nx

    from repro.nphard import (
        build_instance,
        has_hamiltonian_circuit,
        schedulable_subset_exists,
    )

    cases = {
        "C5 (cycle)": nx.cycle_graph(5),
        "P4 (path)": nx.path_graph(4),
        "K4 (complete)": nx.complete_graph(4),
        "K4 minus an edge": nx.complete_graph(4),
    }
    cases["K4 minus an edge"].remove_edge(0, 1)
    print("graph                schedulable(n tasks)   hamiltonian circuit")
    for name, g in cases.items():
        tasks = build_instance(g)
        sched = schedulable_subset_exists(tasks, g.number_of_nodes())
        ham = has_hamiltonian_circuit(g)
        print(f"{name:20s} {str(sched):22s} {ham}")
    return 0


def _cmd_zoo(args) -> int:
    from repro.exp.configs import SCALES
    from repro.exp.executor import (
        SimJob,
        build_topology,
        execute_jobs,
        topology_spec,
    )

    scale = SCALES[args.scale]
    executor = _executor_from_args(args)
    topologies = {
        "single-rooted": topology_spec(
            "single_rooted", servers_per_rack=2, racks_per_pod=2, pods=4
        ),
        "fat-tree k=4": topology_spec("fat_tree", k=4),
        "bcube n=4 k=1": topology_spec("bcube", n=4, k=1),
        "ficonn n=4 k=1": topology_spec("ficonn", n=4, k=1),
    }
    jobs, host_counts = [], []
    for spec in topologies.values():
        # host count sizes the workload; the build is memoized so serial
        # runs (and forked workers) reuse it
        n_hosts = len(build_topology(spec, scale.max_paths).hosts)
        host_counts.append(n_hosts)
        jobs.append(SimJob(
            topology=spec,
            workload=scale.workload_config(
                num_tasks=2 * n_hosts, mean_flows_per_task=4, seed=41
            ),
            scheduler="TAPS",
            max_paths=scale.max_paths,
        ))
    metrics = execute_jobs(jobs, executor)
    print("TAPS across the paper's cited architectures (§II):")
    print(f"{'topology':16s} {'hosts':>5s} {'task ratio':>10s} "
          f"{'flow ratio':>10s} {'waste':>6s}")
    for label, n_hosts, m in zip(topologies, host_counts, metrics):
        print(f"{label:16s} {n_hosts:>5d} {m.task_completion_ratio:>10.3f} "
              f"{m.flow_completion_ratio:>10.3f} {m.wasted_bandwidth_ratio:>6.3f}")
    _print_cache_footer(executor)
    return 0


def _cmd_optimality(args) -> int:
    from repro.core.controller import TapsScheduler
    from repro.core.optimal import offline_best_subset
    from repro.net.paths import PathService
    from repro.sim.engine import Engine
    from repro.workload.generator import WorkloadConfig, generate_workload
    from repro.workload.traces import dumbbell

    topo = dumbbell(6)
    paths = PathService(topo)
    print("online TAPS vs offline EDF-packing optimum "
          f"({args.instances} random 9-task instances):")
    print("seed  TAPS  bound  gap")
    total = 0
    for seed in range(args.instances):
        cfg = WorkloadConfig(
            num_tasks=9, mean_flows_per_task=2, arrival_rate=2.0,
            mean_flow_size=1.0, min_flow_size=0.2, mean_deadline=2.5,
            seed=seed,
        )
        tasks = generate_workload(cfg, list(topo.hosts))
        bound = offline_best_subset(tasks, paths, 1.0)
        result = Engine(topo, tasks, TapsScheduler(), path_service=paths).run()
        gap = bound.best_count - result.tasks_completed
        total += gap
        print(f"{seed:>4d}  {result.tasks_completed:>4d}  "
              f"{bound.best_count:>5d}  {gap:>3d}")
    print(f"mean gap: {total / args.instances:.2f} tasks")
    return 0


def _cmd_run(args) -> int:
    from repro.exp.runner import run_traced, write_run_artifacts
    from repro.metrics import summarize, trace_digest
    from repro.obs import MetricsRegistry
    from repro.sim.faults import LinkFault

    faults = None
    if args.fault is not None:
        link, start, end = args.fault
        faults = [LinkFault(int(link), start, end)]
    telemetry = MetricsRegistry() if args.out_dir is not None else None
    result, recorder = run_traced(
        scale=SCALES[args.scale], num_tasks=args.tasks, seed=args.seed,
        fast_path=not args.no_fast_path, faults=faults, telemetry=telemetry,
    )
    m = summarize(result)
    print(f"{result.scheduler_name} on {result.topology_name}: "
          f"task ratio {m.task_completion_ratio:.3f}, "
          f"flow ratio {m.flow_completion_ratio:.3f}, "
          f"finished at t={result.finished_at:.4f}")
    for line in trace_digest(recorder).lines():
        print(f"  {line}")
    if args.trace is not None:
        out = recorder.to_jsonl(args.trace)
        print(f"wrote {out} ({recorder.emitted} events)")
    if args.out_dir is not None:
        written = write_run_artifacts(args.out_dir, recorder, telemetry)
        for path in written.values():
            print(f"wrote {path}")
        print(f"inspect with: repro-taps stats {args.out_dir}")
    return 0


def _cmd_stats(args) -> int:
    from pathlib import Path

    from repro.obs import TelemetryError, load_jsonl, render_stats

    target = Path(args.run_dir)
    path = target / "telemetry.jsonl" if target.is_dir() else target
    if not path.exists():
        print(f"error: no telemetry snapshot at {path} "
              "(produce one with: repro-taps run --out-dir DIR)",
              file=sys.stderr)
        return 1
    try:
        snapshot = load_jsonl(path)
    except TelemetryError as exc:
        print(f"error: {path}: {exc}", file=sys.stderr)
        return 1
    print(render_stats(snapshot), end="")
    return 0


def _cmd_audit(args) -> int:
    from repro.metrics import trace_digest
    from repro.trace import audit_trace, load_jsonl

    trace = load_jsonl(args.trace)
    for key, value in sorted(trace.meta.items()):
        print(f"  {key}: {value}")
    for line in trace_digest(trace.events).lines():
        print(f"  {line}")
    report = audit_trace(trace)
    if report.truncated:
        print("WARNING: trace ring overflowed — the stream is incomplete "
              "and this audit is unsound")
    if report.ok:
        print(f"audit OK: 0 violations over {report.events_audited} events")
        return 0
    print(f"audit FAILED: {len(report.violations)} violation(s) over "
          f"{report.events_audited} events")
    for v in report.violations[: args.max_violations]:
        print(f"  {v}")
    hidden = len(report.violations) - args.max_violations
    if hidden > 0:
        print(f"  ... and {hidden} more")
    return 1


def _cmd_report(args) -> int:
    from repro.exp.runner import generate_report

    executor = _executor_from_args(args)
    out = generate_report(
        args.out, SCALES[args.scale], args.figures,
        executor=executor, csv_dir=args.csv_dir,
    )
    print(f"wrote {out}")
    if args.csv_dir is not None:
        print(f"csv series -> {args.csv_dir}")
    _print_cache_footer(executor)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-taps",
        description="TAPS (ICPP 2015) reproduction experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("motivation", help="replay paper Figs. 1-3").set_defaults(
        func=_cmd_motivation
    )

    p_fig = sub.add_parser("figure", help="regenerate one figure")
    p_fig.add_argument("figure", choices=sorted(FIGURES))
    p_fig.add_argument("--scale", choices=sorted(SCALES), default="small")
    p_fig.add_argument("--csv", default=None, metavar="FILE",
                       help="also dump the raw per-seed series as CSV")
    _add_executor_args(p_fig)
    p_fig.set_defaults(func=_cmd_figure)

    p_all = sub.add_parser("all", help="regenerate every figure")
    p_all.add_argument("--scale", choices=sorted(SCALES), default="small")
    p_all.add_argument("--csv-dir", default=None, metavar="DIR",
                       help="also dump each figure's raw per-seed series "
                            "as DIR/<fig>.csv")
    _add_executor_args(p_all)
    p_all.set_defaults(func=_cmd_all)

    sub.add_parser("nphard", help="demo the §IV-B reduction").set_defaults(
        func=_cmd_nphard
    )

    p_zoo = sub.add_parser("zoo", help="TAPS on the §II architectures")
    p_zoo.add_argument("--scale", choices=sorted(SCALES), default="small")
    _add_executor_args(p_zoo)
    p_zoo.set_defaults(func=_cmd_zoo)

    p_opt = sub.add_parser("optimality",
                           help="online TAPS vs the offline bound")
    p_opt.add_argument("--instances", type=int, default=8)
    p_opt.set_defaults(func=_cmd_optimality)

    p_run = sub.add_parser("run",
                           help="one traced TAPS run on a fat-tree workload")
    p_run.add_argument("--scale", choices=sorted(SCALES), default="small")
    p_run.add_argument("--tasks", type=int, default=None,
                       help="override the scale's task count")
    p_run.add_argument("--seed", type=int, default=7)
    p_run.add_argument("--trace", default=None, metavar="FILE",
                       help="write the decision trace as JSONL")
    p_run.add_argument("--fault", nargs=3, type=float, default=None,
                       metavar=("LINK", "START", "END"),
                       help="inject one link outage [START, END)")
    p_run.add_argument("--no-fast-path", action="store_true",
                       help="use the reference (uncached) controller")
    p_run.add_argument("--out-dir", default=None, metavar="DIR",
                       help="write run artifacts (trace.jsonl, "
                            "telemetry.jsonl, telemetry.prom) into DIR")
    p_run.set_defaults(func=_cmd_run)

    p_stats = sub.add_parser(
        "stats",
        help="render a run report from exported telemetry (no re-simulation)")
    p_stats.add_argument("run_dir", metavar="RUN_DIR",
                        help="run directory holding telemetry.jsonl "
                             "(or a path to the file itself)")
    p_stats.set_defaults(func=_cmd_stats)

    p_aud = sub.add_parser("audit",
                           help="replay a JSONL trace against the paper's "
                                "schedule invariants")
    p_aud.add_argument("trace", metavar="FILE")
    p_aud.add_argument("--max-violations", type=int, default=10,
                       help="print at most this many violations")
    p_aud.set_defaults(func=_cmd_audit)

    p_rep = sub.add_parser("report",
                           help="regenerate every figure into a markdown file")
    p_rep.add_argument("--out", default="results.md")
    p_rep.add_argument("--scale", choices=sorted(SCALES), default="small")
    p_rep.add_argument("--figures", nargs="*", choices=sorted(FIGURES),
                       default=None)
    p_rep.add_argument("--csv-dir", default=None, metavar="DIR",
                       help="also dump each figure's raw per-seed series "
                            "as DIR/<fig>.csv")
    _add_executor_args(p_rep)
    p_rep.set_defaults(func=_cmd_report)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
