"""Command-line entry point: ``repro-taps`` / ``python -m repro``.

Subcommands::

    repro-taps motivation            # replay paper Figs. 1–3
    repro-taps figure fig6           # regenerate a figure's series
    repro-taps figure fig6 --scale medium --jobs 4
    repro-taps all --scale small     # every figure, printed as tables
    repro-taps report --jobs 0 --csv-dir out/   # full repro, all cores
    repro-taps nphard                # demo the §IV-B reduction
    repro-taps zoo                   # TAPS on tree/fat-tree/BCube/FiConn
    repro-taps optimality            # online TAPS vs the offline bound
    repro-taps run --trace out.jsonl # one traced TAPS run (fat-tree)
    repro-taps run --out-dir run1/   # run + telemetry artifacts in run1/
    repro-taps stats run1/           # inspect a run from its artifacts
    repro-taps stats run1/ --json    # same, machine-readable
    repro-taps audit out.jsonl       # replay a trace against invariants
    repro-taps timeline run1/        # export Perfetto-viewable chrome trace
    repro-taps explain run1/ --task 17   # why was task 17 refused?
    repro-taps diff run1/ run2/      # regression diff of two bundles

``figure``, ``all``, ``zoo``, and ``report`` accept ``--jobs N`` (fan
independent sweep points over N worker processes; 0 = one per CPU),
``--cache-dir DIR`` / ``--no-cache`` (content-addressed on-disk result
cache, default ``~/.cache/repro-taps``), and — for ``all``/``report`` —
``--csv-dir DIR`` to dump each figure's raw per-seed series.  Results
are bit-identical across job counts and cache states; the run footer
reports cache hits/misses/invalidations.

Figures print the same rows/series the paper reports; absolute values
differ (simulated substrate, scaled topology) but orderings and trends
should match — see EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.exp.configs import SCALES
from repro.exp.executor import ExecutorConfig, make_executor
from repro.exp.figures import FIGURES, run_figure
from repro.exp.motivation import run_all
from repro.exp.report import render_sweep, render_timeseries


def _executor_from_args(args) -> ExecutorConfig:
    """``--jobs/--cache-dir/--no-cache`` → an ExecutorConfig."""
    return make_executor(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
    )


def _add_executor_args(parser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan sweep points out over N worker processes "
             "(default: serial; 0 = one per CPU)")
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache directory (default: ~/.cache/repro-taps)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="recompute every point; skip the on-disk result cache")


def _print_cache_footer(executor: ExecutorConfig) -> None:
    """One greppable stats line per run — CI asserts on it."""
    if executor.cache is not None:
        print(f"{executor.cache.stats.line()} ({executor.cache.root})")


def _cmd_motivation(_args) -> int:
    for fig, outcomes in run_all().items():
        print(f"== {fig} ==")
        for o in outcomes:
            ref = (
                f"(paper: {o.paper_flows} flows / {o.paper_tasks} tasks)"
                if o.paper_flows is not None
                else "(paper: see docstring)"
            )
            mark = "ok" if o.matches_paper else "MISMATCH"
            print(
                f"  {o.scheduler:14s} {o.flows_met} flows / "
                f"{o.tasks_completed} tasks  {ref} [{mark}]"
            )
    return 0


def _print_figure(figure_id: str, scale_name: str,
                  executor: ExecutorConfig | None = None):
    scale = SCALES[scale_name]
    t0 = time.time()
    run = run_figure(figure_id, scale, executor)
    took = time.time() - t0
    print(f"== {run.figure_id}: {run.title} (scale={scale_name}, {took:.1f}s) ==")
    if run.notes:
        print(f"   {run.notes}")
    if run.sweep is not None:
        for metric in run.primary_metrics:
            print(render_sweep(run.sweep, metric))
            print()
    if run.timeseries:
        print(render_timeseries(run.timeseries))
        print()
    return run


def _cmd_figure(args) -> int:
    executor = _executor_from_args(args)
    run = _print_figure(args.figure, args.scale, executor)
    if args.csv is not None:
        if run.sweep is None:
            print(f"(no sweep data for {args.figure}; csv skipped)")
        else:
            run.sweep.to_csv(args.csv)
            print(f"wrote {args.csv}")
    _print_cache_footer(executor)
    return 0


def _cmd_all(args) -> int:
    from repro.exp.runner import export_figure_csv

    executor = _executor_from_args(args)
    for fid in sorted(FIGURES):
        run = _print_figure(fid, args.scale, executor)
        if args.csv_dir is not None:
            out = export_figure_csv(run, args.csv_dir)
            if out is not None:
                print(f"wrote {out}")
    _print_cache_footer(executor)
    return 0


def _cmd_nphard(_args) -> int:
    import networkx as nx

    from repro.nphard import (
        build_instance,
        has_hamiltonian_circuit,
        schedulable_subset_exists,
    )

    cases = {
        "C5 (cycle)": nx.cycle_graph(5),
        "P4 (path)": nx.path_graph(4),
        "K4 (complete)": nx.complete_graph(4),
        "K4 minus an edge": nx.complete_graph(4),
    }
    cases["K4 minus an edge"].remove_edge(0, 1)
    print("graph                schedulable(n tasks)   hamiltonian circuit")
    for name, g in cases.items():
        tasks = build_instance(g)
        sched = schedulable_subset_exists(tasks, g.number_of_nodes())
        ham = has_hamiltonian_circuit(g)
        print(f"{name:20s} {str(sched):22s} {ham}")
    return 0


def _cmd_zoo(args) -> int:
    from repro.exp.configs import SCALES
    from repro.exp.executor import (
        SimJob,
        build_topology,
        execute_jobs,
        topology_spec,
    )

    scale = SCALES[args.scale]
    executor = _executor_from_args(args)
    topologies = {
        "single-rooted": topology_spec(
            "single_rooted", servers_per_rack=2, racks_per_pod=2, pods=4
        ),
        "fat-tree k=4": topology_spec("fat_tree", k=4),
        "bcube n=4 k=1": topology_spec("bcube", n=4, k=1),
        "ficonn n=4 k=1": topology_spec("ficonn", n=4, k=1),
    }
    jobs, host_counts = [], []
    for spec in topologies.values():
        # host count sizes the workload; the build is memoized so serial
        # runs (and forked workers) reuse it
        n_hosts = len(build_topology(spec, scale.max_paths).hosts)
        host_counts.append(n_hosts)
        jobs.append(SimJob(
            topology=spec,
            workload=scale.workload_config(
                num_tasks=2 * n_hosts, mean_flows_per_task=4, seed=41
            ),
            scheduler="TAPS",
            max_paths=scale.max_paths,
        ))
    metrics = execute_jobs(jobs, executor)
    print("TAPS across the paper's cited architectures (§II):")
    print(f"{'topology':16s} {'hosts':>5s} {'task ratio':>10s} "
          f"{'flow ratio':>10s} {'waste':>6s}")
    for label, n_hosts, m in zip(topologies, host_counts, metrics):
        print(f"{label:16s} {n_hosts:>5d} {m.task_completion_ratio:>10.3f} "
              f"{m.flow_completion_ratio:>10.3f} {m.wasted_bandwidth_ratio:>6.3f}")
    _print_cache_footer(executor)
    return 0


def _cmd_optimality(args) -> int:
    from repro.core.controller import TapsScheduler
    from repro.core.optimal import offline_best_subset
    from repro.net.paths import PathService
    from repro.sim.engine import Engine
    from repro.workload.generator import WorkloadConfig, generate_workload
    from repro.workload.traces import dumbbell

    topo = dumbbell(6)
    paths = PathService(topo)
    print("online TAPS vs offline EDF-packing optimum "
          f"({args.instances} random 9-task instances):")
    print("seed  TAPS  bound  gap")
    total = 0
    for seed in range(args.instances):
        cfg = WorkloadConfig(
            num_tasks=9, mean_flows_per_task=2, arrival_rate=2.0,
            mean_flow_size=1.0, min_flow_size=0.2, mean_deadline=2.5,
            seed=seed,
        )
        tasks = generate_workload(cfg, list(topo.hosts))
        bound = offline_best_subset(tasks, paths, 1.0)
        result = Engine(topo, tasks, TapsScheduler(), path_service=paths).run()
        gap = bound.best_count - result.tasks_completed
        total += gap
        print(f"{seed:>4d}  {result.tasks_completed:>4d}  "
              f"{bound.best_count:>5d}  {gap:>3d}")
    print(f"mean gap: {total / args.instances:.2f} tasks")
    return 0


def _cmd_run(args) -> int:
    from repro.exp.runner import run_traced, write_run_artifacts
    from repro.metrics import summarize, trace_digest
    from repro.obs import MetricsRegistry
    from repro.sim.faults import LinkFault

    faults = None
    if args.fault is not None:
        link, start, end = args.fault
        faults = [LinkFault(int(link), start, end)]
    telemetry = MetricsRegistry() if args.out_dir is not None else None
    result, recorder = run_traced(
        scale=SCALES[args.scale], num_tasks=args.tasks, seed=args.seed,
        fast_path=not args.no_fast_path, faults=faults, telemetry=telemetry,
    )
    m = summarize(result)
    print(f"{result.scheduler_name} on {result.topology_name}: "
          f"task ratio {m.task_completion_ratio:.3f}, "
          f"flow ratio {m.flow_completion_ratio:.3f}, "
          f"finished at t={result.finished_at:.4f}")
    for line in trace_digest(recorder).lines():
        print(f"  {line}")
    if args.trace is not None:
        out = recorder.to_jsonl(args.trace)
        print(f"wrote {out} ({recorder.emitted} events)")
    if args.out_dir is not None:
        written = write_run_artifacts(args.out_dir, recorder, telemetry)
        for path in written.values():
            print(f"wrote {path}")
        print(f"inspect with: repro-taps stats {args.out_dir}")
    return 0


def _cmd_stats(args) -> int:
    import json
    from pathlib import Path

    from repro.obs import TelemetryError, load_jsonl, render_stats, stats_json

    target = Path(args.run_dir)
    path = target / "telemetry.jsonl" if target.is_dir() else target
    if not path.exists():
        print(f"error: no telemetry snapshot at {path} "
              "(produce one with: repro-taps run --out-dir DIR)",
              file=sys.stderr)
        return 1
    try:
        snapshot = load_jsonl(path)
    except TelemetryError as exc:
        print(f"error: {path}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(stats_json(snapshot), indent=1, sort_keys=True))
    else:
        print(render_stats(snapshot), end="")
    return 0


def _load_trace_or_fail(run_dir: str):
    """The (trace, telemetry) pair for a run dir, or (None, None) after
    printing the error — shared by ``timeline`` and ``explain``."""
    from repro.exp.runner import load_run_artifacts

    try:
        trace, telemetry = load_run_artifacts(run_dir)
    except ValueError as exc:
        print(f"error: {run_dir}: {exc}", file=sys.stderr)
        return None, None
    if trace is None:
        print(f"error: no trace.jsonl under {run_dir} "
              "(produce one with: repro-taps run --out-dir DIR)",
              file=sys.stderr)
        return None, None
    return trace, telemetry


def _cmd_timeline(args) -> int:
    from pathlib import Path

    from repro.obs import timeline_from, write_chrome_trace

    trace, telemetry = _load_trace_or_fail(args.run_dir)
    if trace is None:
        return 1
    tl = timeline_from(trace)
    target = Path(args.run_dir)
    default_dir = target if target.is_dir() else target.parent
    out_path = args.out if args.out is not None else (
        default_dir / "trace.chrome.json"
    )
    out = write_chrome_trace(out_path, tl, telemetry)
    outcomes = tl.outcomes()
    summary = ", ".join(f"{len(v)} {k}" for k, v in sorted(outcomes.items()))
    print(f"{tl.events} events -> {len(tl.tasks)} tasks ({summary}), "
          f"{len(tl.flows)} flows, {len(tl.links)} links, "
          f"end t={tl.end_time:.4f}")
    print(f"wrote {out}")
    print("open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def _cmd_explain(args) -> int:
    import json

    from repro.obs import explain_run, explain_task, timeline_from
    from repro.trace import audit_events

    trace, _telemetry = _load_trace_or_fail(args.run_dir)
    if trace is None:
        return 1
    tl = timeline_from(trace)
    if args.task is not None:
        if args.task not in tl.tasks:
            print(f"error: task {args.task} does not appear in the trace "
                  f"(tasks: {min(tl.tasks, default='-')}"
                  f"..{max(tl.tasks, default='-')})", file=sys.stderr)
            return 1
        verdicts = [explain_task(tl, args.task)]
    else:
        verdicts = explain_run(tl)
    if args.json:
        print(json.dumps([v.to_json() for v in verdicts], indent=1))
    else:
        if not verdicts:
            print("every task completed; nothing to explain")
        for v in verdicts:
            for line in v.lines():
                print(line)
        # cross-check the clause evidence against the trace auditor
        report = audit_events(trace.events, trace.meta, trace.truncated)
        reject_violations = [
            v for v in report.violations if v.invariant == "reject-rule"
        ]
        inconsistent = [v for v in verdicts if not v.clause_consistent]
        if not reject_violations and not inconsistent:
            print("auditor cross-check: clause evidence consistent "
                  "(0 reject-rule violations)")
        else:
            print(f"auditor cross-check: {len(reject_violations)} "
                  f"reject-rule violation(s), {len(inconsistent)} "
                  f"inconsistent verdict(s)")
    return 0 if all(v.clause_consistent for v in verdicts) else 1


def _cmd_diff(args) -> int:
    import json

    from repro.obs import DiffError, diff_paths

    try:
        report = diff_paths(
            args.run_a, args.run_b,
            timing_threshold=args.timing_threshold,
            strict_timing=args.strict_timing,
        )
    except DiffError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.to_json(), indent=1))
    else:
        for line in report.lines():
            print(line)
    return report.exit_code


def _cmd_audit(args) -> int:
    from repro.metrics import trace_digest
    from repro.trace import audit_trace, load_jsonl

    trace = load_jsonl(args.trace)
    for key, value in sorted(trace.meta.items()):
        print(f"  {key}: {value}")
    for line in trace_digest(trace.events).lines():
        print(f"  {line}")
    report = audit_trace(trace)
    if report.truncated:
        print("WARNING: trace ring overflowed — the stream is incomplete "
              "and this audit is unsound")
    if report.ok:
        print(f"audit OK: 0 violations over {report.events_audited} events")
        return 0
    print(f"audit FAILED: {len(report.violations)} violation(s) over "
          f"{report.events_audited} events")
    for v in report.violations[: args.max_violations]:
        print(f"  {v}")
    hidden = len(report.violations) - args.max_violations
    if hidden > 0:
        print(f"  ... and {hidden} more")
    return 1


def _cmd_report(args) -> int:
    from repro.exp.runner import generate_report

    executor = _executor_from_args(args)
    out = generate_report(
        args.out, SCALES[args.scale], args.figures,
        executor=executor, csv_dir=args.csv_dir,
    )
    print(f"wrote {out}")
    if args.csv_dir is not None:
        print(f"csv series -> {args.csv_dir}")
    _print_cache_footer(executor)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-taps",
        description="TAPS (ICPP 2015) reproduction experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("motivation", help="replay paper Figs. 1-3").set_defaults(
        func=_cmd_motivation
    )

    p_fig = sub.add_parser("figure", help="regenerate one figure")
    p_fig.add_argument("figure", choices=sorted(FIGURES))
    p_fig.add_argument("--scale", choices=sorted(SCALES), default="small")
    p_fig.add_argument("--csv", default=None, metavar="FILE",
                       help="also dump the raw per-seed series as CSV")
    _add_executor_args(p_fig)
    p_fig.set_defaults(func=_cmd_figure)

    p_all = sub.add_parser("all", help="regenerate every figure")
    p_all.add_argument("--scale", choices=sorted(SCALES), default="small")
    p_all.add_argument("--csv-dir", default=None, metavar="DIR",
                       help="also dump each figure's raw per-seed series "
                            "as DIR/<fig>.csv")
    _add_executor_args(p_all)
    p_all.set_defaults(func=_cmd_all)

    sub.add_parser("nphard", help="demo the §IV-B reduction").set_defaults(
        func=_cmd_nphard
    )

    p_zoo = sub.add_parser("zoo", help="TAPS on the §II architectures")
    p_zoo.add_argument("--scale", choices=sorted(SCALES), default="small")
    _add_executor_args(p_zoo)
    p_zoo.set_defaults(func=_cmd_zoo)

    p_opt = sub.add_parser("optimality",
                           help="online TAPS vs the offline bound")
    p_opt.add_argument("--instances", type=int, default=8)
    p_opt.set_defaults(func=_cmd_optimality)

    p_run = sub.add_parser("run",
                           help="one traced TAPS run on a fat-tree workload")
    p_run.add_argument("--scale", choices=sorted(SCALES), default="small")
    p_run.add_argument("--tasks", type=int, default=None,
                       help="override the scale's task count")
    p_run.add_argument("--seed", type=int, default=7)
    p_run.add_argument("--trace", default=None, metavar="FILE",
                       help="write the decision trace as JSONL")
    p_run.add_argument("--fault", nargs=3, type=float, default=None,
                       metavar=("LINK", "START", "END"),
                       help="inject one link outage [START, END)")
    p_run.add_argument("--no-fast-path", action="store_true",
                       help="use the reference (uncached) controller")
    p_run.add_argument("--out-dir", default=None, metavar="DIR",
                       help="write run artifacts (trace.jsonl, "
                            "telemetry.jsonl, telemetry.prom) into DIR")
    p_run.set_defaults(func=_cmd_run)

    p_stats = sub.add_parser(
        "stats",
        help="render a run report from exported telemetry (no re-simulation)")
    p_stats.add_argument("run_dir", metavar="RUN_DIR",
                        help="run directory holding telemetry.jsonl "
                             "(or a path to the file itself)")
    p_stats.add_argument("--json", action="store_true",
                         help="emit the report as machine-readable JSON")
    p_stats.set_defaults(func=_cmd_stats)

    p_tl = sub.add_parser(
        "timeline",
        help="export a run's timelines as Chrome trace-event JSON "
             "(Perfetto-viewable)")
    p_tl.add_argument("run_dir", metavar="RUN_DIR",
                      help="run directory holding trace.jsonl "
                           "(or a path to the trace file itself)")
    p_tl.add_argument("--out", default=None, metavar="FILE",
                      help="output path (default: RUN_DIR/trace.chrome.json)")
    p_tl.set_defaults(func=_cmd_timeline)

    p_exp = sub.add_parser(
        "explain",
        help="why was a task rejected/preempted/dropped? (from the trace)")
    p_exp.add_argument("run_dir", metavar="RUN_DIR",
                       help="run directory holding trace.jsonl "
                            "(or a path to the trace file itself)")
    p_exp.add_argument("--task", type=int, default=None, metavar="T",
                       help="explain one task id (default: every "
                            "non-completed task)")
    p_exp.add_argument("--json", action="store_true",
                       help="emit the verdicts as machine-readable JSON")
    p_exp.set_defaults(func=_cmd_explain)

    p_diff = sub.add_parser(
        "diff",
        help="regression-diff two artifact bundles (run dirs, traces, "
             "telemetry, perf JSONs, history stores)")
    p_diff.add_argument("run_a", metavar="RUN_A")
    p_diff.add_argument("run_b", metavar="RUN_B")
    p_diff.add_argument("--json", action="store_true",
                        help="emit the report as machine-readable JSON")
    p_diff.add_argument("--timing-threshold", type=float, default=0.10,
                        metavar="FRAC",
                        help="relative threshold for timing comparisons "
                             "(default 0.10)")
    p_diff.add_argument("--strict-timing", action="store_true",
                        help="timing drift beyond the threshold blocks "
                             "(regression, exit 1) instead of warning")
    p_diff.set_defaults(func=_cmd_diff)

    p_aud = sub.add_parser("audit",
                           help="replay a JSONL trace against the paper's "
                                "schedule invariants")
    p_aud.add_argument("trace", metavar="FILE")
    p_aud.add_argument("--max-violations", type=int, default=10,
                       help="print at most this many violations")
    p_aud.set_defaults(func=_cmd_audit)

    p_rep = sub.add_parser("report",
                           help="regenerate every figure into a markdown file")
    p_rep.add_argument("--out", default="results.md")
    p_rep.add_argument("--scale", choices=sorted(SCALES), default="small")
    p_rep.add_argument("--figures", nargs="*", choices=sorted(FIGURES),
                       default=None)
    p_rep.add_argument("--csv-dir", default=None, metavar="DIR",
                       help="also dump each figure's raw per-seed series "
                            "as DIR/<fig>.csv")
    _add_executor_args(p_rep)
    p_rep.set_defaults(func=_cmd_report)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
