"""Reproduction of *TAPS: Software Defined Task-level Deadline-aware
Preemptive Flow Scheduling in Data Centers* (Liu, Li, Wu — ICPP 2015).

Quickstart
----------
>>> from repro import SingleRootedTree, WorkloadConfig, generate_workload
>>> from repro import Engine, TapsScheduler, summarize
>>> topo = SingleRootedTree(servers_per_rack=4, racks_per_pod=3, pods=3)
>>> tasks = generate_workload(WorkloadConfig(num_tasks=10), list(topo.hosts))
>>> result = Engine(topo, tasks, TapsScheduler()).run()
>>> metrics = summarize(result)
>>> 0.0 <= metrics.task_completion_ratio <= 1.0
True

Package map
-----------
``repro.core``      TAPS controller (the paper's contribution, Alg. 1–3)
``repro.sched``     the five baselines (Fair Sharing, D3, PDQ, Baraat, Varys)
``repro.net``       topologies, links, paths, ECMP
``repro.workload``  flows, tasks, trace generators
``repro.sim``       the fluid flow-level simulation engine
``repro.metrics``   completion ratios, throughput, waste, time series
``repro.sdn``       controller/server/switch message-level protocol model
``repro.trace``     decision-trace events, recorder, invariant auditor
``repro.exp``       one experiment runner per paper table/figure
``repro.nphard``    the §IV-B Hamiltonian-circuit reduction, executable
"""

from repro.core import TapsScheduler, PreemptionPolicy
from repro.metrics import RunMetrics, ThroughputTimeSeries, summarize
from repro.net import (
    BCube,
    FatTree,
    FiConn,
    PartialFatTreeTestbed,
    PathService,
    SingleRootedTree,
    Topology,
)
from repro.sched import (
    Baraat,
    D2TCP,
    D3,
    FairSharing,
    PDQ,
    Scheduler,
    Varys,
    make_scheduler,
)
from repro.sim import (
    Engine,
    FaultSchedule,
    FlowStatus,
    LinkFault,
    SimulationResult,
    TaskOutcome,
)
from repro.trace import AuditReport, TraceRecorder, audit_trace, load_jsonl
from repro.util import IntervalSet
from repro.viz import render_flow_gantt, render_link_gantt
from repro.workload import (
    Flow,
    Task,
    WorkloadConfig,
    generate_workload,
    load_tasks,
    save_tasks,
)

__version__ = "1.0.0"

__all__ = [
    "TapsScheduler",
    "PreemptionPolicy",
    "RunMetrics",
    "ThroughputTimeSeries",
    "summarize",
    "BCube",
    "FatTree",
    "FiConn",
    "PartialFatTreeTestbed",
    "PathService",
    "SingleRootedTree",
    "Topology",
    "Baraat",
    "D2TCP",
    "D3",
    "FairSharing",
    "PDQ",
    "Scheduler",
    "Varys",
    "make_scheduler",
    "Engine",
    "FaultSchedule",
    "LinkFault",
    "FlowStatus",
    "SimulationResult",
    "TaskOutcome",
    "AuditReport",
    "TraceRecorder",
    "audit_trace",
    "load_jsonl",
    "IntervalSet",
    "render_flow_gantt",
    "render_link_gantt",
    "Flow",
    "Task",
    "WorkloadConfig",
    "generate_workload",
    "load_tasks",
    "save_tasks",
    "__version__",
]
