"""Seed-level statistics over sweep results.

`run_sweep` keeps every per-seed metric in ``SweepResult.raw``; this
module turns those into mean ± confidence-interval series so medium/paper
scale reports can state how stable an ordering is, not just its means.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exp.sweep import SweepResult

#: two-sided 95% t critical values for 1…30 degrees of freedom
_T95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def t95(df: int) -> float:
    """95% two-sided Student-t critical value (normal beyond df=30)."""
    if df < 1:
        raise ValueError("need at least 2 samples for an interval")
    return _T95[df - 1] if df <= len(_T95) else 1.96


@dataclass(frozen=True, slots=True)
class SeriesStats:
    """Per-sweep-point statistics of one scheduler × metric."""

    mean: tuple[float, ...]
    std: tuple[float, ...]
    ci95: tuple[float, ...]
    n: int


def seed_stats(sweep: SweepResult, scheduler: str, metric: str) -> SeriesStats:
    """Mean/std/95%-CI across seeds, aligned with ``sweep.param_values``."""
    seeds = sorted({s for (sch, _, s) in sweep.raw if sch == scheduler})
    if not seeds:
        raise ValueError(f"no raw data for scheduler {scheduler!r}")
    means, stds, cis = [], [], []
    for value in sweep.param_values:
        samples = np.array([
            getattr(sweep.raw[(scheduler, value, s)], metric) for s in seeds
        ])
        m = float(samples.mean())
        if len(samples) > 1:
            sd = float(samples.std(ddof=1))
            half = t95(len(samples) - 1) * sd / math.sqrt(len(samples))
        else:
            sd, half = 0.0, 0.0
        means.append(m)
        stds.append(sd)
        cis.append(half)
    return SeriesStats(
        mean=tuple(means), std=tuple(stds), ci95=tuple(cis), n=len(seeds)
    )


def dominance_fraction(
    sweep: SweepResult, winner: str, loser: str, metric: str
) -> float:
    """Fraction of (sweep point, seed) pairs where ``winner`` ≥ ``loser``.

    1.0 means the ordering holds everywhere — the strongest statement a
    shape reproduction can make without error bars on the paper's side.
    """
    pairs = 0
    wins = 0
    for (sch, value, seed), metrics in sweep.raw.items():
        if sch != winner:
            continue
        other = sweep.raw.get((loser, value, seed))
        if other is None:
            continue
        pairs += 1
        if getattr(metrics, metric) >= getattr(other, metric) - 1e-12:
            wins += 1
    if pairs == 0:
        raise ValueError("no comparable points")
    return wins / pairs
