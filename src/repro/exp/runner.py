"""One-shot report generation and traced single runs.

``python -m repro report --out results.md`` regenerates each paper figure
at the chosen scale and writes a self-contained markdown report with the
same tables the benchmarks assert on — the quickest way to refresh
EXPERIMENTS.md-style numbers after a change.

:func:`run_traced` is the single-run counterpart behind
``repro-taps run --trace out.jsonl``: one TAPS run on a fat-tree workload
with a :class:`~repro.trace.recorder.TraceRecorder` attached, ready for
``repro-taps audit``.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from pathlib import Path

from repro.exp.configs import Scale, SMALL
from repro.exp.executor import ExecutorConfig
from repro.exp.figures import FIGURES, FigureRun, run_figure
from repro.exp.motivation import run_all as run_motivation
from repro.exp.report import render_sweep, render_sweep_with_ci, render_timeseries
from repro.exp.shapes import check_shapes
from repro.trace import TraceRecorder


def figure_markdown(run: FigureRun, scale: Scale, took: float) -> str:
    """One figure's results as a markdown section."""
    lines = [f"## {run.figure_id} — {run.title}",
             "",
             f"*scale: {scale.name}, regenerated in {took:.1f}s*",
             ""]
    if run.notes:
        lines += [f"> {run.notes}", ""]
    if run.sweep is not None:
        multi_seed = len(scale.seeds) > 1
        for metric in run.primary_metrics:
            renderer = render_sweep_with_ci if multi_seed else render_sweep
            lines += ["```", renderer(run.sweep, metric), "```", ""]
        checks = check_shapes(run.figure_id, run.sweep)
        if checks:
            lines.append("Shape claims (see EXPERIMENTS.md):")
            lines.append("")
            for description, holds in checks:
                lines.append(f"- {'✓' if holds else '✗'} {description}")
            lines.append("")
    if run.timeseries:
        lines += ["```", render_timeseries(run.timeseries), "```", ""]
    return "\n".join(lines)


def motivation_markdown() -> str:
    """The Figs. 1–3 worked examples as a markdown section."""
    lines = ["## Motivation examples (paper Figs. 1–3)", ""]
    for fig, outcomes in run_motivation().items():
        lines.append(f"### {fig}")
        lines.append("")
        lines.append("| scheduler | flows met | tasks completed | matches paper |")
        lines.append("|---|---|---|---|")
        for o in outcomes:
            lines.append(
                f"| {o.scheduler} | {o.flows_met} | {o.tasks_completed} | "
                f"{'yes' if o.matches_paper else 'NO'} |"
            )
        lines.append("")
    return "\n".join(lines)


def export_figure_csv(run: FigureRun, csv_dir: str | Path) -> Path | None:
    """Dump a figure's raw per-seed long-format series to ``csv_dir``.

    Returns the written path, or ``None`` for time-series figures (no
    sweep data).  ``repro-taps all/report --csv-dir`` call this per
    figure, matching what ``figure --csv`` writes.
    """
    if run.sweep is None:
        return None
    out_dir = Path(csv_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    out = out_dir / f"{run.figure_id}.csv"
    run.sweep.to_csv(out)
    return out


def generate_report(
    out_path: str | Path,
    scale: Scale = SMALL,
    figures: Sequence[str] | None = None,
    executor: ExecutorConfig | None = None,
    csv_dir: str | Path | None = None,
) -> Path:
    """Regenerate figures and write the markdown report; returns the path.

    ``executor`` fans the sweeps out over a process pool and/or the
    result cache; ``csv_dir`` additionally dumps each sweep figure's raw
    per-seed series as ``<csv_dir>/<fig>.csv``.
    """
    selected = sorted(FIGURES) if figures is None else list(figures)
    sections = [
        "# TAPS reproduction — regenerated results",
        "",
        f"Scale: `{scale.name}` "
        f"({scale.num_tasks} tasks × ~{scale.mean_flows_per_task:g} flows, "
        f"seeds {list(scale.seeds)}). "
        "Shapes, not absolute values, are the reproduction target; "
        "see EXPERIMENTS.md.",
        "",
        motivation_markdown(),
    ]
    for fid in selected:
        t0 = time.time()
        run = run_figure(fid, scale, executor)
        sections.append(figure_markdown(run, scale, time.time() - t0))
        if csv_dir is not None:
            export_figure_csv(run, csv_dir)
    out = Path(out_path)
    out.write_text("\n".join(sections))
    return out


def run_traced(
    scale: Scale = SMALL,
    num_tasks: int | None = None,
    seed: int = 7,
    fast_path: bool = True,
    faults=None,
    telemetry=None,
):
    """One TAPS run on the scale's fat-tree with a trace attached.

    Returns ``(result, recorder)`` — the
    :class:`~repro.sim.engine.SimulationResult` and the filled
    :class:`~repro.trace.recorder.TraceRecorder` (export with
    ``recorder.to_jsonl(path)``, check with
    :func:`repro.trace.audit_trace`).  ``telemetry`` (an optional
    :class:`~repro.obs.registry.MetricsRegistry`) additionally collects
    run metrics; export with :func:`write_run_artifacts`.
    """
    from repro.core.controller import TapsScheduler
    from repro.net.paths import PathService
    from repro.sim.engine import Engine
    from repro.workload.generator import generate_workload

    topo = scale.fat_tree()
    overrides: dict = {"seed": seed}
    if num_tasks is not None:
        overrides["num_tasks"] = num_tasks
    cfg = scale.workload_config(**overrides)
    tasks = generate_workload(cfg, list(topo.hosts))
    recorder = TraceRecorder()
    if telemetry is not None:
        telemetry.set_meta(scale=scale.name, seed=seed,
                           num_tasks=len(tasks))
    engine = Engine(
        topo, tasks, TapsScheduler(fast_path=fast_path),
        path_service=PathService(topo, max_paths=scale.max_paths),
        faults=faults, trace=recorder, telemetry=telemetry,
    )
    result = engine.run()
    return result, recorder


def write_run_artifacts(
    out_dir: str | Path,
    recorder: TraceRecorder | None = None,
    telemetry=None,
) -> dict[str, Path]:
    """Write a run's artifacts into ``out_dir`` and return their paths.

    The layout is the contract ``repro-taps stats`` reads:
    ``trace.jsonl`` (decision trace), ``telemetry.jsonl`` (versioned
    metrics snapshot), ``telemetry.prom`` (Prometheus text exposition).
    Only the artifacts whose source object was supplied are written.
    """
    from repro.obs.export import write_jsonl, write_prometheus

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: dict[str, Path] = {}
    if recorder is not None:
        recorder.to_jsonl(out / "trace.jsonl")
        written["trace"] = out / "trace.jsonl"
    if telemetry is not None:
        written["telemetry"] = write_jsonl(telemetry, out / "telemetry.jsonl")
        written["prometheus"] = write_prometheus(
            telemetry, out / "telemetry.prom"
        )
    return written


def load_run_artifacts(run_dir: str | Path):
    """Read a ``run --out-dir`` bundle back: ``(trace, telemetry)``.

    Either element is ``None`` when its artifact is absent.  ``run_dir``
    may also point directly at a ``trace.jsonl`` file (the ``--trace``
    output), in which case only the trace side is populated.  This is
    the loader behind ``repro-taps timeline`` / ``explain``.
    """
    from repro.obs.export import load_jsonl as load_telemetry
    from repro.trace.recorder import load_jsonl as load_trace

    target = Path(run_dir)
    if target.is_dir():
        trace_path = target / "trace.jsonl"
        telem_path = target / "telemetry.jsonl"
    else:
        trace_path, telem_path = target, None
    trace = load_trace(trace_path) if trace_path.exists() else None
    telemetry = (
        load_telemetry(telem_path)
        if telem_path is not None and telem_path.exists()
        else None
    )
    return trace, telemetry
