"""Parameter-sweep runner: schedulers × parameter values × seeds.

One sweep reproduces one paper figure's x-axis.  For each (value, seed)
the workload is generated once and replayed under every scheduler, so
algorithms are compared on identical traffic (as in the paper); seeds are
averaged.

Two entry points produce identical results:

* :func:`run_sweep` — the historical callable-based serial runner (kept
  for ad-hoc grids and as the equivalence reference in tests);
* :class:`SweepGrid` + :func:`run_sweep_grid` — the declarative form the
  figures use: the grid decomposes into picklable
  :class:`~repro.exp.executor.SimJob` specs, so it can fan out over a
  process pool and hit the on-disk result cache
  (:mod:`repro.exp.executor`) while aggregating bit-identically to the
  serial path.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.exp.executor import ExecutorConfig, SimJob, TopologySpec, execute_jobs
from repro.metrics.summary import RunMetrics, summarize
from repro.net.paths import PathService
from repro.net.topology import Topology
from repro.sched.registry import PAPER_ORDER, make_scheduler
from repro.sim.engine import Engine
from repro.util.errors import ConfigurationError
from repro.workload.flow import Task
from repro.workload.generator import WorkloadConfig


@dataclass(slots=True)
class SweepResult:
    """Measured series for one figure.

    ``series[scheduler][metric]`` is a list aligned with ``param_values``.
    Raw per-seed metrics are kept in ``raw`` for statistical post-hoc use.
    """

    param_name: str
    param_values: list[float]
    schedulers: list[str]
    series: dict[str, dict[str, list[float]]] = field(default_factory=dict)
    raw: dict[tuple[str, float, int], RunMetrics] = field(default_factory=dict)

    def metric(self, scheduler: str, metric: str) -> list[float]:
        return self.series[scheduler][metric]

    def mean_over_values(self, scheduler: str, metric: str) -> float:
        return float(np.mean(self.series[scheduler][metric]))

    def to_csv(self, path, metric: str | None = None) -> None:
        """Write the measured series as CSV.

        With ``metric`` given: one row per scheduler, one column per
        parameter value (the paper-table layout).  Without: the long
        format — one row per (scheduler, value, seed, metric) from the
        raw per-seed data, for downstream analysis tools.
        """
        import csv
        from pathlib import Path

        with Path(path).open("w", newline="") as fh:
            writer = csv.writer(fh)
            if metric is not None:
                writer.writerow([self.param_name] + self.param_values)
                for s in self.schedulers:
                    writer.writerow([s] + self.series[s][metric])
                return
            writer.writerow(
                ["scheduler", self.param_name, "seed", "metric", "value"]
            )
            for (sched, value, seed), metrics in sorted(self.raw.items()):
                for m, v in metrics.as_dict().items():
                    if isinstance(v, (int, float)):
                        writer.writerow([sched, value, seed, m, v])


#: metrics published for every sweep point
_METRICS = (
    "task_completion_ratio",
    "task_size_completion_ratio",
    "flow_completion_ratio",
    "application_throughput",
    "wasted_bandwidth_ratio",
    "task_wasted_ratio",
)


def run_sweep(
    topology_factory: Callable[[], Topology],
    workload_factory: Callable[[float, int], list[Task]],
    param_name: str,
    param_values: Sequence[float],
    schedulers: Sequence[str] = PAPER_ORDER,
    seeds: Sequence[int] = (1,),
    max_paths: int | None = 8,
) -> SweepResult:
    """Run the full grid.

    ``workload_factory(value, seed)`` builds the workload for one sweep
    point; the topology (and its path cache) is shared across the grid.
    """
    topology = topology_factory()
    paths = PathService(topology, max_paths=max_paths)
    result = SweepResult(
        param_name=param_name,
        param_values=[float(v) for v in param_values],
        schedulers=list(schedulers),
    )
    acc: dict[str, dict[str, list[list[float]]]] = {
        s: {m: [[] for _ in param_values] for m in _METRICS} for s in schedulers
    }
    for vi, value in enumerate(param_values):
        for seed in seeds:
            tasks = workload_factory(float(value), int(seed))
            for sched_name in schedulers:
                engine = Engine(
                    topology, tasks, make_scheduler(sched_name), path_service=paths
                )
                metrics = summarize(engine.run())
                result.raw[(sched_name, float(value), int(seed))] = metrics
                for m in _METRICS:
                    acc[sched_name][m][vi].append(getattr(metrics, m))
    for sched_name in schedulers:
        result.series[sched_name] = {
            m: [float(np.mean(vals)) for vals in acc[sched_name][m]]
            for m in _METRICS
        }
    return result


_INT_WORKLOAD_FIELDS = frozenset(
    f.name for f in dataclasses.fields(WorkloadConfig) if f.type in ("int", int)
)


@dataclass(frozen=True, slots=True)
class SweepGrid:
    """A figure's sweep as data: topology spec × workload knob × grid.

    ``param_name`` is the :class:`WorkloadConfig` field the sweep varies
    (int-typed fields like ``num_tasks`` are coerced from the float axis
    value).  Everything here is picklable, so the grid decomposes into
    self-contained :class:`~repro.exp.executor.SimJob` specs.
    """

    topology: TopologySpec
    base_workload: WorkloadConfig
    param_name: str
    param_values: tuple[float, ...]
    schedulers: tuple[str, ...] = PAPER_ORDER
    seeds: tuple[int, ...] = (1,)
    max_paths: int | None = 8

    def __post_init__(self) -> None:
        if self.param_name not in {
            f.name for f in dataclasses.fields(WorkloadConfig)
        }:
            raise ConfigurationError(
                f"param_name {self.param_name!r} is not a WorkloadConfig field"
            )

    def workload_at(self, value: float, seed: int) -> WorkloadConfig:
        coerced = (
            int(value) if self.param_name in _INT_WORKLOAD_FIELDS else float(value)
        )
        return self.base_workload.with_(
            **{self.param_name: coerced}, seed=int(seed)
        )

    def jobs(self) -> list[SimJob]:
        """The grid flattened in the serial sweep's nested loop order
        (value-major, then seed, then scheduler)."""
        return [
            SimJob(
                topology=self.topology,
                workload=self.workload_at(float(value), int(seed)),
                scheduler=sched,
                max_paths=self.max_paths,
            )
            for value in self.param_values
            for seed in self.seeds
            for sched in self.schedulers
        ]


def run_sweep_grid(
    grid: SweepGrid,
    executor: ExecutorConfig | None = None,
) -> SweepResult:
    """Run a declarative grid through the experiment executor.

    Aggregation is positional over the grid's flattening, so the result —
    ``series``, ``raw``, and CSV bytes — is identical whether jobs ran
    serially, across a pool in any completion order, or out of the cache.
    """
    metrics_list = execute_jobs(grid.jobs(), executor)
    result = SweepResult(
        param_name=grid.param_name,
        param_values=[float(v) for v in grid.param_values],
        schedulers=list(grid.schedulers),
    )
    acc: dict[str, dict[str, list[list[float]]]] = {
        s: {m: [[] for _ in grid.param_values] for m in _METRICS}
        for s in grid.schedulers
    }
    it = iter(metrics_list)
    for vi, value in enumerate(grid.param_values):
        for seed in grid.seeds:
            for sched_name in grid.schedulers:
                metrics = next(it)
                result.raw[(sched_name, float(value), int(seed))] = metrics
                for m in _METRICS:
                    acc[sched_name][m][vi].append(getattr(metrics, m))
    for sched_name in grid.schedulers:
        result.series[sched_name] = {
            m: [float(np.mean(vals)) for vals in acc[sched_name][m]]
            for m in _METRICS
        }
    return result
