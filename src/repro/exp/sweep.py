"""Parameter-sweep runner: schedulers × parameter values × seeds.

One sweep reproduces one paper figure's x-axis.  For each (value, seed)
the workload is generated once and replayed under every scheduler, so
algorithms are compared on identical traffic (as in the paper); seeds are
averaged.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.metrics.summary import RunMetrics, summarize
from repro.net.paths import PathService
from repro.net.topology import Topology
from repro.sched.registry import PAPER_ORDER, make_scheduler
from repro.sim.engine import Engine
from repro.workload.flow import Task


@dataclass(slots=True)
class SweepResult:
    """Measured series for one figure.

    ``series[scheduler][metric]`` is a list aligned with ``param_values``.
    Raw per-seed metrics are kept in ``raw`` for statistical post-hoc use.
    """

    param_name: str
    param_values: list[float]
    schedulers: list[str]
    series: dict[str, dict[str, list[float]]] = field(default_factory=dict)
    raw: dict[tuple[str, float, int], RunMetrics] = field(default_factory=dict)

    def metric(self, scheduler: str, metric: str) -> list[float]:
        return self.series[scheduler][metric]

    def mean_over_values(self, scheduler: str, metric: str) -> float:
        return float(np.mean(self.series[scheduler][metric]))

    def to_csv(self, path, metric: str | None = None) -> None:
        """Write the measured series as CSV.

        With ``metric`` given: one row per scheduler, one column per
        parameter value (the paper-table layout).  Without: the long
        format — one row per (scheduler, value, seed, metric) from the
        raw per-seed data, for downstream analysis tools.
        """
        import csv
        from pathlib import Path

        with Path(path).open("w", newline="") as fh:
            writer = csv.writer(fh)
            if metric is not None:
                writer.writerow([self.param_name] + self.param_values)
                for s in self.schedulers:
                    writer.writerow([s] + self.series[s][metric])
                return
            writer.writerow(
                ["scheduler", self.param_name, "seed", "metric", "value"]
            )
            for (sched, value, seed), metrics in sorted(self.raw.items()):
                for m, v in metrics.as_dict().items():
                    if isinstance(v, (int, float)):
                        writer.writerow([sched, value, seed, m, v])


#: metrics published for every sweep point
_METRICS = (
    "task_completion_ratio",
    "task_size_completion_ratio",
    "flow_completion_ratio",
    "application_throughput",
    "wasted_bandwidth_ratio",
    "task_wasted_ratio",
)


def run_sweep(
    topology_factory: Callable[[], Topology],
    workload_factory: Callable[[float, int], list[Task]],
    param_name: str,
    param_values: Sequence[float],
    schedulers: Sequence[str] = PAPER_ORDER,
    seeds: Sequence[int] = (1,),
    max_paths: int | None = 8,
) -> SweepResult:
    """Run the full grid.

    ``workload_factory(value, seed)`` builds the workload for one sweep
    point; the topology (and its path cache) is shared across the grid.
    """
    topology = topology_factory()
    paths = PathService(topology, max_paths=max_paths)
    result = SweepResult(
        param_name=param_name,
        param_values=[float(v) for v in param_values],
        schedulers=list(schedulers),
    )
    acc: dict[str, dict[str, list[list[float]]]] = {
        s: {m: [[] for _ in param_values] for m in _METRICS} for s in schedulers
    }
    for vi, value in enumerate(param_values):
        for seed in seeds:
            tasks = workload_factory(float(value), int(seed))
            for sched_name in schedulers:
                engine = Engine(
                    topology, tasks, make_scheduler(sched_name), path_service=paths
                )
                metrics = summarize(engine.run())
                result.raw[(sched_name, float(value), int(seed))] = metrics
                for m in _METRICS:
                    acc[sched_name][m][vi].append(getattr(metrics, m))
    for sched_name in schedulers:
        result.series[sched_name] = {
            m: [float(np.mean(vals)) for vals in acc[sched_name][m]]
            for m in _METRICS
        }
    return result
