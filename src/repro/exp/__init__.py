"""Experiment harness: one runner per paper table/figure.

* :mod:`~repro.exp.configs` — scales (CI-sized vs paper-sized) and
  per-figure parameterisation;
* :mod:`~repro.exp.executor` — parallel sim-job fan-out + the
  content-addressed result cache;
* :mod:`~repro.exp.sweep` — the scheduler × parameter grid runner
  (callable-based serial and declarative :class:`SweepGrid` forms);
* :mod:`~repro.exp.figures` — ``run_figure("fig6")`` … ``("fig14")``;
* :mod:`~repro.exp.motivation` — the worked examples of Figs. 1–3;
* :mod:`~repro.exp.report` — ASCII tables of measured series.
"""

from repro.exp.configs import Scale, SMALL, MEDIUM, PAPER
from repro.exp.executor import (
    ExecutorConfig,
    ResultCache,
    SimJob,
    TopologySpec,
    execute_jobs,
    make_executor,
    topology_spec,
)
from repro.exp.sweep import SweepGrid, SweepResult, run_sweep, run_sweep_grid
from repro.exp.figures import FIGURES, run_figure
from repro.exp.report import render_sweep

__all__ = [
    "Scale",
    "SMALL",
    "MEDIUM",
    "PAPER",
    "ExecutorConfig",
    "ResultCache",
    "SimJob",
    "TopologySpec",
    "execute_jobs",
    "make_executor",
    "topology_spec",
    "SweepGrid",
    "SweepResult",
    "run_sweep",
    "run_sweep_grid",
    "FIGURES",
    "run_figure",
    "render_sweep",
]
