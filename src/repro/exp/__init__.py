"""Experiment harness: one runner per paper table/figure.

* :mod:`~repro.exp.configs` — scales (CI-sized vs paper-sized) and
  per-figure parameterisation;
* :mod:`~repro.exp.sweep` — the scheduler × parameter grid runner;
* :mod:`~repro.exp.figures` — ``run_figure("fig6")`` … ``("fig14")``;
* :mod:`~repro.exp.motivation` — the worked examples of Figs. 1–3;
* :mod:`~repro.exp.report` — ASCII tables of measured series.
"""

from repro.exp.configs import Scale, SMALL, MEDIUM, PAPER
from repro.exp.sweep import SweepResult, run_sweep
from repro.exp.figures import FIGURES, run_figure
from repro.exp.report import render_sweep

__all__ = [
    "Scale",
    "SMALL",
    "MEDIUM",
    "PAPER",
    "SweepResult",
    "run_sweep",
    "FIGURES",
    "run_figure",
    "render_sweep",
]
