"""Experiment scales.

The paper simulates a 36,000-server tree and a k=32 fat-tree with ~1200
flows per task.  Pure-Python sweeps over six schedulers cannot run that in
CI time, so experiments are parameterised by a :class:`Scale` that shrinks
the topology and the flow counts **together**, keeping per-link contention
(the quantity that drives completion ratios) in the paper's regime.  The
``PAPER`` scale retains the published sizes for offline runs.

The scaling argument: with ``H`` hosts, ``F`` flows in flight, uniform
random endpoints and capacity ``C``, the expected load per host access
link is ``F/H`` flows and each ToR uplink carries ``servers_per_rack``
hosts' worth.  We shrink ``H`` 1000× and ``F`` ~40× from the paper, which
*raises* contention per link; the deadline sweep ranges then sit in the
same "partially feasible" regime where the paper's curves live (verified
in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.exp.executor import TopologySpec, topology_spec
from repro.net.fattree import FatTree
from repro.net.trees import SingleRootedTree
from repro.net.topology import Topology
from repro.util.units import KB, ms
from repro.workload.generator import WorkloadConfig


@dataclass(frozen=True, slots=True)
class Scale:
    """One consistent sizing of topologies and workloads.

    Attributes mirror the §V-A setup; per-figure runners override single
    fields via :meth:`with_`.
    """

    name: str
    servers_per_rack: int
    racks_per_pod: int
    pods: int
    fat_tree_k: int
    num_tasks: int
    mean_flows_per_task: float
    arrival_rate: float
    mean_deadline: float = 40 * ms
    mean_flow_size: float = 200 * KB
    max_paths: int = 8
    seeds: tuple[int, ...] = (1,)

    def single_rooted(self) -> Topology:
        return SingleRootedTree(
            servers_per_rack=self.servers_per_rack,
            racks_per_pod=self.racks_per_pod,
            pods=self.pods,
        )

    def fat_tree(self) -> Topology:
        return FatTree(k=self.fat_tree_k)

    def single_rooted_spec(self) -> TopologySpec:
        """:meth:`single_rooted` as a picklable executor spec."""
        return topology_spec(
            "single_rooted",
            servers_per_rack=self.servers_per_rack,
            racks_per_pod=self.racks_per_pod,
            pods=self.pods,
        )

    def fat_tree_spec(self) -> TopologySpec:
        """:meth:`fat_tree` as a picklable executor spec."""
        return topology_spec("fat_tree", k=self.fat_tree_k)

    def workload_config(self, **overrides) -> WorkloadConfig:
        base = WorkloadConfig(
            num_tasks=self.num_tasks,
            arrival_rate=self.arrival_rate,
            mean_deadline=self.mean_deadline,
            mean_flow_size=self.mean_flow_size,
            mean_flows_per_task=self.mean_flows_per_task,
        )
        return base.with_(**overrides) if overrides else base

    def with_(self, **kwargs) -> "Scale":
        return replace(self, **kwargs)


SMALL = Scale(
    name="small",
    servers_per_rack=4,
    racks_per_pod=3,
    pods=3,  # 36 hosts
    fat_tree_k=4,  # 16 hosts
    num_tasks=30,
    mean_flows_per_task=12,
    arrival_rate=300.0,
    seeds=(1,),
)
"""CI/benchmark scale: seconds per sweep point."""

MEDIUM = Scale(
    name="medium",
    servers_per_rack=8,
    racks_per_pod=5,
    pods=5,  # 200 hosts
    fat_tree_k=8,  # 128 hosts
    num_tasks=60,
    mean_flows_per_task=40,
    arrival_rate=400.0,
    seeds=(1, 2, 3),
)
"""Workstation scale: minutes per figure; smoother curves."""

PAPER = Scale(
    name="paper",
    servers_per_rack=40,
    racks_per_pod=30,
    pods=30,  # 36,000 hosts (paper Fig. 5)
    fat_tree_k=32,  # 8192 hosts (paper §V-A)
    num_tasks=30,
    mean_flows_per_task=1200,
    arrival_rate=100.0,
    max_paths=16,
    seeds=(1,),
)
"""The published sizes. Hours per figure in pure Python — offline use."""


SCALES: dict[str, Scale] = {"small": SMALL, "medium": MEDIUM, "paper": PAPER}
