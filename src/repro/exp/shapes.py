"""Machine-checkable shape claims per figure.

EXPERIMENTS.md states what each paper figure's *shape* is — who wins, the
orderings, the trends.  This module encodes those claims as predicates
over a :class:`~repro.exp.sweep.SweepResult` so the report generator can
print a ✓/✗ line per claim next to the regenerated numbers (benchmarks
assert the same claims independently, with their own tolerances).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from repro.exp.sweep import SweepResult


@dataclass(frozen=True, slots=True)
class ShapeClaim:
    """One qualitative claim about a figure's series."""

    description: str
    check: Callable[[SweepResult], bool]

    def holds(self, sweep: SweepResult) -> bool:
        return bool(self.check(sweep))


def _mean(sweep: SweepResult, sched: str, metric: str) -> float:
    return float(np.mean(sweep.series[sched][metric]))


def _taps_leads(metric: str, slack: float = 1e-9) -> ShapeClaim:
    return ShapeClaim(
        description=f"TAPS leads every scheduler on mean {metric}",
        check=lambda s: all(
            _mean(s, "TAPS", metric) >= _mean(s, other, metric) - slack
            for other in s.schedulers
            if other != "TAPS"
        ),
    )


def _trend(metric: str, rising: bool, tolerance: float = 0.1) -> ShapeClaim:
    word = "rises" if rising else "falls"

    def check(s: SweepResult) -> bool:
        for sched in s.schedulers:
            series = s.series[sched][metric]
            delta = series[-1] - series[0]
            if rising and delta < -tolerance:
                return False
            if not rising and delta > tolerance:
                return False
        return True

    return ShapeClaim(
        description=f"every scheduler's {metric} {word} along the sweep",
        check=check,
    )


def _zero_waste(*scheds: str) -> ShapeClaim:
    return ShapeClaim(
        description=f"admission control wastes nothing ({', '.join(scheds)})",
        check=lambda s: all(
            _mean(s, sched, "wasted_bandwidth_ratio") <= 1e-9
            for sched in scheds
        ),
    )


_FS_WASTES_MOST = ShapeClaim(
    description="Fair Sharing wastes the most bandwidth",
    check=lambda s: _mean(s, "Fair Sharing", "wasted_bandwidth_ratio")
    == max(_mean(s, x, "wasted_bandwidth_ratio") for x in s.schedulers),
)

#: claims per figure id (sweep figures only; fig14 is asserted in its bench)
SHAPES: dict[str, tuple[ShapeClaim, ...]] = {
    "fig6": (
        _taps_leads("task_completion_ratio"),
        _trend("task_completion_ratio", rising=True),
    ),
    "fig7": (
        _taps_leads("task_completion_ratio"),
        _trend("task_completion_ratio", rising=True),
    ),
    "fig8": (
        _FS_WASTES_MOST,
        _zero_waste("TAPS", "Varys"),
    ),
    "fig9": (
        _taps_leads("task_completion_ratio"),
        _trend("task_completion_ratio", rising=False),
    ),
    "fig10": (
        ShapeClaim(
            description="TAPS within noise of the best flow completion ratio",
            check=lambda s: _mean(s, "TAPS", "flow_completion_ratio")
            >= max(
                _mean(s, x, "flow_completion_ratio") for x in s.schedulers
            )
            - 0.02,
        ),
        ShapeClaim(
            description="PDQ beats Varys on flow completion (paper's contrast)",
            check=lambda s: _mean(s, "PDQ", "flow_completion_ratio")
            >= _mean(s, "Varys", "flow_completion_ratio"),
        ),
    ),
    "fig11": (
        _taps_leads("task_completion_ratio"),
        _trend("task_completion_ratio", rising=False),
    ),
    "fig12": (
        _taps_leads("task_completion_ratio"),
        _trend("task_completion_ratio", rising=False),
    ),
}


def check_shapes(figure_id: str, sweep: SweepResult) -> list[tuple[str, bool]]:
    """Evaluate a figure's claims; returns ``(description, holds)`` pairs."""
    return [
        (claim.description, claim.holds(sweep))
        for claim in SHAPES.get(figure_id, ())
    ]
