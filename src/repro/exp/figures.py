"""One runner per paper figure (§V–§VI).

``run_figure("fig6", scale=SMALL)`` regenerates the series behind paper
Fig. 6, etc.  Each runner documents the paper's sweep and how the scaled
x-axis maps onto it; see DESIGN.md §3 for the full experiment index.

Sweep figures are declared as :class:`~repro.exp.sweep.SweepGrid`
instances, so every runner accepts an optional
:class:`~repro.exp.executor.ExecutorConfig` and can fan its grid out
over a process pool and/or the on-disk result cache (``repro-taps
figure --jobs/--cache-dir``); results are bit-identical to a serial
run.  Fig. 14 is a time-series replay of two single runs and executes
in-process regardless.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exp.configs import SMALL, Scale
from repro.exp.executor import ExecutorConfig
from repro.exp.sweep import SweepGrid, SweepResult, run_sweep_grid
from repro.metrics.timeseries import ThroughputTimeSeries
from repro.sched.registry import make_scheduler
from repro.sim.engine import Engine
from repro.util.errors import ConfigurationError
from repro.util.units import KB, ms
from repro.workload.traces import testbed_trace


@dataclass(slots=True)
class FigureRun:
    """Result of regenerating one figure.

    ``sweep`` holds scheduler series for sweep figures; ``timeseries``
    holds ``{scheduler: (times, effective_pct)}`` for Fig. 14.
    """

    figure_id: str
    title: str
    primary_metrics: tuple[str, ...]
    sweep: SweepResult | None = None
    timeseries: dict[str, tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    notes: str = ""


def _deadline_values() -> tuple[float, ...]:
    return tuple(x * ms for x in (20, 25, 30, 35, 40, 45, 50, 55, 60))


def _size_values() -> tuple[float, ...]:
    return tuple(x * KB for x in (60, 90, 120, 150, 180, 210, 240, 270, 300))


# --- individual figures -------------------------------------------------------


def fig6(scale: Scale, executor: ExecutorConfig | None = None) -> FigureRun:
    """Fig. 6: application throughput & task completion ratio vs mean
    deadline (20–60 ms), single-rooted tree."""
    grid = SweepGrid(
        topology=scale.single_rooted_spec(),
        base_workload=scale.workload_config(),
        param_name="mean_deadline",
        param_values=_deadline_values(),
        seeds=scale.seeds,
        max_paths=scale.max_paths,
    )
    return FigureRun(
        "fig6",
        "Varying deadline, single-rooted tree",
        ("application_throughput", "task_completion_ratio"),
        sweep=run_sweep_grid(grid, executor),
    )


def fig7(scale: Scale, executor: ExecutorConfig | None = None) -> FigureRun:
    """Fig. 7: task completion ratio vs mean deadline, fat-tree
    (multi-rooted; baselines use flow-level ECMP, §V-A)."""
    grid = SweepGrid(
        topology=scale.fat_tree_spec(),
        base_workload=scale.workload_config(),
        param_name="mean_deadline",
        param_values=_deadline_values(),
        seeds=scale.seeds,
        max_paths=scale.max_paths,
    )
    return FigureRun(
        "fig7",
        "Varying deadline, multi-rooted fat-tree",
        ("task_completion_ratio",),
        sweep=run_sweep_grid(grid, executor),
    )


def fig8(scale: Scale, executor: ExecutorConfig | None = None) -> FigureRun:
    """Fig. 8: wasted bandwidth ratio vs mean deadline (single-rooted).

    The paper shows (a) all algorithms and (b) the same data without Fair
    Sharing, whose waste dwarfs the rest; both views read off the same
    sweep here.
    """
    run = fig6(scale, executor)
    assert run.sweep is not None
    return FigureRun(
        "fig8",
        "Wasted bandwidth vs deadline",
        ("wasted_bandwidth_ratio",),
        sweep=run.sweep,
        notes="(a) includes Fair Sharing; (b) excludes it — same series.",
    )


def fig9(scale: Scale, executor: ExecutorConfig | None = None) -> FigureRun:
    """Fig. 9: application throughput & task completion ratio vs mean flow
    size (60–300 KB), single-rooted tree."""
    grid = SweepGrid(
        topology=scale.single_rooted_spec(),
        base_workload=scale.workload_config(),
        param_name="mean_flow_size",
        param_values=_size_values(),
        seeds=scale.seeds,
        max_paths=scale.max_paths,
    )
    return FigureRun(
        "fig9",
        "Varying flow size, single-rooted tree",
        ("application_throughput", "task_completion_ratio"),
        sweep=run_sweep_grid(grid, executor),
    )


def fig10(scale: Scale, executor: ExecutorConfig | None = None) -> FigureRun:
    """Fig. 10: *flow* completion ratio with single-flow tasks (task ≡
    flow), varying flow size.

    The paper uses 36,000 single-flow tasks; scaled runs use
    ``num_tasks × mean_flows_per_task`` single-flow tasks so the offered
    load matches the other figures at the same scale.
    """
    n_tasks = int(scale.num_tasks * scale.mean_flows_per_task)
    grid = SweepGrid(
        topology=scale.single_rooted_spec(),
        base_workload=scale.workload_config(
            num_tasks=n_tasks,
            mean_flows_per_task=1,
            flows_per_task_dist="constant",
            arrival_rate=scale.arrival_rate * scale.mean_flows_per_task,
        ),
        param_name="mean_flow_size",
        param_values=_size_values(),
        seeds=scale.seeds,
        max_paths=scale.max_paths,
    )
    return FigureRun(
        "fig10",
        "Single-flow tasks: flow completion ratio vs flow size",
        ("flow_completion_ratio",),
        sweep=run_sweep_grid(grid, executor),
    )


def fig11(scale: Scale, executor: ExecutorConfig | None = None) -> FigureRun:
    """Fig. 11: task completion ratio vs flows per task.

    Paper sweeps 400–2000 flows/task (default 1200); scaled runs sweep the
    same *ratios* of the scale's default (⅓×…1⅔×), so the x-axis maps
    linearly onto the paper's.
    """
    ratios = [r / 1200 for r in (400, 600, 800, 1000, 1200, 1400, 1600, 1800, 2000)]
    values = tuple(
        max(1.0, round(r * scale.mean_flows_per_task)) for r in ratios
    )
    grid = SweepGrid(
        topology=scale.single_rooted_spec(),
        base_workload=scale.workload_config(),
        param_name="mean_flows_per_task",
        param_values=values,
        seeds=scale.seeds,
        max_paths=scale.max_paths,
    )
    return FigureRun(
        "fig11",
        "Varying flows per task (task diffusion)",
        ("task_completion_ratio",),
        sweep=run_sweep_grid(grid, executor),
        notes="x values are paper's 400…2000 rescaled by the scale's default.",
    )


def fig12(scale: Scale, executor: ExecutorConfig | None = None) -> FigureRun:
    """Fig. 12: task completion ratio vs task count (30–270, as paper)."""
    grid = SweepGrid(
        topology=scale.single_rooted_spec(),
        base_workload=scale.workload_config(),
        param_name="num_tasks",
        param_values=(30, 60, 90, 120, 150, 180, 210, 240, 270),
        seeds=scale.seeds,
        max_paths=scale.max_paths,
    )
    return FigureRun(
        "fig12",
        "Varying task count (task diffusion)",
        ("task_completion_ratio",),
        sweep=run_sweep_grid(grid, executor),
    )


def fig14(scale: Scale, executor: ExecutorConfig | None = None) -> FigureRun:
    """Fig. 14: effective application throughput over time on the testbed
    partial fat-tree — TAPS vs Fair Sharing, 100 flows (§VI).

    Fair Sharing runs deadline-oblivious here (plain TCP on the testbed
    knows nothing of deadlines), so doomed flows pollute goodput for
    their whole lifetime — reproducing the paper's ~60% trace against
    TAPS' ~100%.  Time-series replay needs the flow-state timeline, not
    just scalar metrics, so this figure ignores ``executor`` and runs
    in-process.
    """
    from repro.sched.fair import FairSharing

    schedulers = {
        "TAPS": lambda: make_scheduler("TAPS"),
        "Fair Sharing": lambda: FairSharing(quit_on_miss=False),
    }
    series: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for name, factory in schedulers.items():
        topo, tasks = testbed_trace(seed=scale.seeds[0])
        collector = ThroughputTimeSeries()
        engine = Engine(topo, tasks, factory(), hooks=(collector,))
        result = engine.run()
        collector.finalize(result.flow_states)
        series[name] = collector.sample(num_points=100)
    return FigureRun(
        "fig14",
        "Testbed: effective application throughput over time",
        ("effective_throughput_pct",),
        timeseries=series,
        notes="Effective % = useful fraction of the instantaneous transmit rate.",
    )


FIGURES = {
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig14": fig14,
}


def run_figure(
    figure_id: str,
    scale: Scale = SMALL,
    executor: ExecutorConfig | None = None,
) -> FigureRun:
    """Regenerate one paper figure at the given scale."""
    try:
        runner = FIGURES[figure_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown figure {figure_id!r}; known: {sorted(FIGURES)}"
        ) from None
    return runner(scale, executor)
