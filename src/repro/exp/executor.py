"""Parallel experiment executor: sweep fan-out + content-addressed cache.

Reproducing the paper's evaluation means hundreds of independent
``Engine.run()`` calls — every (figure, parameter value, seed, scheduler)
grid point.  Each point is pure: a :class:`SimJob` (topology factory name
and arguments, full :class:`~repro.workload.generator.WorkloadConfig`,
scheduler name, path budget) determines its
:class:`~repro.metrics.summary.RunMetrics` exactly, because workload
generation, path enumeration, and the fluid engine are all deterministic.
That purity buys two things:

* **fan-out** — jobs ship to a ``ProcessPoolExecutor`` as tiny picklable
  specs (workloads are *regenerated* in the worker, never pickled); each
  worker builds and memoizes the Topology/PathService once per distinct
  spec, and results merge back positionally, so output is bit-identical
  to a serial run regardless of completion order;
* **memoisation** — a content-addressed on-disk cache maps the SHA-256 of
  (job spec, workload schema version, result schema version) to the
  metrics JSON, so interrupted ``report`` runs resume instantly and
  repeated CI runs skip completed points.

Serial is the default (``ExecutorConfig()``); ``jobs=0`` means one worker
per CPU.  See docs/usage.md "Parallel runs & the result cache".
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.metrics.summary import RESULT_SCHEMA_VERSION, RunMetrics, summarize
from repro.net.bcube import BCube
from repro.net.fattree import FatTree
from repro.net.ficonn import FiConn
from repro.net.paths import PathService
from repro.net.topology import Topology
from repro.net.trees import SingleRootedTree
from repro.sched.registry import make_scheduler
from repro.sim.engine import Engine
from repro.util.errors import ConfigurationError
from repro.workload.generator import (
    WORKLOAD_SCHEMA_VERSION,
    WorkloadConfig,
    generate_workload,
)


def _dumbbell(**kwargs) -> Topology:
    # imported lazily: workload.traces pulls in the testbed module
    from repro.workload.traces import dumbbell

    return dumbbell(**kwargs)


#: topology factory registry — names are the picklable, cache-stable
#: identity of a topology; kwargs must be JSON-able scalars
TOPOLOGY_FACTORIES: dict[str, Callable[..., Topology]] = {
    "single_rooted": SingleRootedTree,
    "fat_tree": FatTree,
    "bcube": BCube,
    "ficonn": FiConn,
    "dumbbell": _dumbbell,
}


@dataclass(frozen=True, slots=True)
class TopologySpec:
    """A topology as data: registry name + sorted constructor kwargs.

    Hashable and picklable, so it can key worker-side memoisation and
    participate in cache digests.  ``topology_spec()`` is the ergonomic
    constructor.
    """

    factory: str
    args: tuple[tuple[str, float | int | str], ...] = ()

    def __post_init__(self) -> None:
        if self.factory not in TOPOLOGY_FACTORIES:
            raise ConfigurationError(
                f"unknown topology factory {self.factory!r}; "
                f"known: {sorted(TOPOLOGY_FACTORIES)}"
            )

    def build(self) -> Topology:
        return TOPOLOGY_FACTORIES[self.factory](**dict(self.args))

    def as_payload(self) -> list:
        """Canonical JSON-able form for cache digests."""
        return [self.factory, [[k, v] for k, v in self.args]]


def topology_spec(factory: str, **kwargs) -> TopologySpec:
    """Build a :class:`TopologySpec` from keyword arguments."""
    return TopologySpec(factory, tuple(sorted(kwargs.items())))


@dataclass(frozen=True, slots=True)
class SimJob:
    """One self-contained simulation: everything a worker needs.

    The workload is carried as its :class:`WorkloadConfig` (≈200 bytes),
    not as generated tasks — generation is deterministic, so the spec
    *is* the workload.
    """

    topology: TopologySpec
    workload: WorkloadConfig
    scheduler: str
    max_paths: int | None = 8

    def cache_payload(self) -> dict:
        """The content that addresses this job's cached result.

        Includes both schema versions: a workload-generator change or a
        RunMetrics shape change silently retires every old entry.
        """
        return {
            "workload_schema": WORKLOAD_SCHEMA_VERSION,
            "result_schema": RESULT_SCHEMA_VERSION,
            "topology": self.topology.as_payload(),
            "workload": asdict(self.workload),
            "scheduler": self.scheduler,
            "max_paths": self.max_paths,
        }

    def digest(self) -> str:
        blob = json.dumps(self.cache_payload(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()


# -- per-process topology memo -------------------------------------------------

#: (TopologySpec, max_paths) -> (Topology, PathService); one entry per
#: distinct spec per process.  In the parent it makes serial grids share
#: one PathService (as the historical serial sweep did); in pool workers
#: it is warmed by the initializer and reused across every job the worker
#: executes.
_TOPO_CACHE: dict[tuple[TopologySpec, int | None], tuple[Topology, PathService]] = {}


def build_topology(spec: TopologySpec, max_paths: int | None = 8) -> Topology:
    """The memoized topology for a spec (shares the worker/parent cache)."""
    return _topology_for(spec, max_paths)[0]


def _topology_for(
    spec: TopologySpec, max_paths: int | None
) -> tuple[Topology, PathService]:
    key = (spec, max_paths)
    hit = _TOPO_CACHE.get(key)
    if hit is None:
        topo = spec.build()
        hit = (topo, PathService(topo, max_paths=max_paths))
        _TOPO_CACHE[key] = hit
    return hit


def _warm_worker(keys: Sequence[tuple[TopologySpec, int | None]]) -> None:
    """Pool initializer: pre-build each distinct topology once per worker."""
    for spec, max_paths in keys:
        _topology_for(spec, max_paths)


def run_job(job: SimJob, telemetry=None) -> RunMetrics:
    """Execute one grid point (in this process) and summarize it.

    ``telemetry`` (an optional
    :class:`~repro.obs.registry.MetricsRegistry`) collects the run's
    instruments under a ``job`` span; metrics output is identical with it
    on or off (telemetry never feeds back into decisions).
    """
    topo, paths = _topology_for(job.topology, job.max_paths)
    tasks = generate_workload(job.workload, list(topo.hosts))
    engine = Engine(
        topo, tasks, make_scheduler(job.scheduler), path_service=paths,
        telemetry=telemetry,
    )
    if telemetry is None:
        result = engine.run()
    else:
        with telemetry.spans.span("job"):
            result = engine.run()
    return summarize(result)


def _run_job_telemetered(job: SimJob) -> tuple[RunMetrics, list[dict]]:
    """Pool target when the parent collects telemetry: run the job against
    a worker-local registry and ship its snapshot back with the metrics.

    Registries are monoids (counters/histograms add, gauges max), so the
    parent can fold worker snapshots in completion order and the
    aggregate is order-independent.
    """
    from repro.obs.registry import MetricsRegistry

    registry = MetricsRegistry()
    metrics = run_job(job, telemetry=registry)
    return metrics, registry.snapshot()


# -- result cache --------------------------------------------------------------


@dataclass(slots=True)
class CacheStats:
    """Hit/miss accounting, printed in the CLI run footer."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    writes: int = 0

    def line(self) -> str:
        return (f"cache: hits={self.hits} misses={self.misses} "
                f"invalidations={self.invalidations}")


def default_cache_dir() -> Path:
    """``$REPRO_TAPS_CACHE``, else ``$XDG_CACHE_HOME/repro-taps``, else
    ``~/.cache/repro-taps``."""
    env = os.environ.get("REPRO_TAPS_CACHE")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-taps"


class ResultCache:
    """Content-addressed RunMetrics store: ``<root>/<aa>/<digest>.json``.

    The digest covers the full job spec plus the workload and result
    schema versions (:meth:`SimJob.cache_payload`), so any semantic
    change to generation or metrics retires old entries without a
    version file or a sweep of the directory.  Entries are written
    atomically (tmp + rename); unreadable or mis-shaped entries count as
    an *invalidation*, fall back to recompute, and are overwritten.
    """

    def __init__(self, root: Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.stats = CacheStats()

    def _path(self, job: SimJob) -> Path:
        digest = job.digest()
        return self.root / digest[:2] / f"{digest}.json"

    def get(self, job: SimJob) -> RunMetrics | None:
        path = self._path(job)
        try:
            text = path.read_text()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            metrics = RunMetrics.from_json(text)
        except (ValueError, TypeError):
            # corrupt or stale-shaped entry: recompute, overwrite
            self.stats.invalidations += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return metrics

    def put(self, job: SimJob, metrics: RunMetrics) -> None:
        path = self._path(job)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(metrics.to_json())
        tmp.replace(path)
        self.stats.writes += 1


# -- executor ------------------------------------------------------------------


@dataclass(slots=True)
class ExecutorConfig:
    """How to run a batch of jobs.

    ``jobs=1`` (default) runs in-process and bit-identically reproduces
    the historical serial sweep; ``jobs=0`` uses every available CPU;
    ``jobs>=2`` fans out over a process pool.  ``cache=None`` disables
    the result cache.

    ``telemetry`` (an optional
    :class:`~repro.obs.registry.MetricsRegistry`) aggregates every
    executed job's instruments: serial jobs record into it directly;
    pool workers each record into a private registry whose snapshot
    ships back with the result and merges in (so hot-path counters from
    child processes no longer vanish).  Cache *hits* contribute only
    ``executor/cache_hits`` — a cached job never ran, so it has no
    telemetry.
    """

    jobs: int = 1
    cache: ResultCache | None = None
    telemetry: object | None = None

    def effective_jobs(self) -> int:
        if self.jobs < 0:
            raise ConfigurationError(f"jobs must be >= 0, got {self.jobs}")
        if self.jobs == 0:
            return max(1, os.cpu_count() or 1)
        return self.jobs


def make_executor(
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
    use_cache: bool = True,
) -> ExecutorConfig:
    """CLI adapter: ``--jobs/--cache-dir/--no-cache`` → ExecutorConfig."""
    cache = ResultCache(Path(cache_dir) if cache_dir else None) if use_cache else None
    return ExecutorConfig(jobs=1 if jobs is None else jobs, cache=cache)


def execute_jobs(
    jobs: Iterable[SimJob],
    config: ExecutorConfig | None = None,
) -> list[RunMetrics]:
    """Run every job; return metrics aligned with the input order.

    Cache lookups happen up front in the parent, so a fully-warm batch
    performs zero ``Engine.run()`` calls and spawns no pool.  Misses run
    serially in-process (``jobs<=1``) or across the pool; either way the
    result list is positional, so aggregation downstream is independent
    of submission and completion order.
    """
    cfg = config or ExecutorConfig()
    tel = cfg.telemetry
    job_list = list(jobs)
    results: list[RunMetrics | None] = [None] * len(job_list)
    cache = cfg.cache
    if cache is not None:
        # cache.stats accumulates across batches; count this batch's delta
        hits_before, misses_before = cache.stats.hits, cache.stats.misses
        pending = []
        for i, job in enumerate(job_list):
            cached = cache.get(job)
            if cached is None:
                pending.append(i)
            else:
                results[i] = cached
    else:
        pending = list(range(len(job_list)))
    if tel is not None:
        tel.counter("executor/jobs").inc(len(job_list))
        tel.counter("executor/jobs_run").inc(len(pending))
        if cache is not None:
            tel.counter("executor/cache_hits").inc(
                cache.stats.hits - hits_before
            )
            tel.counter("executor/cache_misses").inc(
                cache.stats.misses - misses_before
            )

    workers = min(cfg.effective_jobs(), len(pending))
    if workers <= 1:
        for i in pending:
            results[i] = run_job(job_list[i], telemetry=tel)
            if cache is not None:
                cache.put(job_list[i], results[i])
    else:
        distinct = list({(job_list[i].topology, job_list[i].max_paths): None
                         for i in pending})
        target = run_job if tel is None else _run_job_telemetered
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_warm_worker,
            initargs=(distinct,),
        ) as pool:
            futures = {pool.submit(target, job_list[i]): i for i in pending}
            for fut in as_completed(futures):
                i = futures[fut]
                if tel is None:
                    results[i] = fut.result()
                else:
                    results[i], snapshot = fut.result()
                    tel.merge_snapshot(snapshot)
                if cache is not None:
                    cache.put(job_list[i], results[i])
    return results  # type: ignore[return-value]
