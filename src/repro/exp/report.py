"""ASCII rendering of sweep results — "the same rows the paper reports".

Benchmarks and the CLI print these tables; EXPERIMENTS.md embeds them.
"""

from __future__ import annotations

import numpy as np

from repro.exp.sweep import SweepResult
from repro.util.units import KB, ms


def _fmt_param(name: str, value: float) -> str:
    if name == "mean_deadline":
        return f"{value / ms:.0f}ms"
    if name == "mean_flow_size":
        return f"{value / KB:.0f}KB"
    return f"{value:g}"


def render_sweep(
    sweep: SweepResult,
    metric: str,
    title: str = "",
    exclude: tuple[str, ...] = (),
) -> str:
    """One metric as a schedulers × parameter-values table."""
    scheds = [s for s in sweep.schedulers if s not in exclude]
    header = [sweep.param_name] + [
        _fmt_param(sweep.param_name, v) for v in sweep.param_values
    ]
    rows = [header]
    for s in scheds:
        rows.append([s] + [f"{v:.3f}" for v in sweep.series[s][metric]])
    widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
    lines = []
    if title:
        lines.append(title)
    lines.append(f"metric: {metric}")
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)


def render_timeseries(
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    width: int = 60,
    title: str = "",
) -> str:
    """Fig. 14-style traces as sparkline rows (one char per sample bucket)."""
    blocks = " ▁▂▃▄▅▆▇█"
    lines = [title] if title else []
    for name, (times, pct) in series.items():
        if len(pct) == 0:
            lines.append(f"{name:14s} (no data)")
            continue
        buckets = np.array_split(pct, min(width, len(pct)))
        chars = "".join(
            blocks[int(np.clip(np.mean(b) / 100 * (len(blocks) - 1), 0, len(blocks) - 1))]
            for b in buckets
        )
        lines.append(f"{name:14s} |{chars}| mean={pct[pct > 0].mean() if (pct > 0).any() else 0:.0f}%")
    return "\n".join(lines)


def render_sweep_with_ci(
    sweep: SweepResult,
    metric: str,
    title: str = "",
    exclude: tuple[str, ...] = (),
) -> str:
    """Like :func:`render_sweep` but each cell is ``mean±ci95`` (multi-seed
    sweeps; single-seed cells render as plain means)."""
    from repro.exp.stats import seed_stats

    scheds = [s for s in sweep.schedulers if s not in exclude]
    header = [sweep.param_name] + [
        _fmt_param(sweep.param_name, v) for v in sweep.param_values
    ]
    rows = [header]
    for s in scheds:
        stats = seed_stats(sweep, s, metric)
        cells = []
        for m, ci in zip(stats.mean, stats.ci95):
            cells.append(f"{m:.3f}±{ci:.3f}" if stats.n > 1 else f"{m:.3f}")
        rows.append([s] + cells)
    widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
    lines = []
    if title:
        lines.append(title)
    lines.append(f"metric: {metric} (mean±95% CI over seeds)")
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if i == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)


def render_summary_line(sweep: SweepResult, metric: str) -> str:
    """One-line per-scheduler means, for quick bench output."""
    parts = [
        f"{s}={np.mean(sweep.series[s][metric]):.3f}" for s in sweep.schedulers
    ]
    return f"{metric}: " + "  ".join(parts)
