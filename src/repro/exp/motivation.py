"""The worked examples of paper Figs. 1–3, runnable end to end.

Each function replays the example under the relevant schedulers and
returns per-scheduler (flows met, tasks completed) alongside the paper's
published outcome, so tests and the motivation example script can assert
the reproduction exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.controller import TapsScheduler
from repro.metrics.summary import summarize
from repro.sched.baraat import Baraat
from repro.sched.d3 import D3
from repro.sched.fair import FairSharing
from repro.sched.pdq import PDQ
from repro.sched.varys import Varys
from repro.sim.engine import Engine
from repro.workload.traces import fig1_trace, fig2_trace, fig3_trace


@dataclass(frozen=True, slots=True)
class ExampleOutcome:
    """Measured vs published result for one scheduler on one example."""

    scheduler: str
    flows_met: int
    tasks_completed: int
    paper_flows: int | None
    paper_tasks: int | None

    @property
    def matches_paper(self) -> bool:
        return (self.paper_flows is None or self.flows_met == self.paper_flows) and (
            self.paper_tasks is None or self.tasks_completed == self.paper_tasks
        )


def _run(trace, scheduler) -> tuple[int, int]:
    topo, tasks = trace()
    metrics = summarize(Engine(topo, tasks, scheduler).run())
    return metrics.flows_met, metrics.tasks_completed


def run_fig1() -> list[ExampleOutcome]:
    """Fig. 1: task-level vs flow-level scheduling on one bottleneck.

    Published outcomes (Fig. 1(b)–(e)): Fair Sharing 1 flow / 0 tasks,
    D3 1 / 0, PDQ 2 / 0, task-aware scheduling (TAPS) 2 / 1.
    """
    published = {
        "Fair Sharing": (1, 0),
        "D3": (1, 0),
        "PDQ": (2, 0),
        "TAPS": (2, 1),
    }
    out = []
    for sched in (FairSharing(), D3(), PDQ(), TapsScheduler()):
        flows, tasks = _run(fig1_trace, sched)
        pf, pt = published[sched.name]
        out.append(ExampleOutcome(sched.name, flows, tasks, pf, pt))
    return out


def run_fig2() -> list[ExampleOutcome]:
    """Fig. 2: preemptive task-level scheduling vs Baraat/Varys.

    Published outcomes (Fig. 2(b)–(d)): Baraat ≤ 1 task (t2 always
    fails), Varys 1 task, TAPS 2 tasks.  The paper's prose for Baraat is
    ambiguous ("fails to all the tasks") while its serial SJF schedule
    completes t1 by t=2 < 4 — we record task counts and assert TAPS' win.
    """
    published = {
        "Baraat": (None, None),  # prose ambiguous; see docstring
        "Varys": (2, 1),
        "TAPS": (4, 2),
    }
    out = []
    for sched in (Baraat(), Varys(), TapsScheduler()):
        flows, tasks = _run(fig2_trace, sched)
        pf, pt = published[sched.name]
        out.append(ExampleOutcome(sched.name, flows, tasks, pf, pt))
    return out


def run_fig3() -> list[ExampleOutcome]:
    """Fig. 3: global scheduling vs PDQ on the 6-switch topology.

    Published: PDQ (with a full flow list at its switches) completes 3 of
    4 flows; globally scheduled TAPS completes all 4 (f4 split into
    (0,1) ∪ (2,3)).
    """
    out = []
    flows, tasks = _run(fig3_trace, PDQ(flow_list_limit=1))
    out.append(ExampleOutcome("PDQ", flows, tasks, 3, 3))
    flows, tasks = _run(fig3_trace, TapsScheduler())
    out.append(ExampleOutcome("TAPS", flows, tasks, 4, 4))
    return out


def run_all() -> dict[str, list[ExampleOutcome]]:
    """All three motivation examples."""
    return {"fig1": run_fig1(), "fig2": run_fig2(), "fig3": run_fig3()}
