"""Scalar run metrics (paper §V-A definitions)."""

from __future__ import annotations

import json

from dataclasses import dataclass, asdict, fields

from repro.sim.engine import SimulationResult
from repro.sim.state import FlowStatus, TaskOutcome

RESULT_SCHEMA_VERSION = 1
"""Version of the :class:`RunMetrics` JSON schema.

Bump whenever a field is added, removed, renamed, or its meaning changes.
The executor's result cache keys on this (see DESIGN.md): a bump makes
every cached entry unreachable, so stale metrics can never masquerade as
fresh ones after the schema moves."""


@dataclass(frozen=True, slots=True)
class RunMetrics:
    """All scalar metrics of one run.

    ``wasted_bandwidth_ratio`` follows the paper's Fig. 8 definition:
    bytes successfully transmitted by flows that nevertheless missed their
    deadline (or were killed mid-flight), as a fraction of total task size.
    ``task_wasted_ratio`` additionally counts bytes of flows that *did*
    finish in time but whose task failed anyway — the intro's task-level
    notion of waste.
    """

    scheduler: str
    topology: str
    num_tasks: int
    num_flows: int
    tasks_completed: int
    flows_met: int
    flows_rejected: int
    flows_terminated: int
    task_completion_ratio: float
    flow_completion_ratio: float
    application_throughput: float
    wasted_bandwidth_ratio: float
    task_wasted_ratio: float
    total_bytes: float
    useful_bytes: float
    wasted_bytes: float
    mean_task_completion_time: float = 0.0
    """Mean time from arrival to last-flow completion over *fully
    completed* tasks (deadline-met or not) — the metric Baraat and
    Varys-SEBF optimise.  0.0 when no task fully completed."""
    mean_flow_completion_time: float = 0.0
    """Mean FCT over completed flows; 0.0 when none completed."""
    task_size_completion_ratio: float = 0.0
    """Bytes belonging to tasks completed before their deadlines / total
    offered bytes — the paper's "task size completed before deadlines"
    (abstract, §V-B's task-number vs task-size contrast).  Stricter than
    ``application_throughput``: a flow's bytes only count if its *whole
    task* made it."""

    def as_dict(self) -> dict:
        return asdict(self)

    def to_json(self) -> str:
        """Serialize as compact JSON with a stable field order.

        Keys appear in dataclass-definition order behind a leading
        ``"schema"`` marker, so equal metrics always produce identical
        bytes (the cache and the benchmarks compare serialized forms).
        Floats round-trip exactly (``json`` uses shortest-repr).
        """
        payload: dict = {"schema": RESULT_SCHEMA_VERSION}
        for f in fields(self):
            payload[f.name] = getattr(self, f.name)
        return json.dumps(payload, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "RunMetrics":
        """Inverse of :meth:`to_json`; strict about schema and fields.

        Raises ``ValueError`` on a version mismatch, a missing/unknown
        field, or a wrongly-typed value — callers (the result cache)
        treat that as a corrupt entry and recompute.
        """
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("RunMetrics JSON must be an object")
        if data.pop("schema", None) != RESULT_SCHEMA_VERSION:
            raise ValueError("RunMetrics schema version mismatch")
        names = [f.name for f in fields(cls)]
        if set(data) != set(names):
            unexpected = set(data) ^ set(names)
            raise ValueError(f"RunMetrics field mismatch: {sorted(unexpected)}")
        for f in fields(cls):
            v = data[f.name]
            if f.type == "int" and not isinstance(v, int):
                raise ValueError(f"{f.name} must be int, got {type(v).__name__}")
            if f.type == "float":
                if isinstance(v, bool) or not isinstance(v, (int, float)):
                    raise ValueError(f"{f.name} must be a number")
                data[f.name] = float(v)
            if f.type == "str" and not isinstance(v, str):
                raise ValueError(f"{f.name} must be str")
        return cls(**data)


def summarize(result: SimulationResult) -> RunMetrics:
    """Digest a :class:`~repro.sim.engine.SimulationResult` into scalars."""
    flows = result.flow_states
    tasks = result.task_states

    total_bytes = sum(fs.flow.size for fs in flows)
    useful_bytes = sum(fs.flow.size for fs in flows if fs.met_deadline)
    # flow-level waste: bytes pushed by flows that did not meet the deadline
    wasted_bytes = sum(fs.bytes_sent for fs in flows if not fs.met_deadline)
    # task-level waste: every byte pushed for a task that ultimately failed
    task_wasted = sum(
        fs.bytes_sent
        for ts in tasks
        if ts.outcome is not TaskOutcome.COMPLETED
        for fs in ts.flow_states
    )

    n_tasks = len(tasks)
    n_flows = len(flows)
    flows_met = sum(1 for fs in flows if fs.met_deadline)

    fcts = [
        fs.completed_at - fs.flow.release
        for fs in flows
        if fs.status is FlowStatus.COMPLETED and fs.completed_at is not None
    ]
    ccts = []
    for ts in tasks:
        ends = [
            fs.completed_at
            for fs in ts.flow_states
            if fs.status is FlowStatus.COMPLETED and fs.completed_at is not None
        ]
        if len(ends) == len(ts.flow_states):  # every flow actually finished
            ccts.append(max(ends) - ts.task.arrival)

    return RunMetrics(
        scheduler=result.scheduler_name,
        topology=result.topology_name,
        num_tasks=n_tasks,
        num_flows=n_flows,
        tasks_completed=result.tasks_completed,
        flows_met=flows_met,
        flows_rejected=sum(1 for fs in flows if fs.status is FlowStatus.REJECTED),
        flows_terminated=sum(1 for fs in flows if fs.status is FlowStatus.TERMINATED),
        task_completion_ratio=result.tasks_completed / n_tasks if n_tasks else 0.0,
        flow_completion_ratio=flows_met / n_flows if n_flows else 0.0,
        application_throughput=useful_bytes / total_bytes if total_bytes else 0.0,
        wasted_bandwidth_ratio=wasted_bytes / total_bytes if total_bytes else 0.0,
        task_wasted_ratio=task_wasted / total_bytes if total_bytes else 0.0,
        total_bytes=total_bytes,
        useful_bytes=useful_bytes,
        wasted_bytes=wasted_bytes,
        mean_task_completion_time=sum(ccts) / len(ccts) if ccts else 0.0,
        mean_flow_completion_time=sum(fcts) / len(fcts) if fcts else 0.0,
        task_size_completion_ratio=(
            sum(
                ts.task.total_size
                for ts in tasks
                if ts.outcome is TaskOutcome.COMPLETED
            )
            / total_bytes
            if total_bytes
            else 0.0
        ),
    )
