"""Compatibility shim: ``ProfileCounters`` moved to :mod:`repro.obs.hotpath`.

The hot-path work counters grew merge/publish semantics when the
telemetry subsystem landed (``src/repro/obs/``) and live there now as
:class:`~repro.obs.hotpath.HotPathCounters`.  This alias keeps existing
imports (``from repro.metrics.profiling import ProfileCounters``) and
every recorded ``profile`` dict in ``benchmarks/results/`` meaningful —
the class has the same fields, properties, and ``as_dict`` output as
before, plus ``merge``/``from_dict``/``publish_to``.
"""

from __future__ import annotations

from repro.obs.hotpath import HotPathCounters as ProfileCounters

__all__ = ["ProfileCounters"]
