"""Hot-path profiling counters for the allocation fast path.

The controller's single hottest loop is :func:`~repro.core.allocation.
path_calculation`: on every task arrival it re-plans all in-flight flows,
and for each flow it evaluates every candidate path against the per-link
occupancy sets.  :class:`ProfileCounters` instruments that loop — how often
the :class:`~repro.core.occupancy.OccupancyLedger` union cache hits, how
many occupancy intervals the union merges scan, how many candidate paths
the lower-bound prune skips, and how much wall time path calculation
costs — so benchmarks report *work done*, not just elapsed seconds, and
future optimisation PRs have a trajectory to beat.

One instance lives on :class:`~repro.core.controller.TapsStats` (as
``stats.profile``); the controller hands it to every ledger it creates and
to every ``path_calculation`` call.  The counters are deliberately plain
attribute increments so the instrumented hot path stays cheap, and the
consumers (``occupancy``/``allocation``) treat the profile as an optional
duck-typed object — passing ``None`` disables counting entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(slots=True)
class ProfileCounters:
    """Counters for the controller's allocation hot path.

    Attributes
    ----------
    union_cache_hits, union_cache_misses:
        ``OccupancyLedger.union_for`` calls served from / missing the
        per-path union cache.  On a cache-disabled ledger every call
        counts as a miss (the recompute path), so hit rates compare
        cleanly across modes.
    intervals_scanned:
        Occupancy intervals fed into union recomputation — the merge work
        the cache avoids repeating.
    candidates_evaluated:
        Candidate paths considered by Alg. 2's multi-path comparison
        (single-candidate flows skip the comparison and are not counted).
    candidates_pruned:
        Candidates skipped outright because their contention-free
        completion (``release + duration``) could not beat the best
        candidate so far; mid-scan ``stop_at`` aborts are not counted
        here (their partial scan is real work).
    path_calculation_calls, path_calculation_seconds:
        Invocations of, and total wall time inside,
        :func:`~repro.core.allocation.path_calculation`.
    trials_rolled_back:
        Ledger trials undone via the rollback journal (discard-victim
        retries and rejected incremental admissions).
    max_reallocation_depth:
        Largest number of victims discarded while admitting one task —
        how deep the Alg. 1 retry loop has ever gone.
    """

    union_cache_hits: int = 0
    union_cache_misses: int = 0
    intervals_scanned: int = 0
    candidates_evaluated: int = 0
    candidates_pruned: int = 0
    path_calculation_calls: int = 0
    path_calculation_seconds: float = 0.0
    trials_rolled_back: int = 0
    max_reallocation_depth: int = 0

    @property
    def union_cache_hit_rate(self) -> float:
        """Fraction of ``union_for`` calls served from the cache."""
        total = self.union_cache_hits + self.union_cache_misses
        return self.union_cache_hits / total if total else 0.0

    @property
    def prune_rate(self) -> float:
        """Fraction of evaluated candidates skipped by the lower bound."""
        return (
            self.candidates_pruned / self.candidates_evaluated
            if self.candidates_evaluated
            else 0.0
        )

    def as_dict(self) -> dict[str, float]:
        """All counters plus the derived rates, JSON-ready."""
        out: dict[str, float] = {
            f.name: getattr(self, f.name) for f in fields(self)
        }
        out["union_cache_hit_rate"] = self.union_cache_hit_rate
        out["prune_rate"] = self.prune_rate
        return out

    def reset(self) -> None:
        """Zero every counter in place."""
        for f in fields(self):
            setattr(self, f.name, type(getattr(self, f.name))())
