"""Per-link utilization accounting.

The paper's §VI claim is about "effective utilization of the network
bandwidth"; this collector measures it per link: byte-time carried by
each link over a run, split into *useful* (flows that met their deadline)
and *wasted* (flows that missed).  Feeds the utilization example and the
hotspot assertions in tests.

Usage::

    load = LinkLoadCollector(topology)
    result = Engine(topo, tasks, sched, hooks=(load,)).run()
    load.finalize(result.flow_states)
    table = load.utilization(horizon=result.finished_at)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.topology import Topology
from repro.sim.state import FlowState


@dataclass(frozen=True, slots=True)
class LinkLoad:
    """One link's totals over a run."""

    link_index: int
    src: str
    dst: str
    bytes_total: float
    bytes_useful: float
    utilization: float
    """bytes_total / (capacity × horizon) — fraction of the link's
    capacity-time actually carrying traffic."""

    @property
    def bytes_wasted(self) -> float:
        return self.bytes_total - self.bytes_useful


class LinkLoadCollector:
    """Engine hook accumulating per-link byte-time.

    Usefulness (deadline met or not) is only known at the end, so bytes
    are attributed per flow during the run and split in :meth:`finalize`.
    """

    def __init__(self, topology: Topology) -> None:
        self.topology = topology
        self._per_flow_bytes: dict[int, float] = {}
        self._flow_paths: dict[int, tuple[int, ...]] = {}
        self._met: dict[int, bool] = {}
        self._peak: dict[int, float] = {}

    # -- engine hook ----------------------------------------------------------

    def on_advance(self, t0: float, t1: float, active: list[FlowState]) -> None:
        dt = t1 - t0
        if dt <= 0:
            return
        link_rates: dict[int, float] = {}
        for fs in active:
            if fs.rate > 0 and fs.path is not None:
                fid = fs.flow.flow_id
                self._per_flow_bytes[fid] = (
                    self._per_flow_bytes.get(fid, 0.0) + fs.rate * dt
                )
                self._flow_paths[fid] = fs.path
                for l in fs.path:
                    link_rates[l] = link_rates.get(l, 0.0) + fs.rate
        if link_rates:
            links = self.topology.links
            peak = self._peak
            for l, r in link_rates.items():
                frac = r / links[l].capacity
                if frac > peak.get(l, 0.0):
                    peak[l] = frac

    def on_flow_settled(self, fs: FlowState, now: float) -> None:
        self._met[fs.flow.flow_id] = fs.met_deadline

    def finalize(self, flow_states: list[FlowState]) -> None:
        """Fill usefulness for flows the hooks never settled."""
        for fs in flow_states:
            self._met.setdefault(fs.flow.flow_id, fs.met_deadline)
            if fs.path is not None and fs.flow.flow_id in self._per_flow_bytes:
                self._flow_paths.setdefault(fs.flow.flow_id, fs.path)

    # -- queries ------------------------------------------------------------------

    def utilization(self, horizon: float) -> list[LinkLoad]:
        """Per-link loads over ``[0, horizon)``, busiest first.

        Only links that carried any traffic appear.  Note: flows are
        attributed to their *final* path; a TAPS flow rerouted mid-run is
        charged to the path it finished on (exact per-segment attribution
        would need per-advance path snapshots, which the tests that need
        exactness arrange by construction).
        """
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        totals: dict[int, float] = {}
        useful: dict[int, float] = {}
        for fid, nbytes in self._per_flow_bytes.items():
            path = self._flow_paths.get(fid, ())
            met = self._met.get(fid, False)
            for l in path:
                totals[l] = totals.get(l, 0.0) + nbytes
                if met:
                    useful[l] = useful.get(l, 0.0) + nbytes
        links = self.topology.links
        out = [
            LinkLoad(
                link_index=l,
                src=links[l].src,
                dst=links[l].dst,
                bytes_total=t,
                bytes_useful=useful.get(l, 0.0),
                utilization=t / (links[l].capacity * horizon),
            )
            for l, t in totals.items()
        ]
        out.sort(key=lambda x: -x.bytes_total)
        return out

    def hottest(self, horizon: float, n: int = 5) -> list[LinkLoad]:
        """The ``n`` most loaded links."""
        return self.utilization(horizon)[:n]

    def peak_utilization(self) -> dict[int, float]:
        """Per-link *peak instantaneous* utilization over the run.

        The highest ``Σ flow rates / capacity`` any advance interval saw
        on each link — the congestion question ("did this link ever
        saturate?"), complementing :meth:`utilization`'s time-averaged
        one.  Only links that ever carried traffic appear.
        """
        return dict(self._peak)
