"""Metrics: the paper's evaluation quantities (§V-A) and time series.

* **task completion ratio** — tasks whose every flow met its deadline /
  all tasks;
* **flow completion ratio** — flows meeting deadlines / all flows;
* **application throughput** — bytes of flows meeting deadlines / total
  offered bytes (the paper's size-weighted counterpart of the flow ratio);
* **wasted bandwidth ratio** — bytes transmitted by flows that ultimately
  missed / total task size (Fig. 8's definition);
* **effective application throughput over time** — the Fig. 14 trace.

Plus controller-internal instrumentation: :mod:`repro.metrics.profiling`
counts the allocation hot path's work (union-cache hits, intervals
scanned, candidates pruned, time in path calculation), and
:mod:`repro.metrics.tracestats` digests a decision trace
(:mod:`repro.trace`) into headline admission/preemption/slice counts.
"""

from repro.metrics.profiling import ProfileCounters
from repro.metrics.summary import RunMetrics, summarize
from repro.metrics.timeseries import ThroughputTimeSeries
from repro.metrics.tracestats import TraceDigest, trace_digest

__all__ = [
    "ProfileCounters",
    "RunMetrics",
    "summarize",
    "ThroughputTimeSeries",
    "TraceDigest",
    "trace_digest",
]
