"""Digest of a decision trace: headline counts for humans and CI.

The auditor (:mod:`repro.trace.audit`) answers "is this schedule
*legal*?"; this module answers "what happened?" — how many tasks arrived,
were accepted / rejected (by which clause), preempted, dropped on faults,
how many slices the network actually carried.  ``repro-taps audit``
prints the digest above the verdict so a violation report comes with its
denominators.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.trace.events import TraceEvent


@dataclass(slots=True)
class TraceDigest:
    """Headline counts extracted from one event stream."""

    events: int = 0
    tasks_arrived: int = 0
    tasks_accepted: int = 0
    tasks_rejected: int = 0
    tasks_preempted: int = 0
    tasks_dropped: int = 0
    trial_attempts: int = 0
    fault_reallocations: int = 0
    link_state_changes: int = 0
    slices: int = 0
    flows_completed: int = 0
    flows_met: int = 0
    deadline_expiries: int = 0
    rejects_by_clause: dict[str, int] = field(default_factory=dict)

    def lines(self) -> list[str]:
        """The digest as aligned ``name: value`` report lines."""
        out = [
            f"events:              {self.events}",
            f"tasks arrived:       {self.tasks_arrived}",
            f"  accepted:          {self.tasks_accepted}",
            f"  rejected:          {self.tasks_rejected}"
            + (
                "  (" + ", ".join(
                    (f"clause {c}: {n}" if c.isdigit() else f"{c}: {n}")
                    for c, n in sorted(self.rejects_by_clause.items())
                ) + ")"
                if self.rejects_by_clause
                else ""
            ),
            f"  preempted:         {self.tasks_preempted}",
            f"  dropped:           {self.tasks_dropped}",
            f"trial attempts:      {self.trial_attempts}",
            f"fault reallocations: {self.fault_reallocations}",
            f"link state changes:  {self.link_state_changes}",
            f"slices transmitted:  {self.slices}",
            f"flows completed:     {self.flows_completed} "
            f"({self.flows_met} met deadlines)",
            f"deadline expiries:   {self.deadline_expiries}",
        ]
        return out


def trace_digest(events: Iterable[TraceEvent]) -> TraceDigest:
    """Summarize an event stream (a recorder, a loaded trace's events)."""
    d = TraceDigest()
    clauses: Counter[str] = Counter()
    for e in events:
        d.events += 1
        kind = e.kind
        if kind == "task-arrival":
            d.tasks_arrived += 1
        elif kind == "task-accept":
            d.tasks_accepted += 1
        elif kind == "task-reject":
            d.tasks_rejected += 1
            clauses[str(e.clause) if e.clause is not None else e.reason] += 1
        elif kind == "preemption":
            d.tasks_preempted += 1
        elif kind == "task-drop":
            d.tasks_dropped += 1
        elif kind == "trial-begin":
            d.trial_attempts += 1
        elif kind == "fault-reallocation":
            d.fault_reallocations += 1
        elif kind == "link-state-change":
            d.link_state_changes += 1
        elif kind == "slice-start":
            d.slices += 1
        elif kind == "flow-completed":
            d.flows_completed += 1
            if e.met_deadline:
                d.flows_met += 1
        elif kind == "deadline-expired":
            d.deadline_expiries += 1
    d.rejects_by_clause = dict(clauses)
    return d
