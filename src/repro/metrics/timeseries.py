"""Throughput-over-time collection for the Fig. 14 experiment.

The paper plots *effective application throughput* — "the useful data
packets transmitted per unit time" — as a percentage.  In the fluid model
the instantaneous transmitted rate is exact, and a byte is *useful* iff the
flow carrying it ultimately meets its deadline.  Usefulness is only known
at the end, so the collector records per-segment rates per flow and
resolves usefulness when the run finishes.

Normalisation (documented substitution, see DESIGN.md): percentages are
relative to the run's **peak aggregate transmit rate**, which for the
testbed experiment is the rate when every sender NIC is busy.  TAPS, whose
accepted flows all complete, then sits at ~100% while active and decays as
senders drain (the paper's "tail descends little by little"); Fair Sharing
fluctuates around the fraction of engaged capacity carrying doomed flows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.state import FlowState


@dataclass(slots=True)
class _Segment:
    t0: float
    t1: float
    flow_id: int
    rate: float


class ThroughputTimeSeries:
    """Engine hook recording per-flow transmission segments.

    Pass an instance in ``Engine(hooks=(collector,))``; after the run call
    :meth:`sample` to get ``(times, effective_pct)`` arrays.
    """

    def __init__(self) -> None:
        self._segments: list[_Segment] = []
        self._met: dict[int, bool] = {}

    # -- engine hook interface ------------------------------------------------

    def on_advance(self, t0: float, t1: float, active: list[FlowState]) -> None:
        if t1 <= t0:
            return
        for fs in active:
            if fs.rate > 0:
                self._segments.append(_Segment(t0, t1, fs.flow.flow_id, fs.rate))

    def on_flow_settled(self, fs: FlowState, now: float) -> None:
        self._met[fs.flow.flow_id] = fs.met_deadline

    # -- post-run queries -------------------------------------------------------

    def finalize(self, flow_states: list[FlowState]) -> None:
        """Record final usefulness for flows that never hit the settle hook."""
        for fs in flow_states:
            self._met.setdefault(fs.flow.flow_id, fs.met_deadline)

    def total_rate_at(self, t: float) -> tuple[float, float]:
        """(useful_rate, total_rate) at time ``t``."""
        useful = total = 0.0
        for seg in self._segments:
            if seg.t0 <= t < seg.t1:
                total += seg.rate
                if self._met.get(seg.flow_id, False):
                    useful += seg.rate
        return useful, total

    def sample(
        self,
        num_points: int = 200,
        t_end: float | None = None,
        normalize: str = "instant",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sample effective throughput % on a uniform grid.

        ``normalize="instant"`` (default, the Fig. 14 reading): percentage
        of the *instantaneous* transmit rate that is useful — "the useful
        data packets transmitted per unit time" relative to what is being
        pushed.  ``normalize="peak"``: useful rate relative to the run's
        peak aggregate rate, which additionally shows utilisation decay as
        senders drain.
        """
        if normalize not in ("instant", "peak"):
            raise ValueError(f"unknown normalize {normalize!r}")
        if not self._segments:
            return np.zeros(0), np.zeros(0)
        horizon = t_end if t_end is not None else max(s.t1 for s in self._segments)
        times = np.linspace(0.0, horizon, num_points, endpoint=False)
        useful = np.zeros(num_points)
        total = np.zeros(num_points)
        # vectorised membership: for each segment add rate to covered samples
        for seg in self._segments:
            i0 = int(np.searchsorted(times, seg.t0, side="left"))
            i1 = int(np.searchsorted(times, seg.t1, side="left"))
            if i1 <= i0:
                continue
            total[i0:i1] += seg.rate
            if self._met.get(seg.flow_id, False):
                useful[i0:i1] += seg.rate
        if normalize == "peak":
            peak = total.max()
            if peak <= 0:
                return times, np.zeros(num_points)
            return times, 100.0 * useful / peak
        pct = np.zeros(num_points)
        busy = total > 0
        pct[busy] = 100.0 * useful[busy] / total[busy]
        return times, pct

    def mean_effective_pct(self) -> float:
        """Time-averaged effective throughput % while anything transmits."""
        times, pct = self.sample()
        busy = pct > 0
        return float(pct[busy].mean()) if busy.any() else 0.0
