"""Single-rooted tree topology (paper Fig. 5).

The paper's single-rooted simulations use a three-level tree: 40 servers per
rack behind a ToR switch, 30 ToR switches per aggregation switch, 30
aggregation switches under one core switch — 36,000 servers, all links
1 Gbps.  The generator below is parameterised so tests and benches can use
scaled-down instances with the same shape (oversubscription at every level).

Naming: hosts are ``h{pod}_{rack}_{i}``, ToRs ``tor{pod}_{rack}``,
aggregation switches ``agg{pod}``, and the root ``core``.
"""

from __future__ import annotations

from repro.net.topology import Path, Topology
from repro.util.errors import TopologyError


class SingleRootedTree(Topology):
    """Three-level single-rooted tree with unique host-to-host paths.

    Parameters
    ----------
    servers_per_rack, racks_per_pod, pods:
        Fan-out at each level.  Paper values: 40 / 30 / 30.
    capacity:
        Uniform link capacity in bytes/s (paper: 1 Gbps).
    """

    def __init__(
        self,
        servers_per_rack: int = 40,
        racks_per_pod: int = 30,
        pods: int = 30,
        capacity: float = 1e9 / 8.0,
    ) -> None:
        if min(servers_per_rack, racks_per_pod, pods) < 1:
            raise TopologyError("all fan-outs must be >= 1")
        super().__init__(
            name=f"single-rooted-{servers_per_rack}x{racks_per_pod}x{pods}",
            default_capacity=capacity,
        )
        self.servers_per_rack = servers_per_rack
        self.racks_per_pod = racks_per_pod
        self.pods = pods

        self.add_switch("core")
        for p in range(pods):
            agg = self.add_switch(f"agg{p}")
            self.add_cable(agg, "core")
            for r in range(racks_per_pod):
                tor = self.add_switch(f"tor{p}_{r}")
                self.add_cable(tor, agg)
                for i in range(servers_per_rack):
                    host = self.add_host(f"h{p}_{r}_{i}")
                    self.add_cable(host, tor)

    # -- structured path computation (avoids graph search) --------------------

    def _host_coords(self, host: str) -> tuple[int, int, int]:
        """Parse ``h{pod}_{rack}_{i}`` into integer coordinates."""
        if not host.startswith("h"):
            raise TopologyError(f"not a host of this tree: {host!r}")
        try:
            p, r, i = (int(x) for x in host[1:].split("_"))
        except ValueError:
            raise TopologyError(f"malformed host name {host!r}") from None
        return p, r, i

    def host_path_nodes(self, src: str, dst: str) -> list[str]:
        """Node sequence of the unique path between two hosts."""
        ps, rs, _ = self._host_coords(src)
        pd, rd, _ = self._host_coords(dst)
        if src == dst:
            raise TopologyError(f"src == dst == {src!r}")
        up: list[str] = [src, f"tor{ps}_{rs}"]
        if (ps, rs) == (pd, rd):
            return up + [dst]
        up.append(f"agg{ps}")
        if ps == pd:
            return up + [f"tor{pd}_{rd}", dst]
        return up + ["core", f"agg{pd}", f"tor{pd}_{rd}", dst]

    def shortest_path(self, src: str, dst: str) -> Path:
        return self.nodes_to_path(self.host_path_nodes(src, dst))

    def candidate_paths(self, src: str, dst: str, max_paths: int | None = None) -> list[Path]:
        """The unique path (a tree has exactly one)."""
        return [self.shortest_path(src, dst)]
