"""Path services: cached candidate-path lookup and flow-level ECMP.

Two consumers:

* **TAPS** (paper Alg. 2) needs the full candidate path set between a
  flow's endpoints to pick the earliest-completing one.
* **Baselines** were "not naturally designed for multi-rooted tree
  topologies", so the paper extends them with *flow-level ECMP* (§V-A):
  each flow is hashed onto one of the equal-cost paths and stays there.

Both are served by :class:`PathService`, which memoises per endpoint pair —
in the paper's workloads tasks fan out from few sources, so the hit rate is
high, and candidate enumeration on a k=32 fat-tree (256 paths) is worth
caching.
"""

from __future__ import annotations

from repro.net.topology import Path, Topology


def ecmp_hash(flow_id: int, src: str, dst: str, n_choices: int) -> int:
    """Deterministic flow-level ECMP choice among ``n_choices`` paths.

    A stand-in for the 5-tuple hash of a real switch: stable per flow,
    well-spread across flows.  Uses Python's stable string/int hashing via a
    Fowler–Noll–Vo-style mix so results do not depend on ``PYTHONHASHSEED``.
    """
    if n_choices <= 0:
        raise ValueError("n_choices must be positive")
    h = 2166136261
    for token in (str(flow_id), src, dst):
        for ch in token:
            h = ((h ^ ord(ch)) * 16777619) & 0xFFFFFFFF
    return h % n_choices


class PathService:
    """Memoised path lookup over a topology.

    Parameters
    ----------
    topology:
        The network to route on.
    max_paths:
        Cap on candidate paths returned per endpoint pair (``None`` = all).
        Large fat-trees have (k/2)² candidates; TAPS' search is linear in
        this, so experiments cap it (default 16 in the experiment configs).
    """

    def __init__(self, topology: Topology, max_paths: int | None = None) -> None:
        self.topology = topology
        self.max_paths = max_paths
        self._cache: dict[tuple[str, str], tuple[Path, ...]] = {}

    def candidates(self, src: str, dst: str) -> tuple[Path, ...]:
        """Candidate path set for ``src -> dst`` (cached).

        Returned as an immutable tuple: the same object is shared across
        every admission trial and the occupancy ledger's per-path union
        cache keys off the contained :data:`~repro.net.topology.Path`
        tuples, so callers must never see a mutated candidate list.
        """
        key = (src, dst)
        paths = self._cache.get(key)
        if paths is None:
            paths = tuple(
                self.topology.candidate_paths(src, dst, max_paths=self.max_paths)
            )
            self._cache[key] = paths
        return paths

    def ecmp_path(self, flow_id: int, src: str, dst: str) -> Path:
        """The single ECMP-selected path for a flow (flow-level ECMP, §V-A)."""
        paths = self.candidates(src, dst)
        return paths[ecmp_hash(flow_id, src, dst, len(paths))]

    def cache_info(self) -> dict[str, int]:
        """Diagnostics: number of cached endpoint pairs and total paths."""
        return {
            "pairs": len(self._cache),
            "paths": sum(len(v) for v in self._cache.values()),
        }
