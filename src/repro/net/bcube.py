"""BCube topology (Guo et al., SIGCOMM 2009) — cited by the paper (§II) as
one of the rich-connected, multi-path architectures TAPS targets.

``BCube(n, k)`` is server-centric:

* servers are addressed by ``k+1`` base-``n`` digits ``a_k … a_1 a_0`` —
  there are ``n^(k+1)`` of them;
* at every level ``l ∈ 0…k`` there are ``n^k`` switches; switch
  ``(l, rest)`` connects the ``n`` servers whose address equals ``rest``
  with digit ``l`` struck out;
* servers forward traffic (they have ``k+1`` ports); switches never
  connect to other switches.

Two servers differing in ``h`` digits are ``2h`` links apart; correcting
the digits in any of the ``h!`` orders gives that many equal-length
candidate paths (BCube's BSR exploits this diversity), enumerated here in
closed form.

Naming: servers ``s<digits>`` (e.g. ``s012``), switches ``w<l>_<rest>``.
"""

from __future__ import annotations

from itertools import islice, permutations

from repro.net.topology import Path, Topology
from repro.util.errors import TopologyError


class BCube(Topology):
    """BCube(n, k) with closed-form digit-correction path enumeration.

    Parameters
    ----------
    n:
        Switch port count / servers per BCube_0 (>= 2).
    k:
        Levels minus one; servers have ``k+1`` ports. ``k=0`` is a single
        switch with ``n`` servers.
    capacity:
        Uniform link capacity in bytes/s.
    """

    def __init__(self, n: int = 4, k: int = 1, capacity: float = 1e9 / 8.0) -> None:
        if n < 2:
            raise TopologyError(f"BCube n must be >= 2, got {n}")
        if k < 0:
            raise TopologyError(f"BCube k must be >= 0, got {k}")
        super().__init__(name=f"bcube-n{n}-k{k}", default_capacity=capacity)
        self.n = n
        self.k = k

        digits = k + 1
        servers = [self._addr_to_name(self._int_to_addr(i)) for i in range(n**digits)]
        for s in servers:
            self.add_host(s)
        for level in range(digits):
            for rest_int in range(n**k):
                rest = self._int_to_rest(rest_int)
                sw = f"w{level}_{''.join(map(str, rest))}"
                self.add_switch(sw)
                for digit in range(n):
                    addr = list(rest)
                    addr.insert(digits - 1 - level, digit)
                    self.add_cable(self._addr_to_name(tuple(addr)), sw)

    # -- addressing helpers ------------------------------------------------------

    def _int_to_addr(self, value: int) -> tuple[int, ...]:
        digits = self.k + 1
        out = []
        for _ in range(digits):
            out.append(value % self.n)
            value //= self.n
        return tuple(reversed(out))  # a_k … a_0

    def _int_to_rest(self, value: int) -> tuple[int, ...]:
        out = []
        for _ in range(self.k):
            out.append(value % self.n)
            value //= self.n
        return tuple(reversed(out))

    @staticmethod
    def _addr_to_name(addr: tuple[int, ...]) -> str:
        return "s" + "".join(map(str, addr))

    def _name_to_addr(self, server: str) -> tuple[int, ...]:
        if not server.startswith("s"):
            raise TopologyError(f"not a BCube server: {server!r}")
        try:
            addr = tuple(int(c) for c in server[1:])
        except ValueError:
            raise TopologyError(f"malformed server name {server!r}") from None
        if len(addr) != self.k + 1 or any(d >= self.n for d in addr):
            raise TopologyError(f"address out of range: {server!r}")
        return addr

    def switch_for(self, addr: tuple[int, ...], level: int) -> str:
        """The level-``level`` switch adjacent to the server at ``addr``."""
        digits = self.k + 1
        rest = tuple(d for i, d in enumerate(addr) if i != digits - 1 - level)
        return f"w{level}_{''.join(map(str, rest))}"

    @property
    def num_servers(self) -> int:
        return self.n ** (self.k + 1)

    # -- routing -------------------------------------------------------------------

    def candidate_paths(self, src: str, dst: str, max_paths: int | None = None) -> list[Path]:
        """All shortest digit-correction paths (one per correction order).

        A path correcting digits ``l1, l2, …`` hops
        ``src → switch(l1) → s' → switch(l2) → s'' → … → dst``; with ``h``
        differing digits there are ``h!`` orders (capped by ``max_paths``).
        """
        if src == dst:
            raise TopologyError(f"src == dst == {src!r}")
        a, b = self._name_to_addr(src), self._name_to_addr(dst)
        digits = self.k + 1
        diff_levels = [
            level
            for level in range(digits)
            if a[digits - 1 - level] != b[digits - 1 - level]
        ]
        orders = permutations(diff_levels)
        if max_paths is not None:
            orders = islice(orders, max_paths)
        paths: list[Path] = []
        for order in orders:
            nodes = [src]
            cur = list(a)
            for level in order:
                sw = self.switch_for(tuple(cur), level)
                cur[digits - 1 - level] = b[digits - 1 - level]
                nodes.append(sw)
                nodes.append(self._addr_to_name(tuple(cur)))
            paths.append(self.nodes_to_path(nodes))
        return paths

    def shortest_path(self, src: str, dst: str) -> Path:
        return self.candidate_paths(src, dst, max_paths=1)[0]
