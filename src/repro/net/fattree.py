"""k-ary fat-tree topology (Al-Fares et al., SIGCOMM 2008; paper §V-A).

Structure for even ``k``:

* ``k`` pods; each pod has ``k/2`` edge switches and ``k/2`` aggregation
  switches; each edge switch serves ``k/2`` hosts;
* ``(k/2)²`` core switches; core switch ``(i, j)`` (``i, j < k/2``) connects
  to aggregation switch ``j`` of **every** pod;
* total hosts ``k³/4`` (paper's multi-rooted runs use k=32 → 8192 hosts).

Between hosts in different pods there are ``(k/2)²`` equal-cost paths (one
per core switch); within a pod but across edge switches, ``k/2`` paths (one
per aggregation switch); within an edge switch, exactly one.

Naming: hosts ``h{pod}_{edge}_{i}``, edge switches ``e{pod}_{j}``,
aggregation ``a{pod}_{j}``, cores ``c{i}_{j}``.
"""

from __future__ import annotations

from repro.net.topology import Path, Topology
from repro.util.errors import TopologyError


class FatTree(Topology):
    """k-ary fat-tree with closed-form multi-path enumeration.

    Parameters
    ----------
    k:
        Pod count; must be even and >= 2.
    capacity:
        Uniform link capacity in bytes/s.
    """

    def __init__(self, k: int = 4, capacity: float = 1e9 / 8.0) -> None:
        if k < 2 or k % 2 != 0:
            raise TopologyError(f"fat-tree k must be even and >= 2, got {k}")
        super().__init__(name=f"fat-tree-k{k}", default_capacity=capacity)
        self.k = k
        half = k // 2

        for i in range(half):
            for j in range(half):
                self.add_switch(f"c{i}_{j}")
        for p in range(k):
            for j in range(half):
                agg = self.add_switch(f"a{p}_{j}")
                # core row j connects to aggregation switch j of every pod
                for i in range(half):
                    self.add_cable(agg, f"c{i}_{j}")
            for j in range(half):
                edge = self.add_switch(f"e{p}_{j}")
                for a in range(half):
                    self.add_cable(edge, f"a{p}_{a}")
                for i in range(half):
                    host = self.add_host(f"h{p}_{j}_{i}")
                    self.add_cable(host, edge)

    @property
    def num_hosts(self) -> int:
        return self.k**3 // 4

    def _host_coords(self, host: str) -> tuple[int, int, int]:
        if not host.startswith("h"):
            raise TopologyError(f"not a host of this fat-tree: {host!r}")
        try:
            p, e, i = (int(x) for x in host[1:].split("_"))
        except ValueError:
            raise TopologyError(f"malformed host name {host!r}") from None
        return p, e, i

    def candidate_paths(self, src: str, dst: str, max_paths: int | None = None) -> list[Path]:
        """All equal-cost shortest paths, enumerated in closed form.

        Ordering is deterministic (aggregation index, then core index) so
        ECMP hashing and TAPS path search are reproducible.
        """
        if src == dst:
            raise TopologyError(f"src == dst == {src!r}")
        ps, es, _ = self._host_coords(src)
        pd, ed, _ = self._host_coords(dst)
        half = self.k // 2
        paths: list[Path] = []

        if (ps, es) == (pd, ed):
            paths.append(self.nodes_to_path([src, f"e{ps}_{es}", dst]))
            return paths

        if ps == pd:
            for a in range(half):
                nodes = [src, f"e{ps}_{es}", f"a{ps}_{a}", f"e{pd}_{ed}", dst]
                paths.append(self.nodes_to_path(nodes))
                if max_paths is not None and len(paths) >= max_paths:
                    return paths
            return paths

        for a in range(half):
            for c in range(half):
                nodes = [
                    src,
                    f"e{ps}_{es}",
                    f"a{ps}_{a}",
                    f"c{c}_{a}",
                    f"a{pd}_{a}",
                    f"e{pd}_{ed}",
                    dst,
                ]
                paths.append(self.nodes_to_path(nodes))
                if max_paths is not None and len(paths) >= max_paths:
                    return paths
        return paths

    def shortest_path(self, src: str, dst: str) -> Path:
        return self.candidate_paths(src, dst, max_paths=1)[0]
