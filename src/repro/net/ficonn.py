"""FiConn topology (Li et al., INFOCOM 2009) — the paper's third cited
rich-connected architecture (§II), built from commodity servers' backup
ports.

Recursive construction:

* ``FiConn_0`` is ``n`` servers (``n`` even) on one switch; every server's
  backup port is free, so ``b_0 = n`` free ports.
* ``FiConn_k`` is ``g_k = b_{k-1}/2 + 1`` copies of ``FiConn_{k-1}``,
  pairwise connected: every pair of copies is joined by one *level-k
  link* between two servers whose backup ports were still free.  Each
  copy participates in ``g_k − 1 = b_{k-1}/2`` pairs, spending exactly
  half its free ports, so ``b_k = g_k · b_{k-1}/2``.

Server selection for level-k links is deterministic (lowest-indexed free
servers first); the original paper fixes a choice by index arithmetic —
any consistent choice yields an isomorphic network.

Candidate paths use the generic equal-cost graph search of
:class:`~repro.net.topology.Topology`: FiConn's own TOR routing is
hierarchical, but for the scheduling experiments only the path sets
matter and the FiConn instances used here are small.

Naming: servers ``f<copies>_<idx>`` (e.g. ``f0.1_3`` = server 3 of copy 1
inside copy 0), switches ``x<copies>``.
"""

from __future__ import annotations

from repro.net.topology import Topology
from repro.util.errors import TopologyError


def free_ports(n: int, k: int) -> int:
    """``b_k``: free backup ports in a FiConn(n, k)."""
    b = n
    for _ in range(k):
        g = b // 2 + 1
        b = g * (b // 2)
    return b


def num_copies(n: int, k: int) -> int:
    """``g_k``: FiConn_{k-1} copies inside a FiConn(n, k); 1 for k=0."""
    if k == 0:
        return 1
    return free_ports(n, k - 1) // 2 + 1


class FiConn(Topology):
    """FiConn(n, k) built recursively from backup-port links.

    Parameters
    ----------
    n:
        Servers per FiConn_0 switch; must be even and >= 2.
    k:
        Recursion level; 0 gives a single switch.  Sizes grow fast:
        FiConn(4, 1) = 3·4 = 12 servers, FiConn(4, 2) = 4·12 = 48,
        FiConn(8, 1) = 5·8 = 40.
    capacity:
        Uniform link capacity in bytes/s.
    """

    def __init__(self, n: int = 4, k: int = 1, capacity: float = 1e9 / 8.0) -> None:
        if n < 2 or n % 2 != 0:
            raise TopologyError(f"FiConn n must be even and >= 2, got {n}")
        if k < 0:
            raise TopologyError(f"FiConn k must be >= 0, got {k}")
        super().__init__(name=f"ficonn-n{n}-k{k}", default_capacity=capacity)
        self.n = n
        self.k = k
        self.level_links: dict[int, list[tuple[str, str]]] = {
            lvl: [] for lvl in range(1, k + 1)
        }
        self._build(copies=(), level=k)

    def _build(self, copies: tuple[int, ...], level: int) -> list[str]:
        """Construct one FiConn_level; return its servers with free ports."""
        label = ".".join(map(str, copies)) if copies else "r"
        if level == 0:
            switch = self.add_switch(f"x{label}")
            servers = []
            for i in range(self.n):
                s = self.add_host(f"f{label}_{i}")
                self.add_cable(s, switch)
                servers.append(s)
            return servers

        g = num_copies(self.n, level)
        sub_free = [self._build(copies + (c,), level - 1) for c in range(g)]
        for i in range(g):
            for j in range(i + 1, g):
                a = sub_free[i].pop(0)
                b = sub_free[j].pop(0)
                self.add_cable(a, b)
                self.level_links[level].append((a, b))
        return [s for free in sub_free for s in free]

    @property
    def num_servers(self) -> int:
        return len(self.hosts)
