"""Network model: links, topologies, and path services.

The paper evaluates on three physical networks; all are built here:

* a three-level **single-rooted tree** (paper Fig. 5; §V-A) — unique paths,
* a k-ary **fat-tree** (multi-rooted; §V-A uses k=32) — many equal-cost paths,
* the **partial fat-tree testbed** of the implementation experiment
  (paper Fig. 13) — 8 hosts across 4 racks and 2 pods.

Arbitrary topologies can be supplied as networkx graphs through
:class:`~repro.net.topology.Topology`.
"""

from repro.net.link import Link
from repro.net.topology import Topology
from repro.net.trees import SingleRootedTree
from repro.net.fattree import FatTree
from repro.net.bcube import BCube
from repro.net.ficonn import FiConn
from repro.net.testbed import PartialFatTreeTestbed
from repro.net.paths import PathService, ecmp_hash

__all__ = [
    "Link",
    "Topology",
    "SingleRootedTree",
    "FatTree",
    "BCube",
    "FiConn",
    "PartialFatTreeTestbed",
    "PathService",
    "ecmp_hash",
]
