"""Directed link model.

Links are directed (full-duplex cables are two links) and identified by a
dense integer index assigned by the owning :class:`~repro.net.topology.Topology`.
Dense indices let schedulers keep per-link state in flat lists/arrays rather
than dicts keyed by node pairs — the rate-allocation inner loops touch every
link on every path of every active flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Link:
    """One directed link.

    Attributes
    ----------
    index:
        Dense id within the topology; stable for the topology's lifetime.
    src, dst:
        Endpoint node names (hosts or switches).
    capacity:
        Bytes per second.  The paper assumes uniform capacity (§IV-B);
        the model permits heterogeneity but TAPS' expected-transmission-time
        reduction requires uniformity, which the controller validates.
    """

    index: int
    src: str
    dst: str
    capacity: float = field(default=1e9 / 8.0)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"link capacity must be positive, got {self.capacity}")
        if self.src == self.dst:
            raise ValueError(f"self-loop link at node {self.src!r}")

    def __repr__(self) -> str:
        return f"Link({self.index}: {self.src}->{self.dst} @ {self.capacity:g} B/s)"
