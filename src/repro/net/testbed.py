"""The implementation-experiment testbed (paper Fig. 13).

The paper's testbed is a *partial fat-tree*: 8 end hosts arranged across 4
racks and two pods; each rack has a ToR (edge) switch connected to an
aggregation switch; aggregation switches are joined by core switches.  All
links are 1 Gbps (Gigabit NICs / H3C S5500 switches).

We model it as the k=4 fat-tree restricted to 2 pods with 2 hosts per edge
switch and 2 core switches — which matches the figure's drawing: 8 hosts,
4 edge, 4 aggregation, 2 cores.
"""

from __future__ import annotations

from repro.net.topology import Path, Topology
from repro.util.errors import TopologyError


class PartialFatTreeTestbed(Topology):
    """8-host partial fat-tree used for the Fig. 14 experiment."""

    def __init__(self, capacity: float = 1e9 / 8.0) -> None:
        super().__init__(name="partial-fat-tree-testbed", default_capacity=capacity)
        for c in range(2):
            self.add_switch(f"c{c}")
        for p in range(2):
            for a in range(2):
                agg = self.add_switch(f"a{p}_{a}")
                # aggregation switch a of each pod homes on core a
                self.add_cable(agg, f"c{a}")
            for e in range(2):
                edge = self.add_switch(f"e{p}_{e}")
                for a in range(2):
                    self.add_cable(edge, f"a{p}_{a}")
                for i in range(2):
                    host = self.add_host(f"h{p}_{e}_{i}")
                    self.add_cable(host, edge)

    def candidate_paths(self, src: str, dst: str, max_paths: int | None = None) -> list[Path]:
        """Closed-form enumeration mirroring :class:`~repro.net.fattree.FatTree`."""
        if src == dst:
            raise TopologyError(f"src == dst == {src!r}")
        ps, es, _ = (int(x) for x in src[1:].split("_"))
        pd, ed, _ = (int(x) for x in dst[1:].split("_"))
        paths: list[Path] = []
        if (ps, es) == (pd, ed):
            return [self.nodes_to_path([src, f"e{ps}_{es}", dst])]
        if ps == pd:
            for a in range(2):
                paths.append(
                    self.nodes_to_path([src, f"e{ps}_{es}", f"a{ps}_{a}", f"e{pd}_{ed}", dst])
                )
                if max_paths is not None and len(paths) >= max_paths:
                    return paths
            return paths
        for a in range(2):
            nodes = [src, f"e{ps}_{es}", f"a{ps}_{a}", f"c{a}", f"a{pd}_{a}", f"e{pd}_{ed}", dst]
            paths.append(self.nodes_to_path(nodes))
            if max_paths is not None and len(paths) >= max_paths:
                return paths
        return paths

    def shortest_path(self, src: str, dst: str) -> Path:
        return self.candidate_paths(src, dst, max_paths=1)[0]
