"""Topology: a named graph of hosts and switches with indexed directed links.

A topology owns:

* the node sets (``hosts`` — traffic endpoints; ``switches`` — forwarding
  only),
* the dense-indexed directed :class:`~repro.net.link.Link` list,
* adjacency for path computation.

Subclasses (:class:`~repro.net.trees.SingleRootedTree`,
:class:`~repro.net.fattree.FatTree`, …) build their structure in
``__init__`` via :meth:`add_host` / :meth:`add_switch` / :meth:`add_cable`
and may override :meth:`candidate_paths` with topology-aware enumeration.
"""

from __future__ import annotations

from collections.abc import Sequence

import networkx as nx

from repro.net.link import Link
from repro.util.errors import TopologyError

Path = tuple[int, ...]
"""A path is a tuple of link indices from source host to destination host."""


class Topology:
    """Base topology: nodes plus indexed directed links.

    Parameters
    ----------
    name:
        Human-readable topology name (appears in experiment reports).
    default_capacity:
        Capacity (bytes/s) used by :meth:`add_cable` when none is given.
    """

    def __init__(self, name: str = "topology", default_capacity: float = 1e9 / 8.0) -> None:
        self.name = name
        self.default_capacity = default_capacity
        self._hosts: list[str] = []
        self._switches: list[str] = []
        self._links: list[Link] = []
        self._link_by_pair: dict[tuple[str, str], Link] = {}
        self._adj: dict[str, list[Link]] = {}
        self._graph_cache: nx.DiGraph | None = None

    # -- construction -----------------------------------------------------

    def add_host(self, node: str) -> str:
        """Register a traffic-endpoint node."""
        self._check_new_node(node)
        self._hosts.append(node)
        self._adj[node] = []
        return node

    def add_switch(self, node: str) -> str:
        """Register a forwarding-only node."""
        self._check_new_node(node)
        self._switches.append(node)
        self._adj[node] = []
        return node

    def add_link(self, src: str, dst: str, capacity: float | None = None) -> Link:
        """Add one directed link."""
        for node in (src, dst):
            if node not in self._adj:
                raise TopologyError(f"unknown node {node!r}")
        if (src, dst) in self._link_by_pair:
            raise TopologyError(f"duplicate link {src!r}->{dst!r}")
        link = Link(
            index=len(self._links),
            src=src,
            dst=dst,
            capacity=self.default_capacity if capacity is None else capacity,
        )
        self._links.append(link)
        self._link_by_pair[(src, dst)] = link
        self._adj[src].append(link)
        self._graph_cache = None
        return link

    def add_cable(self, a: str, b: str, capacity: float | None = None) -> tuple[Link, Link]:
        """Add a full-duplex cable: two directed links, one each way."""
        return self.add_link(a, b, capacity), self.add_link(b, a, capacity)

    def _check_new_node(self, node: str) -> None:
        if node in self._adj:
            raise TopologyError(f"duplicate node {node!r}")

    # -- accessors ----------------------------------------------------------

    @property
    def hosts(self) -> Sequence[str]:
        """All traffic endpoints, in insertion order."""
        return self._hosts

    @property
    def switches(self) -> Sequence[str]:
        """All forwarding-only nodes, in insertion order."""
        return self._switches

    @property
    def links(self) -> Sequence[Link]:
        """All directed links, indexed densely by ``Link.index``."""
        return self._links

    @property
    def num_links(self) -> int:
        return len(self._links)

    def link(self, src: str, dst: str) -> Link:
        """The directed link ``src -> dst``; raises if absent."""
        try:
            return self._link_by_pair[(src, dst)]
        except KeyError:
            raise TopologyError(f"no link {src!r}->{dst!r}") from None

    def out_links(self, node: str) -> Sequence[Link]:
        """Outgoing links of ``node``."""
        try:
            return self._adj[node]
        except KeyError:
            raise TopologyError(f"unknown node {node!r}") from None

    def uniform_capacity(self) -> float:
        """The common link capacity; raises if capacities are heterogeneous.

        TAPS' size→transmission-time reduction (§IV-B) is only valid for
        uniform capacity, so its controller calls this at construction.
        """
        if not self._links:
            raise TopologyError("topology has no links")
        caps = {l.capacity for l in self._links}
        if len(caps) != 1:
            raise TopologyError(f"link capacities not uniform: {sorted(caps)}")
        return next(iter(caps))

    # -- path computation -----------------------------------------------------

    def graph(self) -> nx.DiGraph:
        """A networkx view of the topology (cached; rebuild on mutation)."""
        if self._graph_cache is None:
            g = nx.DiGraph()
            g.add_nodes_from(self._hosts, kind="host")
            g.add_nodes_from(self._switches, kind="switch")
            for link in self._links:
                g.add_edge(link.src, link.dst, index=link.index, capacity=link.capacity)
            self._graph_cache = g
        return self._graph_cache

    def nodes_to_path(self, nodes: Sequence[str]) -> Path:
        """Convert a node sequence into a tuple of link indices."""
        return tuple(
            self.link(u, v).index for u, v in zip(nodes, nodes[1:])
        )

    def shortest_path(self, src: str, dst: str) -> Path:
        """One shortest path (hop count) from ``src`` to ``dst``."""
        try:
            nodes = nx.shortest_path(self.graph(), src, dst)
        except nx.NetworkXNoPath:
            raise TopologyError(f"no path {src!r} -> {dst!r}") from None
        return self.nodes_to_path(nodes)

    def candidate_paths(self, src: str, dst: str, max_paths: int | None = None) -> list[Path]:
        """All shortest paths ``src -> dst``, up to ``max_paths``.

        This is the "alternative path set P" of paper Alg. 2 line 3.  The
        base implementation enumerates equal-cost shortest paths with
        networkx; structured topologies override this with closed-form
        enumeration (fat-tree core choice, etc.) for speed.
        """
        if src == dst:
            raise TopologyError(f"src == dst == {src!r}")
        gen = nx.all_shortest_paths(self.graph(), src, dst)
        paths: list[Path] = []
        try:
            for nodes in gen:
                paths.append(self.nodes_to_path(nodes))
                if max_paths is not None and len(paths) >= max_paths:
                    break
        except nx.NetworkXNoPath:
            raise TopologyError(f"no path {src!r} -> {dst!r}") from None
        return paths

    def validate(self) -> None:
        """Structural sanity check: every host can reach every other host.

        O(hosts²) reachability via one BFS per host on the condensed graph;
        intended for tests and small topologies, not the 36k-server tree.
        """
        g = self.graph()
        for h in self._hosts:
            reach = nx.descendants(g, h)
            missing = [x for x in self._hosts if x != h and x not in reach]
            if missing:
                raise TopologyError(f"host {h!r} cannot reach {missing[:3]}…")

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name!r}: {len(self._hosts)} hosts, "
            f"{len(self._switches)} switches, {len(self._links)} links)"
        )
