"""Workload model: flows, tasks, and the paper's trace generators.

The unit of admission and success in TAPS is the **task** (coflow): a set
of flows that arrive together and share one deadline; the task succeeds
only if every flow finishes by the deadline (§I, §III-B).
"""

from repro.workload.flow import Flow, Task
from repro.workload.generator import WorkloadConfig, generate_workload
from repro.workload.io import load_tasks, save_tasks
from repro.workload.traces import (
    fig1_trace,
    fig2_trace,
    fig3_trace,
    testbed_trace,
)

__all__ = [
    "Flow",
    "Task",
    "WorkloadConfig",
    "generate_workload",
    "load_tasks",
    "save_tasks",
    "fig1_trace",
    "fig2_trace",
    "fig3_trace",
    "testbed_trace",
]
