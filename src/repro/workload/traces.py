"""Hand-written traces reproducing the paper's worked examples.

All three motivation examples (Figs. 1–3) use abstract units: link
capacity 1 (one size unit per time unit), so a flow's "size" in the paper's
tables is both bytes and seconds here.

The dumbbell used by Figs. 1–2 realises "one bottleneck link": every flow
crosses the single inter-switch cable; host access links never contend
because each host terminates exactly one flow.
"""

from __future__ import annotations

from repro.net.topology import Topology
from repro.workload.flow import Task, make_task


def dumbbell(n_pairs: int = 4, capacity: float = 1.0) -> Topology:
    """``n_pairs`` left hosts, one shared cable, ``n_pairs`` right hosts.

    Flow ``i`` runs ``L{i} -> R{i}``; the middle cable is the bottleneck.
    """
    topo = Topology(name=f"dumbbell-{n_pairs}", default_capacity=capacity)
    topo.add_switch("SL")
    topo.add_switch("SR")
    topo.add_cable("SL", "SR")
    for i in range(n_pairs):
        topo.add_host(f"L{i}")
        topo.add_cable(f"L{i}", "SL")
        topo.add_host(f"R{i}")
        topo.add_cable(f"R{i}", "SR")
    return topo


def fig1_trace() -> tuple[Topology, list[Task]]:
    """Paper Fig. 1(a): two tasks, four flows, one bottleneck.

    =====  ======  ====  ========
    Task   Flow    Size  Deadline
    =====  ======  ====  ========
    t1     f11     2     4
    t1     f12     4     4
    t2     f21     1     4
    t2     f22     3     4
    =====  ======  ====  ========

    Expected completions (paper Fig. 1(b)–(e)): Fair Sharing 1 flow / 0
    tasks; D3 1 flow / 0 tasks; PDQ 2 flows / 0 tasks; task-aware (TAPS)
    2 flows / 1 task (t2).
    """
    topo = dumbbell(4)
    t1 = make_task(0, arrival=0.0, deadline=4.0,
                   flow_specs=[("L0", "R0", 2.0), ("L1", "R1", 4.0)],
                   first_flow_id=0)
    t2 = make_task(1, arrival=0.0, deadline=4.0,
                   flow_specs=[("L2", "R2", 1.0), ("L3", "R3", 3.0)],
                   first_flow_id=2)
    return topo, [t1, t2]


def fig2_trace() -> tuple[Topology, list[Task]]:
    """Paper Fig. 2(a): the preemption motivation.

    =====  ======  ====  ========
    Task   Flow    Size  Deadline
    =====  ======  ====  ========
    t1     f11     1     4
    t1     f12     1     4
    t2     f21     1     2
    t2     f22     1     2
    =====  ======  ====  ========

    Expected (paper Fig. 2(b)–(d)): Baraat fails t2 (completes at most
    t1); Varys admits t1, rejects t2 → 1 task; TAPS reorders globally →
    2 tasks.
    """
    topo = dumbbell(4)
    t1 = make_task(0, arrival=0.0, deadline=4.0,
                   flow_specs=[("L0", "R0", 1.0), ("L1", "R1", 1.0)],
                   first_flow_id=0)
    t2 = make_task(1, arrival=0.0, deadline=2.0,
                   flow_specs=[("L2", "R2", 1.0), ("L3", "R3", 1.0)],
                   first_flow_id=2)
    return topo, [t1, t2]


def fig3_topology(capacity: float = 1.0) -> Topology:
    """The 4-host / 5-switch network of paper Fig. 3(c).

    Reconstructed from the walk-through in §III-A: hosts 1..4; f1 (1→2)
    shares its first link with f2 (1→4) at S1 and its last with f3 (3→2)
    at S5; f4 (3→4) runs 3→S3→S5→S4→4; f2 additionally has a disjoint
    detour via S2.
    """
    topo = Topology(name="fig3", default_capacity=capacity)
    for h in ("1", "2", "3", "4"):
        topo.add_host(h)
    for s in ("S1", "S2", "S3", "S4", "S5"):
        topo.add_switch(s)
    topo.add_cable("1", "S1")
    topo.add_cable("2", "S5")
    topo.add_cable("3", "S3")
    topo.add_cable("4", "S4")
    topo.add_cable("S1", "S5")
    topo.add_cable("S1", "S2")
    topo.add_cable("S2", "S4")
    topo.add_cable("S3", "S5")
    topo.add_cable("S5", "S4")
    return topo


def fig3_trace() -> tuple[Topology, list[Task]]:
    """Paper Fig. 3(a): four single-flow tasks for the global-scheduling
    example.

    ====  ====  ========  ===  ===
    Flow  Size  Deadline  Src  Dst
    ====  ====  ========  ===  ===
    f1    1     1         1    2
    f2    1     2         1    4
    f3    1     2         3    2
    f4    2     3         3    4
    ====  ====  ========  ===  ===

    Optimal (Fig. 3(b)): all four complete — f4 split into (0,1) & (2,3).
    PDQ with a full flow list at its switches completes only f1–f3.
    """
    topo = fig3_topology()
    specs = [
        ("1", "2", 1.0, 1.0),
        ("1", "4", 1.0, 2.0),
        ("3", "2", 1.0, 2.0),
        ("3", "4", 2.0, 3.0),
    ]
    tasks = [
        make_task(i, arrival=0.0, deadline=dl,
                  flow_specs=[(src, dst, size)], first_flow_id=i)
        for i, (src, dst, size, dl) in enumerate(specs)
    ]
    return topo, tasks


def testbed_trace(
    num_flows: int = 100,
    mean_flow_size: float = 100e3,
    mean_deadline: float = 25e-3,
    burst_window: float = 2e-3,
    seed: int = 7,
) -> tuple[Topology, list[Task]]:
    """The implementation experiment's workload (paper §VI).

    "Iperf is used to generate 100 flows … average flow size is 100KB and
    average deadline is 40ms, similar to Sec. V-A.  The source and
    destination IDs are generated randomly."  Flows are independent
    single-flow tasks (the experiment reports throughput, not coflows),
    launched in a short burst the way an iperf fan-out starts; the default
    deadline is tightened so the run sits in the contended regime where
    Fair Sharing visibly loses goodput (matching the paper's ~60% trace).
    """
    from repro.net.testbed import PartialFatTreeTestbed
    from repro.workload.generator import WorkloadConfig, generate_workload

    topo = PartialFatTreeTestbed()
    cfg = WorkloadConfig(
        num_tasks=num_flows,
        arrival_rate=num_flows / burst_window,
        mean_deadline=mean_deadline,
        mean_flow_size=mean_flow_size,
        mean_flows_per_task=1,
        flows_per_task_dist="constant",
        seed=seed,
    )
    tasks = generate_workload(cfg, list(topo.hosts))
    return topo, tasks
