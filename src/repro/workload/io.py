"""Workload (de)serialisation — JSON traces for sharing and replay.

A trace file is a JSON object::

    {
      "format": "taps-repro-trace-v1",
      "tasks": [
        {"task_id": 0, "arrival": 0.0, "deadline": 0.04,
         "flows": [{"flow_id": 0, "src": "h0_0_0", "dst": "h1_0_0",
                    "size": 200000.0}, …]},
        …
      ]
    }

Flow ``release``/``deadline`` are implied by the owning task (the paper's
model: all flows of a task share both), keeping traces compact.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.util.errors import ConfigurationError
from repro.workload.flow import Flow, Task

FORMAT = "taps-repro-trace-v1"


def tasks_to_dict(tasks: list[Task]) -> dict:
    """Serialisable representation of a workload."""
    return {
        "format": FORMAT,
        "tasks": [
            {
                "task_id": t.task_id,
                "arrival": t.arrival,
                "deadline": t.deadline,
                "flows": [
                    {
                        "flow_id": f.flow_id,
                        "src": f.src,
                        "dst": f.dst,
                        "size": f.size,
                    }
                    for f in t.flows
                ],
            }
            for t in tasks
        ],
    }


def tasks_from_dict(data: dict) -> list[Task]:
    """Inverse of :func:`tasks_to_dict`, with format validation."""
    if data.get("format") != FORMAT:
        raise ConfigurationError(
            f"not a {FORMAT} trace (format={data.get('format')!r})"
        )
    tasks = []
    for td in data["tasks"]:
        flows = tuple(
            Flow(
                flow_id=fd["flow_id"],
                task_id=td["task_id"],
                src=fd["src"],
                dst=fd["dst"],
                size=fd["size"],
                release=td["arrival"],
                deadline=td["deadline"],
            )
            for fd in td["flows"]
        )
        tasks.append(
            Task(
                task_id=td["task_id"],
                arrival=td["arrival"],
                deadline=td["deadline"],
                flows=flows,
            )
        )
    return tasks


def save_tasks(tasks: list[Task], path: str | Path) -> None:
    """Write a workload to a JSON trace file."""
    Path(path).write_text(json.dumps(tasks_to_dict(tasks), indent=1))


def load_tasks(path: str | Path) -> list[Task]:
    """Read a workload from a JSON trace file."""
    return tasks_from_dict(json.loads(Path(path).read_text()))
