"""Flow and Task records.

These are immutable *descriptions* of offered traffic; all runtime state
(bytes remaining, current rate, allocated slices) lives in the simulator's
per-flow state so the same workload object can be replayed across the six
schedulers unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Flow:
    """One flow ``f_ij`` (paper Table I).

    Attributes
    ----------
    flow_id:
        Globally unique integer id.
    task_id:
        Id of the owning task (``i`` in ``f_ij``).
    src, dst:
        Endpoint host names (``Src_ij``, ``Dst_ij``).
    size:
        Bytes to transfer (``s_ij``).
    release:
        Absolute arrival time in seconds; equals the task's arrival since
        all flows of a task arrive together (§V-A).
    deadline:
        Absolute deadline in seconds (``d_ij``); shared by every flow of a
        task (§IV-B: ``d_ij = d_i``).
    """

    flow_id: int
    task_id: int
    src: str
    dst: str
    size: float
    release: float
    deadline: float

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"flow {self.flow_id}: size must be positive, got {self.size}")
        if self.deadline <= self.release:
            raise ValueError(
                f"flow {self.flow_id}: deadline {self.deadline} not after release {self.release}"
            )
        if self.src == self.dst:
            raise ValueError(f"flow {self.flow_id}: src == dst == {self.src!r}")

    @property
    def slack(self) -> float:
        """Time between release and deadline."""
        return self.deadline - self.release

    def expected_time(self, capacity: float) -> float:
        """Expected transmission time ``E_ij`` at full link rate (§IV-B)."""
        return self.size / capacity


@dataclass(frozen=True, slots=True)
class Task:
    """One task ``t_i``: flows sharing an arrival time and deadline.

    Attributes
    ----------
    task_id:
        Unique integer id.
    arrival:
        Absolute arrival time of the task (and all its flows).
    deadline:
        Absolute shared deadline.
    flows:
        The task's flows, each with matching ``task_id``/``release``/``deadline``.
    """

    task_id: int
    arrival: float
    deadline: float
    flows: tuple[Flow, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.flows:
            raise ValueError(f"task {self.task_id} has no flows")
        for f in self.flows:
            if f.task_id != self.task_id:
                raise ValueError(
                    f"flow {f.flow_id} has task_id {f.task_id}, expected {self.task_id}"
                )
            if f.release != self.arrival:
                raise ValueError(f"flow {f.flow_id} release differs from task arrival")
            if f.deadline != self.deadline:
                raise ValueError(f"flow {f.flow_id} deadline differs from task deadline")

    @property
    def num_flows(self) -> int:
        return len(self.flows)

    @property
    def total_size(self) -> float:
        """Sum of flow sizes in bytes (the "task size" of the paper's metrics)."""
        return sum(f.size for f in self.flows)


def make_task(
    task_id: int,
    arrival: float,
    deadline: float,
    flow_specs: list[tuple[str, str, float]],
    first_flow_id: int,
) -> Task:
    """Build a task from ``(src, dst, size)`` specs, assigning flow ids.

    Convenience used by generators and hand-written traces.
    """
    flows = tuple(
        Flow(
            flow_id=first_flow_id + j,
            task_id=task_id,
            src=src,
            dst=dst,
            size=size,
            release=arrival,
            deadline=deadline,
        )
        for j, (src, dst, size) in enumerate(flow_specs)
    )
    return Task(task_id=task_id, arrival=arrival, deadline=deadline, flows=flows)
