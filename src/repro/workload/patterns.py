"""Application workload patterns from the paper's motivation (§II).

"Current data center applications and distributed computing systems like
MapReduce and Dryad employ a partition/aggregation pattern … for web
search works, each task contains at least 88 flows, while for MapReduce
works each task contains 30 to even more than 50000 flows, and for Cosmos
works most tasks contain 30–70 flows."

These builders generate *structured* coflows instead of the §V-A uniform
ones:

* :func:`partition_aggregate_task` — ``m`` workers push partial results to
  one aggregator (the classic incast: all flows share the aggregator's
  access link);
* :func:`shuffle_task` — an ``m×r`` mapper→reducer shuffle (MapReduce);
* presets :func:`websearch_workload`, :func:`mapreduce_workload`, and
  :func:`cosmos_workload` wire the paper's quoted fan-out statistics to
  Poisson arrivals and exponential deadlines, scaled by a ``fanout_scale``
  so laptop-sized topologies keep the paper's structure at feasible size.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ConfigurationError
from repro.util.rng import make_rng, spawn
from repro.util.units import KB, ms
from repro.workload.flow import Flow, Task


def partition_aggregate_task(
    task_id: int,
    aggregator: str,
    workers: list[str],
    flow_size: float,
    arrival: float,
    deadline: float,
    first_flow_id: int,
    size_jitter: np.random.Generator | None = None,
    sigma_frac: float = 0.2,
) -> Task:
    """One web-search-style aggregation: every worker sends to the
    aggregator, and the response is useful only if *all* partial results
    arrive by the deadline — the paper's task model in its purest form."""
    if aggregator in workers:
        raise ConfigurationError("aggregator cannot be one of its workers")
    if not workers:
        raise ConfigurationError("need at least one worker")
    flows = []
    for j, w in enumerate(workers):
        size = flow_size
        if size_jitter is not None:
            size = max(1.0, size_jitter.normal(flow_size, sigma_frac * flow_size))
        flows.append(
            Flow(
                flow_id=first_flow_id + j,
                task_id=task_id,
                src=w,
                dst=aggregator,
                size=float(size),
                release=arrival,
                deadline=deadline,
            )
        )
    return Task(task_id=task_id, arrival=arrival, deadline=deadline,
                flows=tuple(flows))


def shuffle_task(
    task_id: int,
    mappers: list[str],
    reducers: list[str],
    bytes_per_pair: float,
    arrival: float,
    deadline: float,
    first_flow_id: int,
) -> Task:
    """A MapReduce shuffle: one flow per (mapper, reducer) pair."""
    if set(mappers) & set(reducers):
        raise ConfigurationError("mapper and reducer sets must be disjoint")
    if not mappers or not reducers:
        raise ConfigurationError("need mappers and reducers")
    flows = []
    fid = first_flow_id
    for m in mappers:
        for r in reducers:
            flows.append(
                Flow(flow_id=fid, task_id=task_id, src=m, dst=r,
                     size=bytes_per_pair, release=arrival, deadline=deadline)
            )
            fid += 1
    return Task(task_id=task_id, arrival=arrival, deadline=deadline,
                flows=tuple(flows))


def _poisson_arrivals(n: int, rate: float, rng) -> np.ndarray:
    gaps = rng.exponential(1.0 / rate, size=n)
    out = np.concatenate(([0.0], np.cumsum(gaps[:-1])))
    return out


def _structured_workload(
    hosts: list[str],
    num_tasks: int,
    fanout: tuple[int, int],
    mean_flow_size: float,
    mean_deadline: float,
    arrival_rate: float,
    seed: int,
    kind: str,
) -> list[Task]:
    if len(hosts) < fanout[0] + 1:
        raise ConfigurationError(
            f"need ≥ {fanout[0] + 1} hosts for fan-out {fanout}"
        )
    root = make_rng(seed)
    rng_arr, rng_fan, rng_pick, rng_dl, rng_size = spawn(root, 5)
    arrivals = _poisson_arrivals(num_tasks, arrival_rate, rng_arr)
    tasks: list[Task] = []
    fid = 0
    host_arr = np.array(hosts)
    for tid in range(num_tasks):
        lo, hi = fanout
        m = int(rng_fan.integers(lo, hi + 1))
        m = min(m, len(hosts) - 1)
        members = rng_pick.choice(len(hosts), size=m + 1, replace=False)
        arrival = float(arrivals[tid])
        deadline = arrival + max(float(rng_dl.exponential(mean_deadline)), 1 * ms)
        if kind == "aggregate":
            task = partition_aggregate_task(
                tid,
                aggregator=str(host_arr[members[0]]),
                workers=[str(h) for h in host_arr[members[1:]]],
                flow_size=mean_flow_size,
                arrival=arrival,
                deadline=deadline,
                first_flow_id=fid,
                size_jitter=rng_size,
            )
        else:  # shuffle
            split = max(1, (m + 1) // 2)
            task = shuffle_task(
                tid,
                mappers=[str(h) for h in host_arr[members[:split]]],
                reducers=[str(h) for h in host_arr[members[split:]]],
                bytes_per_pair=mean_flow_size,
                arrival=arrival,
                deadline=deadline,
                first_flow_id=fid,
            )
        tasks.append(task)
        fid += task.num_flows
    return tasks


def websearch_workload(
    hosts: list[str],
    num_tasks: int = 20,
    fanout_scale: float = 1.0,
    mean_flow_size: float = 20 * KB,
    mean_deadline: float = 40 * ms,
    arrival_rate: float = 200.0,
    seed: int = 0,
) -> list[Task]:
    """Web-search aggregations: "at least 88 flows" per task (§II), small
    responses, tight deadlines.  ``fanout_scale`` shrinks the fan-out for
    small topologies (0.1 → ~9-worker tasks)."""
    lo = max(2, int(round(88 * fanout_scale)))
    hi = max(lo + 1, int(round(120 * fanout_scale)))
    return _structured_workload(hosts, num_tasks, (lo, hi), mean_flow_size,
                                mean_deadline, arrival_rate, seed, "aggregate")


def mapreduce_workload(
    hosts: list[str],
    num_tasks: int = 10,
    fanout_scale: float = 1.0,
    mean_flow_size: float = 200 * KB,
    mean_deadline: float = 100 * ms,
    arrival_rate: float = 50.0,
    seed: int = 0,
) -> list[Task]:
    """MapReduce shuffles: "30 to even more than 50000 flows" (§II); an
    m×r pair-wise shuffle with ~30…70 participants at scale 1."""
    lo = max(3, int(round(10 * fanout_scale)))
    hi = max(lo + 1, int(round(16 * fanout_scale)))
    return _structured_workload(hosts, num_tasks, (lo, hi), mean_flow_size,
                                mean_deadline, arrival_rate, seed, "shuffle")


def cosmos_workload(
    hosts: list[str],
    num_tasks: int = 20,
    fanout_scale: float = 1.0,
    mean_flow_size: float = 100 * KB,
    mean_deadline: float = 60 * ms,
    arrival_rate: float = 100.0,
    seed: int = 0,
) -> list[Task]:
    """Cosmos-style tasks: "most tasks contain 30–70 flows" (§II),
    aggregation-shaped."""
    lo = max(2, int(round(30 * fanout_scale)))
    hi = max(lo + 1, int(round(70 * fanout_scale)))
    return _structured_workload(hosts, num_tasks, (lo, hi), mean_flow_size,
                                mean_deadline, arrival_rate, seed, "aggregate")
