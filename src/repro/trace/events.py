"""The decision-trace event vocabulary (schema v1).

Every layer that makes or enacts a scheduling decision emits typed events
into a :class:`~repro.trace.recorder.TraceRecorder`:

* the **controller** (:class:`~repro.core.controller.TapsScheduler`) emits
  the admission pipeline — :class:`TrialBegin` / :class:`TrialRollback`
  per Alg. 1 retry, :class:`TaskAccept` with the full committed plan
  table, :class:`TaskReject` with the reject-rule clause number,
  :class:`Preemption` per discarded victim, :class:`FaultReallocation`
  and :class:`TaskDrop` for the fault path;
* the **engine** (:class:`~repro.sim.engine.Engine`) emits the physical
  timeline — :class:`TaskArrival`, :class:`LinkStateChange`,
  :class:`SliceStart` / :class:`SliceEnd` (actual transmission
  transitions, after down-link zeroing), :class:`FlowCompleted`,
  :class:`DeadlineExpired`, :class:`RunEnd`.

Events are plain slotted dataclasses with JSON round-trip
(:meth:`TraceEvent.to_json` / :func:`event_from_json`), so a trace can be
exported as JSONL, diffed byte-for-byte between runs (the fast-path
equivalence tests rely on this — nothing mode-dependent may appear in an
event), and replayed offline by the auditor
(:mod:`repro.trace.audit`).

Design rule: events record *decisions and physical facts*, never
implementation details (ledger mode, cache state, wall-clock timings) —
two controller modes that decide identically must emit identical streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, ClassVar

SCHEMA_VERSION = 1
"""Version of the event vocabulary; bumped on any incompatible change to
event kinds or fields (recorded in the JSONL header and in DESIGN.md)."""


@dataclass(slots=True)
class PlanRecord:
    """One flow's committed plan, as recorded in accept/realloc snapshots.

    ``slices`` is the flat boundary list ``[s0, e0, s1, e1, ...]`` of the
    plan's :class:`~repro.util.intervals.IntervalSet` — float-exact, so
    two runs that planned identically serialize identically.
    """

    flow_id: int
    task_id: int
    path: tuple[int, ...]
    slices: tuple[float, ...]
    completion: float
    deadline: float

    def to_json(self) -> dict[str, Any]:
        return {
            "flow": self.flow_id,
            "task": self.task_id,
            "path": list(self.path),
            "slices": list(self.slices),
            "completion": self.completion,
            "deadline": self.deadline,
        }

    @classmethod
    def from_json(cls, d: dict[str, Any]) -> "PlanRecord":
        return cls(
            flow_id=d["flow"],
            task_id=d["task"],
            path=tuple(d["path"]),
            slices=tuple(d["slices"]),
            completion=d["completion"],
            deadline=d["deadline"],
        )


@dataclass(slots=True)
class TraceEvent:
    """Base event: a timestamped, sequence-numbered record.

    ``seq`` is assigned by the recorder at emission (monotonically
    increasing within a trace); ``time`` is simulation time.
    """

    kind: ClassVar[str] = "event"

    time: float
    seq: int = field(default=-1, kw_only=True)

    def to_json(self) -> dict[str, Any]:
        """JSON-ready dict; field order is deterministic (kind, seq, t,
        then declaration order), so serialized streams diff cleanly."""
        out: dict[str, Any] = {"kind": self.kind, "seq": self.seq, "t": self.time}
        for f in fields(self):
            if f.name in ("time", "seq"):
                continue
            out[f.name] = _encode(getattr(self, f.name))
        return out


def _encode(value: Any) -> Any:
    if isinstance(value, PlanRecord):
        return value.to_json()
    if isinstance(value, tuple):
        return [_encode(v) for v in value]
    return value


# -- controller events -------------------------------------------------------


@dataclass(slots=True)
class TaskArrival(TraceEvent):
    """A task reached the controller (before any admission latency)."""

    kind: ClassVar[str] = "task-arrival"

    task_id: int
    deadline: float
    num_flows: int
    total_bytes: float


@dataclass(slots=True)
class TrialBegin(TraceEvent):
    """One Alg. 1 trial allocation starts over the recorded ``Ftmp``.

    ``flows`` is the trial's priority-ordered flow list as
    ``(flow_id, deadline, remaining, release)`` — enough for the auditor
    to re-check the EDF-then-SJF sort without replaying the run.
    ``attempt`` counts discard-victim retries within one admission (1 =
    first trial).
    """

    kind: ClassVar[str] = "trial-begin"

    task_id: int
    attempt: int
    flows: tuple[tuple[int, float, float, float], ...]


@dataclass(slots=True)
class TrialRollback(TraceEvent):
    """A trial chose *discard-victim*: the trial ledger is rolled back and
    the admission retries without ``victim_task_id``'s flows.

    ``victim_ratio`` / ``new_ratio`` are the completion ratios the
    clause-3 comparison used (policy recorded in the trace meta).
    """

    kind: ClassVar[str] = "trial-rollback"

    task_id: int
    attempt: int
    victim_task_id: int
    victim_ratio: float
    new_ratio: float


@dataclass(slots=True)
class TaskAccept(TraceEvent):
    """An admission committed.  ``plans`` snapshots the controller's
    **entire** committed plan table after the commit (not just the new
    task's flows) — the auditor's exclusive-link and deadline checks run
    against this table."""

    kind: ClassVar[str] = "task-accept"

    task_id: int
    victims: tuple[int, ...]
    plans: tuple[PlanRecord, ...]


@dataclass(slots=True)
class TaskReject(TraceEvent):
    """An admission refused the new task.

    ``reason`` mirrors :class:`~repro.core.controller.RejectionDiagnostics`
    (``deadline-expired`` / ``unreachable`` / ``would-miss`` /
    ``table-limit``); ``clause`` is the reject-rule clause that fired for
    ``would-miss`` (1 = several tasks missing, 2 = the new task's own
    flows missing, 3 = single-victim ratio comparison lost), ``None`` for
    rejections outside the rule.  ``missing`` pairs each missing flow with
    its task; ``victim_ratio`` / ``new_ratio`` are set for clause 3.
    """

    kind: ClassVar[str] = "task-reject"

    task_id: int
    reason: str
    clause: int | None
    missing: tuple[tuple[int, int], ...]
    lateness: tuple[tuple[int, float], ...]
    victim_ratio: float | None = None
    new_ratio: float | None = None


@dataclass(slots=True)
class Preemption(TraceEvent):
    """A victim task's flows were killed at commit time (the deferred
    discard-victim enactment)."""

    kind: ClassVar[str] = "preemption"

    victim_task_id: int
    by_task_id: int
    killed_flows: tuple[int, ...]


@dataclass(slots=True)
class FaultReallocation(TraceEvent):
    """The controller re-planned every in-flight flow around a new outage
    picture.  ``dropped_tasks`` are tasks the outage made unmeetable
    (killed rather than allowed to dribble to a miss); ``plans`` is the
    full new plan table."""

    kind: ClassVar[str] = "fault-reallocation"

    down_links: tuple[int, ...]
    dropped_tasks: tuple[int, ...]
    plans: tuple[PlanRecord, ...]


@dataclass(slots=True)
class TaskDrop(TraceEvent):
    """A task was stopped mid-flight outside a commit: ``cause`` is
    ``"fault"`` (unmeetable under the outage) or ``"backstop"`` (a
    stranded flow crossed its deadline)."""

    kind: ClassVar[str] = "task-drop"

    task_id: int
    cause: str


# -- engine events -----------------------------------------------------------


@dataclass(slots=True)
class LinkStateChange(TraceEvent):
    """The set of down links changed; ``down_links`` is the full new set."""

    kind: ClassVar[str] = "link-state-change"

    down_links: tuple[int, ...]


@dataclass(slots=True)
class SliceStart(TraceEvent):
    """A flow physically started transmitting on ``path`` (rate went
    positive after down-link zeroing)."""

    kind: ClassVar[str] = "slice-start"

    flow_id: int
    task_id: int
    path: tuple[int, ...]


@dataclass(slots=True)
class SliceEnd(TraceEvent):
    """A flow physically stopped transmitting (slice boundary, completion,
    kill, or outage)."""

    kind: ClassVar[str] = "slice-end"

    flow_id: int
    task_id: int


@dataclass(slots=True)
class FlowCompleted(TraceEvent):
    """A flow delivered its last byte."""

    kind: ClassVar[str] = "flow-completed"

    flow_id: int
    task_id: int
    met_deadline: bool


@dataclass(slots=True)
class DeadlineExpired(TraceEvent):
    """A still-active flow crossed its deadline (the engine notified the
    scheduler)."""

    kind: ClassVar[str] = "deadline-expired"

    flow_id: int
    task_id: int


@dataclass(slots=True)
class RunEnd(TraceEvent):
    """The simulation reached quiescence (or its horizon)."""

    kind: ClassVar[str] = "run-end"


EVENT_TYPES: dict[str, type[TraceEvent]] = {
    cls.kind: cls
    for cls in (
        TaskArrival,
        TrialBegin,
        TrialRollback,
        TaskAccept,
        TaskReject,
        Preemption,
        FaultReallocation,
        TaskDrop,
        LinkStateChange,
        SliceStart,
        SliceEnd,
        FlowCompleted,
        DeadlineExpired,
        RunEnd,
    )
}

#: per-class decoders for fields that JSON flattens to lists
_TUPLE_OF_TUPLES = ("flows", "missing", "lateness")
_TUPLE_OF_PLANS = ("plans",)
_PLAIN_TUPLES = ("victims", "killed_flows", "down_links", "path")


def event_from_json(d: dict[str, Any]) -> TraceEvent:
    """Rebuild a typed event from its :meth:`TraceEvent.to_json` dict."""
    kind = d["kind"]
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown trace event kind {kind!r}")
    kwargs: dict[str, Any] = {}
    for f in fields(cls):
        if f.name == "time":
            kwargs["time"] = d["t"]
            continue
        if f.name == "seq":
            continue
        value = d[f.name]
        if f.name in _TUPLE_OF_PLANS:
            value = tuple(PlanRecord.from_json(p) for p in value)
        elif f.name in _TUPLE_OF_TUPLES:
            value = tuple(tuple(item) for item in value)
        elif f.name in _PLAIN_TUPLES:
            value = tuple(value)
        kwargs[f.name] = value
    ev = cls(**kwargs)
    ev.seq = d.get("seq", -1)
    return ev
