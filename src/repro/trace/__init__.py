"""Decision tracing and schedule auditing.

``repro.trace`` is the debugging substrate for the scheduling pipeline:
the controller and the engine emit typed events
(:mod:`repro.trace.events`) into a ring-buffered
:class:`~repro.trace.recorder.TraceRecorder` (JSONL export), and
:func:`~repro.trace.audit.audit_trace` replays a finished trace against
the paper's invariants — exclusive-link occupancy, EDF-then-SJF trial
ordering, the three-clause reject rule, and "no accepted task misses its
deadline absent faults" — reporting the first violating event with full
context.

Quick use::

    from repro import Engine, FatTree, TapsScheduler
    from repro.trace import TraceRecorder, audit_trace

    recorder = TraceRecorder()
    Engine(topo, tasks, TapsScheduler(), trace=recorder).run()
    report = audit_trace(recorder)
    assert report.ok, report.summary()
    recorder.to_jsonl("run.jsonl")      # repro-taps audit run.jsonl
"""

from repro.trace.audit import AuditReport, Violation, audit_events, audit_trace
from repro.trace.events import (
    SCHEMA_VERSION,
    DeadlineExpired,
    EVENT_TYPES,
    FaultReallocation,
    FlowCompleted,
    LinkStateChange,
    PlanRecord,
    Preemption,
    RunEnd,
    SliceEnd,
    SliceStart,
    TaskAccept,
    TaskArrival,
    TaskDrop,
    TaskReject,
    TraceEvent,
    TrialBegin,
    TrialRollback,
    event_from_json,
)
from repro.trace.recorder import LoadedTrace, TraceRecorder, load_jsonl

__all__ = [
    "SCHEMA_VERSION",
    "AuditReport",
    "Violation",
    "audit_events",
    "audit_trace",
    "DeadlineExpired",
    "EVENT_TYPES",
    "FaultReallocation",
    "FlowCompleted",
    "LinkStateChange",
    "PlanRecord",
    "Preemption",
    "RunEnd",
    "SliceEnd",
    "SliceStart",
    "TaskAccept",
    "TaskArrival",
    "TaskDrop",
    "TaskReject",
    "TraceEvent",
    "TrialBegin",
    "TrialRollback",
    "event_from_json",
    "LoadedTrace",
    "TraceRecorder",
    "load_jsonl",
]
