"""Ring-buffered decision-trace recorder with JSONL export.

One :class:`TraceRecorder` is shared by everything that traces a run: the
engine and the controller both ``emit()`` typed events
(:mod:`repro.trace.events`) into it, in causal order, each stamped with a
monotonically increasing sequence number.

The buffer is a ring (``collections.deque`` with ``maxlen``): at
production scale a trace of an unbounded run must not grow without bound,
so the recorder keeps the most recent ``capacity`` events and counts what
it dropped.  ``capacity=None`` keeps everything (the default for
experiment-sized runs, where the auditor needs the complete stream —
auditing a truncated trace is flagged as unsound).

Export is JSON Lines: one header object (schema version, metadata,
emitted/dropped counters) followed by one object per event.  Serialization
is deterministic — two runs that emitted identical events produce
byte-identical files, which is exactly what the fast-path equivalence
tests assert.
"""

from __future__ import annotations

import json
from collections import deque
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.trace.events import SCHEMA_VERSION, TraceEvent, event_from_json


class TraceRecorder:
    """Collects trace events for one (or more) runs.

    Parameters
    ----------
    capacity:
        Ring size; the oldest events are dropped once exceeded.  ``None``
        (default) records everything.
    meta:
        Run metadata merged into the JSONL header (the controller adds
        scheduler name, priority, preemption policy at attach).  Must not
        contain anything mode-dependent: traces of decision-identical
        runs are expected to serialize identically.
    """

    __slots__ = ("_events", "_seq", "dropped", "meta")

    def __init__(
        self, capacity: int | None = None, meta: dict[str, Any] | None = None
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 (or None for unbounded)")
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._seq = 0
        self.dropped = 0
        self.meta: dict[str, Any] = dict(meta) if meta else {}

    # -- recording -----------------------------------------------------------

    def emit(self, event: TraceEvent) -> TraceEvent:
        """Stamp ``event`` with the next sequence number and buffer it."""
        event.seq = self._seq
        self._seq += 1
        ev = self._events
        if ev.maxlen is not None and len(ev) == ev.maxlen:
            self.dropped += 1
        ev.append(event)
        return event

    def set_meta(self, **kwargs: Any) -> None:
        """Merge metadata into the header (controller identity, knobs)."""
        self.meta.update(kwargs)

    # -- access --------------------------------------------------------------

    @property
    def emitted(self) -> int:
        """Total events ever emitted (including dropped ones)."""
        return self._seq

    @property
    def truncated(self) -> bool:
        """Whether the ring overflowed (the stream is incomplete)."""
        return self.dropped > 0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> list[TraceEvent]:
        """The buffered events, oldest first."""
        return list(self._events)

    def events_of_kind(self, kind: str) -> list[TraceEvent]:
        """The buffered events of one ``kind`` (e.g. ``"task-accept"``)."""
        return [e for e in self._events if e.kind == kind]

    def clear(self) -> None:
        """Drop all buffered events and reset the counters."""
        self._events.clear()
        self._seq = 0
        self.dropped = 0

    # -- JSONL ---------------------------------------------------------------

    def _header(self) -> dict[str, Any]:
        return {
            "kind": "trace-header",
            "schema": SCHEMA_VERSION,
            "emitted": self.emitted,
            "dropped": self.dropped,
            "meta": dict(sorted(self.meta.items())),
        }

    def dumps(self) -> str:
        """The whole trace as a JSONL string (header + one line/event)."""
        lines = [json.dumps(self._header(), separators=(",", ":"))]
        lines.extend(
            json.dumps(e.to_json(), separators=(",", ":")) for e in self._events
        )
        return "\n".join(lines) + "\n"

    def to_jsonl(self, path: str | Path) -> Path:
        """Write the trace to ``path``; returns the path."""
        out = Path(path)
        out.write_text(self.dumps())
        return out


@dataclass(slots=True)
class LoadedTrace:
    """A trace read back from JSONL: header fields + typed events."""

    schema: int
    meta: dict[str, Any]
    emitted: int
    dropped: int
    events: list[TraceEvent] = field(default_factory=list)

    @property
    def truncated(self) -> bool:
        return self.dropped > 0


def load_jsonl(source: str | Path | Iterable[str]) -> LoadedTrace:
    """Parse a JSONL trace (path or iterable of lines) back into events.

    Raises ``ValueError`` on a missing/foreign header or an unsupported
    schema version.
    """
    if isinstance(source, (str, Path)):
        lines: Iterable[str] = Path(source).read_text().splitlines()
    else:
        lines = source
    it = iter(lines)
    try:
        first = next(it)
    except StopIteration:
        raise ValueError("empty trace: no header line") from None
    header = json.loads(first)
    if not isinstance(header, dict) or header.get("kind") != "trace-header":
        raise ValueError("not a trace file: first line is not a trace-header")
    if header.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema {header.get('schema')!r} "
            f"(this build reads schema {SCHEMA_VERSION})"
        )
    events = [event_from_json(json.loads(line)) for line in it if line.strip()]
    return LoadedTrace(
        schema=header["schema"],
        meta=header.get("meta", {}),
        emitted=header.get("emitted", len(events)),
        dropped=header.get("dropped", 0),
        events=events,
    )
