"""Replay a finished decision trace against the paper's invariants.

PDQ (Hong et al., SIGCOMM 2012) and DCoflow (Luu et al., 2022) validate
their schedulers by auditing the *schedule* they produced, not just its
end-of-run statistics.  This module does the same for TAPS, mechanically,
over a recorded event stream (:mod:`repro.trace.events`):

``exclusive-link``
    At most one flow's slices occupy a link at any instant.  Checked
    twice: over every committed plan-table snapshot (``task-accept`` /
    ``fault-reallocation``), and over the physical ``slice-start`` /
    ``slice-end`` timeline the engine emitted.
``deadline-at-commit``
    Every plan in a committed table completes by its flow's deadline —
    the acceptance the reject rule is supposed to have guaranteed.
``plan-consistency``
    A plan's recorded completion is the end of its last slice.
``priority-order``
    Each trial's ``Ftmp`` is sorted by the controller's declared priority
    (EDF-then-SJF for the paper's configuration).
``reject-rule``
    Every ``would-miss`` rejection names the clause that fired and the
    recorded evidence supports it: clause 1 needs several missing tasks,
    clause 2 the newcomer's own flows, clause 3 exactly one victim whose
    completion ratio did not lose to the newcomer's; a ``trial-rollback``
    (discard-victim) needs the opposite comparison, and is impossible
    under the ``never`` policy.
``deadline-met``
    Absent faults, no flow of an accepted, never-preempted task misses
    its deadline (the paper's "accepted tasks meet their deadlines by
    construction").  Skipped when the trace contains any link-state
    change: outages void the guarantee by design.
``well-formed``
    Sequence numbers strictly increase and timestamps never go backwards.

The auditor is pure trace-in, report-out: it never imports the scheduler
or the engine, so it can audit a JSONL file from any run — including a
deliberately corrupted one (that is how it is tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.trace.events import (
    FaultReallocation,
    LinkStateChange,
    PlanRecord,
    TaskAccept,
    TraceEvent,
)
from repro.trace.recorder import LoadedTrace, TraceRecorder

#: overlap beyond this measure counts as a collision (matches
#: :meth:`repro.core.occupancy.OccupancyLedger.assert_exclusive`)
OVERLAP_TOL = 1e-9

#: slack on deadline comparisons (matches ``FlowPlan.meets_deadline``)
DEADLINE_TOL = 1e-9

#: slack on completion-ratio comparisons (clause 3 uses a 1e-12 strict
#: margin; anything beyond 1e-9 is a real inversion, not float dust)
RATIO_TOL = 1e-9

#: ``Ftmp`` sort keys by declared priority, over the recorded
#: ``(flow_id, deadline, remaining, release)`` tuples
_PRIORITY_KEYS = {
    "edf_sjf": lambda f: (f[1], f[2], f[0]),
    "edf": lambda f: (f[1], f[0]),
    "sjf": lambda f: (f[2], f[0]),
    "fifo": lambda f: (f[3], f[0]),
}


@dataclass(slots=True)
class Violation:
    """One invariant breach, anchored to the first event that exposed it."""

    invariant: str
    seq: int
    time: float
    message: str
    context: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        ctx = ""
        if self.context:
            ctx = "  " + ", ".join(f"{k}={v!r}" for k, v in self.context.items())
        return (
            f"[{self.invariant}] event #{self.seq} @t={self.time:g}: "
            f"{self.message}{ctx}"
        )


@dataclass(slots=True)
class AuditReport:
    """Outcome of one trace audit."""

    events_audited: int
    violations: list[Violation] = field(default_factory=list)
    counts: dict[str, int] = field(default_factory=dict)
    had_faults: bool = False
    truncated: bool = False

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def first_violation(self) -> Violation | None:
        return self.violations[0] if self.violations else None

    def summary(self) -> str:
        """Human-readable digest: verdict first, then the first violation
        with full context, then per-kind event counts."""
        lines = []
        if self.truncated:
            lines.append(
                "WARNING: trace ring overflowed — the stream is incomplete "
                "and this audit is unsound"
            )
        if self.ok:
            lines.append(f"audit OK: 0 violations over {self.events_audited} events")
        else:
            lines.append(
                f"audit FAILED: {len(self.violations)} violation(s) over "
                f"{self.events_audited} events; first:"
            )
            lines.append(f"  {self.first_violation}")
            for v in self.violations[1:6]:
                lines.append(f"  {v}")
            if len(self.violations) > 7:
                lines.append(f"  ... and {len(self.violations) - 6} more")
        for kind in sorted(self.counts):
            lines.append(f"  {self.counts[kind]:>7d}  {kind}")
        return "\n".join(lines)


class _Auditor:
    def __init__(self, meta: dict[str, Any]):
        self.meta = meta
        self.priority = meta.get("priority", "edf_sjf")
        self.policy = meta.get("preemption", "progress")
        self.exclusive = bool(meta.get("exclusive_links", True))
        self.violations: list[Violation] = []
        self.counts: dict[str, int] = {}
        self.had_faults = False
        # deadline-met bookkeeping
        self.accepted: set[int] = set()
        self.exempt: set[int] = set()  # preempted or dropped tasks
        # physical slice timeline
        self.link_holder: dict[int, int] = {}  # link -> flow transmitting
        self.flow_links: dict[int, tuple[int, ...]] = {}
        self.flow_task: dict[int, int] = {}
        # well-formedness
        self.last_seq = -1
        self.last_time = float("-inf")

    def flag(self, invariant: str, ev: TraceEvent, message: str, **context) -> None:
        self.violations.append(
            Violation(invariant, ev.seq, ev.time, message, context)
        )

    # -- per-event dispatch --------------------------------------------------

    def feed(self, ev: TraceEvent) -> None:
        self.counts[ev.kind] = self.counts.get(ev.kind, 0) + 1
        if ev.seq <= self.last_seq:
            self.flag(
                "well-formed", ev,
                f"sequence number not increasing (previous {self.last_seq})",
            )
        self.last_seq = max(self.last_seq, ev.seq)
        if ev.time < self.last_time - DEADLINE_TOL:
            self.flag(
                "well-formed", ev,
                f"time went backwards (previous {self.last_time:g})",
            )
        self.last_time = max(self.last_time, ev.time)

        kind = ev.kind
        if kind in ("task-accept", "fault-reallocation"):
            self._check_plan_table(ev)
        if kind == "task-accept":
            self.accepted.add(ev.task_id)
            for victim in ev.victims:
                self.exempt.add(victim)
        elif kind == "fault-reallocation":
            self.exempt.update(ev.dropped_tasks)
        elif kind == "preemption":
            self.exempt.add(ev.victim_task_id)
        elif kind == "task-drop":
            self.exempt.add(ev.task_id)
        elif kind == "link-state-change":
            self.had_faults = True
        elif kind == "trial-begin":
            self._check_priority_order(ev)
        elif kind == "task-reject":
            self._check_reject(ev)
        elif kind == "trial-rollback":
            self._check_rollback(ev)

    # -- invariants ----------------------------------------------------------

    def _check_plan_table(self, ev: TaskAccept | FaultReallocation) -> None:
        by_link: dict[int, list[PlanRecord]] = {}
        for pr in ev.plans:
            if pr.completion > pr.deadline + DEADLINE_TOL:
                self.flag(
                    "deadline-at-commit", ev,
                    f"committed plan for flow {pr.flow_id} (task {pr.task_id}) "
                    f"completes at {pr.completion:g}, past its deadline "
                    f"{pr.deadline:g}",
                    flow_id=pr.flow_id, task_id=pr.task_id,
                    completion=pr.completion, deadline=pr.deadline,
                )
            if pr.slices and abs(pr.completion - pr.slices[-1]) > DEADLINE_TOL:
                self.flag(
                    "plan-consistency", ev,
                    f"flow {pr.flow_id}: recorded completion {pr.completion:g} "
                    f"is not the end of its last slice {pr.slices[-1]:g}",
                    flow_id=pr.flow_id,
                )
            for link in pr.path:
                by_link.setdefault(link, []).append(pr)
        if not self.exclusive:
            return
        for link, plans in by_link.items():
            if len(plans) < 2:
                continue
            spans = sorted(
                (pr.slices[i], pr.slices[i + 1], pr.flow_id)
                for pr in plans
                for i in range(0, len(pr.slices), 2)
            )
            for (s0, e0, f0), (s1, e1, f1) in zip(spans, spans[1:]):
                if f0 != f1 and min(e0, e1) - s1 > OVERLAP_TOL:
                    self.flag(
                        "exclusive-link", ev,
                        f"link {link}: flows {f0} and {f1} overlap over "
                        f"[{s1:g}, {min(e0, e1):g})",
                        link=link, flows=(f0, f1),
                        overlap=(s1, min(e0, e1)),
                    )
                    return  # one collision per table is enough context

    def _check_priority_order(self, ev) -> None:
        key = _PRIORITY_KEYS.get(self.priority)
        if key is None:
            return  # unknown ablation order: nothing to check against
        keys = [key(f) for f in ev.flows]
        for i in range(1, len(keys)):
            if keys[i] < keys[i - 1]:
                self.flag(
                    "priority-order", ev,
                    f"Ftmp not sorted by {self.priority}: position {i} "
                    f"(flow {ev.flows[i][0]}) sorts before position {i - 1} "
                    f"(flow {ev.flows[i - 1][0]})",
                    task_id=ev.task_id, attempt=ev.attempt, position=i,
                )
                return

    def _check_reject(self, ev) -> None:
        if ev.reason != "would-miss":
            return  # outside the three-clause rule (outage / latency / tables)
        missing_tasks = {tid for _, tid in ev.missing}
        if ev.clause not in (1, 2, 3):
            self.flag(
                "reject-rule", ev,
                f"would-miss rejection of task {ev.task_id} records no "
                f"reject-rule clause (got {ev.clause!r})",
                task_id=ev.task_id,
            )
            return
        if not ev.missing:
            self.flag(
                "reject-rule", ev,
                f"would-miss rejection of task {ev.task_id} with an empty "
                f"missing-flow set",
                task_id=ev.task_id,
            )
            return
        for fid, late in ev.lateness:
            if late <= 0:
                self.flag(
                    "reject-rule", ev,
                    f"flow {fid} recorded as missing but its lateness "
                    f"{late:g} is not positive",
                    task_id=ev.task_id, flow_id=fid,
                )
        if ev.clause == 1:
            if len(missing_tasks) < 2 or ev.task_id in missing_tasks:
                self.flag(
                    "reject-rule", ev,
                    f"clause 1 (several tasks missing) recorded but missing "
                    f"flows span tasks {sorted(missing_tasks)} "
                    f"(newcomer {ev.task_id})",
                    task_id=ev.task_id, missing_tasks=sorted(missing_tasks),
                )
        elif ev.clause == 2:
            if ev.task_id not in missing_tasks:
                self.flag(
                    "reject-rule", ev,
                    f"clause 2 (own flows missing) recorded but none of the "
                    f"missing flows belong to task {ev.task_id}",
                    task_id=ev.task_id, missing_tasks=sorted(missing_tasks),
                )
        else:  # clause 3
            if len(missing_tasks) != 1 or ev.task_id in missing_tasks:
                self.flag(
                    "reject-rule", ev,
                    f"clause 3 (single-victim comparison) recorded but "
                    f"missing flows span tasks {sorted(missing_tasks)} "
                    f"(newcomer {ev.task_id})",
                    task_id=ev.task_id, missing_tasks=sorted(missing_tasks),
                )
                return
            if self.policy == "never":
                return  # clause 3 always rejects; nothing to compare
            if ev.victim_ratio is None or ev.new_ratio is None:
                self.flag(
                    "reject-rule", ev,
                    "clause 3 rejection without the compared completion ratios",
                    task_id=ev.task_id,
                )
            elif ev.victim_ratio < ev.new_ratio - RATIO_TOL:
                self.flag(
                    "reject-rule", ev,
                    f"clause 3 rejected the newcomer although the victim's "
                    f"ratio {ev.victim_ratio:g} is strictly below the "
                    f"newcomer's {ev.new_ratio:g} (should have discarded)",
                    task_id=ev.task_id,
                    victim_ratio=ev.victim_ratio, new_ratio=ev.new_ratio,
                )

    def _check_rollback(self, ev) -> None:
        if self.policy == "never":
            self.flag(
                "reject-rule", ev,
                f"discard-victim of task {ev.victim_task_id} under the "
                f"'never' preemption policy",
                victim=ev.victim_task_id,
            )
            return
        if ev.victim_ratio >= ev.new_ratio:
            self.flag(
                "reject-rule", ev,
                f"discarded task {ev.victim_task_id} although its ratio "
                f"{ev.victim_ratio:g} is not below the newcomer's "
                f"{ev.new_ratio:g}",
                victim=ev.victim_task_id,
                victim_ratio=ev.victim_ratio, new_ratio=ev.new_ratio,
            )

    # -- physical slice timeline ---------------------------------------------

    def feed_slice_group(self, group: list[TraceEvent]) -> None:
        """Apply one same-instant batch of slice events, ends first (slices
        are half-open, so an end and a start at the same instant on the
        same link are legal in that order)."""
        if not self.exclusive:
            return
        for ev in group:
            if ev.kind != "slice-end":
                continue
            links = self.flow_links.pop(ev.flow_id, None)
            if links is None:
                self.flag(
                    "slice-exclusive", ev,
                    f"slice-end for flow {ev.flow_id}, which was not "
                    f"transmitting",
                    flow_id=ev.flow_id,
                )
                continue
            for link in links:
                if self.link_holder.get(link) == ev.flow_id:
                    del self.link_holder[link]
        for ev in group:
            if ev.kind != "slice-start":
                continue
            self.flow_task[ev.flow_id] = ev.task_id
            if ev.flow_id in self.flow_links:
                self.flag(
                    "slice-exclusive", ev,
                    f"slice-start for flow {ev.flow_id}, which is already "
                    f"transmitting",
                    flow_id=ev.flow_id,
                )
                continue
            for link in ev.path:
                holder = self.link_holder.get(link)
                if holder is not None and holder != ev.flow_id:
                    self.flag(
                        "slice-exclusive", ev,
                        f"link {link}: flow {ev.flow_id} starts transmitting "
                        f"while flow {holder} still holds the link",
                        link=link, flow_id=ev.flow_id, holder=holder,
                    )
            for link in ev.path:
                self.link_holder[link] = ev.flow_id
            self.flow_links[ev.flow_id] = ev.path

    # -- deadline-met (second pass: needs the full fault picture) ------------

    def check_deadlines(self, events: list[TraceEvent]) -> None:
        if self.had_faults:
            return  # outages void the guarantee by design
        for ev in events:
            if ev.kind == "flow-completed":
                if (
                    not ev.met_deadline
                    and ev.task_id in self.accepted
                    and ev.task_id not in self.exempt
                ):
                    self.flag(
                        "deadline-met", ev,
                        f"flow {ev.flow_id} of accepted task {ev.task_id} "
                        f"completed past its deadline with no fault in the "
                        f"trace",
                        flow_id=ev.flow_id, task_id=ev.task_id,
                    )
            elif ev.kind == "deadline-expired":
                if ev.task_id in self.accepted and ev.task_id not in self.exempt:
                    self.flag(
                        "deadline-met", ev,
                        f"deadline expired on flow {ev.flow_id} of accepted "
                        f"task {ev.task_id} with no fault in the trace",
                        flow_id=ev.flow_id, task_id=ev.task_id,
                    )


def audit_events(
    events: Iterable[TraceEvent],
    meta: dict[str, Any] | None = None,
    truncated: bool = False,
) -> AuditReport:
    """Audit an event stream; returns the full report (see module doc)."""
    events = list(events)
    auditor = _Auditor(meta or {})

    # single pass for per-event invariants; slice events are batched by
    # identical timestamp so simultaneous end/start pairs resolve in order
    group: list[TraceEvent] = []
    for ev in events:
        if ev.kind in ("slice-start", "slice-end"):
            if group and ev.time != group[0].time:
                auditor.feed_slice_group(group)
                group = []
            group.append(ev)
        elif group and ev.time != group[0].time:
            auditor.feed_slice_group(group)
            group = []
        auditor.feed(ev)
    if group:
        auditor.feed_slice_group(group)

    auditor.check_deadlines(events)
    auditor.violations.sort(key=lambda v: (v.seq, v.invariant))
    return AuditReport(
        events_audited=len(events),
        violations=auditor.violations,
        counts=auditor.counts,
        had_faults=auditor.had_faults,
        truncated=truncated,
    )


def audit_trace(trace: TraceRecorder | LoadedTrace) -> AuditReport:
    """Audit a recorder's buffer or a loaded JSONL trace."""
    return audit_events(trace.events, trace.meta, trace.truncated)
