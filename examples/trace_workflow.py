#!/usr/bin/env python
"""Trace-driven workflow: generate → save → reload → replay → analyse.

Shows the pieces a study built on this library would use daily:

1. generate a heavy-tailed workload (web-search size CDF instead of the
   paper's normal distribution),
2. save it to a JSON trace and reload it (byte-identical replay),
3. run it under TAPS with a per-link load collector attached,
4. print the hottest links, split into useful vs wasted bytes.

Run:  python examples/trace_workflow.py
"""

import tempfile
from pathlib import Path

from repro import (
    Engine,
    SingleRootedTree,
    TapsScheduler,
    WorkloadConfig,
    generate_workload,
    load_tasks,
    save_tasks,
    summarize,
)
from repro.metrics.linkload import LinkLoadCollector
from repro.util.units import KB, ms


def main() -> None:
    topology = SingleRootedTree(servers_per_rack=4, racks_per_pod=3, pods=3)
    config = WorkloadConfig(
        num_tasks=30,
        mean_flows_per_task=10,
        arrival_rate=300.0,
        mean_flow_size=200 * KB,
        flow_size_dist="websearch",  # heavy-tailed, not the §V-A normal
        mean_deadline=40 * ms,
        seed=2026,
    )
    tasks = generate_workload(config, list(topology.hosts))

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "websearch.trace.json"
        save_tasks(tasks, trace_path)
        print(f"saved {len(tasks)} tasks "
              f"({trace_path.stat().st_size / 1024:.0f} KiB JSON)")
        replay = load_tasks(trace_path)

    load = LinkLoadCollector(topology)
    result = Engine(topology, replay, TapsScheduler(), hooks=(load,)).run()
    load.finalize(result.flow_states)
    metrics = summarize(result)

    print(f"\nTAPS on the reloaded trace: "
          f"{metrics.task_completion_ratio:.0%} tasks, "
          f"{metrics.flow_completion_ratio:.0%} flows, "
          f"waste {metrics.wasted_bandwidth_ratio:.1%}")

    print("\nhottest links (bytes carried; all useful under TAPS):")
    print(f"{'link':22s} {'KB total':>9s} {'KB useful':>9s} {'util':>6s}")
    for row in load.hottest(result.finished_at, n=8):
        print(f"{row.src + ' -> ' + row.dst:22s} "
              f"{row.bytes_total / 1024:>9.1f} "
              f"{row.bytes_useful / 1024:>9.1f} "
              f"{row.utilization:>6.1%}")

    heavy = max(f.size for t in replay for f in t.flows)
    light = min(f.size for t in replay for f in t.flows)
    print(f"\nheavy-tail check: largest flow {heavy / 1024:.0f} KB vs "
          f"smallest {light / 1024:.1f} KB "
          f"({heavy / light:.0f}× spread — the paper's normal sizes "
          f"spread ~2×).")


if __name__ == "__main__":
    main()
