#!/usr/bin/env python
"""Regenerate paper Fig. 14: effective throughput over time on the testbed.

Replays the §VI implementation experiment — 100 iperf-style flows on the
8-host partial fat-tree (Fig. 13) — under TAPS and under deadline-oblivious
Fair Sharing (plain TCP knows nothing of deadlines), then prints the
effective-application-throughput trace as sparklines and a small table.

Run:  python examples/testbed_throughput.py
"""

import numpy as np

from repro import Engine, ThroughputTimeSeries, make_scheduler
from repro.exp.report import render_timeseries
from repro.sched.fair import FairSharing
from repro.workload.traces import testbed_trace


def main() -> None:
    series = {}
    for name, factory in (
        ("TAPS", lambda: make_scheduler("TAPS")),
        ("Fair Sharing", lambda: FairSharing(quit_on_miss=False)),
    ):
        topology, tasks = testbed_trace()
        collector = ThroughputTimeSeries()
        result = Engine(topology, tasks, factory(), hooks=(collector,)).run()
        collector.finalize(result.flow_states)
        series[name] = collector.sample(num_points=100)
        met = sum(1 for fs in result.flow_states if fs.met_deadline)
        print(f"{name:14s} flows met {met}/{len(result.flow_states)}, "
              f"run length {result.finished_at * 1e3:.1f} ms")

    print()
    print(render_timeseries(series, title="Fig. 14 — effective application "
                                          "throughput over time"))
    print()

    # a small numeric table, ten buckets
    t_taps, pct_taps = series["TAPS"]
    _, pct_fair = series["Fair Sharing"]
    print("time-bucket means (%):")
    print("  bucket:      " + "  ".join(f"{i:>4d}" for i in range(10)))
    for name, pct in (("TAPS", pct_taps), ("Fair Sharing", pct_fair)):
        buckets = [f"{np.mean(b):4.0f}" for b in np.array_split(pct, 10)]
        print(f"  {name:12s} " + "  ".join(buckets))
    print("\nPaper shape: TAPS ≈ 100% throughout; Fair Sharing unstable, "
          "≈ 60–70%.")


if __name__ == "__main__":
    main()
