#!/usr/bin/env python
"""Watch the TAPS control plane at work (paper Fig. 4).

Runs a small workload on the testbed topology through the message-level
SDN model: probes to the controller, accept replies carrying pre-allocated
time slices, route installs/withdrawals on the switches with their flow-
table limits, reject notices, and TERM packets.  Prints the first part of
the transcript and per-switch statistics.

Run:  python examples/sdn_protocol_trace.py
"""

from repro.sdn.messages import (
    AcceptReply,
    InstallEntry,
    ProbePacket,
    RejectReply,
    TermPacket,
    WithdrawEntry,
)
from repro.sdn.protocol import ProtocolDriver
from repro.workload.traces import testbed_trace


def describe(message) -> str:
    t = f"{message.time * 1e3:7.2f}ms"
    if isinstance(message, ProbePacket):
        return (f"{t}  {message.sender:7s} -> controller  PROBE task "
                f"{message.task_id} ({len(message.flow_ids)} flows, "
                f"deadline {message.deadline * 1e3:.1f}ms)")
    if isinstance(message, AcceptReply):
        slices = ", ".join(
            f"[{s * 1e3:.2f},{e * 1e3:.2f})ms" for s, e in message.slices
        )
        return (f"{t}  controller -> {message.path_nodes[0]:7s} ACCEPT flow "
                f"{message.flow_id} slices {slices}")
    if isinstance(message, RejectReply):
        return f"{t}  controller -> senders  REJECT task {message.task_id}"
    if isinstance(message, InstallEntry):
        return (f"{t}  controller -> {message.switch:7s} INSTALL flow "
                f"{message.flow_id} out {message.out_port}")
    if isinstance(message, WithdrawEntry):
        return (f"{t}  controller -> {message.switch:7s} WITHDRAW flow "
                f"{message.flow_id}")
    if isinstance(message, TermPacket):
        return f"{t}  {message.sender:7s} -> controller  TERM flow {message.flow_id}"
    return f"{t}  {message}"


def main() -> None:
    topology, tasks = testbed_trace(num_flows=12, seed=3)
    driver = ProtocolDriver(topology, tasks)
    result = driver.run()

    print("== control-plane transcript (first 40 messages) ==")
    for message in driver.transcript.messages[:40]:
        print(" ", describe(message))
    total = len(driver.transcript.messages)
    print(f"  … {total} messages total\n")

    print("== message counts ==")
    for cls in (ProbePacket, AcceptReply, RejectReply, InstallEntry,
                WithdrawEntry, TermPacket):
        print(f"  {cls.__name__:14s} {driver.transcript.count(cls)}")

    print("\n== outcome ==")
    print(f"  tasks completed: {result.tasks_completed}/{len(result.task_states)}")
    print(f"  installs refused by table limits: "
          f"{driver.transcript.installs_refused}")
    leftover = sum(len(sw.table) for sw in driver.switches.values())
    print(f"  flow-table entries left installed: {leftover} "
          f"(withdrawn on TERM, per §IV-C)")


if __name__ == "__main__":
    main()
