#!/usr/bin/env python
"""Regenerate paper Fig. 6: completion ratio vs mean deadline.

Sweeps the mean flow deadline from 20 ms to 60 ms on the single-rooted
tree and prints both panels of the paper's Fig. 6 — application
throughput and task completion ratio — as tables, plus the Fig. 8 wasted
bandwidth view from the same runs.

Run:  python examples/deadline_sweep.py [--scale small|medium]
"""

import argparse

from repro.exp.configs import SCALES
from repro.exp.figures import run_figure
from repro.exp.report import render_sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="small")
    args = parser.parse_args()

    scale = SCALES[args.scale]
    run = run_figure("fig6", scale)
    sweep = run.sweep

    print(render_sweep(sweep, "application_throughput",
                       title="Fig. 6(a) — application throughput"))
    print()
    print(render_sweep(sweep, "task_completion_ratio",
                       title="Fig. 6(b) — task completion ratio"))
    print()
    print(render_sweep(sweep, "wasted_bandwidth_ratio",
                       title="Fig. 8 — wasted bandwidth (same runs)"))
    print()
    print("Expected shapes: all curves rise with deadline; TAPS on top; "
          "Fair Sharing wastes the most; Varys/TAPS waste none.")


if __name__ == "__main__":
    main()
