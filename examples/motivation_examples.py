#!/usr/bin/env python
"""Replay the paper's three motivation examples (Figs. 1–3) in detail.

For each example this prints the per-flow schedule outcome under every
scheduler the paper discusses, plus — for TAPS on Fig. 3 — the actual
pre-allocated time slices, showing f4's split allocation (0,1) ∪ (2,3)
from the paper's optimal schedule.

Run:  python examples/motivation_examples.py
"""

from repro import Engine, TapsScheduler
from repro.exp.motivation import run_all
from repro.workload.traces import fig3_trace


def print_outcomes() -> None:
    for fig, outcomes in run_all().items():
        print(f"=== {fig} ===")
        for o in outcomes:
            ref = (
                f"paper: {o.paper_flows} flows / {o.paper_tasks} tasks"
                if o.paper_flows is not None
                else "paper: prose (see repro.exp.motivation docstring)"
            )
            status = "match" if o.matches_paper else "MISMATCH"
            print(
                f"  {o.scheduler:14s} {o.flows_met} flows, "
                f"{o.tasks_completed} tasks   ({ref}) [{status}]"
            )
        print()


def print_fig3_slices() -> None:
    """Show the TAPS controller's actual allocation for Fig. 3."""
    print("=== fig3: TAPS pre-allocated time slices ===")
    topology, tasks = fig3_trace()
    scheduler = TapsScheduler()
    engine = Engine(topology, tasks, scheduler)
    # deliver the simultaneous arrivals without running the clock, so the
    # committed plans are inspectable
    scheduler.attach(topology, engine.path_service)
    for ts in engine.task_states:
        scheduler.on_task_arrival(ts, 0.0)

    names = {0: "f1 (1->2)", 1: "f2 (1->4)", 2: "f3 (3->2)", 3: "f4 (3->4)"}
    for fid, label in names.items():
        plan = scheduler.plan_of(fid)
        slices = ", ".join(f"({s:g},{e:g})" for s, e in plan.slices)
        hops = " -> ".join(
            [topology.links[plan.path[0]].src]
            + [topology.links[l].dst for l in plan.path]
        )
        print(f"  {label:12s} slices {slices:18s} via {hops}")
    print("\nf4's split slice set matches the paper's optimal schedule "
          "(Fig. 3(b)).")


if __name__ == "__main__":
    print_outcomes()
    print_fig3_slices()
