#!/usr/bin/env python
"""Draw TAPS schedules as ASCII Gantt charts (the paper's Fig. 1–3 view).

For each motivation example this renders the controller's committed
time-slice allocation — one row per flow, with deadline markers — plus the
per-link occupancy of the Fig. 3 topology, making the "at most one flow
per link, preemptible slices" model visible.

Run:  python examples/gantt_schedules.py
"""

from repro import Engine, TapsScheduler, render_flow_gantt, render_link_gantt
from repro.workload.traces import fig1_trace, fig2_trace, fig3_trace


def plans_for(trace):
    topology, tasks = trace()
    scheduler = TapsScheduler()
    engine = Engine(topology, tasks, scheduler)
    scheduler.attach(topology, engine.path_service)
    for ts in engine.task_states:
        scheduler.on_task_arrival(ts, ts.task.arrival)
    return topology, scheduler


def main() -> None:
    labels = {
        "fig1": {0: "f11", 1: "f12", 2: "f21", 3: "f22"},
        "fig2": {0: "f11", 1: "f12", 2: "f21", 3: "f22"},
        "fig3": {0: "f1", 1: "f2", 2: "f3", 3: "f4"},
    }
    for name, trace in (("fig1", fig1_trace), ("fig2", fig2_trace),
                        ("fig3", fig3_trace)):
        topology, scheduler = plans_for(trace)
        print(f"=== {name}: TAPS committed slices ===")
        print(render_flow_gantt(scheduler.plans.values(), width=48,
                                labels=labels[name]))
        print()

    # link occupancy view of fig3: the idle window on S3->S5 that PDQ
    # wastes and TAPS fills (paper §III-A)
    topology, scheduler = plans_for(fig3_trace)
    occupancy = {}
    for link in topology.links:
        occ = scheduler.ledger.occupied(link.index)
        if occ and link.src.startswith("S"):
            occupancy[f"{link.src}->{link.dst}"] = occ
    print("=== fig3: per-link occupancy (switch links) ===")
    print(render_link_gantt(occupancy, width=48))
    print("\nNote f4's split slices (0,1) ∪ (2,3) around f3's use of "
          "S3->S5 — the paper's optimal schedule.")


if __name__ == "__main__":
    main()
