#!/usr/bin/env python
"""Link failures: the SDN controller reroutes, everyone else stalls.

Injects core-link outages on a k=4 fat-tree mid-run and compares TAPS —
whose controller globally reallocates flows around the outage picture —
with PDQ and Fair Sharing, whose affected flows simply stop until the
link returns.

Run:  python examples/link_failure_rerouting.py
"""

import numpy as np

from repro import Engine, FatTree, LinkFault, PathService, summarize
from repro.sched.registry import make_scheduler
from repro.workload.generator import WorkloadConfig, generate_workload


def main() -> None:
    topology = FatTree(4)
    paths = PathService(topology, max_paths=8)
    cfg = WorkloadConfig(num_tasks=40, mean_flows_per_task=6,
                         arrival_rate=300, seed=47)
    tasks = generate_workload(cfg, list(topology.hosts))
    horizon = max(t.deadline for t in tasks)

    # fail 8 random switch-to-switch links during the run
    rng = np.random.default_rng(7)
    switch_set = set(topology.switches)
    fabric_links = [l.index for l in topology.links
                    if l.src in switch_set and l.dst in switch_set]
    faults = []
    for i in rng.choice(len(fabric_links), size=8, replace=False):
        start = float(rng.uniform(0, horizon * 0.7))
        faults.append(LinkFault(fabric_links[i], start,
                                start + float(rng.exponential(horizon / 3))))
    print(f"{len(faults)} core-link outages injected "
          f"(run horizon {horizon * 1e3:.0f} ms)\n")

    print(f"{'scheduler':14s} {'clean':>7s} {'faulty':>7s} {'drop':>7s}")
    for name in ("Fair Sharing", "PDQ", "TAPS"):
        clean = summarize(Engine(topology, tasks, make_scheduler(name),
                                 path_service=paths).run())
        faulty = summarize(Engine(topology, tasks, make_scheduler(name),
                                  path_service=paths, faults=faults).run())
        drop = clean.task_completion_ratio - faulty.task_completion_ratio
        print(f"{name:14s} {clean.task_completion_ratio:>7.2%} "
              f"{faulty.task_completion_ratio:>7.2%} {drop:>+7.2%}")

    print(
        "\nTAPS' controller reallocates every in-flight flow against the "
        "current outage\npicture (and drops tasks an outage has doomed, "
        "rather than wasting bytes on\nthem); oblivious schedulers stall "
        "through each outage and eat the misses."
    )


if __name__ == "__main__":
    main()
