#!/usr/bin/env python
"""Quickstart: schedule one workload under TAPS and every baseline.

Builds a scaled-down version of the paper's single-rooted tree (Fig. 5),
generates a §V-A-style workload (Poisson task arrivals, exponential
deadlines, normal flow sizes), replays it under all six schedulers, and
prints the paper's headline metrics side by side.

Run:  python examples/quickstart.py
"""

from repro import (
    Engine,
    PathService,
    SingleRootedTree,
    WorkloadConfig,
    generate_workload,
    make_scheduler,
    summarize,
)
from repro.sched.registry import PAPER_ORDER
from repro.util.units import KB, ms


def main() -> None:
    # 1. The network: a 36-host single-rooted tree with 1 Gbps links —
    #    the same shape as the paper's 36,000-host tree, 1000× smaller.
    topology = SingleRootedTree(servers_per_rack=4, racks_per_pod=3, pods=3)
    print(f"topology: {topology}")

    # 2. The workload: 30 tasks, ~12 flows each, 40 ms mean deadline,
    #    200 KB mean flow size (the paper's §V-A defaults).
    config = WorkloadConfig(
        num_tasks=30,
        mean_flows_per_task=12,
        arrival_rate=300.0,          # tasks/second (Poisson)
        mean_deadline=40 * ms,       # exponential
        mean_flow_size=200 * KB,     # normal
        seed=2015,
    )
    tasks = generate_workload(config, list(topology.hosts))
    n_flows = sum(t.num_flows for t in tasks)
    print(f"workload: {len(tasks)} tasks, {n_flows} flows\n")

    # 3. Replay the same traffic under each scheduler.  Sharing one
    #    PathService caches candidate-path enumeration across runs.
    paths = PathService(topology, max_paths=8)
    print(f"{'scheduler':14s} {'tasks done':>10s} {'flows done':>10s} "
          f"{'app thr':>8s} {'wasted':>7s}")
    for name in PAPER_ORDER:
        engine = Engine(topology, tasks, make_scheduler(name), path_service=paths)
        metrics = summarize(engine.run())
        print(
            f"{name:14s} {metrics.task_completion_ratio:>10.2%} "
            f"{metrics.flow_completion_ratio:>10.2%} "
            f"{metrics.application_throughput:>8.2%} "
            f"{metrics.wasted_bandwidth_ratio:>7.2%}"
        )

    print(
        "\nTAPS should lead task completion; Fair Sharing should waste the "
        "most bandwidth;\nVarys and TAPS (admission control) should waste none."
    )


if __name__ == "__main__":
    main()
