#!/usr/bin/env python
"""The §IV-B NP-hardness reduction, executed.

Builds the paper's Hamiltonian-Circuit → task-scheduling instances for a
gallery of small graphs, solves them exactly, and compares against direct
circuit search — including the two-disjoint-triangles graph where the
construction's certificate (a 2-factor) diverges from a Hamiltonian
circuit, the gap documented in EXPERIMENTS.md.

Run:  python examples/nphard_reduction.py
"""

import networkx as nx

from repro.nphard import (
    build_instance,
    has_hamiltonian_circuit,
    has_two_factor,
    schedulable_subset_exists,
)


def gallery() -> dict[str, nx.Graph]:
    two_triangles = nx.Graph(
        [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
    )
    k4_minus = nx.complete_graph(4)
    k4_minus.remove_edge(0, 1)
    return {
        "C5 cycle": nx.cycle_graph(5),
        "P4 path": nx.path_graph(4),
        "K4 complete": nx.complete_graph(4),
        "K4 minus edge": k4_minus,
        "star S3": nx.star_graph(3),
        "two triangles": two_triangles,
        "K3,3 bipartite": nx.complete_bipartite_graph(3, 3),
    }


def main() -> None:
    print("Each edge of G becomes a 4-flow task (sizes 1/2; deadlines "
          "i1+1, 2n-i1, i2+1, 2n-i2)\non one unit-capacity link; "
          "schedulability of n tasks is checked exactly.\n")
    header = f"{'graph':16s} {'n tasks fit':>11s} {'2-factor':>9s} {'ham. circuit':>13s}"
    print(header)
    print("-" * len(header))
    for name, g in gallery().items():
        n = g.number_of_nodes()
        tasks = build_instance(g)
        fits = schedulable_subset_exists(tasks, n)
        tf = has_two_factor(g)
        ham = has_hamiltonian_circuit(g)
        flag = "" if fits == ham else "   <- certificate is the 2-factor"
        print(f"{name:16s} {str(fits):>11s} {str(tf):>9s} {str(ham):>13s}{flag}")

    print(
        "\nSchedulability tracks the 2-factor column exactly; a Hamiltonian"
        "\ncircuit is the connected special case (see EXPERIMENTS.md, §IV-B)."
    )


if __name__ == "__main__":
    main()
