#!/usr/bin/env python
"""Web-search incast: the partition/aggregate workload of the paper's §II.

"For web search works, each task contains at least 88 flows" — every
worker's partial result must reach the aggregator before the SLA deadline
or the whole response is useless.  This example builds that workload
(fan-out scaled to the 36-host tree), runs all six schedulers plus the
D2TCP extension, and shows why task-level admission wins when every flow
of a task funnels into one access link.

Run:  python examples/websearch_incast.py
"""

from repro import Engine, PathService, SingleRootedTree, summarize
from repro.sched.registry import EXTENDED_ORDER, make_scheduler
from repro.workload.patterns import websearch_workload


def main() -> None:
    from repro.util.units import KB, ms

    topology = SingleRootedTree(servers_per_rack=4, racks_per_pod=3, pods=3)
    tasks = websearch_workload(
        list(topology.hosts),
        num_tasks=30,
        fanout_scale=0.1,   # ~9–12 workers per aggregation on 36 hosts
        mean_flow_size=150 * KB,
        mean_deadline=30 * ms,
        seed=11,
    )
    flows = sum(t.num_flows for t in tasks)
    fanouts = sorted(t.num_flows for t in tasks)
    print(f"workload: {len(tasks)} aggregations, {flows} flows "
          f"(fan-out {fanouts[0]}–{fanouts[-1]}), all flows of a task "
          f"converge on one aggregator\n")

    paths = PathService(topology)
    print(f"{'scheduler':14s} {'tasks done':>10s} {'flows done':>10s} "
          f"{'wasted':>7s}")
    results = {}
    for name in EXTENDED_ORDER:
        metrics = summarize(
            Engine(topology, tasks, make_scheduler(name),
                   path_service=paths).run()
        )
        results[name] = metrics
        print(f"{name:14s} {metrics.task_completion_ratio:>10.2%} "
              f"{metrics.flow_completion_ratio:>10.2%} "
              f"{metrics.wasted_bandwidth_ratio:>7.2%}")

    taps = results["TAPS"]
    fair = results["Fair Sharing"]
    print(
        f"\nOn pure incast the aggregator's access link fixes each task's "
        f"makespan, so the\ncompletion gap is admission-driven and modest "
        f"(TAPS {taps.task_completion_ratio:.0%} vs Fair Sharing "
        f"{fair.task_completion_ratio:.0%}); the waste gap is not "
        f"(TAPS {taps.wasted_bandwidth_ratio:.1%} vs "
        f"{fair.wasted_bandwidth_ratio:.1%} of all bytes\nspent on "
        f"aggregations that still failed)."
    )


if __name__ == "__main__":
    main()
