"""JSONL/Prometheus export: round-trip fidelity and strict validation.

The telemetry file is a versioned artifact other tooling (CI, ``stats``)
consumes, so the loader must reject anything mis-shaped rather than
render a half-plausible report from it.
"""

import json

import pytest

from repro.obs.export import (
    TELEMETRY_SCHEMA_VERSION,
    TelemetryError,
    dumps_jsonl,
    dumps_prometheus,
    load_jsonl,
    write_jsonl,
)
from repro.obs.registry import MetricsRegistry


def _sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry(meta={"scale": "small", "seed": 3})
    reg.counter("controller/tasks_accepted").inc(12)
    reg.gauge("net/link_peak_utilization",
              {"link": "4", "src": "a", "dst": "b"}).set(0.75)
    h = reg.histogram("controller/admission_latency_seconds")
    for v in (1e-4, 2e-4, 5e-3, 1e-2):
        h.observe(v)
    with reg.spans.span("run"):
        pass
    return reg


def test_jsonl_round_trip_is_byte_identical():
    reg = _sample_registry()
    text = dumps_jsonl(reg)
    snap = load_jsonl(text.splitlines())
    assert snap.schema == TELEMETRY_SCHEMA_VERSION
    assert snap.meta == {"scale": "small", "seed": 3}
    # rebuild a registry from the snapshot and re-export: identical bytes
    assert dumps_jsonl(snap.to_registry()) == text


def test_write_and_load_file(tmp_path):
    path = write_jsonl(_sample_registry(), tmp_path / "telemetry.jsonl")
    snap = load_jsonl(path)
    assert snap.get("controller/tasks_accepted")["value"] == 12
    assert snap.find("net/link_peak_utilization")[0]["labels"]["link"] == "4"


def test_loaded_histogram_quantiles_survive_round_trip():
    reg = _sample_registry()
    live = reg.get("controller/admission_latency_seconds")
    snap = load_jsonl(dumps_jsonl(reg).splitlines())
    rebuilt = snap.to_registry().get("controller/admission_latency_seconds")
    assert rebuilt.quantile(0.5) == live.quantile(0.5)
    assert rebuilt.quantile(0.99) == live.quantile(0.99)


def _lines():
    return dumps_jsonl(_sample_registry()).splitlines()


def _counter_line(lines):
    """Index and parsed body of the first counter instrument line.

    Instrument lines are sorted by name, so the counter is not at a fixed
    index — locate it by kind before mutating it.
    """
    for i, line in enumerate(lines[1:], start=1):
        item = json.loads(line)
        if item.get("kind") == "counter":
            return i, item
    raise AssertionError("sample registry has no counter line")


def test_load_rejects_empty_file():
    with pytest.raises(TelemetryError, match="no header"):
        load_jsonl([])


def test_load_rejects_foreign_header():
    with pytest.raises(TelemetryError, match="not a telemetry file"):
        load_jsonl(['{"kind":"trace-header","schema":1}'])


def test_load_rejects_header_junk():
    with pytest.raises(TelemetryError, match="not JSON"):
        load_jsonl(["nonsense"])


def test_load_rejects_schema_mismatch():
    lines = _lines()
    head = json.loads(lines[0])
    head["schema"] = TELEMETRY_SCHEMA_VERSION + 1
    lines[0] = json.dumps(head)
    with pytest.raises(TelemetryError, match="unsupported telemetry schema"):
        load_jsonl(lines)


def test_load_rejects_extra_header_field():
    lines = _lines()
    head = json.loads(lines[0])
    head["extra"] = 1
    lines[0] = json.dumps(head)
    with pytest.raises(TelemetryError, match="header field mismatch"):
        load_jsonl(lines)


def test_load_rejects_unknown_kind():
    lines = _lines() + ['{"kind":"summary","name":"x","labels":{}}']
    with pytest.raises(TelemetryError, match="unknown instrument kind"):
        load_jsonl(lines)


def test_load_rejects_missing_field():
    lines = _lines()
    i, item = _counter_line(lines)
    del item["value"]
    lines[i] = json.dumps(item)
    with pytest.raises(TelemetryError, match="field mismatch"):
        load_jsonl(lines)


def test_load_rejects_extra_field():
    lines = _lines()
    i, item = _counter_line(lines)
    item["surprise"] = True
    lines[i] = json.dumps(item)
    with pytest.raises(TelemetryError, match="field mismatch"):
        load_jsonl(lines)


def test_load_rejects_wrong_value_type():
    lines = _lines()
    i, item = _counter_line(lines)
    item["value"] = "12"
    lines[i] = json.dumps(item)
    with pytest.raises(TelemetryError, match="must be a number"):
        load_jsonl(lines)


def test_load_rejects_bool_masquerading_as_number():
    lines = _lines()
    i, item = _counter_line(lines)
    item["value"] = True
    lines[i] = json.dumps(item)
    with pytest.raises(TelemetryError, match="must be a number"):
        load_jsonl(lines)


def test_load_rejects_histogram_count_mismatch():
    lines = _lines()
    for i, line in enumerate(lines):
        item = json.loads(line)
        if item.get("kind") == "histogram":
            item["count"] += 1
            lines[i] = json.dumps(item)
            break
    with pytest.raises(TelemetryError, match="counts sum"):
        load_jsonl(lines)


def test_load_rejects_wrong_bucket_count():
    lines = _lines()
    for i, line in enumerate(lines):
        item = json.loads(line)
        if item.get("kind") == "histogram":
            item["counts"] = item["counts"][:-1]
            lines[i] = json.dumps(item)
            break
    with pytest.raises(TelemetryError, match="non-negative ints"):
        load_jsonl(lines)


def test_load_rejects_non_string_labels():
    lines = _lines()
    i, item = _counter_line(lines)
    item["labels"] = {"link": 4}
    lines[i] = json.dumps(item)
    with pytest.raises(TelemetryError, match="labels"):
        load_jsonl(lines)


# -- Prometheus ----------------------------------------------------------------


def test_prometheus_exposition_shape():
    text = dumps_prometheus(_sample_registry())
    lines = text.splitlines()
    assert "# TYPE taps_controller_tasks_accepted_total counter" in lines
    assert "taps_controller_tasks_accepted_total 12" in lines
    assert ('taps_net_link_peak_utilization'
            '{dst="b",link="4",src="a"} 0.75') in lines
    assert "# TYPE taps_controller_admission_latency_seconds histogram" in lines
    # cumulative buckets end with +Inf == _count
    bucket_lines = [l for l in lines if "_bucket{" in l
                    and "admission_latency" in l]
    assert bucket_lines, "no bucket series"
    assert bucket_lines[-1].startswith(
        'taps_controller_admission_latency_seconds_bucket{le="+Inf"} ')
    assert bucket_lines[-1].endswith(" 4")
    cums = [int(l.rsplit(" ", 1)[1]) for l in bucket_lines]
    assert cums == sorted(cums), "bucket counts must be cumulative"
    assert "taps_controller_admission_latency_seconds_count 4" in lines


def test_prometheus_label_escaping():
    reg = MetricsRegistry()
    reg.counter("c", {"q": 'say "hi"\n'}).inc(1)
    text = dumps_prometheus(reg)
    assert r'taps_c_total{q="say \"hi\"\n"} 1' in text


def test_prometheus_label_backslash_escaping():
    # exposition format: backslash must be escaped before quote/newline
    reg = MetricsRegistry()
    reg.counter("c", {"path": 'a\\b"c\nd'}).inc(1)
    text = dumps_prometheus(reg)
    assert r'taps_c_total{path="a\\b\"c\nd"} 1' in text


def test_prometheus_help_lines():
    text = dumps_prometheus(_sample_registry())
    lines = text.splitlines()
    # every # TYPE is immediately preceded by a # HELP for the same series
    for i, line in enumerate(lines):
        if line.startswith("# TYPE "):
            series = line.split()[2]
            assert i > 0 and lines[i - 1].startswith(f"# HELP {series} "), (
                f"missing HELP before {line!r}"
            )
    # known instruments get their documented help text
    assert any(
        l.startswith("# HELP taps_controller_admission_latency_seconds "
                     "Wall time")
        for l in lines
    )
    # unknown instruments fall back to the contract pointer
    reg = MetricsRegistry()
    reg.counter("x/unknown_thing").inc(1)
    fallback = dumps_prometheus(reg)
    assert ("# HELP taps_x_unknown_thing_total Instrument x/unknown_thing "
            "(see DESIGN.md section 7).") in fallback.splitlines()


def test_prometheus_help_text_escaping():
    from repro.obs import export

    # help text with a backslash and newline must be escaped per spec
    orig = dict(export._HELP_TEXT)
    export._HELP_TEXT["weird/metric"] = "line one\nwith \\ slash"
    try:
        reg = MetricsRegistry()
        reg.counter("weird/metric").inc(1)
        text = dumps_prometheus(reg)
        assert (r"# HELP taps_weird_metric_total line one\nwith \\ slash"
                in text.splitlines())
    finally:
        export._HELP_TEXT.clear()
        export._HELP_TEXT.update(orig)
