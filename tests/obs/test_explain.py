"""Rejection explainability: verdicts must agree with the auditor."""

import pytest

from repro.core.controller import TapsScheduler
from repro.core.reject import PreemptionPolicy
from repro.obs.explain import derive_clause, explain_run, explain_task
from repro.obs.timeline import build_timeline, timeline_from
from repro.sim.engine import Engine
from repro.trace.audit import audit_trace
from repro.trace.recorder import TraceRecorder
from repro.workload.flow import make_task
from repro.workload.traces import dumbbell


# -- clause derivation mirrors the auditor's classification --------------------


def test_derive_clause_newcomer_in_missing():
    # the newcomer's own flows would miss → clause 2
    assert derive_clause(5, ((10, 5), (11, 5))) == 2


def test_derive_clause_single_victim():
    # exactly one *other* task affected → clause 3 (ratio comparison)
    assert derive_clause(5, ((10, 7),)) == 3


def test_derive_clause_multiple_victims():
    # several other tasks would miss → clause 1
    assert derive_clause(5, ((10, 7), (12, 8))) == 1


def test_derive_clause_no_evidence():
    assert derive_clause(5, ()) is None


# -- acceptance criterion: explain == auditor on a fig6-scale run --------------


def test_every_rejection_matches_recorded_and_derived_clause(traced_run):
    """For every rejected task in the traced smoke run, the verdict's
    derived clause equals the clause the controller recorded, and the
    auditor finds zero reject-rule violations for the same trace."""
    _result, recorder, _reg = traced_run
    tl = timeline_from(recorder)
    rejected = [t for t in tl.tasks.values() if t.decision == "rejected"]
    assert rejected, "seed 7 smoke workload must reject tasks"
    for task in rejected:
        verdict = explain_task(tl, task.task_id)
        assert verdict.outcome == "rejected"
        assert verdict.clause_recorded == task.reject_clause
        assert verdict.clause_derived == task.reject_clause
        assert verdict.clause_consistent
    report = audit_trace(recorder)
    reject_violations = [
        v for v in report.violations if v.invariant == "reject-rule"
    ]
    assert reject_violations == []


def test_faulted_run_verdicts_stay_consistent(faulted_run):
    _result, recorder, _reg = faulted_run
    tl = timeline_from(recorder)
    verdicts = explain_run(tl)
    assert verdicts
    assert all(v.clause_consistent for v in verdicts)
    # sorted by task id, and every verdict renders to non-empty text
    ids = [v.task_id for v in verdicts]
    assert ids == sorted(ids)
    for v in verdicts:
        text = v.lines()
        assert text and v.headline in text[0]
        js = v.to_json()
        assert js["task"] == v.task_id and js["outcome"] == v.outcome


def test_rejection_verdict_names_pressure_and_competitors(traced_run):
    _result, recorder, _reg = traced_run
    tl = timeline_from(recorder)
    task = next(t for t in tl.tasks.values() if t.decision == "rejected")
    verdict = explain_task(tl, task.task_id)
    # the committed table before the rejection had traffic in the window
    assert verdict.saturated_links, "busiest links must be attributed"
    for pressure in verdict.saturated_links:
        assert 0.0 <= pressure.busy_fraction <= 1.0 + 1e-9
        assert pressure.holders, "pressure without holder tasks"
    assert verdict.competing_tasks
    assert task.task_id not in verdict.competing_tasks
    assert verdict.slack_at_decision is not None


# -- preemption and drop verdicts ----------------------------------------------


def test_preempted_verdict_names_preemptor():
    topo = dumbbell(2)
    tasks = [
        make_task(0, 0.0, 6.5, [("L0", "R0", 6.0)], 0),
        make_task(1, 0.1, 6.2, [("L1", "R1", 6.0)], 1),
    ]
    recorder = TraceRecorder()
    sched = TapsScheduler(preemption=PreemptionPolicy.PROSPECTIVE)
    Engine(topo, tasks, sched, trace=recorder).run()
    tl = timeline_from(recorder)
    assert tl.tasks[0].outcome == "preempted"
    verdict = explain_task(tl, 0)
    assert verdict.outcome == "preempted"
    assert "task 1" in verdict.headline
    assert verdict.competing_tasks == (1,)


def test_dropped_verdict_blames_downed_links():
    from repro.trace.events import LinkStateChange, TaskArrival, TaskDrop

    rec = TraceRecorder()
    rec.emit(TaskArrival(0.0, task_id=4, deadline=2.0, num_flows=1,
                         total_bytes=1.0))
    rec.emit(LinkStateChange(0.5, down_links=(9,)))
    rec.emit(TaskDrop(0.5, task_id=4, cause="fault"))
    tl = build_timeline(rec.events)
    verdict = explain_task(tl, 4)
    assert verdict.outcome == "dropped"
    assert "fault" in verdict.headline
    assert any("link" in line for line in verdict.lines())


def test_explain_unknown_task_raises(traced_run):
    _result, recorder, _reg = traced_run
    tl = timeline_from(recorder)
    with pytest.raises(KeyError):
        explain_task(tl, 10_000)


def test_explain_completed_task_is_a_plain_verdict(traced_run):
    _result, recorder, _reg = traced_run
    tl = timeline_from(recorder)
    done = next(t for t in tl.tasks.values() if t.outcome == "completed")
    verdict = explain_task(tl, done.task_id)
    assert verdict.outcome == "completed"
    assert verdict.clause_recorded is None


def test_handcrafted_inconsistent_clause_is_flagged():
    """A trace whose recorded clause contradicts its own evidence yields
    clause_consistent == False — the explain CLI exits nonzero on it."""
    from repro.trace.events import TaskArrival, TaskReject

    rec = TraceRecorder()
    rec.emit(TaskArrival(0.0, task_id=1, deadline=1.0, num_flows=1,
                         total_bytes=1.0))
    # evidence says clause 2 (newcomer's flows missing), record says 1
    rec.emit(TaskReject(0.1, task_id=1, reason="would-miss", clause=1,
                        missing=((3, 1),), lateness=((3, 0.2),)))
    tl = build_timeline(rec.events)
    verdict = explain_task(tl, 1)
    assert verdict.clause_recorded == 1
    assert verdict.clause_derived == 2
    assert not verdict.clause_consistent
