"""Shared traced runs for the diagnosis-layer tests.

Session-scoped: the fat-tree runs cost ~a second each, and every module
here (timeline, chrometrace, explain, diffing) reads the same streams.
"""

import pytest

from repro.exp.runner import run_traced
from repro.obs.registry import MetricsRegistry
from repro.sim.faults import LinkFault


@pytest.fixture(scope="session")
def traced_run():
    """A fig6-scale traced fat-tree run (the CI smoke workload): 24
    tasks, seed 7 — known to produce accepted and rejected tasks."""
    registry = MetricsRegistry()
    result, recorder = run_traced(num_tasks=24, seed=7, telemetry=registry)
    return result, recorder, registry


@pytest.fixture(scope="session")
def faulted_run():
    """The same scale with a link outage injected over [0.01, 0.05)."""
    registry = MetricsRegistry()
    result, recorder = run_traced(
        num_tasks=24, seed=3,
        faults=[LinkFault(0, 0.01, 0.05)], telemetry=registry,
    )
    return result, recorder, registry
