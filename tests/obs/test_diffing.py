"""Cross-run regression diffing: severity model, loading, history store."""

import json

import pytest

from repro.obs.diffing import (
    DiffError,
    append_history,
    diff_bundles,
    diff_paths,
    latest_history,
    load_bundle,
)
from repro.obs.export import write_jsonl
from repro.obs.registry import MetricsRegistry
from repro.trace.events import TaskArrival, TaskReject
from repro.trace.recorder import TraceRecorder


def _write_run_dir(tmp_path, name, recorder, registry):
    run = tmp_path / name
    run.mkdir()
    (run / "trace.jsonl").write_text(recorder.dumps())
    write_jsonl(registry, run / "telemetry.jsonl")
    return run


def _registry(counts=(3, 1), latencies=(1e-3,) * 100):
    reg = MetricsRegistry(meta={"seed": 7})
    reg.counter("controller/tasks_accepted").inc(counts[0])
    reg.counter("controller/tasks_rejected").inc(counts[1])
    h = reg.histogram("controller/admission_latency_seconds")
    for v in latencies:
        h.observe(v)
    return reg


# -- identical bundles: zero findings, exit 0 ----------------------------------


def test_identical_run_dirs_diff_clean(traced_run, tmp_path):
    _result, recorder, registry = traced_run
    a = _write_run_dir(tmp_path, "a", recorder, registry)
    b = _write_run_dir(tmp_path, "b", recorder, registry)
    report = diff_paths(a, b)
    assert report.traces_identical is True
    assert report.findings() == []
    assert report.ok and report.exit_code == 0
    assert report.metrics_compared > 0
    js = report.to_json()
    assert js["regressions"] == 0 and js["warnings"] == 0
    assert js["deltas"] == []


# -- injected timing regression ------------------------------------------------


def test_injected_admission_p99_regression_is_flagged(tmp_path):
    """A >=10% admission-latency regression is surfaced as a warning by
    default and escalates to a blocking regression under strict timing."""
    ra = _registry(latencies=(1e-3,) * 100)
    rb = _registry(latencies=(1e-2,) * 100)  # 10x slower: way over 10%
    rec = TraceRecorder()  # identical (empty) traces on both sides
    a = _write_run_dir(tmp_path, "a", rec, ra)
    b = _write_run_dir(tmp_path, "b", rec, rb)

    report = diff_paths(a, b)
    flagged = {d.metric for d in report.warnings}
    assert "telemetry/admission_p99_seconds" in flagged
    assert report.exit_code == 0, "timing drift alone must not block"

    strict = diff_paths(a, b, strict_timing=True)
    blocked = {d.metric for d in strict.regressions}
    assert "telemetry/admission_p99_seconds" in blocked
    assert strict.exit_code == 1


def test_timing_improvement_is_not_a_finding_severity_error(tmp_path):
    ra = _registry(latencies=(1e-2,) * 100)
    rb = _registry(latencies=(1e-3,) * 100)  # b got faster
    rec = TraceRecorder()
    report = diff_paths(
        _write_run_dir(tmp_path, "a", rec, ra),
        _write_run_dir(tmp_path, "b", rec, rb),
    )
    assert report.exit_code == 0
    improved = {d.metric for d in report.improvements}
    assert "telemetry/admission_p99_seconds" in improved


def test_sub_threshold_timing_drift_is_ok(tmp_path):
    ra = _registry(latencies=(1.00e-3,) * 100)
    rb = _registry(latencies=(1.05e-3,) * 100)  # +5% < 10% threshold
    rec = TraceRecorder()
    report = diff_paths(
        _write_run_dir(tmp_path, "a", rec, ra),
        _write_run_dir(tmp_path, "b", rec, rb),
    )
    assert not any(
        d.metric == "telemetry/admission_p99_seconds"
        for d in report.findings()
    )


# -- deterministic count regressions are always blocking -----------------------


def _trace_with_rejects(n):
    rec = TraceRecorder()
    for i in range(4):
        rec.emit(TaskArrival(0.1 * i, task_id=i, deadline=5.0,
                             num_flows=1, total_bytes=1.0))
    for i in range(n):
        rec.emit(TaskReject(0.5 + 0.1 * i, task_id=i, reason="would-miss",
                            clause=2, missing=((i, i),),
                            lateness=((i, 0.25),)))
    return rec


def test_count_regression_blocks(tmp_path):
    reg = _registry()
    a = _write_run_dir(tmp_path, "a", _trace_with_rejects(1), reg)
    b = _write_run_dir(tmp_path, "b", _trace_with_rejects(3), reg)
    report = diff_paths(a, b)
    assert report.traces_identical is False
    assert report.exit_code == 1
    metrics = {d.metric for d in report.regressions}
    assert "trace/tasks_rejected" in metrics


def test_count_improvement_reported_not_blocking(tmp_path):
    reg = _registry()
    a = _write_run_dir(tmp_path, "a", _trace_with_rejects(3), reg)
    b = _write_run_dir(tmp_path, "b", _trace_with_rejects(1), reg)
    report = diff_paths(a, b)
    assert report.exit_code == 0
    assert any(d.metric == "trace/tasks_rejected"
               for d in report.improvements)


# -- perf-record diffs ---------------------------------------------------------


def _perf_record(controller=2.0, speedup=3.0, accepted=20):
    return {
        "scale": "smoke",
        "slow": {"controller_seconds": controller,
                 "stats": {"tasks_accepted": accepted}},
        "speedup": {"controller": speedup},
        "workload": {"num_tasks": 24},
        "trace_events": 900,
    }


def test_perf_record_diff_directions(tmp_path):
    (tmp_path / "a.json").write_text(json.dumps(_perf_record()))
    (tmp_path / "b.json").write_text(json.dumps(
        _perf_record(controller=3.0, speedup=2.0, accepted=19)))
    report = diff_paths(tmp_path / "a.json", tmp_path / "b.json")
    # seconds up = worse, speedup down = worse, accepted down = regression
    warn = {d.metric for d in report.warnings}
    assert any(m.endswith("slow/controller_seconds") for m in warn)
    assert any(m.endswith("speedup/controller") for m in warn)
    assert any(m.endswith("stats/tasks_accepted")
               for m in (d.metric for d in report.regressions))
    # workload/trace_events metadata is skipped, not compared
    assert not any("workload" in d.metric or "trace_events" in d.metric
                   for d in report.deltas)


def test_single_records_compare_across_names(tmp_path):
    (tmp_path / "old-perf.json").write_text(json.dumps(_perf_record()))
    (tmp_path / "fresh.json").write_text(json.dumps(_perf_record()))
    report = diff_paths(tmp_path / "old-perf.json", tmp_path / "fresh.json")
    assert report.metrics_compared > 0
    assert report.findings() == []


# -- history store -------------------------------------------------------------


def test_append_and_latest_history(tmp_path):
    hist = tmp_path / "history"
    p1 = append_history(_perf_record(), hist)
    p2 = append_history(_perf_record(controller=2.1), hist)
    assert p1.name == "0001-perf.json" and p2.name == "0002-perf.json"
    assert latest_history(hist) == p2
    assert latest_history(tmp_path / "empty") is None


def test_history_dir_loads_as_latest_record(tmp_path):
    hist = tmp_path / "history"
    append_history(_perf_record(controller=9.0), hist)
    append_history(_perf_record(controller=2.0), hist)
    bundle = load_bundle(hist)
    assert set(bundle.perf) == {"latest"}
    assert bundle.perf["latest"]["slow"]["controller_seconds"] == 2.0
    # diffing history-latest against a fresh record works across names
    (tmp_path / "fresh.json").write_text(
        json.dumps(_perf_record(controller=2.0)))
    report = diff_bundles(bundle, load_bundle(tmp_path / "fresh.json"))
    assert report.findings() == []


# -- loader errors -------------------------------------------------------------


def test_load_bundle_rejects_empty_dir(tmp_path):
    empty = tmp_path / "nothing"
    empty.mkdir()
    with pytest.raises(DiffError, match="no artifact bundle"):
        load_bundle(empty)


def test_load_bundle_rejects_junk_jsonl(tmp_path):
    junk = tmp_path / "x.jsonl"
    junk.write_text("not json\n")
    with pytest.raises(DiffError, match="neither a trace nor a telemetry"):
        load_bundle(junk)


def test_load_bundle_rejects_json_array(tmp_path):
    arr = tmp_path / "trace.chrome.json"
    arr.write_text("[]")
    with pytest.raises(DiffError, match="not an object"):
        load_bundle(arr)


def test_diff_requires_something_comparable(tmp_path):
    # a perf record against a pure trace bundle shares no artifact kind
    (tmp_path / "perf.json").write_text(json.dumps(_perf_record()))
    run = tmp_path / "run"
    run.mkdir()
    (run / "trace.jsonl").write_text(_trace_with_rejects(1).dumps())
    with pytest.raises(DiffError, match="nothing comparable"):
        diff_paths(tmp_path / "perf.json", run)
