"""Telemetry wiring into the controller, engine, and executor.

Two guarantees are load-bearing.  First, telemetry is observational
only: the decision trace must stay byte-identical whether telemetry is
attached or not, and across fast_path modes with it attached.  Second,
published counters are the *same numbers* the engine/controller already
track, and process-pool workers' snapshots merge into exactly what a
serial run records — so ``repro-taps stats`` never disagrees with the
simulation it describes.
"""

from __future__ import annotations

from dataclasses import fields

from repro.exp.executor import ExecutorConfig, SimJob, execute_jobs, topology_spec
from repro.exp.runner import run_traced
from repro.obs.registry import Histogram, MetricsRegistry
from repro.sim.engine import EngineCounters
from repro.workload.generator import WorkloadConfig

DUMBBELL = topology_spec("dumbbell", n_pairs=6, capacity=1.0)


def _workload(**overrides) -> WorkloadConfig:
    base = dict(
        num_tasks=4, mean_flows_per_task=2, arrival_rate=2.0,
        mean_deadline=2.0, mean_flow_size=1.0, min_flow_size=0.1,
    )
    base.update(overrides)
    return WorkloadConfig(**base)


def test_trace_bytes_unchanged_by_telemetry_and_fast_path():
    """The acceptance criterion: telemetry never feeds a decision.

    Traces from (fast_path + telemetry), (slow path + telemetry), and
    (fast_path, no telemetry) are all byte-identical.
    """
    _, plain = run_traced(num_tasks=20, seed=11)
    _, fast = run_traced(num_tasks=20, seed=11, telemetry=MetricsRegistry())
    _, slow = run_traced(num_tasks=20, seed=11, fast_path=False,
                         telemetry=MetricsRegistry())
    assert fast.dumps() == plain.dumps()
    assert slow.dumps() == plain.dumps()


def test_results_unchanged_by_telemetry():
    from dataclasses import astuple

    bare, _ = run_traced(num_tasks=20, seed=5)
    telemetered, _ = run_traced(num_tasks=20, seed=5,
                                telemetry=MetricsRegistry())
    # FlowState has eq=False (identity); compare field values
    assert [astuple(fs) for fs in telemetered.flow_states] == \
        [astuple(fs) for fs in bare.flow_states]
    assert telemetered.counters == bare.counters


def test_published_counters_match_live_objects():
    """Every engine/controller counter in telemetry equals the field it
    was published from, and the admission histogram saw one observation
    per admission decision."""
    from repro.core.controller import TapsScheduler
    from repro.net.paths import PathService
    from repro.sim.engine import Engine
    from repro.workload.generator import generate_workload

    tel = MetricsRegistry()
    topo = DUMBBELL.build()
    tasks = generate_workload(_workload(num_tasks=12, seed=3),
                              list(topo.hosts))
    sched = TapsScheduler()
    Engine(topo, tasks, sched,
           path_service=PathService(topo, max_paths=4),
           telemetry=tel).run()

    assert tel.get("controller/tasks_accepted").value == \
        sched.stats.tasks_accepted
    assert tel.get("controller/tasks_rejected").value == \
        sched.stats.tasks_rejected
    assert tel.get("controller/reallocations").value == \
        sched.stats.reallocations
    hist = tel.get("controller/admission_latency_seconds")
    assert isinstance(hist, Histogram)
    assert hist.count == sched.stats.tasks_accepted + \
        sched.stats.tasks_rejected
    # span tree exists and nests under the run root
    span_names = {h.name for h in tel.instruments()
                  if h.name.startswith("span/")}
    assert "span/run" in span_names
    assert "span/run/arrival/admission" in span_names
    # per-link peak gauges were exported with host labels
    peaks = tel.find("net/link_peak_utilization")
    assert peaks and all(set(dict(g.labels)) == {"link", "src", "dst"}
                         for g in peaks)


def test_engine_counters_published_exactly():
    from repro.core.controller import TapsScheduler
    from repro.net.paths import PathService
    from repro.sim.engine import Engine
    from repro.workload.generator import generate_workload

    tel = MetricsRegistry()
    topo = DUMBBELL.build()
    tasks = generate_workload(_workload(num_tasks=12, seed=3),
                              list(topo.hosts))
    engine = Engine(topo, tasks, TapsScheduler(),
                    path_service=PathService(topo, max_paths=4),
                    telemetry=tel)
    engine.run()
    for f in fields(EngineCounters):
        assert tel.get("engine/" + f.name).value == \
            getattr(engine.counters, f.name), f.name


def _deterministic_view(reg: MetricsRegistry):
    """Everything order- and timing-independent in a snapshot: counter
    values, gauge peaks, and histogram observation counts (durations are
    wall-clock and legitimately differ between runs)."""
    view = {}
    for item in reg.snapshot():
        key = (item["name"], tuple(sorted(item["labels"].items())))
        if item["kind"] == "counter":
            if item["name"].endswith("_seconds"):
                continue  # wall-clock accumulators; not deterministic
            view[key] = item["value"]
        elif item["kind"] == "gauge":
            view[key] = item["max"]
        else:
            view[key] = item["count"]
    return view


def test_parallel_executor_merges_worker_telemetry():
    """jobs=2 fan-out merges worker snapshots into the same deterministic
    totals a serial run records — completion order cannot matter."""
    jobs = [
        SimJob(DUMBBELL, _workload(seed=s), sched, 4)
        for s in (1, 2) for sched in ("TAPS", "PDQ")
    ]
    tel_serial = MetricsRegistry()
    serial = execute_jobs(jobs, ExecutorConfig(jobs=1, telemetry=tel_serial))
    tel_pool = MetricsRegistry()
    pooled = execute_jobs(jobs, ExecutorConfig(jobs=2, telemetry=tel_pool))
    assert pooled == serial
    assert _deterministic_view(tel_pool) == _deterministic_view(tel_serial)
    assert tel_serial.get("executor/jobs").value == len(jobs)
    assert tel_serial.get("executor/jobs_run").value == len(jobs)


def test_cached_jobs_count_as_hits_not_runs(tmp_path):
    from repro.exp.executor import ResultCache

    job = SimJob(DUMBBELL, _workload(seed=3), "TAPS", 4)
    cache = ResultCache(tmp_path)
    execute_jobs([job], ExecutorConfig(cache=cache))  # warm, untelemetered
    tel = MetricsRegistry()
    execute_jobs([job], ExecutorConfig(cache=cache, telemetry=tel))
    assert tel.get("executor/jobs").value == 1
    assert tel.get("executor/cache_hits").value == 1
    assert tel.get("executor/jobs_run") is None or \
        tel.get("executor/jobs_run").value == 0
    # a cached job never ran an engine, so no engine counters appear
    assert tel.find("engine/events") == []
