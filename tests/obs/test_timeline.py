"""Timeline reconstruction: the trace pivots into consistent entities."""

import pytest

from repro.metrics import trace_digest
from repro.obs.timeline import build_timeline, timeline_from
from repro.trace.events import (
    Preemption,
    TaskAccept,
    TaskArrival,
    TaskDrop,
    TaskReject,
)
from repro.trace.recorder import TraceRecorder, load_jsonl


def test_entities_match_digest(traced_run):
    _result, recorder, _reg = traced_run
    tl = timeline_from(recorder)
    d = trace_digest(recorder.events)
    assert tl.events == d.events
    assert len(tl.tasks) == d.tasks_arrived
    outcomes = tl.outcomes()
    assert len(outcomes.get("rejected", [])) == d.tasks_rejected
    completed = outcomes.get("completed", [])
    assert completed, "the smoke workload completes tasks"
    # every decision settled: accepted+rejected partition the arrivals
    decided = [t for t in tl.tasks.values() if t.decision is not None]
    assert len(decided) == d.tasks_accepted + d.tasks_rejected
    assert len(tl.flows) == d.flows_completed
    assert tl.end_time > 0


def test_slices_and_links_are_consistent(traced_run):
    _result, recorder, _reg = traced_run
    tl = timeline_from(recorder)
    for flow in tl.flows.values():
        for sl in flow.slices:
            assert sl.end is not None and sl.end >= sl.start
            assert sl.path, "slice without a path"
    # exclusive links: busy intervals on one link never overlap
    for link, entry in tl.links.items():
        spans = sorted((iv.start, iv.end) for iv in entry.busy)
        for (s0, e0), (s1, e1) in zip(spans, spans[1:]):
            assert s1 >= e0 - 1e-9, f"link {link} double-booked"
        assert entry.busy_time(tl.end_time) <= tl.end_time + 1e-9
        assert 0.0 <= entry.utilization(tl.end_time) <= 1.0 + 1e-9


def test_plan_snapshots_and_slack(traced_run):
    _result, recorder, _reg = traced_run
    tl = timeline_from(recorder)
    d = trace_digest(recorder.events)
    assert len(tl.plan_snapshots) == d.tasks_accepted + d.fault_reallocations
    seqs = [s.seq for s in tl.plan_snapshots]
    assert seqs == sorted(seqs)
    # committed slack is never negative (deadline-at-commit invariant)
    for task in tl.tasks.values():
        for _t, slack in task.slack_series:
            assert slack >= -1e-9
    # snapshot_before finds the table in force at a rejection
    rejected = [t for t in tl.tasks.values() if t.decision == "rejected"]
    assert rejected
    for task in rejected:
        snap = tl.snapshot_before(task.decision_seq)
        assert snap is not None and snap.seq < task.decision_seq


def test_completion_respects_deadlines_without_faults(traced_run):
    _result, recorder, _reg = traced_run
    tl = timeline_from(recorder)
    for task in tl.tasks.values():
        if task.outcome == "completed":
            assert task.completed_at <= task.deadline + 1e-9
            assert task.settled_at == task.completed_at


def test_outage_windows_recorded(faulted_run):
    _result, recorder, _reg = faulted_run
    tl = timeline_from(recorder)
    outages = [
        (link, w) for link, entry in tl.links.items() for w in entry.outages
    ]
    assert outages, "the injected fault must appear as an outage window"
    link, (start, end) = outages[0]
    assert start == pytest.approx(0.01, abs=1e-6)
    assert end == pytest.approx(0.05, abs=1e-6)
    assert tl.links[link].down_at(0.02)
    assert not tl.links[link].down_at(0.06)


def test_handcrafted_outcomes():
    rec = TraceRecorder()
    rec.emit(TaskArrival(0.0, task_id=1, deadline=2.0, num_flows=1,
                         total_bytes=5.0))
    rec.emit(TaskArrival(0.0, task_id=2, deadline=2.0, num_flows=1,
                         total_bytes=5.0))
    rec.emit(TaskArrival(0.1, task_id=3, deadline=1.0, num_flows=1,
                         total_bytes=5.0))
    rec.emit(TaskAccept(0.0, task_id=1, victims=(), plans=()))
    rec.emit(TaskReject(0.1, task_id=3, reason="would-miss", clause=2,
                        missing=((7, 3),), lateness=((7, 0.5),)))
    rec.emit(Preemption(0.2, victim_task_id=1, by_task_id=2,
                        killed_flows=(4,)))
    rec.emit(TaskDrop(0.3, task_id=2, cause="fault"))
    tl = build_timeline(rec.events)
    assert tl.tasks[1].outcome == "preempted"
    assert tl.tasks[1].preempted_by == 2
    assert tl.tasks[2].outcome == "dropped"
    assert tl.tasks[2].dropped_cause == "fault"
    assert tl.tasks[3].outcome == "rejected"
    assert tl.tasks[3].reject_clause == 2


def test_building_timeline_leaves_trace_bytes_identical(traced_run, tmp_path):
    """The diagnosis layer is purely observational: pivoting, exporting,
    and re-loading a trace never perturbs its serialized bytes."""
    from repro.obs.chrometrace import write_chrome_trace
    from repro.obs.explain import explain_run

    _result, recorder, _reg = traced_run
    before = recorder.dumps()
    tl = timeline_from(recorder)
    write_chrome_trace(tmp_path / "t.chrome.json", tl)
    explain_run(tl)
    assert recorder.dumps() == before
    # and a loaded trace round-trips through the same pipeline
    path = tmp_path / "trace.jsonl"
    path.write_text(before)
    loaded = load_jsonl(path)
    tl2 = timeline_from(loaded)
    assert tl2.events == tl.events
    assert path.read_text() == before
