"""MetricsRegistry instruments: counters, gauges, histograms, merging.

The load-bearing properties: histogram quantiles land within one bucket
of exact numpy percentiles, and snapshot merging is an associative,
commutative monoid fold — the guarantees the parallel sweep aggregation
and the ``repro-taps stats`` percentiles rest on.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.registry import (
    DEFAULT_GROWTH,
    Histogram,
    MetricsRegistry,
)


def test_counter_accumulates_and_snapshots():
    reg = MetricsRegistry()
    c = reg.counter("x/events")
    c.inc()
    c.inc(4)
    assert c.value == 5
    assert reg.counter("x/events") is c  # get-or-create
    snap = c.snapshot()
    assert snap == {"kind": "counter", "name": "x/events",
                    "labels": {}, "value": 5}


def test_gauge_tracks_value_and_peak():
    reg = MetricsRegistry()
    g = reg.gauge("queue")
    g.set(3.0)
    g.set(9.0)
    g.set(1.0)
    assert g.value == 1.0 and g.max == 9.0


def test_labels_distinguish_series_and_order_is_irrelevant():
    reg = MetricsRegistry()
    a = reg.counter("net/util", {"link": "1", "src": "h0"})
    b = reg.counter("net/util", {"src": "h0", "link": "1"})
    c = reg.counter("net/util", {"link": "2", "src": "h0"})
    assert a is b and a is not c
    assert len(reg) == 2


def test_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("thing")
    with pytest.raises(TypeError, match="already registered as counter"):
        reg.gauge("thing")


def test_empty_name_rejected():
    with pytest.raises(ValueError):
        MetricsRegistry().counter("")


def test_disabled_registry_is_a_noop():
    reg = MetricsRegistry(enabled=False)
    c = reg.counter("a")
    c.inc(10)
    h = reg.histogram("b")
    h.observe(1.0)
    reg.gauge("c").set(5)
    assert len(reg) == 0
    assert reg.snapshot() == []
    assert c.value == 0 and h.quantile(0.5) == 0.0
    # merges are swallowed too
    live = MetricsRegistry()
    live.counter("a").inc(3)
    reg.merge_snapshot(live.snapshot())
    assert reg.snapshot() == []


def test_disabled_registry_spans_are_noops():
    reg = MetricsRegistry(enabled=False)
    with reg.spans.span("outer"):
        with reg.spans.span("inner"):
            pass
    assert len(reg) == 0


def test_span_nesting_builds_hierarchical_names():
    reg = MetricsRegistry()
    with reg.spans.span("run"):
        with reg.spans.span("arrival"):
            pass
        with reg.spans.span("arrival"):
            pass
    names = [h.name for h in reg.instruments()]
    assert names == ["span/run", "span/run/arrival"]
    assert reg.find("span/run/arrival")[0].count == 2
    assert reg.spans.current_path == ""


def test_span_records_on_exception():
    reg = MetricsRegistry()
    with pytest.raises(RuntimeError):
        with reg.spans.span("boom"):
            raise RuntimeError()
    assert reg.find("span/boom")[0].count == 1
    assert reg.spans.current_path == ""  # stack unwound


def test_histogram_quantile_empty_and_bounds():
    h = Histogram("h")
    assert h.quantile(0.5) == 0.0
    with pytest.raises(ValueError):
        h.quantile(1.5)
    h.observe(0.01)
    assert h.quantile(0.0) == pytest.approx(0.01)
    assert h.quantile(1.0) == pytest.approx(0.01)


def test_histogram_overflow_underflow():
    h = Histogram("h", lo=1.0, growth=2.0, buckets=4)  # covers [1, 16)
    h.observe(0.5)     # underflow
    h.observe(100.0)   # overflow
    assert h.counts[0] == 1 and h.counts[-1] == 1
    assert h.quantile(1.0) == 100.0  # overflow quantile = observed max
    snap = h.snapshot()
    assert sum(snap["counts"]) == snap["count"] == 2


def _bucket_index(h: Histogram, v: float) -> int:
    """Which (padded) bucket a value falls into, mirroring observe()."""
    from bisect import bisect_right

    return bisect_right(h._edges, v)


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=1e-6, max_value=1e4,
                  allow_nan=False, allow_infinity=False),
        min_size=1, max_size=300,
    ),
    q=st.sampled_from([0.5, 0.9, 0.99]),
)
def test_quantile_within_one_bucket_of_numpy(values, q):
    """p50/p90/p99 estimates land in (or adjacent to) the bucket holding
    the exact numpy percentile — the histogram's advertised contract.

    ``inverted_cdf`` makes numpy return an actual order statistic (the
    same rank convention the histogram walk uses); the default linear
    interpolation invents values between observations, which can sit
    arbitrarily many buckets away from any sample.
    """
    h = Histogram("h")
    for v in values:
        h.observe(v)
    est = h.quantile(q)
    exact = float(np.percentile(values, q * 100, method="inverted_cdf"))
    assert abs(_bucket_index(h, est) - _bucket_index(h, exact)) <= 1
    # and therefore within ~one growth factor in value
    assert est <= exact * DEFAULT_GROWTH * (1 + 1e-9) + 1e-12
    assert est >= exact / DEFAULT_GROWTH * (1 - 1e-9) - 1e-12
    assert min(values) <= est <= max(values)


def test_histogram_merge_layout_mismatch_raises():
    a = Histogram("h")
    b = Histogram("h", lo=1.0, growth=2.0, buckets=8)
    with pytest.raises(ValueError, match="incompatible bucket layout"):
        a.merge(b.snapshot())


def _random_registry(rng) -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("c").inc(int(rng.integers(0, 100)))
    reg.counter("labeled", {"k": str(rng.integers(0, 3))}).inc(1)
    reg.gauge("g").set(float(rng.uniform(-5, 5)))
    h = reg.histogram("h")
    for v in rng.uniform(1e-6, 10.0, size=int(rng.integers(0, 40))):
        h.observe(float(v))
    return reg


def _assert_snapshots_equal(a, b):
    """Exact equality, except histogram ``sum`` gets a tolerance.

    Counts, gauge values (pure max), and histogram min/max merge exactly
    in any order; the float ``sum`` accumulator is order-sensitive in its
    last bits because float addition is not associative.
    """
    assert len(a) == len(b)
    for x, y in zip(a, b):
        xs, ys = dict(x), dict(y)
        if xs["kind"] == "histogram":
            assert xs.pop("sum") == pytest.approx(ys.pop("sum"))
        assert xs == ys


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_merge_is_associative_and_commutative(seed):
    """fold(A, B, C) equals fold(C, A, B) etc. — snapshots are a
    commutative monoid, so worker completion order cannot matter."""
    rng = np.random.default_rng(seed)
    snaps = [_random_registry(rng).snapshot() for _ in range(3)]

    def fold(order):
        acc = MetricsRegistry()
        for i in order:
            acc.merge_snapshot(snaps[i])
        return acc.snapshot()

    baseline = fold([0, 1, 2])
    for order in ([2, 1, 0], [1, 0, 2], [0, 2, 1]):
        _assert_snapshots_equal(fold(order), baseline)
    # associativity: (A+B)+C == A+(B+C) via pre-merged intermediate
    ab = MetricsRegistry()
    ab.merge_snapshot(snaps[0])
    ab.merge_snapshot(snaps[1])
    abc = MetricsRegistry()
    abc.merge_snapshot(ab.snapshot())
    abc.merge_snapshot(snaps[2])
    _assert_snapshots_equal(abc.snapshot(), baseline)


def test_merge_identity_element():
    reg = _random_registry(np.random.default_rng(7))
    out = MetricsRegistry()
    out.merge_snapshot(MetricsRegistry().snapshot())  # empty = identity
    out.merge_snapshot(reg.snapshot())
    assert out.snapshot() == reg.snapshot()


def test_merged_histogram_quantiles_match_combined_stream():
    rng = np.random.default_rng(3)
    a, b = Histogram("h"), Histogram("h")
    va = rng.uniform(1e-5, 1.0, 200)
    vb = rng.uniform(1e-3, 100.0, 300)
    for v in va:
        a.observe(float(v))
    for v in vb:
        b.observe(float(v))
    combined = Histogram("h")
    for v in list(va) + list(vb):
        combined.observe(float(v))
    a.merge(b.snapshot())
    assert a.counts == combined.counts
    assert a.count == combined.count
    assert a.quantile(0.5) == combined.quantile(0.5)
    assert a.quantile(0.99) == combined.quantile(0.99)
    assert math.isclose(a.sum, combined.sum)
