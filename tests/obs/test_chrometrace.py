"""Chrome trace-event export: format validity and determinism."""

import json

from repro.obs.chrometrace import (
    PID_NET,
    PID_PROFILE,
    PID_TASKS,
    chrome_events,
    dumps_chrome,
    write_chrome_trace,
)
from repro.obs.export import dumps_jsonl, load_jsonl
from repro.obs.timeline import timeline_from

REQUIRED = ("ph", "ts", "pid", "tid")


def _snapshot(registry):
    return load_jsonl(dumps_jsonl(registry).splitlines())


def test_every_event_has_required_fields(traced_run):
    _result, recorder, registry = traced_run
    tl = timeline_from(recorder)
    events = chrome_events(tl, _snapshot(registry))
    assert events
    for ev in events:
        for key in REQUIRED:
            assert key in ev, f"{ev.get('name')}: missing {key}"
        assert ev["ts"] >= 0
        if ev["ph"] == "X":
            assert ev["dur"] >= 0
        if ev["ph"] == "i":
            assert ev["s"] in ("g", "p", "t")


def test_output_is_a_loadable_json_array(traced_run, tmp_path):
    _result, recorder, registry = traced_run
    tl = timeline_from(recorder)
    out = write_chrome_trace(tmp_path / "run.chrome.json", tl,
                             _snapshot(registry))
    loaded = json.loads(out.read_text())
    assert isinstance(loaded, list) and loaded
    assert all(isinstance(e, dict) for e in loaded)


def test_task_async_tracks_are_balanced(traced_run):
    _result, recorder, _reg = traced_run
    tl = timeline_from(recorder)
    events = chrome_events(tl)
    begins = {e["id"] for e in events if e["ph"] == "b"}
    ends = {e["id"] for e in events if e["ph"] == "e"}
    assert begins == ends == set(tl.tasks)
    # one lane per active link on the network pid
    link_tids = {e["tid"] for e in events
                 if e["pid"] == PID_NET and e["ph"] == "X"}
    assert link_tids == set(tl.links)


def test_faulted_run_exports_outage_and_validates(faulted_run, tmp_path):
    """The acceptance scenario: a traced run including a link-outage
    fault produces a valid trace-event array with the outage visible."""
    _result, recorder, registry = faulted_run
    tl = timeline_from(recorder)
    out = write_chrome_trace(tmp_path / "faulted.chrome.json", tl,
                             _snapshot(registry))
    events = json.loads(out.read_text())
    assert isinstance(events, list)
    for ev in events:
        assert all(key in ev for key in REQUIRED)
    outages = [e for e in events if e.get("cat") == "fault"]
    assert outages, "the injected outage must be exported"
    assert all(e["ph"] == "X" and e["dur"] > 0 for e in outages)
    counters = {e["name"] for e in events if e["ph"] == "C"}
    assert {"active flows", "busy links", "down links"} <= counters


def test_span_flame_nests_children_in_parents(traced_run):
    _result, recorder, registry = traced_run
    tl = timeline_from(recorder)
    events = chrome_events(tl, _snapshot(registry))
    frames = {
        e["args"]["path"]: (e["ts"], e["ts"] + e["dur"])
        for e in events
        if e["pid"] == PID_PROFILE and e["ph"] == "X"
    }
    assert "run" in frames
    for path, (start, end) in frames.items():
        if "/" not in path:
            continue
        parent = frames[path.rsplit("/", 1)[0]]
        assert parent[0] - 1e-6 <= start and end <= parent[1] + 1e-6, (
            f"span {path} escapes its parent"
        )


def test_export_is_deterministic(traced_run):
    _result, recorder, registry = traced_run
    tl = timeline_from(recorder)
    snap = _snapshot(registry)
    assert dumps_chrome(tl, snap) == dumps_chrome(
        timeline_from(recorder), snap
    )


def test_pids_are_disjoint_namespaces(traced_run):
    _result, recorder, _reg = traced_run
    tl = timeline_from(recorder)
    events = chrome_events(tl)
    pids = {e["pid"] for e in events}
    assert PID_TASKS in pids and PID_NET in pids
    assert PID_PROFILE not in pids  # no telemetry supplied
