"""Explain-mode rejection diagnostics and the engine horizon."""

import pytest

from repro.core.controller import TapsScheduler
from repro.sim.engine import Engine
from repro.sim.faults import LinkFault
from repro.sim.state import FlowStatus
from repro.util.errors import SimulationError
from repro.workload.flow import make_task
from repro.workload.traces import dumbbell


class TestDiagnostics:
    def test_off_by_default(self):
        topo = dumbbell(1)
        tasks = [make_task(0, 0.0, 1.0, [("L0", "R0", 5.0)], 0)]
        sched = TapsScheduler()
        Engine(topo, tasks, sched).run()
        assert sched.stats.tasks_rejected == 1
        assert sched.diagnostics == []

    def test_would_miss_records_lateness(self):
        topo = dumbbell(1)
        tasks = [make_task(0, 0.0, 2.0, [("L0", "R0", 5.0)], 0)]
        sched = TapsScheduler(explain=True)
        Engine(topo, tasks, sched).run()
        (d,) = sched.diagnostics
        assert d.task_id == 0
        assert d.reason == "would-miss"
        ((fid, late),) = d.lateness
        assert fid == 0
        assert late == pytest.approx(3.0)  # completes at 5, deadline 2

    def test_deadline_expired_reason(self):
        topo = dumbbell(1)
        tasks = [make_task(0, 0.0, 0.3, [("L0", "R0", 0.2)], 0)]
        sched = TapsScheduler(control_latency=0.5, explain=True)
        Engine(topo, tasks, sched).run()
        (d,) = sched.diagnostics
        assert d.reason == "deadline-expired"

    def test_unreachable_reason_during_outage(self):
        topo = dumbbell(1)
        mid = topo.link("SL", "SR").index
        tasks = [make_task(0, 1.5, 3.0, [("L0", "R0", 1.0)], 0)]
        sched = TapsScheduler(explain=True)
        Engine(topo, tasks, sched,
               faults=[LinkFault(mid, 1.0, 10.0)]).run()
        (d,) = sched.diagnostics
        assert d.reason == "unreachable"
        assert d.time == pytest.approx(1.5)

    def test_table_limit_reason(self):
        topo = dumbbell(2)
        tasks = [
            make_task(0, 0.0, 20.0, [("L0", "R0", 1.0)], 0),
            make_task(1, 0.0, 20.0, [("L1", "R1", 1.0)], 1),
        ]
        sched = TapsScheduler(flow_table_limit=1, explain=True)
        Engine(topo, tasks, sched).run()
        (d,) = sched.diagnostics
        assert d.reason == "table-limit"
        assert d.task_id == 1

    def test_accepted_tasks_leave_no_diagnostics(self):
        topo = dumbbell(2)
        tasks = [make_task(i, 0.0, 10.0, [(f"L{i}", f"R{i}", 1.0)], i)
                 for i in range(2)]
        sched = TapsScheduler(explain=True)
        Engine(topo, tasks, sched).run()
        assert sched.diagnostics == []

    def test_incremental_mode_diagnostics(self):
        topo = dumbbell(1)
        tasks = [
            make_task(0, 0.0, 10.0, [("L0", "R0", 5.0)], 0),
            make_task(1, 0.0, 3.0, [("L0", "R0", 1.0)], 1),
        ]
        sched = TapsScheduler(reallocate_inflight=False, explain=True)
        Engine(topo, tasks, sched).run()
        (d,) = sched.diagnostics
        assert d.task_id == 1
        assert d.reason == "would-miss"
        assert d.lateness and d.lateness[0][1] > 0


class TestHorizon:
    def test_horizon_terminates_running_flows(self):
        topo = dumbbell(1)
        tasks = [make_task(0, 0.0, 100.0, [("L0", "R0", 10.0)], 0)]
        from repro.sched.fair import FairSharing

        result = Engine(topo, tasks, FairSharing(), horizon=4.0).run()
        fs = result.flow_states[0]
        assert fs.status is FlowStatus.TERMINATED
        assert fs.bytes_sent == pytest.approx(4.0)
        assert result.finished_at == pytest.approx(4.0)

    def test_completions_before_horizon_unaffected(self):
        topo = dumbbell(1)
        tasks = [make_task(0, 0.0, 100.0, [("L0", "R0", 2.0)], 0)]
        from repro.sched.fair import FairSharing

        result = Engine(topo, tasks, FairSharing(), horizon=50.0).run()
        assert result.flow_states[0].completed_at == pytest.approx(2.0)
        assert result.tasks_completed == 1

    def test_arrivals_past_horizon_never_admitted(self):
        topo = dumbbell(2)
        tasks = [
            make_task(0, 0.0, 100.0, [("L0", "R0", 1.0)], 0),
            make_task(1, 9.0, 109.0, [("L1", "R1", 1.0)], 1),
        ]
        from repro.sched.fair import FairSharing

        result = Engine(topo, tasks, FairSharing(), horizon=5.0).run()
        by_tid = {ts.task.task_id: ts for ts in result.task_states}
        assert by_tid[0].outcome.value == "completed"
        assert by_tid[1].flow_states[0].bytes_sent == 0.0

    def test_invalid_horizon(self):
        topo = dumbbell(1)
        with pytest.raises(SimulationError):
            Engine(topo, [], None, horizon=0.0)
