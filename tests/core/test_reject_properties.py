"""Property-based tests of the reject rule's decision table.

Whatever the trial allocation looks like, the rule must be total and
consistent: exactly one decision, ACCEPT iff nothing misses, REJECT_NEW
whenever the newcomer itself (or more than one task) misses, and
DISCARD only ever names the single other missing task.
"""

from hypothesis import given, settings, strategies as st

from repro.core.allocation import FlowPlan
from repro.core.reject import Decision, PreemptionPolicy, RejectRule
from repro.sim.state import FlowState, TaskState
from repro.util.intervals import IntervalSet
from repro.workload.flow import make_task


@st.composite
def scenario(draw):
    """A trial allocation over 2–4 tasks with arbitrary miss patterns and
    progress; the newcomer is always the last task."""
    n_tasks = draw(st.integers(2, 4))
    states = {}
    plans = {}
    fid = 0
    deadline = 10.0
    for tid in range(n_tasks):
        n_flows = draw(st.integers(1, 3))
        task = make_task(tid, 0.0, deadline,
                         [("a", "b", 4.0)] * n_flows, fid)
        ts = TaskState(task=task)
        ts.flow_states = [FlowState(flow=f) for f in task.flows]
        states[tid] = ts
        for fs in ts.flow_states:
            fs.bytes_sent = draw(st.floats(0.0, 4.0)) if tid != n_tasks - 1 \
                else 0.0
            misses = draw(st.booleans())
            completion = deadline + 1.0 if misses else deadline - 1.0
            plans[fs.flow.flow_id] = FlowPlan(
                flow_state=fs, path=(0,),
                slices=IntervalSet.single(0.0, 1.0),
                completion=completion,
            )
        fid += n_flows
    new_task = states[n_tasks - 1]
    return plans, new_task, states


@settings(max_examples=200, deadline=None)
@given(scenario(), st.sampled_from(list(PreemptionPolicy)))
def test_decision_table(sc, policy):
    plans, new_task, states = sc
    rule = RejectRule(policy)
    d = rule.evaluate(plans, new_task, states)

    missing = {p.flow_state.flow.task_id
               for p in plans.values() if not p.meets_deadline}
    new_id = new_task.task.task_id

    if not missing:
        assert d.decision is Decision.ACCEPT
        assert d.victim_task_id is None
        return

    assert d.missing_flow_ids  # misses are reported
    if new_id in missing or len(missing) > 1:
        assert d.decision is Decision.REJECT_NEW
        return

    # exactly one other task misses: either outcome, but a discard must
    # name precisely that task
    assert d.decision in (Decision.REJECT_NEW, Decision.DISCARD_VICTIM)
    if d.decision is Decision.DISCARD_VICTIM:
        assert d.victim_task_id in missing
        assert d.victim_task_id != new_id


@settings(max_examples=100, deadline=None)
@given(scenario())
def test_never_policy_never_discards(sc):
    plans, new_task, states = sc
    d = RejectRule(PreemptionPolicy.NEVER).evaluate(plans, new_task, states)
    assert d.decision is not Decision.DISCARD_VICTIM


@settings(max_examples=100, deadline=None)
@given(scenario())
def test_progress_policy_protects_transmitting_incumbents(sc):
    """A victim with strictly more transmitted bytes than the newcomer
    (which has none) is never discarded under the literal reading."""
    plans, new_task, states = sc
    d = RejectRule(PreemptionPolicy.PROGRESS).evaluate(plans, new_task, states)
    if d.decision is Decision.DISCARD_VICTIM:
        victim = states[d.victim_task_id]
        assert victim.completion_ratio < new_task.completion_ratio - 1e-12
