"""Property-based invariants of the TAPS controller on random workloads.

These pin the paper's structural guarantees:

1. accepted tasks complete, with every flow inside its deadline;
2. rejected tasks never transmit a byte;
3. committed slices never overlap on a link (exclusive transmission);
4. with the default (PROGRESS) policy there is no waste at all —
   the only waste channel is preemption, which PROGRESS never triggers
   for a transmitting victim.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.controller import TapsScheduler
from repro.core.occupancy import OccupancyLedger
from repro.core.reject import PreemptionPolicy
from repro.metrics.summary import summarize
from repro.sim.engine import Engine
from repro.sim.state import FlowStatus, TaskOutcome
from repro.workload.flow import make_task
from repro.workload.traces import dumbbell


@st.composite
def random_workload(draw):
    """3–8 tasks of 1–3 flows on a 6-pair dumbbell; arrivals, sizes and
    deadlines drawn so infeasibility is common but not universal."""
    n_tasks = draw(st.integers(3, 8))
    tasks = []
    fid = 0
    t = 0.0
    for tid in range(n_tasks):
        t += draw(st.floats(0.0, 2.0))
        n_flows = draw(st.integers(1, 3))
        specs = []
        for j in range(n_flows):
            pair = draw(st.integers(0, 5))
            size = draw(st.floats(0.5, 4.0))
            specs.append((f"L{pair}", f"R{pair}", size))
        slack = draw(st.floats(0.5, 12.0))
        tasks.append(make_task(tid, t, t + slack, specs, fid))
        fid += n_flows
    return tasks


@settings(max_examples=60, deadline=None)
@given(random_workload())
def test_accepted_tasks_always_complete(tasks):
    topo = dumbbell(6)
    sched = TapsScheduler()
    result = Engine(topo, tasks, sched).run()
    for ts in result.task_states:
        if ts.accepted:
            assert ts.outcome is TaskOutcome.COMPLETED, (
                f"accepted task {ts.task.task_id} failed"
            )
            for fs in ts.flow_states:
                assert fs.met_deadline
    assert sched.stats.backstop_kills == 0


@settings(max_examples=60, deadline=None)
@given(random_workload())
def test_rejected_tasks_never_transmit(tasks):
    topo = dumbbell(6)
    result = Engine(topo, tasks, TapsScheduler()).run()
    for ts in result.task_states:
        if ts.accepted is False:
            for fs in ts.flow_states:
                assert fs.bytes_sent == 0.0
                assert fs.status is FlowStatus.REJECTED


@settings(max_examples=60, deadline=None)
@given(random_workload())
def test_no_waste_under_progress_policy(tasks):
    topo = dumbbell(6)
    result = Engine(topo, tasks,
                    TapsScheduler(preemption=PreemptionPolicy.PROGRESS)).run()
    m = summarize(result)
    assert m.wasted_bandwidth_ratio == pytest.approx(0.0, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(random_workload())
def test_committed_slices_exclusive_per_link(tasks):
    """After every arrival, the committed plans never overlap on a link."""
    topo = dumbbell(6)
    sched = TapsScheduler()
    engine = Engine(topo, tasks, sched)
    sched.attach(topo, engine.path_service)
    checker = OccupancyLedger()
    for ts in sorted(engine.task_states, key=lambda s: s.task.arrival):
        sched.on_task_arrival(ts, ts.task.arrival)
        checker.assert_exclusive(
            [(p.path, p.slices) for p in sched.plans.values()]
        )


@settings(max_examples=40, deadline=None)
@given(random_workload(), st.sampled_from(list(PreemptionPolicy)))
def test_all_policies_terminate_and_partition_flows(tasks, policy):
    topo = dumbbell(6)
    result = Engine(topo, tasks, TapsScheduler(preemption=policy)).run()
    for fs in result.flow_states:
        assert fs.status in (
            FlowStatus.COMPLETED, FlowStatus.REJECTED, FlowStatus.TERMINATED
        )
    # conservation: sent + remaining == size
    for fs in result.flow_states:
        assert fs.bytes_sent + fs.remaining == pytest.approx(fs.flow.size, rel=1e-4)
