"""Alg. 2 / Alg. 3: time allocation and best-path calculation."""

import pytest

from repro.core.allocation import (
    allocation_horizon,
    completion_on_path,
    path_calculation,
    time_allocation,
)
from repro.core.occupancy import OccupancyLedger
from repro.net.paths import PathService
from repro.sim.state import FlowState
from repro.util.errors import AllocationError
from repro.util.intervals import IntervalSet
from repro.workload.flow import Flow
from repro.workload.traces import dumbbell, fig3_topology


def _fs(fid, src, dst, size, deadline, release=0.0, tid=None):
    f = Flow(flow_id=fid, task_id=tid if tid is not None else fid,
             src=src, dst=dst, size=size, release=release, deadline=deadline)
    return FlowState(flow=f)


class TestTimeAllocation:
    def test_idle_path_allocates_immediately(self):
        ledger = OccupancyLedger()
        slices, end = time_allocation(ledger, (0, 1), 2.0, release=0.0, horizon=100.0)
        assert slices.intervals() == [(0, 2)]
        assert end == 2.0

    def test_respects_release(self):
        ledger = OccupancyLedger()
        slices, end = time_allocation(ledger, (0,), 1.0, release=5.0, horizon=100.0)
        assert slices.intervals() == [(5, 6)]

    def test_schedules_around_occupancy(self):
        ledger = OccupancyLedger()
        ledger.commit((1,), IntervalSet.single(1, 3))
        slices, end = time_allocation(ledger, (0, 1), 2.0, release=0.0, horizon=100.0)
        # idle on the path: [0,1) ∪ [3,∞) → slices split
        assert slices.intervals() == [(0, 1), (3, 4)]
        assert end == 4.0

    def test_union_across_links(self):
        ledger = OccupancyLedger()
        ledger.commit((0,), IntervalSet.single(0, 1))
        ledger.commit((1,), IntervalSet.single(2, 3))
        slices, end = time_allocation(ledger, (0, 1), 1.5, release=0.0, horizon=100.0)
        assert slices.intervals() == [(1, 2), (3, 3.5)]

    def test_horizon_too_small_raises(self):
        ledger = OccupancyLedger()
        with pytest.raises(AllocationError):
            time_allocation(ledger, (0,), 10.0, release=0.0, horizon=5.0)

    def test_completion_on_path_matches(self):
        ledger = OccupancyLedger()
        ledger.commit((0,), IntervalSet.single(0.5, 2.5))
        _, end = time_allocation(ledger, (0,), 3.0, release=0.0, horizon=100.0)
        assert completion_on_path(ledger, (0,), 3.0, 0.0, 100.0) == pytest.approx(end)


class TestPathCalculation:
    def test_single_path_serializes_in_order(self):
        topo = dumbbell(2)
        paths = PathService(topo)
        ledger = OccupancyLedger()
        flows = [
            _fs(0, "L0", "R0", 2.0, 10.0),
            _fs(1, "L1", "R1", 3.0, 10.0),
        ]
        plans = path_calculation(flows, ledger, paths, 1.0, 0.0, 100.0)
        assert plans[0].completion == pytest.approx(2.0)
        assert plans[1].completion == pytest.approx(5.0)  # waits for flow 0

    def test_multipath_picks_idle_route(self):
        from repro.net.fattree import FatTree

        topo = FatTree(k=4)
        paths = PathService(topo)
        ledger = OccupancyLedger()
        # two inter-pod flows from different edge switches: they contend
        # only on the agg→core links, where a detour exists
        flows = [
            _fs(0, "h0_0_0", "h1_0_0", 1.0, 10.0),
            _fs(1, "h0_1_0", "h1_1_0", 1.0, 10.0),
        ]
        plans = path_calculation(flows, ledger, paths, topo.uniform_capacity(),
                                 0.0, 100.0)
        # with the detour both complete immediately instead of serializing
        for p in plans.values():
            assert p.completion == pytest.approx(1.0 / topo.uniform_capacity())
        # and they never share a link
        assert not set(plans[0].path) & set(plans[1].path)

    def test_single_path_ties_keep_first_candidate(self):
        topo = fig3_topology()
        paths = PathService(topo)
        ledger = OccupancyLedger()
        # two 1->4 flows share the mandatory 1->S1 access link: they must
        # serialize there no matter the detour, completing at 1 and 2
        flows = [
            _fs(0, "1", "4", 1.0, 10.0),
            _fs(1, "1", "4", 1.0, 10.0),
        ]
        plans = path_calculation(flows, ledger, paths, 1.0, 0.0, 100.0)
        ends = sorted(p.completion for p in plans.values())
        assert ends == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_plan_slices_cover_duration(self):
        topo = dumbbell(1)
        paths = PathService(topo)
        ledger = OccupancyLedger()
        flows = [_fs(0, "L0", "R0", 2.5, 10.0)]
        plans = path_calculation(flows, ledger, paths, 1.0, 0.0, 100.0)
        assert plans[0].slices.measure() == pytest.approx(2.5)

    def test_meets_deadline_flag(self):
        topo = dumbbell(1)
        paths = PathService(topo)
        plans = path_calculation(
            [_fs(0, "L0", "R0", 2.0, 1.5)], OccupancyLedger(), paths, 1.0, 0.0, 100.0
        )
        assert not plans[0].meets_deadline

    def test_committed_plans_never_overlap_on_links(self):
        topo = dumbbell(4)
        paths = PathService(topo)
        ledger = OccupancyLedger()
        flows = [_fs(i, f"L{i}", f"R{i}", 1.0 + i, 50.0) for i in range(4)]
        plans = path_calculation(flows, ledger, paths, 1.0, 0.0, 200.0)
        ledger_check = OccupancyLedger()
        ledger_check.assert_exclusive(
            [(p.path, p.slices) for p in plans.values()]
        )

    def test_respects_now_for_inflight(self):
        topo = dumbbell(1)
        paths = PathService(topo)
        flows = [_fs(0, "L0", "R0", 1.0, 10.0, release=0.0)]
        plans = path_calculation(flows, OccupancyLedger(), paths, 1.0, 5.0, 100.0)
        assert plans[0].slices.start() >= 5.0

    def test_remaining_not_size_drives_duration(self):
        topo = dumbbell(1)
        paths = PathService(topo)
        fs = _fs(0, "L0", "R0", 4.0, 10.0)
        fs.remaining = 1.0  # 3 units already sent
        plans = path_calculation([fs], OccupancyLedger(), paths, 1.0, 0.0, 100.0)
        assert plans[0].slices.measure() == pytest.approx(1.0)


class TestHorizon:
    def test_horizon_serial_worst_case(self):
        flows = [_fs(i, "L0", "R0", 2.0, 5.0) for i in range(3)]
        h = allocation_horizon(flows, capacity=1.0, now=0.0)
        assert h >= 5.0 + 6.0  # latest deadline + total backlog

    def test_horizon_empty(self):
        assert allocation_horizon([], 1.0, now=3.0) == 4.0

    def test_horizon_guarantees_fit(self):
        topo = dumbbell(1)
        paths = PathService(topo)
        flows = [_fs(i, "L0", "R0", 5.0, 1.0) for i in range(10)]
        h = allocation_horizon(flows, 1.0, 0.0)
        # must never raise even though every deadline is hopeless
        plans = path_calculation(flows, OccupancyLedger(), paths, 1.0, 0.0, h)
        assert len(plans) == 10
