"""Offline EDF-packing bound and TAPS' optimality gap."""

import pytest

from repro.core.controller import TapsScheduler
from repro.core.optimal import edf_packing_feasible, offline_best_subset
from repro.net.paths import PathService
from repro.sim.engine import Engine
from repro.util.errors import ConfigurationError
from repro.workload.flow import make_task
from repro.workload.traces import dumbbell, fig1_trace, fig2_trace


def _paths(topo):
    return PathService(topo)


class TestFeasibility:
    def test_empty_feasible(self, bottleneck=None):
        topo = dumbbell(1)
        assert edf_packing_feasible([], _paths(topo), 1.0)

    def test_single_task(self):
        topo = dumbbell(1)
        ok = make_task(0, 0.0, 5.0, [("L0", "R0", 2.0)], 0)
        bad = make_task(1, 0.0, 1.0, [("L0", "R0", 2.0)], 1)
        assert edf_packing_feasible([ok], _paths(topo), 1.0)
        assert not edf_packing_feasible([bad], _paths(topo), 1.0)

    def test_monotone_in_task_set(self):
        topo = dumbbell(2)
        paths = _paths(topo)
        a = make_task(0, 0.0, 4.0, [("L0", "R0", 3.0)], 0)
        b = make_task(1, 0.0, 4.0, [("L1", "R1", 3.0)], 1)
        assert edf_packing_feasible([a], paths, 1.0)
        assert not edf_packing_feasible([a, b], paths, 1.0)


class TestOfflineBound:
    def test_fig1_optimum_is_one_task(self):
        topo, tasks = fig1_trace()
        bound = offline_best_subset(tasks, _paths(topo), 1.0)
        assert bound.best_count == 1
        assert bound.best_task_ids == (1,)  # t2, the smaller task

    def test_fig2_optimum_is_both(self):
        topo, tasks = fig2_trace()
        bound = offline_best_subset(tasks, _paths(topo), 1.0)
        assert bound.best_count == 2

    def test_counts_work(self):
        topo, tasks = fig2_trace()
        bound = offline_best_subset(tasks, _paths(topo), 1.0)
        assert bound.nodes_explored > 0
        assert bound.feasibility_checks > 0

    def test_max_nodes_guard(self):
        topo, tasks = fig2_trace()
        with pytest.raises(ConfigurationError):
            offline_best_subset(tasks, _paths(topo), 1.0, max_nodes=1)

    def test_taps_matches_bound_on_motivation_examples(self):
        for trace in (fig1_trace, fig2_trace):
            topo, tasks = trace()
            bound = offline_best_subset(tasks, _paths(topo), 1.0)
            result = Engine(topo, tasks, TapsScheduler()).run()
            assert result.tasks_completed == bound.best_count

    def test_taps_within_bound_on_random_workload(self):
        from repro.workload.generator import WorkloadConfig, generate_workload

        topo = dumbbell(5)
        cfg = WorkloadConfig(
            num_tasks=8, mean_flows_per_task=2, arrival_rate=2.0,
            mean_flow_size=1.0, min_flow_size=0.2,
            mean_deadline=2.5, seed=3,
        )
        tasks = generate_workload(cfg, list(topo.hosts))
        paths = _paths(topo)
        bound = offline_best_subset(tasks, paths, 1.0)
        result = Engine(topo, tasks, TapsScheduler(), path_service=paths).run()
        # the offline evaluator upper-bounds the online controller here
        assert result.tasks_completed <= bound.best_count
        # and TAPS is not wildly off (the "near-optimal" claim, measured)
        assert result.tasks_completed >= bound.best_count - 2
