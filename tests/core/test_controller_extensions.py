"""TAPS extensions: batch window (Alg. 1's wait-T) and control latency."""

import pytest

from repro.core.controller import TapsScheduler
from repro.sim.engine import Engine
from repro.sim.state import TaskOutcome
from repro.workload.flow import make_task
from repro.workload.traces import dumbbell


class TestBatchWindow:
    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            TapsScheduler(batch_window=-1.0)
        with pytest.raises(ValueError):
            TapsScheduler(control_latency=-0.5)

    def test_batched_admission_reorders_by_urgency(self):
        """Within one window, the urgent task is admitted first even when
        it arrived second — immediate admission would favour the earlier,
        laxer task."""
        topo = dumbbell(2)
        # together they need 6 units by t<=4.1: only one fits; per-arrival
        # admission accepts the lax task first and then keeps it
        # (PROGRESS policy), starving the urgent one arriving 0.05 later.
        tasks = [
            make_task(0, 0.00, 6.0, [("L0", "R0", 3.0)], 0),   # lax
            make_task(1, 0.05, 3.2, [("L1", "R1", 3.0)], 1),   # urgent
        ]
        immediate = Engine(topo, tasks, TapsScheduler()).run()
        by_tid = {ts.task.task_id: ts for ts in immediate.task_states}
        # immediate admission: both actually fit by reallocation? verify
        # the batched run admits the urgent one no matter what
        topo2 = dumbbell(2)
        batched = Engine(topo2, tasks, TapsScheduler(batch_window=0.1)).run()
        by_tid_b = {ts.task.task_id: ts for ts in batched.task_states}
        assert by_tid_b[1].accepted is True
        assert by_tid_b[1].outcome is TaskOutcome.COMPLETED

    def test_batch_window_delays_start(self):
        topo = dumbbell(1)
        tasks = [make_task(0, 0.0, 5.0, [("L0", "R0", 2.0)], 0)]
        result = Engine(topo, tasks, TapsScheduler(batch_window=0.5)).run()
        fs = result.flow_states[0]
        assert fs.met_deadline
        # transmission cannot begin before the window closes
        assert fs.completed_at >= 0.5 + 2.0 - 1e-9

    def test_batched_tasks_all_decided(self):
        topo = dumbbell(3)
        tasks = [
            make_task(i, 0.01 * i, 10.0 + 0.01 * i,
                      [(f"L{i}", f"R{i}", 1.0)], i)
            for i in range(3)
        ]
        result = Engine(topo, tasks, TapsScheduler(batch_window=0.2)).run()
        assert all(ts.accepted is not None for ts in result.task_states)
        assert result.tasks_completed == 3

    def test_multiple_windows(self):
        """Arrivals after a flush open a fresh window."""
        topo = dumbbell(2)
        tasks = [
            make_task(0, 0.0, 5.0, [("L0", "R0", 1.0)], 0),
            make_task(1, 2.0, 7.0, [("L1", "R1", 1.0)], 1),
        ]
        result = Engine(topo, tasks, TapsScheduler(batch_window=0.1)).run()
        assert result.tasks_completed == 2
        by_tid = {ts.task.task_id: ts for ts in result.task_states}
        f1 = by_tid[1].flow_states[0]
        assert f1.completed_at >= 2.1 + 1.0 - 1e-9


class TestControlLatency:
    def test_slices_start_after_rtt(self):
        topo = dumbbell(1)
        tasks = [make_task(0, 0.0, 5.0, [("L0", "R0", 2.0)], 0)]
        result = Engine(topo, tasks,
                        TapsScheduler(control_latency=0.25)).run()
        fs = result.flow_states[0]
        assert fs.met_deadline
        assert fs.completed_at == pytest.approx(2.25)

    def test_latency_tightens_admission(self):
        """A task that fits with an instant controller is rejected when
        the round-trip eats its slack."""
        topo = dumbbell(1)
        tasks = [make_task(0, 0.0, 2.1, [("L0", "R0", 2.0)], 0)]
        ok = Engine(topo, tasks, TapsScheduler()).run()
        assert ok.tasks_completed == 1
        topo2 = dumbbell(1)
        slow = Engine(topo2, tasks, TapsScheduler(control_latency=0.5)).run()
        assert slow.tasks_completed == 0
        assert slow.task_states[0].accepted is False

    def test_zero_latency_unchanged(self):
        topo = dumbbell(2)
        tasks = [
            make_task(0, 0.0, 6.0, [("L0", "R0", 2.0)], 0),
            make_task(1, 0.5, 6.5, [("L1", "R1", 2.0)], 1),
        ]
        a = Engine(topo, tasks, TapsScheduler()).run()
        topo2 = dumbbell(2)
        b = Engine(topo2, tasks, TapsScheduler(control_latency=0.0)).run()
        assert a.tasks_completed == b.tasks_completed

    def test_expired_by_latency_never_transmits(self):
        topo = dumbbell(1)
        tasks = [make_task(0, 0.0, 0.4, [("L0", "R0", 0.3)], 0)]
        result = Engine(topo, tasks, TapsScheduler(control_latency=0.5)).run()
        fs = result.flow_states[0]
        assert fs.bytes_sent == 0.0


class TestCombined:
    def test_batching_plus_latency_accepted_tasks_still_complete(self):
        topo = dumbbell(4)
        tasks = [
            make_task(i, 0.05 * i, 8.0 + 0.05 * i,
                      [(f"L{i}", f"R{i}", 1.5)], i)
            for i in range(4)
        ]
        sched = TapsScheduler(batch_window=0.15, control_latency=0.05)
        result = Engine(topo, tasks, sched).run()
        for ts in result.task_states:
            if ts.accepted:
                assert ts.outcome is TaskOutcome.COMPLETED
        assert sched.stats.backstop_kills == 0

class TestFlowTableLimit:
    def test_invalid_limit_rejected(self):
        with pytest.raises(ValueError):
            TapsScheduler(flow_table_limit=0)

    def test_unconstrained_by_default(self):
        topo = dumbbell(4)
        tasks = [
            make_task(i, 0.0, 20.0, [(f"L{i}", f"R{i}", 1.0)], i)
            for i in range(4)
        ]
        result = Engine(topo, tasks, TapsScheduler()).run()
        assert result.tasks_completed == 4

    def test_tight_table_rejects_excess_concurrency(self):
        """With a 2-entry budget at each switch, only two concurrent flows
        can be planned through the shared dumbbell switches."""
        topo = dumbbell(4)
        tasks = [
            make_task(i, 0.0, 20.0, [(f"L{i}", f"R{i}", 1.0)], i)
            for i in range(4)
        ]
        sched = TapsScheduler(flow_table_limit=2)
        result = Engine(topo, tasks, sched).run()
        accepted = [ts for ts in result.task_states if ts.accepted]
        assert len(accepted) == 2
        assert sched.stats.tasks_rejected == 2
        for ts in accepted:
            assert ts.outcome is TaskOutcome.COMPLETED

    def test_completions_free_table_slots(self):
        """A task arriving after earlier flows complete reuses their
        table entries."""
        topo = dumbbell(2)
        tasks = [
            make_task(0, 0.0, 5.0, [("L0", "R0", 1.0)], 0),
            make_task(1, 2.0, 7.0, [("L1", "R1", 1.0)], 1),
        ]
        result = Engine(topo, tasks, TapsScheduler(flow_table_limit=1)).run()
        assert result.tasks_completed == 2


class TestIncrementalAdmission:
    def test_fig2_needs_global_reallocation(self):
        """The Fig. 2 preemption example: incremental admission (frozen
        in-flight plans) degenerates to Varys' outcome — the urgent
        late task is rejected; full reallocation admits both."""
        from repro.workload.traces import fig2_trace

        topo, tasks = fig2_trace()
        full = Engine(topo, tasks, TapsScheduler()).run()
        topo2, tasks2 = fig2_trace()
        inc = Engine(topo2, tasks2,
                     TapsScheduler(reallocate_inflight=False)).run()
        assert full.tasks_completed == 2
        assert inc.tasks_completed == 1

    def test_incremental_accepted_tasks_still_complete(self):
        topo = dumbbell(4)
        tasks = [
            make_task(i, 0.1 * i, 6.0 + 0.1 * i,
                      [(f"L{i}", f"R{i}", 1.5)], i)
            for i in range(4)
        ]
        sched = TapsScheduler(reallocate_inflight=False)
        result = Engine(topo, tasks, sched).run()
        for ts in result.task_states:
            if ts.accepted:
                assert ts.outcome is TaskOutcome.COMPLETED
        assert sched.stats.backstop_kills == 0

    def test_incremental_never_beats_full_on_fig_traces(self):
        """Extra planning freedom cannot hurt on the motivation traces."""
        from repro.workload.traces import fig1_trace, fig2_trace

        for trace in (fig1_trace, fig2_trace):
            topo, tasks = trace()
            full = Engine(topo, tasks, TapsScheduler()).run()
            topo2, tasks2 = trace()
            inc = Engine(topo2, tasks2,
                         TapsScheduler(reallocate_inflight=False)).run()
            assert full.tasks_completed >= inc.tasks_completed

    def test_incremental_zero_waste(self):
        from repro.metrics.summary import summarize
        from repro.workload.generator import WorkloadConfig, generate_workload

        topo = dumbbell(5)
        cfg = WorkloadConfig(num_tasks=10, mean_flows_per_task=2,
                             arrival_rate=2.0, mean_flow_size=1.0,
                             min_flow_size=0.2, mean_deadline=2.0, seed=4)
        tasks = generate_workload(cfg, list(topo.hosts))
        m = summarize(Engine(topo, tasks,
                             TapsScheduler(reallocate_inflight=False)).run())
        assert m.wasted_bandwidth_ratio == 0.0


class TestPriorityKnob:
    def test_invalid_priority_rejected(self):
        with pytest.raises(ValueError):
            TapsScheduler(priority="lifo")

    def test_default_is_paper_ordering(self):
        assert TapsScheduler().priority == "edf_sjf"

    def test_edf_sjf_beats_fifo_with_inflight_traffic(self):
        """The Ftmp sort matters once in-flight flows are re-packed: EDF
        pushes the lax in-flight flow behind the urgent newcomer; FIFO
        keeps release order and starves the newcomer into rejection."""
        tasks = [
            make_task(0, 0.0, 10.0, [("L0", "R0", 2.0)], 0),   # lax
            make_task(1, 0.5, 2.5, [("L1", "R1", 1.0)], 1),    # urgent
        ]
        edf = Engine(dumbbell(2), tasks, TapsScheduler()).run()
        fifo = Engine(dumbbell(2), tasks,
                      TapsScheduler(priority="fifo")).run()
        assert edf.tasks_completed == 2
        assert fifo.tasks_completed == 1
        rejected = [ts.task.task_id for ts in fifo.task_states
                    if ts.accepted is False]
        assert rejected == [1]  # the urgent newcomer loses under FIFO

    def test_all_priorities_keep_invariants(self):
        from repro.metrics.summary import summarize
        from repro.workload.generator import WorkloadConfig, generate_workload

        topo = dumbbell(5)
        cfg = WorkloadConfig(num_tasks=10, mean_flows_per_task=2,
                             arrival_rate=2.0, mean_flow_size=1.0,
                             min_flow_size=0.2, mean_deadline=2.0, seed=8)
        tasks = generate_workload(cfg, list(topo.hosts))
        for priority in ("edf_sjf", "edf", "sjf", "fifo"):
            sched = TapsScheduler(priority=priority)
            m = summarize(Engine(topo, tasks, sched).run())
            assert m.wasted_bandwidth_ratio == 0.0, priority
            assert sched.stats.backstop_kills == 0, priority
