"""OccupancyLedger: the per-link O_x sets of Alg. 3."""

import pytest

from repro.core.occupancy import OccupancyLedger
from repro.util.intervals import IntervalSet


@pytest.fixture
def ledger():
    return OccupancyLedger()


def test_untouched_link_is_idle(ledger):
    assert not ledger.occupied(42)


def test_commit_marks_all_path_links(ledger):
    s = IntervalSet.single(0, 2)
    ledger.commit((1, 2, 3), s)
    for l in (1, 2, 3):
        assert ledger.occupied(l).intervals() == [(0, 2)]
    assert not ledger.occupied(0)


def test_commit_accumulates(ledger):
    ledger.commit((0,), IntervalSet.single(0, 1))
    ledger.commit((0,), IntervalSet.single(3, 4))
    assert ledger.occupied(0).intervals() == [(0, 1), (3, 4)]


def test_commit_copies_slices(ledger):
    s = IntervalSet.single(0, 1)
    ledger.commit((0,), s)
    s.add(5, 6)  # mutating the caller's set must not leak into the ledger
    assert ledger.occupied(0).intervals() == [(0, 1)]


def test_union_for_path(ledger):
    ledger.commit((0,), IntervalSet.single(0, 1))
    ledger.commit((1,), IntervalSet.single(2, 3))
    tocp = ledger.union_for((0, 1, 5))
    assert tocp.intervals() == [(0, 1), (2, 3)]


def test_union_for_returns_copy(ledger):
    ledger.commit((0,), IntervalSet.single(0, 1))
    tocp = ledger.union_for((0,))
    tocp.add(9, 10)
    assert ledger.occupied(0).intervals() == [(0, 1)]


def test_union_for_empty_path_links(ledger):
    assert not ledger.union_for((7, 8))


def test_clear(ledger):
    ledger.commit((0, 1), IntervalSet.single(0, 1))
    ledger.clear()
    assert not ledger.occupied(0)
    assert ledger.touched_links() == []


def test_rebuild(ledger):
    ledger.commit((0,), IntervalSet.single(0, 1))
    plans = [((1, 2), IntervalSet.single(5, 6)), ((2,), IntervalSet.single(7, 8))]
    ledger.rebuild(plans)
    assert not ledger.occupied(0)  # old state gone
    assert ledger.occupied(1).intervals() == [(5, 6)]
    assert ledger.occupied(2).intervals() == [(5, 6), (7, 8)]


def test_touched_links_sorted(ledger):
    ledger.commit((5, 1), IntervalSet.single(0, 1))
    assert ledger.touched_links() == [1, 5]


def test_assert_exclusive_passes_on_disjoint(ledger):
    plans = [
        ((0, 1), IntervalSet.single(0, 1)),
        ((0, 1), IntervalSet.single(1, 2)),
    ]
    ledger.assert_exclusive(plans)


def test_assert_exclusive_catches_overlap(ledger):
    plans = [
        ((0,), IntervalSet.single(0, 2)),
        ((0,), IntervalSet.single(1, 3)),
    ]
    with pytest.raises(AssertionError):
        ledger.assert_exclusive(plans)


def test_assert_exclusive_allows_overlap_on_different_links(ledger):
    plans = [
        ((0,), IntervalSet.single(0, 2)),
        ((1,), IntervalSet.single(0, 2)),
    ]
    ledger.assert_exclusive(plans)
