"""Controller fast path: mode equivalence, invariants, stats regressions.

``fast_path=True`` (union caching + pruning + trial journal) must be
indistinguishable from the reference controller in every scheduling
decision — these tests check that at controller scale on a real multipath
topology, plus the invariants and counter regressions the fast-path PR
fixed (stats underflow on unregistered-task expiry, infinite-lateness
reporting for planless flows).
"""

import json

from repro.core.allocation import path_calculation
from repro.core.controller import TapsScheduler
from repro.core.occupancy import OccupancyLedger
from repro.core.reject import Decision, PreemptionPolicy, RejectDecision
from repro.net.fattree import FatTree
from repro.net.paths import PathService
from repro.sim.engine import Engine
from repro.sim.state import FlowState, FlowStatus, TaskState
from repro.trace import TraceRecorder, audit_trace
from repro.workload.flow import Flow, make_task
from repro.workload.generator import WorkloadConfig, generate_workload
from repro.workload.traces import dumbbell


def _contended_workload():
    """A small fat-tree workload with enough contention to exercise
    multipath comparison, rejection, and in-flight reallocation."""
    topo = FatTree(k=4)
    cfg = WorkloadConfig(seed=11, num_tasks=12, arrival_rate=400.0,
                         mean_deadline=0.12, mean_flow_size=400_000.0,
                         mean_flows_per_task=6.0)
    return topo, generate_workload(cfg, list(topo.hosts))


class TestModeEquivalence:
    def test_fast_and_reference_schedule_identically(self):
        """Both modes must produce byte-identical decision traces (events
        record float-exact plan snapshots, so this is the strongest form of
        equivalence), identical end states, and a clean audit."""
        topo, tasks = _contended_workload()
        runs = {}
        dumps = {}
        for fast in (True, False):
            recorder = TraceRecorder()
            sched = TapsScheduler(fast_path=fast)
            result = Engine(topo, tasks, sched,
                            path_service=PathService(topo, max_paths=4),
                            trace=recorder).run()
            assert sched.trace is recorder  # engine handed its recorder over
            report = audit_trace(recorder)
            assert report.ok, report.summary()
            dumps[fast] = recorder.dumps()
            runs[fast] = (
                [(fs.flow.flow_id, fs.remaining, fs.met_deadline)
                 for fs in result.flow_states],
                [(ts.task.task_id, ts.outcome) for ts in result.task_states],
                (sched.stats.tasks_accepted, sched.stats.tasks_rejected,
                 sched.stats.tasks_preempted, sched.stats.flows_planned),
            )
        assert runs[True] == runs[False]
        assert dumps[True] == dumps[False]
        # sanity: the workload actually exercised both decision kinds
        kinds = {json.loads(line)["kind"] for line in dumps[True].splitlines()}
        assert {"task-accept", "task-reject"} <= kinds

    def test_pruned_path_calculation_matches_reference(self):
        """prune=True picks the same path, slices, and completion as the
        exhaustive per-candidate evaluation, flow for flow."""
        topo = FatTree(k=4)
        paths = PathService(topo, max_paths=4)
        hosts = list(topo.hosts)[:4]

        def flows():
            out = []
            for i in range(24):
                src = hosts[i % 4]
                dst = hosts[(i + 1 + i % 3) % 4]
                if dst == src:
                    dst = hosts[(i + 2) % 4]
                f = Flow(flow_id=i, task_id=i // 4, src=src, dst=dst,
                         size=(1.0 + 0.25 * (i % 5)) * 1e6, release=0.0,
                         deadline=0.5 + 0.01 * i)
                out.append(FlowState(flow=f))
            return out

        capacity = topo.uniform_capacity()
        fast = path_calculation(flows(), OccupancyLedger(cache=True), paths,
                                capacity, 0.0, 1e4, prune=True)
        ref = path_calculation(flows(), OccupancyLedger(cache=False), paths,
                               capacity, 0.0, 1e4, prune=False)
        assert fast.keys() == ref.keys()
        for fid in fast:
            assert fast[fid].path == ref[fid].path
            assert fast[fid].slices._b == ref[fid].slices._b
            assert fast[fid].completion == ref[fid].completion


class TestPreemptionInvariants:
    def test_plans_exclusive_after_discard_victim_retry(self):
        """After a PROSPECTIVE preemption retries the trial, the committed
        plans of the surviving flows never overlap on a shared link."""
        topo = dumbbell(2)
        tasks = [
            make_task(0, 0.0, 6.5, [("L0", "R0", 6.0)], 0),   # victim-to-be
            make_task(1, 0.0, 20.0, [("L1", "R1", 3.0)], 1),  # survivor
            make_task(2, 0.1, 6.2, [("L0", "R0", 6.0)], 2),   # urgent newcomer
        ]
        sched = TapsScheduler(preemption=PreemptionPolicy.PROSPECTIVE)
        engine = Engine(topo, tasks, sched)
        sched.attach(topo, engine.path_service)
        for ts, now in zip(engine.task_states, (0.0, 0.0, 0.1)):
            sched.on_task_arrival(ts, now)

        assert sched.stats.tasks_preempted == 1
        planned_tasks = {p.flow_state.flow.task_id for p in sched.plans.values()}
        assert planned_tasks == {1, 2}  # victim evicted, survivor re-planned
        # the retry rebuilt the trial from a rolled-back ledger; committed
        # slices must still be pairwise exclusive per link
        sched.ledger.assert_exclusive(
            [(p.path, p.slices) for p in sched.plans.values()]
        )
        for p in sched.plans.values():
            assert p.meets_deadline


class TestStatsRegressions:
    def test_expiry_of_batched_task_does_not_underflow_drop_counter(self):
        """A deadline expiry for a task still waiting in the batch window
        (never registered) must not decrement tasks_dropped_on_fault below
        zero — the guarded reclassification only undoes a real drop."""
        topo = dumbbell(1)
        sched = TapsScheduler(batch_window=1.0)
        sched.attach(topo, PathService(topo))
        task = make_task(0, 0.0, 0.5, [("L0", "R0", 2.0)], 0)
        ts = TaskState(task=task)
        ts.flow_states = [FlowState(flow=f) for f in task.flows]
        sched.on_task_arrival(ts, 0.0)  # parked in the batch window
        sched.on_deadline_expired(ts.flow_states[0], 0.6)
        assert sched.stats.backstop_kills == 1
        assert sched.stats.tasks_dropped_on_fault == 0
        assert ts.flow_states[0].status is FlowStatus.TERMINATED

    def test_expiry_of_registered_task_reclassifies_drop(self):
        """The registered-task path still nets out: the fault-drop counter
        stays where it was and the kill shows up as a backstop kill."""
        topo = dumbbell(1)
        sched = TapsScheduler()
        sched.attach(topo, PathService(topo))
        task = make_task(0, 0.0, 5.0, [("L0", "R0", 1.0)], 0)
        ts = TaskState(task=task)
        ts.flow_states = [FlowState(flow=f) for f in task.flows]
        sched.on_task_arrival(ts, 0.0)
        assert ts.accepted is True
        sched.on_deadline_expired(ts.flow_states[0], 5.1)
        assert sched.stats.backstop_kills == 1
        assert sched.stats.tasks_dropped_on_fault == 0

    def test_planless_missing_flow_reported_with_infinite_lateness(self):
        """A rejected flow that never got a trial plan (unplannable, so
        skipped) is reported as infinitely late, not dropped from the
        diagnostics (the old code KeyError'd / omitted it)."""
        topo = dumbbell(1)
        sched = TapsScheduler(explain=True)
        sched.attach(topo, PathService(topo))
        sched.rule.evaluate = lambda plans, new, states: RejectDecision(
            Decision.REJECT_NEW, missing_flow_ids=(999,)
        )
        task = make_task(0, 0.0, 5.0, [("L0", "R0", 1.0)], 0)
        ts = TaskState(task=task)
        ts.flow_states = [FlowState(flow=f) for f in task.flows]
        sched.on_task_arrival(ts, 0.0)
        (d,) = sched.diagnostics
        assert d.reason == "would-miss"
        assert d.lateness == ((999, float("inf")),)
