"""OccupancyLedger fast path: union cache, partial folds, trial journal.

The cache and the journal are pure performance machinery — every observable
value must be identical to an uncached, copy-based ledger.  The property
test drives a cached ledger through arbitrary commit/query/trial/rebuild/
clear sequences against a hand-rolled model (dict of link → IntervalSet with
deep-copy trial snapshots) and checks ``union_for`` float-for-float after
every step; the unit tests pin the journal's edge semantics and the cache's
admission/eviction behaviour.
"""

import pytest

from hypothesis import given, settings, strategies as st

from repro.core.occupancy import OccupancyLedger
from repro.metrics.profiling import ProfileCounters
from repro.util.intervals import IntervalSet, merge_boundaries, union_all

LINKS = list(range(6))

paths = st.lists(st.sampled_from(LINKS), min_size=1, max_size=4,
                 unique=True).map(tuple)

ops = st.lists(
    st.one_of(
        st.tuples(st.just("commit"), paths,
                  st.floats(min_value=0.0, max_value=40.0),
                  st.floats(min_value=0.5, max_value=8.0)),
        st.tuples(st.just("query"), paths),
        st.just(("begin",)),
        st.just(("rollback",)),
        st.just(("commit_trial",)),
        st.just(("clear",)),
        st.just(("rebuild",)),
    ),
    max_size=30,
)


def _model_union(model, path):
    return union_all([model[l] for l in path if l in model])


@given(ops, st.lists(paths, min_size=1, max_size=4))
@settings(max_examples=150)
def test_cached_ledger_matches_model(sequence, probes):
    """Arbitrary commit/query/trial/rebuild/clear sequences: the cached
    ledger's unions equal a snapshot-copy reference model at every step."""
    ledger = OccupancyLedger(cache=True)
    model: dict[int, IntervalSet] = {}
    snapshot: dict[int, IntervalSet] | None = None
    committed: list[tuple[tuple[int, ...], IntervalSet]] = []

    for op in sequence:
        kind = op[0]
        if kind == "commit":
            _, path, start, width = op
            slices = IntervalSet.single(start, start + width)
            ledger.commit(path, slices)
            committed.append((path, slices))
            # the model journals by eager deep copy at begin_trial; the
            # ledger by lazy reference snapshots — results must agree
            for l in path:
                if l in model:
                    model[l] = model[l].union(slices)
                else:
                    model[l] = slices.copy()
        elif kind == "query":
            _, path = op
            assert ledger.union_for(path)._b == _model_union(model, path)._b
        elif kind == "begin":
            if not ledger.in_trial:
                ledger.begin_trial()
                snapshot = {l: s.copy() for l, s in model.items()}
                committed_mark = len(committed)
        elif kind == "rollback":
            if ledger.in_trial:
                ledger.rollback_trial()
                assert snapshot is not None
                model, snapshot = snapshot, None
                del committed[committed_mark:]
        elif kind == "commit_trial":
            if ledger.in_trial:
                ledger.commit_trial()
                snapshot = None
        elif kind == "clear":
            ledger.clear()
            model, snapshot = {}, None
            committed = []
        elif kind == "rebuild":
            # rebuild = clear + re-commit every plan made so far; aborts
            # any active trial and must fully repopulate the link index
            ledger.rebuild(committed)
            model, snapshot = {}, None
            for path, slices in committed:
                for l in path:
                    if l in model:
                        model[l] = model[l].union(slices)
                    else:
                        model[l] = slices.copy()

    for path in probes:
        # repeat the probe so the second-chance cache serves one from store
        assert ledger.union_for(path)._b == _model_union(model, path)._b
        assert ledger.union_for(path)._b == _model_union(model, path)._b


@given(ops, paths)
@settings(max_examples=100)
def test_union_parts_recombines_to_union_for(sequence, path):
    """merge(shared, interior) from union_parts equals union_for, for any
    ledger state and any path length."""
    ledger = OccupancyLedger(cache=True)
    for op in sequence:
        if op[0] == "commit":
            _, p, start, width = op
            ledger.commit(p, IntervalSet.single(start, start + width))
    shared, inter = ledger.union_parts(path, {})
    assert merge_boundaries(shared, inter) == ledger.union_for(path)._b


# -- trial journal ---------------------------------------------------------


def test_double_begin_trial_raises():
    ledger = OccupancyLedger()
    ledger.begin_trial()
    with pytest.raises(RuntimeError):
        ledger.begin_trial()


def test_rollback_without_trial_raises():
    with pytest.raises(RuntimeError):
        OccupancyLedger().rollback_trial()


def test_commit_trial_without_trial_raises():
    with pytest.raises(RuntimeError):
        OccupancyLedger().commit_trial()


def test_rollback_restores_new_and_existing_links():
    ledger = OccupancyLedger()
    ledger.commit((0, 1), IntervalSet.single(0, 2))
    ledger.begin_trial()
    ledger.commit((1, 2), IntervalSet.single(5, 7))  # 1 existed, 2 is new
    ledger.rollback_trial()
    assert ledger.occupied(0).intervals() == [(0, 2)]
    assert ledger.occupied(1).intervals() == [(0, 2)]
    assert not ledger.occupied(2)
    assert not ledger.in_trial


def test_commit_trial_keeps_changes():
    ledger = OccupancyLedger()
    ledger.begin_trial()
    ledger.commit((0,), IntervalSet.single(1, 2))
    ledger.commit_trial()
    assert ledger.occupied(0).intervals() == [(1, 2)]


def test_rollback_evicts_stale_cached_unions():
    ledger = OccupancyLedger(cache=True)
    ledger.commit((0, 1), IntervalSet.single(0, 2))
    # two queries: the second-chance filter stores on the second miss
    ledger.union_for((0, 1))
    ledger.union_for((0, 1))
    assert ledger.cache_info()["entries"] == 1
    ledger.begin_trial()
    ledger.commit((1,), IntervalSet.single(5, 6))
    assert ledger.union_for((0, 1)).intervals() == [(0, 2), (5, 6)]
    ledger.rollback_trial()
    # the union cached during the trial must not survive the rollback
    assert ledger.union_for((0, 1)).intervals() == [(0, 2)]


def test_clear_aborts_active_trial():
    ledger = OccupancyLedger()
    ledger.begin_trial()
    ledger.clear()
    assert not ledger.in_trial
    ledger.begin_trial()  # does not raise: clear dropped the journal


def test_rollback_counts_in_profile():
    profile = ProfileCounters()
    ledger = OccupancyLedger(profile=profile)
    ledger.begin_trial()
    ledger.commit((0,), IntervalSet.single(0, 1))
    ledger.rollback_trial()
    assert profile.trials_rolled_back == 1


# -- cache admission and eviction -----------------------------------------


def test_second_chance_stores_full_path_on_second_miss():
    ledger = OccupancyLedger(cache=True)
    ledger.commit((0,), IntervalSet.single(0, 1))
    ledger.union_for((0, 1))
    assert ledger.cache_info()["entries"] == 0  # first miss: seen only
    ledger.union_for((0, 1))
    assert ledger.cache_info()["entries"] == 1  # second miss: stored


def test_cache_hit_counted_and_value_correct():
    profile = ProfileCounters()
    ledger = OccupancyLedger(profile=profile, cache=True)
    ledger.commit((0,), IntervalSet.single(0, 1))
    ledger.union_for((0,))
    ledger.union_for((0,))
    hits_before = profile.union_cache_hits
    got = ledger.union_for((0,))
    assert profile.union_cache_hits == hits_before + 1
    assert got.intervals() == [(0, 1)]


def test_commit_evicts_only_touched_paths():
    ledger = OccupancyLedger(cache=True)
    ledger.commit((0,), IntervalSet.single(0, 1))
    ledger.commit((5,), IntervalSet.single(0, 1))
    for _ in range(2):
        ledger.union_for((0, 1))
        ledger.union_for((5,))
    assert ledger.cache_info()["entries"] == 2
    ledger.commit((0,), IntervalSet.single(3, 4))  # dirties only path (0, 1)
    assert ledger.cache_info()["entries"] == 1
    assert ledger.union_for((0, 1)).intervals() == [(0, 1), (3, 4)]
    assert ledger.union_for((5,)).intervals() == [(0, 1)]


def test_interior_segment_cached_on_first_query():
    """union_parts on a 6-link path caches the (agg↔core) interior segment
    immediately — no second-chance gate for segments."""
    ledger = OccupancyLedger(cache=True)
    path = (0, 1, 2, 3, 4, 5)
    ledger.commit((2,), IntervalSet.single(0, 1))
    profile = ProfileCounters()
    ledger._profile = profile
    shared, inter = ledger.union_parts(path, {})
    assert inter == [0.0, 1.0]
    assert (2, 3) in ledger._unions  # interior = path[2:-2]
    _, again = ledger.union_parts(path, {})
    assert again == [0.0, 1.0]
    assert profile.union_cache_hits >= 1


def test_cache_disabled_ledger_stores_nothing():
    """Reference mode must never populate the store — commit() only evicts
    when caching is on, so anything stored would go stale."""
    ledger = OccupancyLedger(cache=False)
    ledger.commit((0, 1, 2, 3, 4, 5), IntervalSet.single(0, 2))
    ledger.union_for((0, 1, 2, 3, 4, 5))
    ledger.union_for((0, 1, 2, 3, 4, 5))
    ledger.union_parts((0, 1, 2, 3, 4, 5), {})
    assert ledger.cache_info() == {"entries": 0, "indexed_links": 0}
    # and staying uncached keeps it correct across further commits
    ledger.commit((2,), IntervalSet.single(5, 6))
    assert ledger.union_for((0, 1, 2, 3, 4, 5)).intervals() == [(0, 2), (5, 6)]
    shared, inter = ledger.union_parts((0, 1, 2, 3, 4, 5), {})
    assert merge_boundaries(shared, inter) == [0.0, 2.0, 5.0, 6.0]
