"""TapsScheduler (Alg. 1): admission, reallocation, preemption, sender model."""

import pytest

from repro.core.controller import TapsScheduler
from repro.core.reject import PreemptionPolicy
from repro.sim.engine import Engine
from repro.sim.state import FlowStatus, TaskOutcome
from repro.workload.flow import make_task
from repro.workload.traces import dumbbell, fig1_trace, fig2_trace, fig3_trace


def _run(topo, tasks, **kw):
    sched = TapsScheduler(**kw)
    result = Engine(topo, tasks, sched).run()
    return result, sched


class TestAdmission:
    def test_feasible_task_accepted(self):
        topo = dumbbell(1)
        tasks = [make_task(0, 0.0, 5.0, [("L0", "R0", 2.0)], 0)]
        result, sched = _run(topo, tasks)
        assert result.task_states[0].accepted is True
        assert sched.stats.tasks_accepted == 1
        assert result.tasks_completed == 1

    def test_infeasible_task_rejected_without_transmitting(self):
        topo = dumbbell(1)
        tasks = [make_task(0, 0.0, 1.0, [("L0", "R0", 5.0)], 0)]
        result, sched = _run(topo, tasks)
        assert result.task_states[0].accepted is False
        assert sched.stats.tasks_rejected == 1
        fs = result.flow_states[0]
        assert fs.status is FlowStatus.REJECTED
        assert fs.bytes_sent == 0.0

    def test_partial_task_rejected_whole(self):
        """If any one flow of the task cannot meet the deadline, the whole
        task is rejected — no bandwidth wasted on its siblings."""
        topo = dumbbell(2)
        tasks = [make_task(0, 0.0, 3.0,
                           [("L0", "R0", 1.0), ("L1", "R1", 9.0)], 0)]
        result, _ = _run(topo, tasks)
        assert result.task_states[0].accepted is False
        assert all(fs.bytes_sent == 0.0 for fs in result.flow_states)

    def test_accepted_flows_always_meet_deadlines(self):
        topo = dumbbell(4)
        tasks = [
            make_task(i, 0.2 * i, 0.2 * i + 3.0,
                      [(f"L{j}", f"R{j}", 0.8) for j in range(4)], 4 * i)
            for i in range(5)
        ]
        result, sched = _run(topo, tasks)
        for ts in result.task_states:
            if ts.accepted:
                assert ts.outcome is TaskOutcome.COMPLETED
        assert sched.stats.backstop_kills == 0

    def test_rejected_newcomer_does_not_disturb_incumbents(self):
        topo = dumbbell(2)
        tasks = [
            make_task(0, 0.0, 4.0, [("L0", "R0", 3.0)], 0),
            make_task(1, 1.0, 3.0, [("L1", "R1", 3.0)], 1),  # can't fit
        ]
        result, _ = _run(topo, tasks)
        by_tid = {ts.task.task_id: ts for ts in result.task_states}
        assert by_tid[0].outcome is TaskOutcome.COMPLETED
        assert by_tid[1].accepted is False


class TestGlobalReallocation:
    def test_inflight_flows_moved_for_urgent_newcomer(self):
        """Paper Fig. 2: EDF reordering of accepted-but-unsent flows lets
        an urgent late task in — Varys fails this, TAPS passes."""
        topo, tasks = fig2_trace()
        result, _ = _run(topo, tasks)
        assert result.tasks_completed == 2

    def test_fig1_task_level_admission(self):
        topo, tasks = fig1_trace()
        result, _ = _run(topo, tasks)
        assert result.tasks_completed == 1
        assert result.flows_met == 2

    def test_fig3_multipath_global_schedule(self):
        topo, tasks = fig3_trace()
        result, _ = _run(topo, tasks)
        assert result.flows_met == 4  # incl. f4 split around its gap

    def test_fig3_f4_slices_match_paper(self):
        """The optimal schedule gives f4 the split (0,1) ∪ (2,3)."""
        topo, tasks = fig3_trace()
        sched = TapsScheduler()
        engine = Engine(topo, tasks, sched)
        # run arrivals only: admit all four tasks at t=0
        sched.attach(topo, engine.path_service)
        for ts in engine.task_states:
            sched.on_task_arrival(ts, 0.0)
        plan = sched.plan_of(3)  # f4
        assert plan is not None
        assert plan.slices.intervals() == [
            pytest.approx((0.0, 1.0)),
            pytest.approx((2.0, 3.0)),
        ]

    def test_reallocation_preserves_progress(self):
        """A half-sent in-flight flow is re-planned for its remainder only."""
        topo = dumbbell(2)
        tasks = [
            make_task(0, 0.0, 10.0, [("L0", "R0", 4.0)], 0),
            make_task(1, 2.0, 12.0, [("L1", "R1", 1.0)], 1),
        ]
        result, _ = _run(topo, tasks)
        fs0 = result.task_states[0].flow_states[0]
        assert fs0.met_deadline
        assert fs0.bytes_sent == pytest.approx(4.0, rel=1e-5)


class TestPreemption:
    def _victim_scenario(self):
        """t0 accepted with slack but zero progress when urgent t1 arrives;
        together they cannot both fit."""
        topo = dumbbell(2)
        tasks = [
            # t0: starts at 0, deadline 10, needs 6 units
            make_task(0, 0.0, 6.5, [("L0", "R0", 6.0)], 0),
            # t1 arrives immediately after, urgent: needs 6 by t=6.2
            make_task(1, 0.1, 6.2, [("L1", "R1", 6.0)], 1),
        ]
        return topo, tasks

    def test_progress_policy_keeps_started_incumbent(self):
        topo, tasks = self._victim_scenario()
        result, sched = _run(topo, tasks, preemption=PreemptionPolicy.PROGRESS)
        by_tid = {ts.task.task_id: ts for ts in result.task_states}
        # t0 transmitted 0.1 units already → incumbent wins
        assert by_tid[0].outcome is TaskOutcome.COMPLETED
        assert by_tid[1].accepted is False
        assert sched.stats.tasks_preempted == 0

    def test_prospective_policy_discards_victim(self):
        topo, tasks = self._victim_scenario()
        result, sched = _run(topo, tasks, preemption=PreemptionPolicy.PROSPECTIVE)
        by_tid = {ts.task.task_id: ts for ts in result.task_states}
        assert by_tid[1].outcome is TaskOutcome.COMPLETED
        # the victim stays accepted (it was admitted) but fails
        assert by_tid[0].accepted is True
        assert by_tid[0].outcome is TaskOutcome.FAILED
        assert sched.stats.tasks_preempted == 1
        # the victim's transmitted bytes are the only waste TAPS produces
        victim_flow = by_tid[0].flow_states[0]
        assert victim_flow.status is FlowStatus.TERMINATED
        assert victim_flow.bytes_sent > 0

    def test_never_policy_rejects_newcomer(self):
        topo, tasks = self._victim_scenario()
        result, sched = _run(topo, tasks, preemption=PreemptionPolicy.NEVER)
        by_tid = {ts.task.task_id: ts for ts in result.task_states}
        assert by_tid[0].outcome is TaskOutcome.COMPLETED
        assert by_tid[1].accepted is False


class TestSenderModel:
    def test_rates_follow_slices(self):
        topo = dumbbell(2)
        tasks = [
            make_task(0, 0.0, 10.0, [("L0", "R0", 2.0)], 0),
            make_task(1, 0.0, 10.0, [("L1", "R1", 2.0)], 1),
        ]
        sched = TapsScheduler()
        engine = Engine(topo, tasks, sched)
        sched.attach(topo, engine.path_service)
        for ts in engine.task_states:
            sched.on_task_arrival(ts, 0.0)
        # flows serialize on the bottleneck: one transmits now, other later
        sched.assign_rates(0.0)
        rates_now = sorted(fs.rate for ts in engine.task_states
                           for fs in ts.flow_states)
        assert rates_now == [0.0, 1.0]
        # at t=2 the second slice starts
        sched.assign_rates(2.0)
        second = [fs for ts in engine.task_states for fs in ts.flow_states
                  if fs.rate > 0]
        assert len(second) == 1

    def test_next_change_is_slice_boundary(self):
        topo = dumbbell(2)
        tasks = [
            make_task(0, 0.0, 10.0, [("L0", "R0", 2.0)], 0),
            make_task(1, 0.0, 10.0, [("L1", "R1", 2.0)], 1),
        ]
        sched = TapsScheduler()
        engine = Engine(topo, tasks, sched)
        sched.attach(topo, engine.path_service)
        for ts in engine.task_states:
            sched.on_task_arrival(ts, 0.0)
        assert sched.next_change(0.0) == pytest.approx(2.0)
        assert sched.next_change(2.5) == pytest.approx(4.0)

    def test_heterogeneous_capacity_rejected(self):
        from repro.net.topology import Topology
        from repro.util.errors import TopologyError

        topo = Topology()
        topo.add_host("a")
        topo.add_host("b")
        topo.add_link("a", "b", capacity=1.0)
        topo.add_link("b", "a", capacity=2.0)
        sched = TapsScheduler()
        engine = Engine(topo, [], sched)
        with pytest.raises(TopologyError):
            sched.attach(topo, engine.path_service)


class TestStats:
    def test_counters_track_decisions(self):
        topo = dumbbell(2)
        tasks = [
            make_task(0, 0.0, 5.0, [("L0", "R0", 2.0)], 0),
            make_task(1, 0.0, 0.5, [("L1", "R1", 9.0)], 1),  # infeasible
        ]
        _, sched = _run(topo, tasks)
        assert sched.stats.tasks_accepted == 1
        assert sched.stats.tasks_rejected == 1
        assert sched.stats.reallocations >= 2
        assert sched.stats.flows_planned >= 2
