"""OccupancyLedger.copy and incremental-trial semantics."""

from repro.core.occupancy import OccupancyLedger
from repro.util.intervals import IntervalSet


def test_copy_is_deep():
    ledger = OccupancyLedger()
    ledger.commit((0, 1), IntervalSet.single(0, 2))
    clone = ledger.copy()
    clone.commit((0,), IntervalSet.single(5, 6))
    assert ledger.occupied(0).intervals() == [(0, 2)]
    assert clone.occupied(0).intervals() == [(0, 2), (5, 6)]


def test_copy_of_empty():
    clone = OccupancyLedger().copy()
    assert clone.touched_links() == []


def test_copy_then_mutate_original():
    ledger = OccupancyLedger()
    ledger.commit((3,), IntervalSet.single(0, 1))
    clone = ledger.copy()
    ledger.commit((3,), IntervalSet.single(2, 3))
    assert clone.occupied(3).intervals() == [(0, 1)]
