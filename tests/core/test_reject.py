"""The TAPS reject rule (§IV-B) under each preemption policy."""

import pytest

from repro.core.allocation import FlowPlan
from repro.core.reject import (
    Decision,
    PreemptionPolicy,
    RejectRule,
)
from repro.sim.state import FlowState, TaskState
from repro.util.intervals import IntervalSet
from repro.workload.flow import make_task


def _task_state(tid, sizes, deadline=10.0, first_fid=0):
    task = make_task(tid, 0.0, deadline,
                     [("a", "b", s) for s in sizes], first_fid)
    ts = TaskState(task=task)
    ts.flow_states = [FlowState(flow=f) for f in task.flows]
    return ts


def _plan(fs, completion):
    return FlowPlan(
        flow_state=fs,
        path=(0,),
        slices=IntervalSet.single(max(0.0, completion - 1.0), completion),
        completion=completion,
    )


def _plans(*pairs):
    return {
        fs.flow.flow_id: _plan(fs, completion) for fs, completion in pairs
    }


@pytest.fixture
def rule():
    return RejectRule(PreemptionPolicy.PROGRESS)


class TestAcceptance:
    def test_no_misses_accepts(self, rule):
        new = _task_state(1, [2.0])
        plans = _plans((new.flow_states[0], 5.0))
        d = rule.evaluate(plans, new, {1: new})
        assert d.decision is Decision.ACCEPT

    def test_completion_exactly_at_deadline_accepts(self, rule):
        new = _task_state(1, [2.0], deadline=5.0)
        plans = _plans((new.flow_states[0], 5.0))
        assert rule.evaluate(plans, new, {1: new}).decision is Decision.ACCEPT


class TestRejectNew:
    def test_new_task_missing_rejected(self, rule):
        new = _task_state(1, [2.0], deadline=3.0)
        plans = _plans((new.flow_states[0], 9.0))
        d = rule.evaluate(plans, new, {1: new})
        assert d.decision is Decision.REJECT_NEW
        assert d.missing_flow_ids == (0,)

    def test_multiple_victim_tasks_rejects_new(self, rule):
        old1 = _task_state(1, [2.0], deadline=3.0, first_fid=0)
        old2 = _task_state(2, [2.0], deadline=3.0, first_fid=1)
        new = _task_state(3, [2.0], deadline=30.0, first_fid=2)
        plans = _plans(
            (old1.flow_states[0], 9.0),   # misses
            (old2.flow_states[0], 9.0),   # misses
            (new.flow_states[0], 1.0),
        )
        d = rule.evaluate(plans, new, {1: old1, 2: old2, 3: new})
        assert d.decision is Decision.REJECT_NEW

    def test_new_and_old_missing_rejects_new(self, rule):
        old = _task_state(1, [2.0], deadline=3.0, first_fid=0)
        new = _task_state(2, [2.0], deadline=3.0, first_fid=1)
        plans = _plans((old.flow_states[0], 9.0), (new.flow_states[0], 9.0))
        assert (
            rule.evaluate(plans, new, {1: old, 2: new}).decision
            is Decision.REJECT_NEW
        )


class TestCaseThree:
    def _setup(self, victim_progress: float):
        victim = _task_state(1, [4.0], deadline=3.0, first_fid=0)
        victim.flow_states[0].bytes_sent = victim_progress
        new = _task_state(2, [2.0], deadline=30.0, first_fid=1)
        plans = _plans((victim.flow_states[0], 9.0), (new.flow_states[0], 1.0))
        return victim, new, plans

    def test_progress_policy_keeps_transmitting_incumbent(self):
        rule = RejectRule(PreemptionPolicy.PROGRESS)
        victim, new, plans = self._setup(victim_progress=1.0)
        d = rule.evaluate(plans, new, {1: victim, 2: new})
        # victim has progress 0.25 >= newcomer's 0 → newcomer rejected
        assert d.decision is Decision.REJECT_NEW

    def test_progress_policy_tie_keeps_incumbent(self):
        rule = RejectRule(PreemptionPolicy.PROGRESS)
        victim, new, plans = self._setup(victim_progress=0.0)
        d = rule.evaluate(plans, new, {1: victim, 2: new})
        assert d.decision is Decision.REJECT_NEW  # "not less than" → reject

    def test_prospective_policy_preempts_victim(self):
        rule = RejectRule(PreemptionPolicy.PROSPECTIVE)
        victim, new, plans = self._setup(victim_progress=1.0)
        d = rule.evaluate(plans, new, {1: victim, 2: new})
        # victim completes 0/1 flows prospectively, newcomer 1/1
        assert d.decision is Decision.DISCARD_VICTIM
        assert d.victim_task_id == 1

    def test_never_policy_rejects_new(self):
        rule = RejectRule(PreemptionPolicy.NEVER)
        victim, new, plans = self._setup(victim_progress=0.0)
        d = rule.evaluate(plans, new, {1: victim, 2: new})
        assert d.decision is Decision.REJECT_NEW

    def test_progress_policy_preempts_less_complete_victim(self):
        """When the *newcomer* has progress (re-evaluation after partial
        transmission) and the victim has strictly less, it is discarded."""
        rule = RejectRule(PreemptionPolicy.PROGRESS)
        victim, new, plans = self._setup(victim_progress=0.0)
        new.flow_states[0].bytes_sent = 1.0  # newcomer progressed somehow
        d = rule.evaluate(plans, new, {1: victim, 2: new})
        assert d.decision is Decision.DISCARD_VICTIM


class TestProspectiveRatio:
    def test_counts_already_completed_flows(self):
        rule = RejectRule(PreemptionPolicy.PROSPECTIVE)
        ts = _task_state(1, [1.0, 1.0], deadline=10.0)
        done, planned = ts.flow_states
        done.finish(2.0)  # finished in time, no plan in the trial
        plans = _plans((planned, 5.0))
        assert rule._prospective(plans, ts) == pytest.approx(1.0)

    def test_missing_flows_lower_ratio(self):
        rule = RejectRule(PreemptionPolicy.PROSPECTIVE)
        ts = _task_state(1, [1.0, 1.0], deadline=4.0)
        a, b = ts.flow_states
        plans = _plans((a, 3.0), (b, 9.0))
        assert rule._prospective(plans, ts) == pytest.approx(0.5)
