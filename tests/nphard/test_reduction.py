"""The §IV-B reduction, executed and cross-checked.

The paper claims: n tasks schedulable ⟺ Hamiltonian circuit.  The
construction actually certifies a 2-factor (degree-2 edge subset); on
graphs where every 2-factor is a Hamiltonian circuit the equivalence is
exact, and the property test pins the 2-factor characterisation on
arbitrary small graphs.
"""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.nphard.reduction import (
    ReductionTask,
    build_instance,
    edf_feasible,
    edge_task,
    has_hamiltonian_circuit,
    has_two_factor,
    schedulable_subset_exists,
)
from repro.util.errors import ConfigurationError


class TestEdgeTask:
    def test_four_half_flows(self):
        t = edge_task(0, 1, 2, n=5)
        assert len(t.flows) == 4
        assert all(size == 0.5 for size, _ in t.flows)

    def test_paper_deadlines(self):
        t = edge_task(0, 1, 2, n=5)
        deadlines = sorted(d for _, d in t.flows)
        assert deadlines == [2.0, 3.0, 8.0, 9.0]  # i1+1, i2+1, 2n-i2, 2n-i1

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            edge_task(0, 5, 0, n=5)


class TestEdfFeasible:
    def test_empty_feasible(self):
        assert edf_feasible([])

    def test_single_task_feasible(self):
        assert edf_feasible([edge_task(0, 0, 1, n=3)])

    def test_overload_infeasible(self):
        # many flows with deadline 1: work 2.0 > 1.0
        t = ReductionTask(0, [(0.5, 1.0)] * 4)
        assert not edf_feasible([t])

    def test_exactly_tight_feasible(self):
        t = ReductionTask(0, [(0.5, 0.5), (0.5, 1.0)])
        assert edf_feasible([t])


class TestKnownGraphs:
    def test_cycle_graph_schedulable(self):
        g = nx.cycle_graph(5)
        tasks = build_instance(g)
        assert schedulable_subset_exists(tasks, 5)
        assert has_hamiltonian_circuit(g)

    def test_path_graph_not_schedulable(self):
        g = nx.path_graph(4)
        tasks = build_instance(g)
        assert not schedulable_subset_exists(tasks, 4)
        assert not has_hamiltonian_circuit(g)

    def test_complete_graph(self):
        g = nx.complete_graph(4)
        assert schedulable_subset_exists(build_instance(g), 4)
        assert has_hamiltonian_circuit(g)

    def test_star_graph_not_schedulable(self):
        g = nx.star_graph(3)  # 4 nodes, center degree 3
        assert not schedulable_subset_exists(build_instance(g), 4)
        assert not has_hamiltonian_circuit(g)

    def test_petersen_like_small(self):
        g = nx.petersen_graph()
        # expensive exact check is out of reach; just verify instance shape
        tasks = build_instance(g)
        assert len(tasks) == g.number_of_edges()
        assert all(len(t.flows) == 4 for t in tasks)

    def test_two_triangles_two_factor_without_hamiltonian(self):
        """The documented gap: two disjoint triangles have a 2-factor
        (themselves) but no Hamiltonian circuit — the reduction's
        schedulability follows the 2-factor, not the circuit."""
        g = nx.Graph()
        g.add_edges_from([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
        assert has_two_factor(g)
        assert not has_hamiltonian_circuit(g)
        assert schedulable_subset_exists(build_instance(g), 6)


@settings(max_examples=30, deadline=None)
@given(st.integers(4, 6), st.floats(0.3, 0.9), st.integers(0, 1000))
def test_schedulability_equals_two_factor(n, p, seed):
    """On random small graphs, n-task schedulability ⟺ 2-factor existence."""
    g = nx.gnp_random_graph(n, p, seed=seed)
    if g.number_of_edges() > 11:  # keep the exact search tractable
        g.remove_edges_from(list(g.edges())[11:])
    tasks = build_instance(g)
    assert schedulable_subset_exists(tasks, n) == has_two_factor(g)


@settings(max_examples=20, deadline=None)
@given(st.integers(4, 6), st.floats(0.3, 0.9), st.integers(0, 1000))
def test_hamiltonian_implies_schedulable(n, p, seed):
    """One direction of the paper's claim holds unconditionally."""
    g = nx.gnp_random_graph(n, p, seed=seed)
    if g.number_of_edges() > 11:
        g.remove_edges_from(list(g.edges())[11:])
    if has_hamiltonian_circuit(g):
        assert schedulable_subset_exists(build_instance(g), n)
