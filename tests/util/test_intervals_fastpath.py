"""Exactness properties of the allocation fast-path scans.

The fast path of Alg. 2/3 replaces ``union → complement → fit`` with fused
single-pass scans (:meth:`IntervalSet.occupied_fit_end`,
:meth:`IntervalSet.occupied_first_fit`, :func:`occupied_fit_end_pair`) and
the adaptive splice merge (:func:`merge_boundaries`).  Every one of them
must agree with the reference pipeline *float-for-float* — the perf
benchmark asserts bit-identical scheduling decisions across modes, and any
divergence here would surface there as a different plan.

The strategies deliberately include EPS-hairline geometry (boundaries a
fraction of EPS apart across the two operand lists) because that is where
the fused scans' glue predicates can drift from the canonical merge.
"""

import pytest

from hypothesis import given, settings, strategies as st

from repro.util.intervals import (
    EPS,
    IntervalSet,
    _merge_union,
    merge_boundaries,
    occupied_fit_end_pair,
)

HORIZON = 1e6  # always enough idle time: fits never raise against it

coarse = st.floats(min_value=0.0, max_value=60.0,
                   allow_nan=False, allow_infinity=False)

# EPS-hairline coordinates: a coarse grid plus jitter of 0–3 EPS, so two
# independently-canonical sets land boundaries within fractions of EPS of
# each other — the regime where glue decisions are made.
hairline = st.builds(
    lambda base, jitter: base * 0.5 + jitter * (EPS / 2.0),
    st.integers(min_value=0, max_value=40),
    st.integers(min_value=0, max_value=6),
)

coords = st.one_of(coarse, hairline)


@st.composite
def intervals(draw):
    a = draw(coords)
    width = draw(st.one_of(
        st.floats(min_value=0.01, max_value=15.0),
        st.integers(min_value=3, max_value=8).map(lambda k: k * (EPS / 2.0)),
    ))
    return (a, a + width)


@st.composite
def interval_sets(draw):
    return IntervalSet(draw(st.lists(intervals(), max_size=10)))


durations = st.floats(min_value=0.05, max_value=25.0)
releases = st.floats(min_value=0.0, max_value=40.0)


# -- merge_boundaries ------------------------------------------------------


@given(interval_sets(), interval_sets())
def test_merge_boundaries_equals_sweep(a, b):
    """The splice merge is float-identical to the two-pointer sweep."""
    assert merge_boundaries(a._b, b._b) == _merge_union(a._b, b._b)


@given(interval_sets(), st.lists(intervals(), min_size=8, max_size=20))
def test_merge_boundaries_splice_branch(a, many):
    """Force the asymmetric splice branch (one side much longer)."""
    big = IntervalSet(many)
    small = a
    assert merge_boundaries(big._b, small._b) == _merge_union(big._b, small._b)
    assert merge_boundaries(small._b, big._b) == _merge_union(small._b, big._b)


# -- fused occupied-set scans ---------------------------------------------


@given(interval_sets(), durations, releases)
@settings(max_examples=200)
def test_occupied_fit_end_matches_reference(occ, duration, lo):
    ref = occ.complement(lo, HORIZON).idle_fit_end(duration, lo)
    assert occ.occupied_fit_end(duration, lo, HORIZON) == ref


@given(interval_sets(), durations, releases)
@settings(max_examples=200)
def test_occupied_first_fit_matches_reference(occ, duration, lo):
    ref = occ.complement(lo, HORIZON).first_fit(duration, lo)
    got = occ.occupied_first_fit(duration, lo, HORIZON)
    assert got._b == ref._b


@given(interval_sets(), durations, releases,
       st.floats(min_value=0.0, max_value=80.0))
def test_occupied_fit_end_raises_with_reference(occ, duration, lo, hi):
    """Tight horizons: the fused scan fails exactly when the reference does."""
    idle = occ.complement(lo, hi)
    try:
        ref = idle.idle_fit_end(duration, lo)
    except ValueError:
        with pytest.raises(ValueError):
            occ.occupied_fit_end(duration, lo, hi)
    else:
        assert occ.occupied_fit_end(duration, lo, hi) == ref


@given(interval_sets(), interval_sets(), durations, releases)
@settings(max_examples=300)
def test_pair_scan_matches_union_fit(a, b, duration, lo):
    """occupied_fit_end_pair == merge the lists, then fit — exactly."""
    union = IntervalSet._from_boundaries(merge_boundaries(a._b, b._b))
    ref = union.occupied_fit_end(duration, lo, HORIZON)
    assert occupied_fit_end_pair(a._b, b._b, duration, lo, HORIZON) == ref


@given(interval_sets(), interval_sets(), durations, releases,
       st.floats(min_value=0.0, max_value=80.0))
def test_pair_scan_raises_with_union(a, b, duration, lo, hi):
    union = IntervalSet._from_boundaries(merge_boundaries(a._b, b._b))
    try:
        ref = union.occupied_fit_end(duration, lo, hi)
    except ValueError:
        with pytest.raises(ValueError):
            occupied_fit_end_pair(a._b, b._b, duration, lo, hi)
    else:
        assert occupied_fit_end_pair(a._b, b._b, duration, lo, hi) == ref


# -- stop_at abort contract ------------------------------------------------


@given(interval_sets(), durations, releases,
       st.floats(min_value=0.0, max_value=120.0))
def test_occupied_fit_end_stop_at_contract(occ, duration, lo, stop_at):
    """stop_at never changes a winning result; losers report >= stop_at.

    A completion strictly below ``stop_at`` must come back exact; one at or
    above it may come back as either the exact value or ``inf`` (the abort
    fires only when the scan proves the bound mid-walk) — both compare
    identically against a best-so-far of ``stop_at``.
    """
    exact = occ.occupied_fit_end(duration, lo, HORIZON)
    got = occ.occupied_fit_end(duration, lo, HORIZON, stop_at=stop_at)
    if exact < stop_at:
        assert got == exact
    else:
        assert got == exact or got == float("inf")
        assert got >= stop_at


@given(interval_sets(), interval_sets(), durations, releases,
       st.floats(min_value=0.0, max_value=120.0))
def test_pair_scan_stop_at_contract(a, b, duration, lo, stop_at):
    exact = occupied_fit_end_pair(a._b, b._b, duration, lo, HORIZON)
    got = occupied_fit_end_pair(a._b, b._b, duration, lo, HORIZON,
                                stop_at=stop_at)
    if exact < stop_at:
        assert got == exact
    else:
        assert got == exact or got == float("inf")
        assert got >= stop_at


# -- first_idle_after ------------------------------------------------------


@given(interval_sets(), releases, st.floats(min_value=0.0, max_value=120.0))
def test_first_idle_after_matches_complement(occ, lo, hi):
    idle = occ.complement(lo, hi)
    ref = idle.start() if idle else None
    assert occ.first_idle_after(lo, hi) == ref


# -- deterministic hairline regressions -----------------------------------


def test_pair_scan_head_glue_suppresses_phantom_gap():
    """An interval the bisect skipped (ends within EPS past ``lo``) can
    still glue to the other list's first interval; the scan must not count
    the sub-2·EPS sliver between them as an idle gap, exactly as the
    canonical merge would not."""
    a = [0.0, 10.0 + 0.5 * EPS]       # skipped: ends at lo + 0.5 EPS
    b = [10.0 + 1.2 * EPS, 11.0]      # gap from lo is 1.2 EPS > EPS ...
    lo = 10.0
    # ... but merge glues them (1.2 EPS start <= 0.5 EPS end + EPS):
    union = IntervalSet._from_boundaries(merge_boundaries(a, b))
    assert len(union) == 1
    ref = union.occupied_fit_end(1.0, lo, HORIZON)
    assert occupied_fit_end_pair(a, b, 1.0, lo, HORIZON) == ref
    assert ref == pytest.approx(12.0, abs=1e-6)


def test_pair_scan_genuine_hairline_gap_is_kept():
    """A joint gap wider than EPS that no glue covers stays usable."""
    a = [0.0, 10.0]
    b = [10.0 + 3.0 * EPS, 11.0]
    union = IntervalSet._from_boundaries(merge_boundaries(a, b))
    ref = union.occupied_fit_end(5.0, 0.0, HORIZON)
    assert occupied_fit_end_pair(a, b, 5.0, 0.0, HORIZON) == ref


def test_pair_scan_interleaved_exactness():
    """Alternating intervals from the two lists, fractional-EPS spacing."""
    a, b = [], []
    t = 0.0
    for k in range(12):
        (a if k % 2 == 0 else b).extend((t, t + 0.5))
        t += 0.5 + (k % 4) * (EPS / 2.0)
    union = IntervalSet._from_boundaries(merge_boundaries(a, b))
    for dur in (0.3, 1.0, 2.7):
        for lo in (0.0, 0.25, 1.0):
            ref = union.occupied_fit_end(dur, lo, HORIZON)
            assert occupied_fit_end_pair(a, b, dur, lo, HORIZON) == ref
