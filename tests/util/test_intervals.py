"""Unit tests for IntervalSet — the occupancy primitive under TAPS Alg. 3."""

import pytest

from repro.util.intervals import EPS, IntervalSet, union_all


class TestConstruction:
    def test_empty(self):
        s = IntervalSet()
        assert not s
        assert len(s) == 0
        assert s.measure() == 0.0

    def test_single(self):
        s = IntervalSet.single(1.0, 3.0)
        assert len(s) == 1
        assert s.intervals() == [(1.0, 3.0)]
        assert s.measure() == 2.0

    def test_from_iterable(self):
        s = IntervalSet([(0, 1), (2, 3)])
        assert s.intervals() == [(0, 1), (2, 3)]

    def test_from_iterable_merges_overlaps(self):
        s = IntervalSet([(0, 2), (1, 3)])
        assert s.intervals() == [(0, 3)]

    def test_degenerate_ignored(self):
        s = IntervalSet([(1.0, 1.0)])
        assert not s

    def test_copy_is_independent(self):
        a = IntervalSet.single(0, 1)
        b = a.copy()
        b.add(5, 6)
        assert len(a) == 1
        assert len(b) == 2

    def test_start_end(self):
        s = IntervalSet([(1, 2), (5, 9)])
        assert s.start() == 1
        assert s.end() == 9

    def test_start_of_empty_raises(self):
        with pytest.raises(ValueError):
            IntervalSet().start()
        with pytest.raises(ValueError):
            IntervalSet().end()

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(IntervalSet())


class TestAdd:
    def test_append_right(self):
        s = IntervalSet.single(0, 1)
        s.add(2, 3)
        assert s.intervals() == [(0, 1), (2, 3)]

    def test_insert_left(self):
        s = IntervalSet.single(2, 3)
        s.add(0, 1)
        assert s.intervals() == [(0, 1), (2, 3)]

    def test_insert_middle(self):
        s = IntervalSet([(0, 1), (4, 5)])
        s.add(2, 3)
        assert s.intervals() == [(0, 1), (2, 3), (4, 5)]

    def test_merge_touching_right(self):
        s = IntervalSet.single(0, 1)
        s.add(1, 2)
        assert s.intervals() == [(0, 2)]

    def test_merge_overlapping(self):
        s = IntervalSet.single(0, 2)
        s.add(1, 5)
        assert s.intervals() == [(0, 5)]

    def test_absorb_multiple(self):
        s = IntervalSet([(0, 1), (2, 3), (4, 5)])
        s.add(0.5, 4.5)
        assert s.intervals() == [(0, 5)]

    def test_subset_add_is_noop(self):
        s = IntervalSet.single(0, 10)
        s.add(3, 4)
        assert s.intervals() == [(0, 10)]

    def test_within_eps_merges(self):
        s = IntervalSet.single(0, 1)
        s.add(1 + EPS / 2, 2)
        assert len(s) == 1

    def test_invariants_after_many_adds(self):
        s = IntervalSet()
        for i in range(20):
            s.add(i * 0.7, i * 0.7 + 0.5)
        s.check_invariants()


class TestSubtract:
    def test_remove_middle_splits(self):
        s = IntervalSet.single(0, 10)
        s.subtract(4, 6)
        assert s.intervals() == [(0, 4), (6, 10)]

    def test_remove_prefix(self):
        s = IntervalSet.single(0, 10)
        s.subtract(0, 3)
        assert s.intervals() == [(3, 10)]

    def test_remove_suffix(self):
        s = IntervalSet.single(0, 10)
        s.subtract(7, 12)
        assert s.intervals() == [(0, 7)]

    def test_remove_all(self):
        s = IntervalSet.single(0, 10)
        s.subtract(-1, 11)
        assert not s

    def test_remove_disjoint_noop(self):
        s = IntervalSet.single(0, 1)
        s.subtract(2, 3)
        assert s.intervals() == [(0, 1)]

    def test_subtract_then_add_roundtrip(self):
        s = IntervalSet.single(0, 10)
        s.subtract(4, 6)
        s.add(4, 6)
        assert s.intervals() == [(0, 10)]


class TestQueries:
    def test_contains_half_open(self):
        s = IntervalSet.single(1, 2)
        assert s.contains(1.0)
        assert s.contains(1.5)
        assert not s.contains(2.0)
        assert not s.contains(0.999999)

    def test_contains_multi(self):
        s = IntervalSet([(0, 1), (2, 3), (4, 5)])
        assert s.contains(2.5)
        assert not s.contains(3.5)

    def test_overlaps(self):
        s = IntervalSet([(0, 1), (3, 4)])
        assert s.overlaps(0.5, 2)
        assert s.overlaps(2, 3.5)
        assert not s.overlaps(1, 3)
        assert not s.overlaps(5, 6)

    def test_overlaps_degenerate_false(self):
        s = IntervalSet.single(0, 10)
        assert not s.overlaps(5, 5)

    def test_equality(self):
        assert IntervalSet([(0, 1)]) == IntervalSet([(0, 1)])
        assert IntervalSet([(0, 1)]) != IntervalSet([(0, 2)])
        assert IntervalSet() == IntervalSet()

    def test_next_boundary(self):
        s = IntervalSet([(1, 2), (4, 6)])
        assert s.next_boundary(0) == 1
        assert s.next_boundary(1) == 2
        assert s.next_boundary(2) == 4
        assert s.next_boundary(5) == 6
        assert s.next_boundary(6) is None

    def test_repr_shows_intervals(self):
        assert "[1, 2)" in repr(IntervalSet.single(1, 2))


class TestAlgebra:
    def test_union_disjoint(self):
        a = IntervalSet([(0, 1)])
        b = IntervalSet([(2, 3)])
        assert a.union(b).intervals() == [(0, 1), (2, 3)]

    def test_union_overlapping(self):
        a = IntervalSet([(0, 2)])
        b = IntervalSet([(1, 3)])
        assert a.union(b).intervals() == [(0, 3)]

    def test_union_with_empty(self):
        a = IntervalSet([(0, 2)])
        assert a.union(IntervalSet()) == a
        assert IntervalSet().union(a) == a

    def test_union_update_in_place(self):
        a = IntervalSet([(0, 1)])
        a.union_update(IntervalSet([(1, 2)]))
        assert a.intervals() == [(0, 2)]

    def test_union_all(self):
        sets = [IntervalSet([(i, i + 1)]) for i in range(3)]
        assert union_all(sets).intervals() == [(0, 3)]

    def test_union_all_empty(self):
        assert not union_all([])

    def test_intersection(self):
        a = IntervalSet([(0, 5)])
        b = IntervalSet([(3, 8)])
        assert a.intersection(b).intervals() == [(3, 5)]

    def test_intersection_disjoint(self):
        a = IntervalSet([(0, 1)])
        b = IntervalSet([(2, 3)])
        assert not a.intersection(b)

    def test_intersection_multi(self):
        a = IntervalSet([(0, 2), (4, 6)])
        b = IntervalSet([(1, 5)])
        assert a.intersection(b).intervals() == [(1, 2), (4, 5)]

    def test_complement_of_empty_is_window(self):
        idle = IntervalSet().complement(0, 10)
        assert idle.intervals() == [(0, 10)]

    def test_complement_basic(self):
        occ = IntervalSet([(2, 4), (6, 8)])
        idle = occ.complement(0, 10)
        assert idle.intervals() == [(0, 2), (4, 6), (8, 10)]

    def test_complement_clips_to_window(self):
        occ = IntervalSet([(-5, 2), (8, 15)])
        idle = occ.complement(0, 10)
        assert idle.intervals() == [(2, 8)]

    def test_complement_full_coverage_is_empty(self):
        occ = IntervalSet([(0, 10)])
        assert not occ.complement(2, 8)

    def test_double_complement_roundtrip(self):
        occ = IntervalSet([(2, 4), (6, 8)])
        back = occ.complement(0, 10).complement(0, 10)
        assert back == occ


class TestFirstFit:
    def test_fits_in_first_gap(self):
        idle = IntervalSet([(0, 10)])
        slices = idle.first_fit(3, after=0)
        assert slices.intervals() == [(0, 3)]

    def test_respects_after(self):
        idle = IntervalSet([(0, 10)])
        slices = idle.first_fit(3, after=4)
        assert slices.intervals() == [(4, 7)]

    def test_splits_across_gaps(self):
        idle = IntervalSet([(0, 2), (5, 10)])
        slices = idle.first_fit(4, after=0)
        assert slices.intervals() == [(0, 2), (5, 7)]

    def test_skips_gaps_before_after(self):
        idle = IntervalSet([(0, 1), (3, 10)])
        slices = idle.first_fit(2, after=2)
        assert slices.intervals() == [(3, 5)]

    def test_partial_gap_at_after(self):
        # only 1 unit available in (3,4) — must fail
        idle = IntervalSet([(0, 4)])
        with pytest.raises(ValueError):
            idle.first_fit(2, after=3)

    def test_insufficient_raises(self):
        idle = IntervalSet([(0, 1)])
        with pytest.raises(ValueError):
            idle.first_fit(2, after=0)

    def test_zero_duration_empty(self):
        idle = IntervalSet([(0, 10)])
        assert not idle.first_fit(0, after=0)

    def test_exact_fill(self):
        idle = IntervalSet([(0, 2), (3, 4)])
        slices = idle.first_fit(3, after=0)
        assert slices.intervals() == [(0, 2), (3, 4)]

    def test_idle_fit_end_matches_first_fit(self):
        idle = IntervalSet([(0, 2), (5, 9), (12, 20)])
        for dur in (0.5, 2, 3, 6, 10):
            for after in (0, 1, 4, 6):
                slices = idle.first_fit(dur, after)
                assert slices.end() == pytest.approx(idle.idle_fit_end(dur, after))

    def test_idle_fit_end_insufficient_raises(self):
        idle = IntervalSet([(0, 1)])
        with pytest.raises(ValueError):
            idle.idle_fit_end(5, after=0)
