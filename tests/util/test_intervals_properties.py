"""Property-based tests for IntervalSet.

The occupancy ledger is the load-bearing data structure of TAPS Alg. 3;
these properties pin down the algebra it relies on: canonical form after
arbitrary mutation, measure conservation, complement duality, and the
first-fit contract (earliest-possible, exact-duration, inside-idle).
"""

import pytest

from hypothesis import given, settings, strategies as st

from repro.util.intervals import EPS, IntervalSet, union_all

# intervals comfortably wider than EPS so merging semantics are unambiguous
coords = st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False)


@st.composite
def intervals(draw):
    a = draw(coords)
    width = draw(st.floats(min_value=0.01, max_value=20.0))
    return (a, a + width)


@st.composite
def interval_sets(draw):
    return IntervalSet(draw(st.lists(intervals(), max_size=12)))


@given(interval_sets())
def test_canonical_form(s):
    s.check_invariants()


@given(interval_sets(), intervals())
def test_add_preserves_invariants_and_grows(s, iv):
    before = s.measure()
    s.add(*iv)
    s.check_invariants()
    assert s.measure() >= before - 1e-9
    assert s.measure() <= before + (iv[1] - iv[0]) + 1e-9


@given(interval_sets(), intervals())
def test_subtract_preserves_invariants_and_shrinks(s, iv):
    before = s.measure()
    s.subtract(*iv)
    s.check_invariants()
    assert s.measure() <= before + 1e-9
    assert not s.overlaps(*iv)


@given(interval_sets(), interval_sets())
def test_union_commutative(a, b):
    assert a.union(b) == b.union(a)


@given(interval_sets(), interval_sets())
def test_union_measure_bounds(a, b):
    u = a.union(b)
    u.check_invariants()
    assert u.measure() >= max(a.measure(), b.measure()) - 1e-9
    assert u.measure() <= a.measure() + b.measure() + 1e-9


@given(interval_sets(), interval_sets())
def test_inclusion_exclusion(a, b):
    u, i = a.union(b), a.intersection(b)
    assert u.measure() + i.measure() == pytest.approx(a.measure() + b.measure(), abs=1e-6)


@given(interval_sets(), interval_sets())
def test_intersection_subset_of_both(a, b):
    i = a.intersection(b)
    for s, e in i:
        mid = (s + e) / 2
        assert a.contains(mid)
        assert b.contains(mid)


@given(interval_sets())
def test_complement_duality(s):
    lo, hi = -1.0, 150.0
    idle = s.complement(lo, hi)
    # idle and occupied partition the window (up to EPS slivers)
    clipped = s.intersection(IntervalSet.single(lo, hi))
    assert idle.measure() + clipped.measure() == \
        pytest.approx(hi - lo, abs=1e-5)
    assert idle.intersection(clipped).measure() < 1e-6


@given(st.lists(interval_sets(), max_size=6))
def test_union_all_equals_pairwise(sets):
    folded = IntervalSet()
    for s in sets:
        folded = folded.union(s)
    assert union_all(sets) == folded


@given(
    interval_sets(),
    st.floats(min_value=0.05, max_value=30.0),
    st.floats(min_value=0.0, max_value=50.0),
)
@settings(max_examples=200)
def test_first_fit_contract(occ, duration, after):
    """first_fit over the complement: exact duration, inside idle time,
    nothing usable earlier, completion matches idle_fit_end."""
    horizon = 500.0  # always enough idle in [after, horizon)
    idle = occ.complement(0.0, horizon)
    slices = idle.first_fit(duration, after)
    slices.check_invariants()
    # exact duration
    assert slices.measure() == pytest.approx(duration, abs=1e-6)
    # nothing before `after`
    assert slices.start() >= after - EPS
    # every slice lies in idle time (never overlaps occupancy)
    assert occ.intersection(slices).measure() < 1e-6
    # greedy-earliest: completion equals the oracle
    assert slices.end() == pytest.approx(
        idle.idle_fit_end(duration, after), abs=1e-6
    )
    # greedy-earliest, stronger: no idle gap before the first slice start
    # is left unused (the first slice starts at the first idle point >= after)
    first_start = slices.start()
    probe = idle.intersection(IntervalSet.single(after, first_start))
    assert probe.measure() < 1e-6


@given(interval_sets(), st.floats(min_value=-5, max_value=120))
def test_next_boundary_is_a_boundary(s, t):
    b = s.next_boundary(t)
    if b is None:
        flat = [x for iv in s for x in iv]
        assert all(x <= t + EPS for x in flat)
    else:
        assert b > t
        flat = [x for iv in s for x in iv]
        assert any(abs(b - x) < 1e-12 for x in flat)


@given(interval_sets(), intervals())
def test_contains_consistent_with_overlaps(s, iv):
    mid = (iv[0] + iv[1]) / 2
    if s.contains(mid):
        assert s.overlaps(*iv)
