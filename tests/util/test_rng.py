"""Seeded RNG helpers: reproducibility and stream independence."""

import numpy as np

from repro.util.rng import DEFAULT_SEED, make_rng, spawn


def test_same_seed_same_stream():
    a, b = make_rng(7), make_rng(7)
    assert np.array_equal(a.random(10), b.random(10))


def test_different_seeds_differ():
    assert not np.array_equal(make_rng(1).random(10), make_rng(2).random(10))


def test_none_uses_default_seed():
    assert np.array_equal(make_rng(None).random(5), make_rng(DEFAULT_SEED).random(5))


def test_generator_passthrough():
    g = np.random.default_rng(3)
    assert make_rng(g) is g


def test_spawn_children_independent_and_reproducible():
    kids1 = spawn(make_rng(11), 3)
    kids2 = spawn(make_rng(11), 3)
    for a, b in zip(kids1, kids2):
        assert np.array_equal(a.random(5), b.random(5))
    # siblings differ from each other
    vals = [tuple(k.random(5)) for k in kids1]
    assert len(set(vals)) == 3


def test_spawn_does_not_consume_parent_stream_identically():
    parent = make_rng(11)
    spawn(parent, 2)
    # the parent is still usable afterwards
    assert parent.random() >= 0.0
