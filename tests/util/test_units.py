"""Unit constants and the E_ij (expected transmission time) helper."""

import pytest

from repro.util.units import (
    GB,
    Gbps,
    KB,
    MB,
    Mbps,
    ms,
    transmission_time,
    us,
)


def test_size_constants_decimal():
    assert KB == 1_000
    assert MB == 1_000_000
    assert GB == 1_000_000_000


def test_time_constants():
    assert ms == pytest.approx(1e-3)
    assert us == pytest.approx(1e-6)


def test_rate_constants_are_bytes_per_second():
    assert Gbps == pytest.approx(1e9 / 8)
    assert Mbps == pytest.approx(1e6 / 8)
    assert Gbps == 1000 * Mbps


def test_paper_default_flow_duration():
    # 200 KB at 1 Gbps = 1.6 ms — the E_ij behind the paper's defaults
    assert transmission_time(200 * KB, 1 * Gbps) == pytest.approx(1.6 * ms)


def test_transmission_time_zero_size():
    assert transmission_time(0, Gbps) == 0.0


def test_transmission_time_invalid_rate():
    with pytest.raises(ValueError):
        transmission_time(100, 0)
    with pytest.raises(ValueError):
        transmission_time(100, -1)


def test_transmission_time_negative_size():
    with pytest.raises(ValueError):
        transmission_time(-1, Gbps)
