"""ASCII Gantt rendering."""

import pytest

from repro.core.allocation import FlowPlan
from repro.sim.state import FlowState
from repro.util.intervals import IntervalSet
from repro.viz.gantt import render_flow_gantt, render_link_gantt
from repro.workload.flow import Flow


def _plan(fid, slices, deadline, completion):
    f = Flow(flow_id=fid, task_id=fid, src="a", dst="b",
             size=1.0, release=0.0, deadline=deadline)
    return FlowPlan(flow_state=FlowState(flow=f), path=(0,),
                    slices=IntervalSet(slices), completion=completion)


def test_flow_gantt_rows_and_marks():
    plans = [
        _plan(0, [(0, 1)], deadline=2.0, completion=1.0),
        _plan(1, [(1, 3)], deadline=2.0, completion=3.0),  # misses
    ]
    out = render_flow_gantt(plans, width=20)
    lines = out.splitlines()
    assert len(lines) == 3  # header + 2 rows
    assert "f0.0" in lines[1] and "MISS" not in lines[1]
    assert "f1.1" in lines[2] and "MISS" in lines[2]
    assert "█" in lines[1]


def test_flow_gantt_deadline_marker():
    out = render_flow_gantt([_plan(0, [(0, 1)], 2.0, 1.0)],
                            width=40, span=(0.0, 4.0))
    row = out.splitlines()[1]
    # deadline at t=2 → marker at 50% of the 40-cell row
    cells = row.split(" ", 1)[1]
    assert cells[20] == "|"


def test_flow_gantt_custom_labels():
    out = render_flow_gantt([_plan(0, [(0, 1)], 2.0, 1.0)],
                            labels={0: "f11"})
    assert "f11" in out


def test_flow_gantt_empty():
    assert render_flow_gantt([]) == "(no plans)"


def test_link_gantt():
    occ = {
        "SL->SR": IntervalSet([(0, 1), (2, 3)]),
        "idle-link": IntervalSet(),
    }
    out = render_link_gantt(occ, width=30)
    assert "SL->SR" in out
    assert "idle-link" not in out  # empty links skipped


def test_link_gantt_all_idle():
    assert render_link_gantt({"x": IntervalSet()}) == "(all links idle)"


def test_fig3_gantt_matches_paper_schedule():
    """Render the actual TAPS fig3 allocation; f4's split must show two
    separate transmission bursts."""
    from repro.core.controller import TapsScheduler
    from repro.sim.engine import Engine
    from repro.workload.traces import fig3_trace

    topo, tasks = fig3_trace()
    sched = TapsScheduler()
    engine = Engine(topo, tasks, sched)
    sched.attach(topo, engine.path_service)
    for ts in engine.task_states:
        sched.on_task_arrival(ts, 0.0)
    out = render_flow_gantt(sched.plans.values(), width=30, span=(0.0, 3.0))
    f4_row = [l for l in out.splitlines() if l.strip().startswith("f3.3")][0]
    cells = f4_row.split(" ", 1)[1]
    # burst, gap, burst: at least one idle cell strictly between filled cells
    first = cells.find("█")
    last = cells.rfind("█")
    assert "·" in cells[first:last]