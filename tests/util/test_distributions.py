"""Empirical CDFs and heavy-tailed samplers."""

import numpy as np
import pytest

from repro.util.distributions import (
    DATA_MINING_SIZE_CDF,
    EmpiricalCDF,
    WEB_SEARCH_SIZE_CDF,
    bounded_pareto,
)
from repro.util.errors import ConfigurationError


class TestEmpiricalCDF:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EmpiricalCDF([(1.0, 0.0)])  # too few
        with pytest.raises(ConfigurationError):
            EmpiricalCDF([(1.0, 0.1), (2.0, 1.0)])  # doesn't start at 0
        with pytest.raises(ConfigurationError):
            EmpiricalCDF([(1.0, 0.0), (2.0, 0.9)])  # doesn't reach 1
        with pytest.raises(ConfigurationError):
            EmpiricalCDF([(2.0, 0.0), (1.0, 1.0)])  # values decrease

    def test_samples_within_support(self):
        cdf = EmpiricalCDF([(1.0, 0.0), (5.0, 1.0)])
        rng = np.random.default_rng(1)
        x = cdf.sample(rng, 1000)
        assert x.min() >= 1.0 and x.max() <= 5.0

    def test_uniform_special_case(self):
        cdf = EmpiricalCDF([(0.0, 0.0), (10.0, 1.0)])
        rng = np.random.default_rng(2)
        x = cdf.sample(rng, 20000)
        assert x.mean() == pytest.approx(5.0, rel=0.05)
        assert cdf.mean() == pytest.approx(5.0, rel=1e-3)

    def test_quantiles(self):
        cdf = EmpiricalCDF([(0.0, 0.0), (10.0, 0.5), (100.0, 1.0)])
        assert cdf.quantile(0.0) == 0.0
        assert cdf.quantile(0.5) == 10.0
        assert cdf.quantile(1.0) == 100.0
        with pytest.raises(ConfigurationError):
            cdf.quantile(1.5)

    def test_empirical_mean_matches_samples(self):
        rng = np.random.default_rng(3)
        x = WEB_SEARCH_SIZE_CDF.sample(rng, 100_000)
        assert x.mean() == pytest.approx(WEB_SEARCH_SIZE_CDF.mean(), rel=0.03)

    def test_published_cdfs_heavy_tailed(self):
        """Median far below mean — the signature of the trace CDFs."""
        for cdf in (WEB_SEARCH_SIZE_CDF, DATA_MINING_SIZE_CDF):
            assert cdf.quantile(0.5) < cdf.mean() / 2


class TestBoundedPareto:
    def test_bounds_respected(self):
        rng = np.random.default_rng(4)
        x = bounded_pareto(rng, 5000, alpha=1.2, lo=10.0, hi=1000.0)
        assert x.min() >= 10.0 - 1e-9
        assert x.max() <= 1000.0 + 1e-6

    def test_heavy_tail(self):
        rng = np.random.default_rng(5)
        x = bounded_pareto(rng, 50_000)
        assert np.median(x) < x.mean() / 2

    def test_validation(self):
        rng = np.random.default_rng(6)
        with pytest.raises(ConfigurationError):
            bounded_pareto(rng, 10, alpha=0)
        with pytest.raises(ConfigurationError):
            bounded_pareto(rng, 10, lo=5, hi=5)


class TestGeneratorIntegration:
    def test_size_dist_validation(self):
        from repro.util.errors import ConfigurationError
        from repro.workload.generator import WorkloadConfig

        with pytest.raises(ConfigurationError):
            WorkloadConfig(flow_size_dist="zipf")

    @pytest.mark.parametrize("dist", ["websearch", "datamining", "pareto"])
    def test_mean_rescaled_to_config(self, dist):
        from repro.workload.generator import WorkloadConfig, generate_workload

        hosts = [f"h{i}" for i in range(10)]
        cfg = WorkloadConfig(num_tasks=400, mean_flows_per_task=5,
                             mean_flow_size=200e3, flow_size_dist=dist,
                             min_flow_size=1.0, seed=9)
        tasks = generate_workload(cfg, hosts)
        sizes = np.array([f.size for t in tasks for f in t.flows])
        assert sizes.mean() == pytest.approx(200e3, rel=0.25)

    def test_heavy_tail_visible_in_workload(self):
        from repro.workload.generator import WorkloadConfig, generate_workload

        hosts = [f"h{i}" for i in range(10)]
        cfg = WorkloadConfig(num_tasks=300, mean_flows_per_task=5,
                             mean_flow_size=200e3,
                             flow_size_dist="datamining",
                             min_flow_size=1.0, seed=9)
        tasks = generate_workload(cfg, hosts)
        sizes = np.array([f.size for t in tasks for f in t.flows])
        assert np.median(sizes) < sizes.mean() / 2
