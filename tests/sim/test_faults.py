"""Link-failure injection: engine enforcement and scheduler reactions."""

import pytest

from repro.core.controller import TapsScheduler
from repro.sched.fair import FairSharing
from repro.sim.engine import Engine
from repro.sim.faults import FaultSchedule, LinkFault
from repro.sim.state import FlowStatus
from repro.util.errors import ConfigurationError
from repro.workload.flow import make_task
from repro.workload.traces import dumbbell


class TestFaultSchedule:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LinkFault(0, start=2.0, end=1.0)
        with pytest.raises(ConfigurationError):
            LinkFault(0, start=-1.0, end=1.0)

    def test_down_links_by_time(self):
        fs = FaultSchedule([LinkFault(3, 1.0, 2.0), LinkFault(5, 1.5, 4.0)])
        assert fs.down_links(0.5) == set()
        assert fs.down_links(1.2) == {3}
        assert fs.down_links(1.7) == {3, 5}
        assert fs.down_links(3.0) == {5}
        assert fs.down_links(4.5) == set()

    def test_boundaries(self):
        fs = FaultSchedule([LinkFault(3, 1.0, 2.0)])
        assert fs.next_boundary(0.0) == 1.0
        assert fs.next_boundary(1.0) == 2.0
        assert fs.next_boundary(2.0) is None

    def test_permanent_fault(self):
        fs = FaultSchedule([LinkFault(0, 1.0, float("inf"))])
        assert fs.down_links(1e12) == {0}
        assert fs.next_boundary(0.5) == 1.0
        assert fs.next_boundary(1.5) is None

    def test_outage_of(self):
        f = LinkFault(0, 1.0, 2.0)
        fs = FaultSchedule([f])
        assert fs.outage_of(0, 1.5) == f
        assert fs.outage_of(0, 2.5) is None
        assert fs.outage_of(9, 1.5) is None

    def test_next_boundary_within_old_tolerance(self):
        """A boundary landing within 1e-12 after t must still be returned:
        the old `b > t + 1e-12` comparison skipped it, so the engine never
        woke up for the transition and applied the outage late (or never)."""
        t = 1.0
        b = t + 1e-13
        fs = FaultSchedule([LinkFault(0, b, 2.0)])
        assert fs.next_boundary(t) == b
        # strictness is preserved: the boundary itself is not "after" itself
        assert fs.next_boundary(b) == 2.0
        assert fs.next_boundary(2.0) is None

    def test_next_boundary_distinguishes_boundaries_1e13_apart(self):
        """Two distinct boundaries 1e-13 apart are visited one at a time,
        in order — neither is merged into or shadowed by the other."""
        b0, b1 = 1.0, 1.0 + 1e-13
        assert b0 != b1  # representable as distinct floats
        fs = FaultSchedule([LinkFault(0, b0, 5.0), LinkFault(1, b1, 6.0)])
        assert fs.next_boundary(0.0) == b0
        assert fs.next_boundary(b0) == b1
        assert fs.next_boundary(b1) == 5.0
        assert fs.next_boundary(5.0) == 6.0
        assert fs.next_boundary(6.0) is None

    def test_accepts_any_sequence(self):
        """The annotated-as-list-defaulted-to-tuple signature now honestly
        takes any sequence (and the empty default stays safe to share)."""
        fault = LinkFault(2, 1.0, 2.0)
        for source in ([fault], (fault,), FaultSchedule([fault]).faults):
            fs = FaultSchedule(source)
            assert fs.down_links(1.5) == {2}
        assert not FaultSchedule()
        assert FaultSchedule().next_boundary(0.0) is None

    def test_outage_of_overlapping_windows_returns_longest_cover(self):
        """Two overlapping outages of the same link: during the overlap the
        link stays down until the *later* end, so outage_of must return the
        window extending furthest, not whichever sorted first."""
        early = LinkFault(0, 1.0, 3.0)
        late = LinkFault(0, 2.0, 6.0)
        fs = FaultSchedule([early, late])
        assert fs.outage_of(0, 1.5) == early  # only cover
        assert fs.outage_of(0, 2.5) == late   # overlap: maximal end wins
        assert fs.outage_of(0, 4.0) == late
        assert fs.outage_of(0, 6.0) is None
        # symmetric construction order must not change the answer
        fs2 = FaultSchedule([late, early])
        assert fs2.outage_of(0, 2.5) == late
        # a permanent fault dominates any finite overlap
        perm = LinkFault(0, 2.5, float("inf"))
        fs3 = FaultSchedule([early, late, perm])
        assert fs3.outage_of(0, 2.7) == perm


class TestEngineEnforcement:
    def test_oblivious_scheduler_stalls_through_outage(self):
        """Fair sharing ignores faults; its flow pauses over the outage
        and resumes, finishing late by exactly the outage length."""
        topo = dumbbell(1)
        mid = topo.link("SL", "SR").index
        tasks = [make_task(0, 0.0, 20.0, [("L0", "R0", 4.0)], 0)]
        result = Engine(
            topo, tasks, FairSharing(),
            faults=[LinkFault(mid, 1.0, 3.0)],
        ).run()
        fs = result.flow_states[0]
        assert fs.status is FlowStatus.COMPLETED
        assert fs.completed_at == pytest.approx(6.0)  # 4 work + 2 outage

    def test_outage_can_cause_miss(self):
        topo = dumbbell(1)
        mid = topo.link("SL", "SR").index
        tasks = [make_task(0, 0.0, 5.0, [("L0", "R0", 4.0)], 0)]
        result = Engine(
            topo, tasks, FairSharing(),
            faults=[LinkFault(mid, 1.0, 3.0)],
        ).run()
        fs = result.flow_states[0]
        assert not fs.met_deadline

    def test_flow_not_crossing_fault_unaffected(self):
        topo = dumbbell(2)
        access = topo.link("L1", "SL").index
        tasks = [make_task(0, 0.0, 20.0, [("L0", "R0", 2.0)], 0)]
        result = Engine(
            topo, tasks, FairSharing(),
            faults=[LinkFault(access, 0.0, 10.0)],
        ).run()
        assert result.flow_states[0].completed_at == pytest.approx(2.0)

    def test_no_faults_is_noop(self):
        topo = dumbbell(1)
        tasks = [make_task(0, 0.0, 20.0, [("L0", "R0", 2.0)], 0)]
        a = Engine(topo, tasks, FairSharing()).run()
        b = Engine(topo, tasks, FairSharing(), faults=[]).run()
        assert a.flow_states[0].completed_at == b.flow_states[0].completed_at


class TestTapsRerouting:
    def test_reroutes_around_outage_on_fat_tree(self):
        """With an alternate path available the controller moves the flow
        and the deadline is still met."""
        from repro.net.fattree import FatTree

        topo = FatTree(4)
        cap = topo.uniform_capacity()
        tasks = [make_task(0, 0.0, 1.0,
                           [("h0_0_0", "h1_0_0", 10 * cap * 0.01)], 0)]
        sched = TapsScheduler()
        engine = Engine(topo, tasks, sched)
        # find the first planned path, fail one of its core links mid-flight
        sched.attach(topo, engine.path_service)
        # plan once to learn the initial route
        probe_engine = Engine(topo, tasks, TapsScheduler())
        probe_sched = probe_engine.scheduler
        probe_sched.attach(topo, probe_engine.path_service)
        probe_sched.on_task_arrival(probe_engine.task_states[0], 0.0)
        initial_path = probe_sched.plan_of(0).path
        core_link = initial_path[2]  # agg -> core link

        result = Engine(
            topo, tasks, TapsScheduler(),
            faults=[LinkFault(core_link, 0.02, 0.5)],
        ).run()
        fs = result.flow_states[0]
        assert fs.met_deadline
        assert core_link not in fs.path  # moved off the failed link
        assert fs.completed_at == pytest.approx(0.1, rel=0.35)

    def test_drops_doomed_task_without_alternative(self):
        """On the single-path dumbbell a long outage makes the deadline
        impossible; TAPS stops the task immediately (no waste after the
        fault) instead of dribbling to a miss."""
        topo = dumbbell(1)
        mid = topo.link("SL", "SR").index
        tasks = [make_task(0, 0.0, 5.0, [("L0", "R0", 4.0)], 0)]
        sched = TapsScheduler()
        result = Engine(
            topo, tasks, sched, faults=[LinkFault(mid, 1.0, 4.0)],
        ).run()
        fs = result.flow_states[0]
        assert fs.status is FlowStatus.TERMINATED
        assert fs.bytes_sent == pytest.approx(1.0)  # nothing after t=1
        assert sched.stats.tasks_dropped_on_fault == 1

    def test_survivable_outage_replans_and_completes(self):
        """A short outage leaves enough slack: the controller re-times the
        flow after recovery and the deadline holds."""
        topo = dumbbell(1)
        mid = topo.link("SL", "SR").index
        tasks = [make_task(0, 0.0, 10.0, [("L0", "R0", 4.0)], 0)]
        sched = TapsScheduler()
        result = Engine(
            topo, tasks, sched, faults=[LinkFault(mid, 1.0, 3.0)],
        ).run()
        fs = result.flow_states[0]
        assert fs.met_deadline
        assert fs.completed_at == pytest.approx(6.0)
        assert sched.stats.fault_reroutes >= 1

    def test_admission_during_outage_rejects_unreachable(self):
        """A task arriving while its only path is down is rejected, not
        queued into a miss."""
        topo = dumbbell(2)
        mid = topo.link("SL", "SR").index
        tasks = [make_task(0, 1.5, 3.5, [("L0", "R0", 1.0)], 0)]
        sched = TapsScheduler()
        result = Engine(
            topo, tasks, sched,
            faults=[LinkFault(mid, 1.0, 10.0)],
        ).run()
        assert result.task_states[0].accepted is False
        assert result.flow_states[0].bytes_sent == 0.0

    def test_new_admissions_avoid_down_links(self):
        from repro.net.fattree import FatTree

        topo = FatTree(4)
        cap = topo.uniform_capacity()
        # fail one agg->core link for the whole run; admissions at t>0
        # must never route across it
        victim = topo.link("a0_0", "c0_0").index
        tasks = [
            make_task(i, 0.01 * i, 1.0 + 0.01 * i,
                      [("h0_0_0", "h1_0_0", cap * 0.01)], i)
            for i in range(6)
        ]
        result = Engine(
            topo, tasks, TapsScheduler(),
            faults=[LinkFault(victim, 0.0, float("inf"))],
        ).run()
        for fs in result.flow_states:
            if fs.path is not None and fs.bytes_sent > 0:
                assert victim not in fs.path
        assert result.tasks_completed == 6


class TestAllSchedulersUnderFaults:
    @pytest.mark.parametrize(
        "name", ["Fair Sharing", "D3", "PDQ", "Baraat", "Varys", "D2TCP", "TAPS"]
    )
    def test_terminates_and_conserves_under_outage(self, name):
        """Every policy survives a mid-run outage: the run terminates,
        accounting is conserved, and nothing transmits across the dead
        link while it is down."""
        from repro.sched.registry import make_scheduler

        topo = dumbbell(3)
        mid = topo.link("SL", "SR").index
        tasks = [
            make_task(i, 0.2 * i, 6.0 + 0.2 * i,
                      [(f"L{i}", f"R{i}", 2.0)], i)
            for i in range(3)
        ]

        class Audit:
            def __init__(self):
                self.violations = 0

            def on_advance(self, t0, t1, active):
                if 1.0 <= t0 and t1 <= 2.5:
                    for fs in active:
                        if fs.rate > 0 and mid in fs.path:
                            self.violations += 1

        audit = Audit()
        result = Engine(
            topo, tasks, make_scheduler(name), hooks=(audit,),
            faults=[LinkFault(mid, 1.0, 2.5)],
        ).run()
        assert audit.violations == 0, name
        for fs in result.flow_states:
            assert fs.status in (
                FlowStatus.COMPLETED, FlowStatus.TERMINATED, FlowStatus.REJECTED
            )
            assert abs(fs.bytes_sent + fs.remaining - fs.flow.size) \
                <= 1e-4 * fs.flow.size + 1e-9
