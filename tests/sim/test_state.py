"""FlowState / TaskState lifecycle semantics."""

import pytest

from repro.sim.state import FlowState, FlowStatus, TaskOutcome, TaskState
from repro.workload.flow import make_task


def _task(sizes=(10.0, 20.0), deadline=5.0):
    return make_task(0, 0.0, deadline,
                     [("a", "b", s) for s in sizes], first_flow_id=0)


def _states(task):
    ts = TaskState(task=task)
    ts.flow_states = [FlowState(flow=f) for f in task.flows]
    return ts


class TestFlowState:
    def test_initial(self):
        fs = _states(_task()).flow_states[0]
        assert fs.remaining == fs.flow.size
        assert fs.active
        assert fs.rate == 0.0
        assert not fs.met_deadline

    def test_advance_integrates(self):
        fs = _states(_task()).flow_states[0]
        fs.rate = 2.0
        fs.advance(3.0)
        assert fs.remaining == pytest.approx(4.0)
        assert fs.bytes_sent == pytest.approx(6.0)

    def test_advance_clamps_at_zero(self):
        fs = _states(_task()).flow_states[0]
        fs.rate = 100.0
        fs.advance(10.0)
        assert fs.remaining == 0.0
        assert fs.bytes_sent == pytest.approx(fs.flow.size)

    def test_advance_negative_dt_rejected(self):
        fs = _states(_task()).flow_states[0]
        with pytest.raises(ValueError):
            fs.advance(-1.0)

    def test_finish_in_time(self):
        fs = _states(_task()).flow_states[0]
        fs.finish(4.0)
        assert fs.status is FlowStatus.COMPLETED
        assert fs.met_deadline
        assert not fs.active

    def test_finish_late_not_met(self):
        fs = _states(_task()).flow_states[0]
        fs.finish(6.0)  # deadline is 5
        assert fs.status is FlowStatus.COMPLETED
        assert not fs.met_deadline

    def test_finish_exactly_at_deadline_met(self):
        fs = _states(_task()).flow_states[0]
        fs.finish(5.0)
        assert fs.met_deadline

    def test_kill_statuses(self):
        ts = _states(_task())
        a, b = ts.flow_states
        a.kill(FlowStatus.REJECTED)
        b.kill(FlowStatus.TERMINATED)
        assert not a.active and not b.active
        assert a.rate == b.rate == 0.0

    def test_kill_invalid_status_rejected(self):
        fs = _states(_task()).flow_states[0]
        with pytest.raises(ValueError):
            fs.kill(FlowStatus.COMPLETED)


class TestTaskState:
    def test_completion_ratio(self):
        ts = _states(_task(sizes=(10.0, 30.0)))
        ts.flow_states[0].bytes_sent = 10.0
        ts.flow_states[1].bytes_sent = 10.0
        assert ts.completion_ratio == pytest.approx(0.5)

    def test_settle_completed(self):
        ts = _states(_task())
        for fs in ts.flow_states:
            fs.finish(3.0)
        assert ts.settle() is TaskOutcome.COMPLETED

    def test_settle_failed_if_any_flow_late(self):
        ts = _states(_task())
        ts.flow_states[0].finish(3.0)
        ts.flow_states[1].finish(9.0)  # late
        assert ts.settle() is TaskOutcome.FAILED

    def test_settle_failed_if_any_flow_killed(self):
        ts = _states(_task())
        ts.flow_states[0].finish(3.0)
        ts.flow_states[1].kill(FlowStatus.REJECTED)
        assert ts.settle() is TaskOutcome.FAILED

    def test_unfinished_flows(self):
        ts = _states(_task())
        assert len(ts.unfinished_flows) == 2
        ts.flow_states[0].finish(1.0)
        assert len(ts.unfinished_flows) == 1
