"""EngineCounters semantics across run shapes."""

import pytest

from repro.core.controller import TapsScheduler
from repro.sched.fair import FairSharing
from repro.sim.engine import Engine
from repro.workload.flow import make_task
from repro.workload.traces import dumbbell


def test_arrival_and_completion_counts():
    topo = dumbbell(3)
    tasks = [make_task(i, 0.5 * i, 10.0 + 0.5 * i,
                       [(f"L{i}", f"R{i}", 1.0)], i) for i in range(3)]
    result = Engine(topo, tasks, FairSharing()).run()
    assert result.counters.arrivals == 3
    assert result.counters.completions == 3
    assert result.counters.deadline_events == 0
    assert result.counters.stalled_kills == 0


def test_deadline_events_counted_once_per_flow():
    topo = dumbbell(2)
    tasks = [make_task(i, 0.0, 1.0, [(f"L{i}", f"R{i}", 50.0)], i)
             for i in range(2)]
    result = Engine(topo, tasks, FairSharing()).run()
    assert result.counters.deadline_events == 2


def test_rate_recomputes_bounded_by_events():
    topo = dumbbell(2)
    tasks = [make_task(i, 0.0, 10.0, [(f"L{i}", f"R{i}", 1.0)], i)
             for i in range(2)]
    result = Engine(topo, tasks, TapsScheduler()).run()
    assert 0 < result.counters.rate_recomputes <= result.counters.events


def test_rejected_tasks_do_not_produce_completions():
    topo = dumbbell(1)
    tasks = [make_task(0, 0.0, 0.5, [("L0", "R0", 5.0)], 0)]
    result = Engine(topo, tasks, TapsScheduler()).run()
    assert result.counters.completions == 0
    assert result.counters.arrivals == 1


def test_deadline_scan_skipped_before_watermark():
    """With far deadlines most events never pay the per-flow expiry scan,
    and no expiry is ever missed."""
    topo = dumbbell(3)
    # many staggered arrivals, deadlines far beyond every completion
    tasks = [make_task(i, 0.1 * i, 100.0 + i, [(f"L{i % 3}", f"R{i % 3}", 1.0)], i)
             for i in range(9)]
    result = Engine(topo, tasks, FairSharing()).run()
    assert result.counters.deadline_scan_skips > 0
    assert result.counters.deadline_events == 0
    assert result.counters.completions == 9


def test_watermark_still_fires_every_expiry():
    """The skip optimisation must not eat deadline notifications: two
    flows that cannot finish still expire exactly once each."""
    topo = dumbbell(2)
    tasks = [make_task(i, 0.0, 1.0, [(f"L{i}", f"R{i}", 50.0)], i)
             for i in range(2)]
    result = Engine(topo, tasks, FairSharing()).run()
    assert result.counters.deadline_events == 2


def test_quiet_engine_is_cheap():
    """An idle stretch between two tasks costs O(1) events, not polling."""
    topo = dumbbell(1)
    tasks = [
        make_task(0, 0.0, 5.0, [("L0", "R0", 1.0)], 0),
        make_task(1, 1000.0, 1005.0, [("L0", "R0", 1.0)], 1),
    ]
    result = Engine(topo, tasks, TapsScheduler()).run()
    assert result.counters.events < 30
    assert result.tasks_completed == 2
