"""Property tests for the packet simulator (conservation, monotonicity)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.packet import PacketSimulator
from repro.workload.traces import dumbbell


@st.composite
def packet_case(draw):
    flows = []
    for fid in range(draw(st.integers(1, 5))):
        pair = draw(st.integers(0, 3))
        flows.append((
            fid,
            pair,
            draw(st.floats(0.1, 3.0)),   # size
            draw(st.floats(0.0, 2.0)),   # release
        ))
    return flows


@settings(max_examples=50, deadline=None)
@given(packet_case())
def test_all_packets_delivered(case):
    topo = dumbbell(4)
    sim = PacketSimulator(topo, dt=0.05)
    for fid, pair, size, release in case:
        sim.add_flow(fid, topo.shortest_path(f"L{pair}", f"R{pair}"),
                     size, release)
    out = sim.run()
    for fid, pair, size, release in case:
        r = out[fid]
        assert r.completed_at is not None
        assert r.packets == max(1, math.ceil(size / sim.packet_bytes))
        # cannot finish faster than serialised size after release
        assert r.completed_at >= release + (r.packets - 1) * sim.dt


@settings(max_examples=30, deadline=None)
@given(packet_case())
def test_throughput_bounded_by_capacity(case):
    """The bottleneck link forwards at most one packet per slot, so total
    completion is at least the aggregate backlog through it."""
    topo = dumbbell(4)
    dt = 0.05
    sim = PacketSimulator(topo, dt=dt)
    total_packets = 0
    for fid, pair, size, release in case:
        sim.add_flow(fid, topo.shortest_path(f"L{pair}", f"R{pair}"),
                     size, release)
        total_packets += max(1, math.ceil(size / sim.packet_bytes))
    out = sim.run()
    last = max(r.completed_at for r in out.values())
    first_release = min(release for _, _, _, release in case)
    # every packet crossed the shared middle link, one per slot
    assert last >= first_release + total_packets * dt - dt


def test_finer_dt_converges_to_fluid():
    """Shrinking the slot shrinks the pipeline error monotonically-ish."""
    topo = dumbbell(1)
    path = topo.shortest_path("L0", "R0")
    errors = []
    for dt in (0.2, 0.05, 0.01):
        sim = PacketSimulator(topo, dt=dt)
        sim.add_flow(0, path, size=1.0, release=0.0)
        t = sim.run()[0].completed_at
        errors.append(abs(t - 1.0))
    assert errors[2] < errors[0]
    assert errors[2] <= 0.05
