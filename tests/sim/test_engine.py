"""Engine mechanics, isolated from real policies via stub schedulers."""

import pytest

from repro.sched.base import Scheduler
from repro.sim.engine import Engine
from repro.sim.state import FlowStatus, TaskOutcome
from repro.util.errors import SimulationError
from repro.workload.flow import make_task
from repro.workload.traces import dumbbell


class ConstantRate(Scheduler):
    """Admits everything; every active flow gets a fixed rate."""

    name = "const"

    def __init__(self, rate: float, quit_on_miss: bool = True) -> None:
        super().__init__()
        self._r = rate
        self._quit = quit_on_miss

    def on_task_arrival(self, ts, now):
        ts.accepted = True
        self._admit_flows(ts)

    def assign_rates(self, now):
        for fs in self.active_flows:
            fs.rate = self._r

    def on_deadline_expired(self, fs, now):
        if self._quit:
            super().on_deadline_expired(fs, now)


class NeverSend(ConstantRate):
    """Admits flows but never gives them bandwidth — stalls."""

    name = "never"

    def __init__(self) -> None:
        # deadline-oblivious so the stall (not the deadline kill) ends it
        super().__init__(rate=0.0, quit_on_miss=False)


def _one_task(size=2.0, deadline=10.0, arrival=0.0, tid=0, fid=0):
    return make_task(tid, arrival, arrival + deadline,
                     [("L0", "R0", size)], first_flow_id=fid)


class TestBasics:
    def test_single_flow_completes_at_size_over_rate(self):
        topo = dumbbell(1)
        result = Engine(topo, [_one_task(size=3.0)], ConstantRate(1.0)).run()
        fs = result.flow_states[0]
        assert fs.status is FlowStatus.COMPLETED
        assert fs.completed_at == pytest.approx(3.0)
        assert result.tasks_completed == 1

    def test_flow_missing_deadline_terminated(self):
        topo = dumbbell(1)
        result = Engine(topo, [_one_task(size=30.0, deadline=5.0)],
                        ConstantRate(1.0)).run()
        fs = result.flow_states[0]
        assert fs.status is FlowStatus.TERMINATED
        assert not fs.met_deadline
        assert fs.bytes_sent == pytest.approx(5.0)  # sent until the deadline
        assert result.task_states[0].outcome is TaskOutcome.FAILED

    def test_deadline_agnostic_scheduler_runs_past_deadline(self):
        topo = dumbbell(1)
        result = Engine(topo, [_one_task(size=30.0, deadline=5.0)],
                        ConstantRate(1.0, quit_on_miss=False)).run()
        fs = result.flow_states[0]
        assert fs.status is FlowStatus.COMPLETED
        assert fs.completed_at == pytest.approx(30.0)
        assert not fs.met_deadline

    def test_arrivals_in_time_order(self):
        topo = dumbbell(2)
        tasks = [
            make_task(0, 5.0, 15.0, [("L0", "R0", 1.0)], 0),
            make_task(1, 1.0, 11.0, [("L1", "R1", 1.0)], 1),
        ]
        result = Engine(topo, tasks, ConstantRate(1.0)).run()
        # task 1 (arrives first) completes at 2; task 0 at 6
        by_id = {ts.task.task_id: ts for ts in result.task_states}
        assert by_id[1].flow_states[0].completed_at == pytest.approx(2.0)
        assert by_id[0].flow_states[0].completed_at == pytest.approx(6.0)

    def test_flow_not_started_before_release(self):
        topo = dumbbell(1)
        result = Engine(topo, [_one_task(size=2.0, arrival=7.0)],
                        ConstantRate(1.0)).run()
        assert result.flow_states[0].completed_at == pytest.approx(9.0)

    def test_stalled_flows_killed_for_termination(self):
        topo = dumbbell(1)
        result = Engine(topo, [_one_task()], NeverSend()).run()
        fs = result.flow_states[0]
        assert fs.status is FlowStatus.TERMINATED
        assert result.counters.stalled_kills == 1

    def test_counters(self):
        topo = dumbbell(2)
        tasks = [_one_task(tid=0, fid=0),
                 make_task(1, 0.5, 10.5, [("L1", "R1", 1.0)], 1)]
        result = Engine(topo, tasks, ConstantRate(1.0)).run()
        assert result.counters.arrivals == 2
        assert result.counters.completions == 2
        assert result.counters.events > 0

    def test_max_events_guard(self):
        topo = dumbbell(1)
        engine = Engine(topo, [_one_task()], ConstantRate(1.0), max_events=1)
        with pytest.raises(SimulationError):
            engine.run()

    def test_result_metadata(self):
        topo = dumbbell(1)
        result = Engine(topo, [_one_task()], ConstantRate(1.0)).run()
        assert result.scheduler_name == "const"
        assert result.topology_name == topo.name


class TestHooks:
    def test_advance_and_settle_hooks_called(self):
        calls = {"advance": 0, "flow": 0, "task": 0}

        class Hook:
            def on_advance(self, t0, t1, active):
                calls["advance"] += 1
                assert t1 > t0

            def on_flow_settled(self, fs, now):
                calls["flow"] += 1

            def on_task_settled(self, ts, now):
                calls["task"] += 1

        topo = dumbbell(1)
        Engine(topo, [_one_task()], ConstantRate(1.0), hooks=(Hook(),)).run()
        assert calls["advance"] >= 1
        assert calls["flow"] == 1
        assert calls["task"] == 1

    def test_hooks_optional_methods(self):
        class Partial:
            pass  # no callbacks at all

        topo = dumbbell(1)
        Engine(topo, [_one_task()], ConstantRate(1.0), hooks=(Partial(),)).run()


class TestNumerics:
    def test_progress_conservation(self):
        """bytes_sent + remaining == size for every flow, always."""
        topo = dumbbell(3)
        tasks = [
            make_task(i, i * 0.3, i * 0.3 + 4.0, [(f"L{i}", f"R{i}", 2.5)], i)
            for i in range(3)
        ]
        result = Engine(topo, tasks, ConstantRate(0.7)).run()
        for fs in result.flow_states:
            assert fs.bytes_sent + fs.remaining == pytest.approx(fs.flow.size, rel=1e-6)

    def test_completion_exactly_at_deadline_counts_met(self):
        topo = dumbbell(1)
        # size 5 at rate 1 with deadline exactly 5
        result = Engine(topo, [_one_task(size=5.0, deadline=5.0)],
                        ConstantRate(1.0)).run()
        assert result.flow_states[0].met_deadline

    def test_many_simultaneous_arrivals(self):
        topo = dumbbell(8)
        tasks = [
            make_task(i, 0.0, 100.0, [(f"L{i}", f"R{i}", 1.0)], i)
            for i in range(8)
        ]
        result = Engine(topo, tasks, ConstantRate(1.0)).run()
        assert result.tasks_completed == 8


def test_engine_is_single_shot():
    topo = dumbbell(1)
    engine = Engine(topo, [_one_task()], ConstantRate(1.0))
    engine.run()
    with pytest.raises(SimulationError):
        engine.run()
