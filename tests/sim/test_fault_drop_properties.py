"""Property test: fault drops are counted exactly once.

A task caught mid-slice by an outage must end up in exactly one bucket —
rerouted (and still planned), or dropped with one ``tasks_dropped_on_fault``
count and one ``task-drop`` trace event.  The old code had two ways to get
this wrong: the backstop-expiry path double-counted drops of
already-registered tasks, and a skipped fault boundary (``next_boundary``
tolerance) could apply an outage late so the same task was hit twice.  The
decision trace makes the claim checkable: drop events, drop counters, and
final flow states must all agree, under arbitrary fault schedules.
"""

from hypothesis import given, settings, strategies as st

from repro.core.controller import TapsScheduler
from repro.sim.engine import Engine
from repro.sim.faults import FaultSchedule, LinkFault
from repro.sim.state import FlowStatus
from repro.trace import TraceRecorder, audit_trace
from repro.workload.flow import make_task
from repro.workload.traces import dumbbell


def _workload():
    """Six tasks over three host pairs, staggered so faults can hit tasks
    pending, mid-slice, and near-complete."""
    return [
        make_task(i, arrival=0.5 * i, deadline=4.0 + 0.5 * i,
                  flow_specs=[(f"L{i % 3}", f"R{i % 3}", 2.0)], first_flow_id=i)
        for i in range(6)
    ]


_TOPO = dumbbell(3)

_fault = st.tuples(
    st.integers(min_value=0, max_value=len(_TOPO.links) - 1),
    st.floats(min_value=0.0, max_value=6.0),
    st.one_of(
        st.floats(min_value=0.05, max_value=8.0),
        st.just(float("inf")),
    ),
)


@settings(max_examples=25, deadline=None)
@given(faults=st.lists(_fault, max_size=4))
def test_fault_drops_counted_exactly_once(faults):
    topo = dumbbell(3)
    schedule = FaultSchedule(
        [LinkFault(link, start, start + dur) for link, start, dur in faults]
    )
    recorder = TraceRecorder()
    sched = TapsScheduler()
    result = Engine(topo, _workload(), sched, faults=schedule,
                    trace=recorder).run()

    drops = recorder.events_of_kind("task-drop")
    dropped_ids = [e.task_id for e in drops]
    # exactly once: no task is ever dropped twice, whatever the cause mix
    assert len(dropped_ids) == len(set(dropped_ids))

    # the counter counts fault drops and nothing else (backstop kills are
    # reclassified), and never goes negative
    fault_drops = [e for e in drops if e.cause == "fault"]
    assert sched.stats.tasks_dropped_on_fault == len(fault_drops)
    # without a batch window every arrival registers, so each backstop
    # kill maps 1:1 onto a backstop-cause drop event
    assert sched.stats.backstop_kills == len(
        [e for e in drops if e.cause == "backstop"]
    )

    # every dropped task had been admitted, and its flows were terminated
    accepted = {e.task_id for e in recorder.events_of_kind("task-accept")}
    by_id = {ts.task.task_id: ts for ts in result.task_states}
    for tid in dropped_ids:
        assert tid in accepted
        for fs in by_id[tid].flow_states:
            assert fs.status in (FlowStatus.TERMINATED, FlowStatus.COMPLETED)

    # an accepted task the faults spared ends completed, not limbo
    for ts in result.task_states:
        tid = ts.task.task_id
        if tid in accepted and tid not in set(dropped_ids):
            preempted = {
                e.victim_task_id for e in recorder.events_of_kind("preemption")
            }
            realloc_drops = set()
            for e in recorder.events_of_kind("fault-reallocation"):
                realloc_drops.update(e.dropped_tasks)
            if tid not in preempted and tid not in realloc_drops:
                assert all(not fs.active for fs in ts.flow_states)

    # and the whole trace stays invariant-clean under every schedule
    report = audit_trace(recorder)
    assert report.ok, report.summary()
