"""Engine corner cases: degenerate workloads, coincident events."""

import pytest

from repro.core.controller import TapsScheduler
from repro.sched.fair import FairSharing
from repro.sim.engine import Engine
from repro.sim.faults import LinkFault
from repro.sim.state import FlowStatus
from repro.workload.flow import make_task
from repro.workload.traces import dumbbell


def test_empty_workload():
    topo = dumbbell(1)
    result = Engine(topo, [], FairSharing()).run()
    assert result.flow_states == []
    assert result.tasks_completed == 0
    assert result.finished_at == 0.0


def test_empty_workload_all_schedulers(any_scheduler):
    topo = dumbbell(2)
    result = Engine(topo, [], any_scheduler).run()
    assert result.counters.completions == 0


def test_single_tiny_flow():
    topo = dumbbell(1)
    tasks = [make_task(0, 0.0, 1.0, [("L0", "R0", 1e-6)], 0)]
    result = Engine(topo, tasks, FairSharing()).run()
    assert result.flows_met == 1


def test_coincident_arrival_and_fault_boundary():
    """A task arriving at the exact instant its path fails must not be
    admitted onto the dead link."""
    topo = dumbbell(1)
    mid = topo.link("SL", "SR").index
    tasks = [make_task(0, 1.0, 3.0, [("L0", "R0", 1.0)], 0)]
    sched = TapsScheduler()
    result = Engine(topo, tasks, sched,
                    faults=[LinkFault(mid, 1.0, 10.0)]).run()
    assert result.flow_states[0].bytes_sent == 0.0


def test_coincident_completion_and_deadline():
    """A flow finishing exactly at its deadline is met, not killed."""
    topo = dumbbell(1)
    tasks = [make_task(0, 0.0, 3.0, [("L0", "R0", 3.0)], 0)]
    result = Engine(topo, tasks, TapsScheduler()).run()
    fs = result.flow_states[0]
    assert fs.status is FlowStatus.COMPLETED
    assert fs.met_deadline


def test_many_tasks_same_instant():
    topo = dumbbell(8)
    tasks = [make_task(i, 0.0, 100.0, [(f"L{i}", f"R{i}", 1.0)], i)
             for i in range(8)]
    result = Engine(topo, tasks, TapsScheduler()).run()
    assert result.tasks_completed == 8


def test_duplicate_endpoint_pairs_contend():
    """Two flows between the same host pair serialize on access links."""
    topo = dumbbell(1)
    tasks = [
        make_task(0, 0.0, 10.0, [("L0", "R0", 2.0)], 0),
        make_task(1, 0.0, 10.0, [("L0", "R0", 2.0)], 1),
    ]
    result = Engine(topo, tasks, TapsScheduler()).run()
    ends = sorted(fs.completed_at for fs in result.flow_states)
    assert ends == [pytest.approx(2.0), pytest.approx(4.0)]


def test_fault_entirely_before_traffic_is_noop():
    topo = dumbbell(1)
    mid = topo.link("SL", "SR").index
    tasks = [make_task(0, 5.0, 15.0, [("L0", "R0", 1.0)], 0)]
    result = Engine(topo, tasks, TapsScheduler(),
                    faults=[LinkFault(mid, 0.0, 1.0)]).run()
    assert result.flow_states[0].completed_at == pytest.approx(6.0)


def test_fault_on_unused_topology_region():
    topo = dumbbell(3)
    far = topo.link("L2", "SL").index
    tasks = [make_task(0, 0.0, 10.0, [("L0", "R0", 1.0)], 0)]
    result = Engine(topo, tasks, TapsScheduler(),
                    faults=[LinkFault(far, 0.0, float("inf"))]).run()
    assert result.tasks_completed == 1


def test_overlapping_faults_on_same_link():
    topo = dumbbell(1)
    mid = topo.link("SL", "SR").index
    tasks = [make_task(0, 0.0, 20.0, [("L0", "R0", 2.0)], 0)]
    result = Engine(
        topo, tasks, FairSharing(),
        faults=[LinkFault(mid, 0.5, 2.0), LinkFault(mid, 1.0, 3.0)],
    ).run()
    fs = result.flow_states[0]
    # 0.5 sent before the outage, the rest after t=3
    assert fs.completed_at == pytest.approx(4.5)


def test_zero_rate_task_eventually_killed_by_deadline():
    """A flow the scheduler never serves dies at its deadline, and the
    run still terminates."""
    from repro.sched.base import Scheduler

    class Starver(Scheduler):
        name = "starver"

        def on_task_arrival(self, ts, now):
            ts.accepted = True
            self._admit_flows(ts)

        def assign_rates(self, now):
            for fs in self.active_flows:
                fs.rate = 0.0

    topo = dumbbell(1)
    tasks = [make_task(0, 0.0, 2.0, [("L0", "R0", 1.0)], 0)]
    result = Engine(topo, tasks, Starver()).run()
    fs = result.flow_states[0]
    assert fs.status is FlowStatus.TERMINATED
    assert result.finished_at <= 2.0 + 1e-6
