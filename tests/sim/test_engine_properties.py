"""Property-based engine tests with an adversarial random-rate scheduler.

The scheduler below assigns arbitrary (but capacity-bounded) rates and
randomly chooses deadline reactions — if the engine's bookkeeping is
correct, conservation and termination must survive any such policy.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.sched.base import Scheduler
from repro.sim.engine import Engine
from repro.sim.state import FlowStatus
from repro.workload.flow import make_task
from repro.workload.traces import dumbbell


class RandomRates(Scheduler):
    """Admits everything; draws a fresh random rate split per recompute."""

    name = "random"

    def __init__(self, seed: int, quit_on_miss: bool) -> None:
        super().__init__()
        self._rng = np.random.default_rng(seed)
        self._quit = quit_on_miss

    def on_task_arrival(self, ts, now):
        ts.accepted = True
        self._admit_flows(ts)

    def assign_rates(self, now):
        # random weights, scaled so no link exceeds capacity
        if not self.active_flows:
            return
        weights = self._rng.uniform(0.1, 1.0, size=len(self.active_flows))
        load: dict[int, float] = {}
        for fs, w in zip(self.active_flows, weights):
            for l in fs.path:
                load[l] = load.get(l, 0.0) + w
        assert self.topology is not None
        scale = min(
            self.topology.links[l].capacity / total for l, total in load.items()
        )
        for fs, w in zip(self.active_flows, weights):
            fs.rate = w * scale

    def on_deadline_expired(self, fs, now):
        if self._quit:
            super().on_deadline_expired(fs, now)


@st.composite
def workloads(draw):
    n = draw(st.integers(1, 6))
    tasks = []
    t = 0.0
    fid = 0
    for tid in range(n):
        t += draw(st.floats(0.0, 1.0))
        pair = draw(st.integers(0, 3))
        size = draw(st.floats(0.3, 3.0))
        slack = draw(st.floats(0.5, 8.0))
        tasks.append(
            make_task(tid, t, t + slack, [(f"L{pair}", f"R{pair}", size)], fid)
        )
        fid += 1
    return tasks


@settings(max_examples=60, deadline=None)
@given(workloads(), st.integers(0, 10_000), st.booleans())
def test_conservation_and_termination(tasks, seed, quit_on_miss):
    topo = dumbbell(4)
    engine = Engine(topo, tasks, RandomRates(seed, quit_on_miss),
                    max_events=200_000)
    result = engine.run()
    for fs in result.flow_states:
        # every flow terminal
        assert fs.status in (
            FlowStatus.COMPLETED, FlowStatus.TERMINATED, FlowStatus.REJECTED
        )
        # conservation
        assert abs(fs.bytes_sent + fs.remaining - fs.flow.size) \
            <= 1e-4 * fs.flow.size + 1e-9
        # completed flows really delivered everything
        if fs.status is FlowStatus.COMPLETED:
            assert fs.remaining <= 1e-4 * fs.flow.size + 1e-9
        # nothing transmits before its release
        if fs.completed_at is not None:
            assert fs.completed_at >= fs.flow.release


@settings(max_examples=40, deadline=None)
@given(workloads(), st.integers(0, 10_000))
def test_quit_on_miss_stops_at_deadline(tasks, seed):
    topo = dumbbell(4)
    result = Engine(topo, tasks, RandomRates(seed, quit_on_miss=True),
                    max_events=200_000).run()
    for fs in result.flow_states:
        if fs.status is FlowStatus.TERMINATED:
            # a quit flow can never have delivered everything in time
            assert not fs.met_deadline
