"""Packet-level cross-validation of the fluid model.

Every fluid-model completion time must be reproducible by a
store-and-forward packet simulation up to the pipeline error bound
``(hops + queue transient) · dt`` — evidence the flow-level abstraction
(the paper's and ours) does not distort the comparisons.
"""

import pytest

from repro.core.controller import TapsScheduler
from repro.net.paths import PathService
from repro.sched.fair import FairSharing
from repro.sim.engine import Engine
from repro.sim.packet import PacketSimulator
from repro.util.errors import ConfigurationError
from repro.workload.flow import make_task
from repro.workload.traces import dumbbell

DT = 0.01  # 1% of a unit-time — fine-grained packets


class TestMechanics:
    def test_invalid_dt(self):
        with pytest.raises(ConfigurationError):
            PacketSimulator(dumbbell(1), dt=0)

    def test_single_flow_pipeline_time(self):
        """size S over h hops completes in ≈ S/C + (h-1)·dt (pipelining)."""
        topo = dumbbell(1)
        sim = PacketSimulator(topo, dt=DT)
        path = topo.shortest_path("L0", "R0")  # 3 hops
        sim.add_flow(0, path, size=1.0, release=0.0)
        out = sim.run()[0]
        expect = 1.0 + (len(path) - 1) * DT
        assert out.completed_at == pytest.approx(expect, abs=2 * DT)

    def test_release_respected(self):
        topo = dumbbell(1)
        sim = PacketSimulator(topo, dt=DT)
        sim.add_flow(0, topo.shortest_path("L0", "R0"), 0.5, release=2.0)
        out = sim.run()[0]
        assert out.completed_at >= 2.0 + 0.5

    def test_two_flows_share_bottleneck_fairly(self):
        topo = dumbbell(2)
        sim = PacketSimulator(topo, dt=DT)
        for i in range(2):
            sim.add_flow(i, topo.shortest_path(f"L{i}", f"R{i}"), 1.0, 0.0)
        out = sim.run()
        # both ≈ 2.0 (fair round-robin on the shared middle link)
        for fid in (0, 1):
            assert out[fid].completed_at == pytest.approx(2.0, abs=0.1)


class TestFluidAgreement:
    def _fluid_times(self, topo, tasks, scheduler):
        result = Engine(topo, tasks, scheduler).run()
        return {
            fs.flow.flow_id: fs.completed_at for fs in result.flow_states
        }

    def test_fair_sharing_matches_fluid_on_dumbbell(self):
        topo = dumbbell(3)
        tasks = [
            make_task(0, 0.0, 99.0, [("L0", "R0", 1.0)], 0),
            make_task(1, 0.0, 99.0, [("L1", "R1", 2.0)], 1),
            make_task(2, 0.5, 99.5, [("L2", "R2", 1.0)], 2),
        ]
        fluid = self._fluid_times(dumbbell(3), tasks, FairSharing())

        sim = PacketSimulator(topo, dt=DT)
        paths = PathService(topo)
        sim.add_tasks(tasks, paths)
        packet = sim.run()
        for fid, t_fluid in fluid.items():
            t_packet = packet[fid].completed_at
            # pipeline + round-robin transient tolerance
            assert t_packet == pytest.approx(t_fluid, abs=0.15), fid

    def test_taps_slices_match_fluid_on_dumbbell(self):
        """Feed TAPS' committed slices into the packet simulator: packet
        completions land at the slice ends (± pipeline delay)."""
        topo = dumbbell(2)
        tasks = [
            make_task(0, 0.0, 99.0, [("L0", "R0", 1.0)], 0),
            make_task(1, 0.0, 99.0, [("L1", "R1", 2.0)], 1),
        ]
        sched = TapsScheduler()
        engine = Engine(topo, tasks, sched)
        sched.attach(topo, engine.path_service)
        for ts in engine.task_states:
            sched.on_task_arrival(ts, 0.0)
        plans = {fid: p for fid, p in sched.plans.items()}

        sim = PacketSimulator(topo, dt=DT)
        for fid, plan in plans.items():
            f = plan.flow_state.flow
            sim.add_flow(fid, plan.path, f.size, f.release,
                         slices=plan.slices)
        packet = sim.run()
        for fid, plan in plans.items():
            hops = len(plan.path)
            assert packet[fid].completed_at == pytest.approx(
                plan.completion, abs=(hops + 1) * DT
            ), fid

    def test_taps_fig1_schedule_packet_level(self):
        """The paper's Fig. 1(e) outcome survives packetisation: t2's two
        flows complete by their deadline at packet granularity too."""
        from repro.workload.traces import fig1_trace

        topo, tasks = fig1_trace()
        sched = TapsScheduler()
        engine = Engine(topo, tasks, sched)
        sched.attach(topo, engine.path_service)
        for ts in engine.task_states:
            sched.on_task_arrival(ts, ts.task.arrival)

        sim = PacketSimulator(topo, dt=DT)
        for fid, plan in sched.plans.items():
            f = plan.flow_state.flow
            sim.add_flow(fid, plan.path, f.size, f.release, slices=plan.slices)
        packet = sim.run()
        for fid, plan in sched.plans.items():
            deadline = plan.flow_state.flow.deadline
            slack = (len(plan.path) + 1) * DT
            assert packet[fid].completed_at <= deadline + slack
