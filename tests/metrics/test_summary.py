"""RunMetrics derivation from simulation results."""

import pytest

from repro.metrics.summary import summarize
from repro.sched.baraat import Baraat
from repro.sched.fair import FairSharing
from repro.core.controller import TapsScheduler
from repro.sim.engine import Engine
from repro.workload.flow import make_task
from repro.workload.traces import dumbbell, fig1_trace


def test_fig1_fair_sharing_metrics():
    topo, tasks = fig1_trace()
    m = summarize(Engine(topo, tasks, FairSharing()).run())
    assert m.num_tasks == 2
    assert m.num_flows == 4
    assert m.flows_met == 1
    assert m.tasks_completed == 0
    assert m.task_completion_ratio == 0.0
    assert m.flow_completion_ratio == pytest.approx(0.25)
    # only f21 (size 1) of the 10 total units arrives in time
    assert m.application_throughput == pytest.approx(0.1)


def test_wasted_bandwidth_flow_level():
    """Bytes pushed by deadline-missing flows count as waste."""
    topo = dumbbell(1)
    tasks = [make_task(0, 0.0, 2.0, [("L0", "R0", 10.0)], 0)]
    m = summarize(Engine(topo, tasks, FairSharing()).run())
    # 2 of 10 units pushed before the miss
    assert m.wasted_bytes == pytest.approx(2.0)
    assert m.wasted_bandwidth_ratio == pytest.approx(0.2)


def test_task_level_waste_includes_completed_siblings():
    """A flow finishing in time inside a failed task is task-level waste
    but not flow-level waste."""
    topo = dumbbell(2)
    tasks = [make_task(0, 0.0, 3.0,
                       [("L0", "R0", 1.0), ("L1", "R1", 30.0)], 0)]
    m = summarize(Engine(topo, tasks, Baraat(stop_missed_flows=False)).run())
    assert m.tasks_completed == 0
    # flow 0 met its deadline: not flow-level waste
    assert m.flows_met == 1
    assert m.wasted_bytes == pytest.approx(30.0)     # the doomed sibling, fully sent
    assert m.task_wasted_ratio > m.wasted_bandwidth_ratio


def test_taps_zero_waste():
    topo, tasks = fig1_trace()
    m = summarize(Engine(topo, tasks, TapsScheduler()).run())
    assert m.wasted_bytes == 0.0
    assert m.flows_rejected == 2  # the rejected task's flows


def test_ratios_bounded():
    topo, tasks = fig1_trace()
    for sched in (FairSharing(), Baraat(), TapsScheduler()):
        topo2, tasks2 = fig1_trace()
        m = summarize(Engine(topo2, tasks2, sched).run())
        for v in (m.task_completion_ratio, m.flow_completion_ratio,
                  m.application_throughput, m.wasted_bandwidth_ratio):
            assert 0.0 <= v <= 1.0


def test_as_dict_roundtrip():
    topo, tasks = fig1_trace()
    m = summarize(Engine(topo, tasks, FairSharing()).run())
    d = m.as_dict()
    assert d["scheduler"] == "Fair Sharing"
    assert d["num_flows"] == 4


def test_json_roundtrip_lossless():
    """to_json/from_json is the cache's wire format: exact equality, and
    the round-trip agrees with as_dict field for field."""
    from repro.metrics.summary import RunMetrics

    topo, tasks = fig1_trace()
    m = summarize(Engine(topo, tasks, FairSharing()).run())
    back = RunMetrics.from_json(m.to_json())
    assert back == m
    assert back.as_dict() == m.as_dict()
    # serialization is deterministic (stable field order → stable bytes)
    assert back.to_json() == m.to_json()


def test_json_schema_and_field_guards():
    import json

    from repro.metrics.summary import RESULT_SCHEMA_VERSION, RunMetrics

    topo, tasks = fig1_trace()
    m = summarize(Engine(topo, tasks, FairSharing()).run())
    blob = json.loads(m.to_json())
    assert blob["schema"] == RESULT_SCHEMA_VERSION
    # field order in the serialized form is dataclass-definition order
    assert list(blob)[1:3] == ["scheduler", "topology"]

    wrong_version = dict(blob, schema=RESULT_SCHEMA_VERSION + 1)
    with pytest.raises(ValueError):
        RunMetrics.from_json(json.dumps(wrong_version))
    missing = {k: v for k, v in blob.items() if k != "num_flows"}
    with pytest.raises(ValueError):
        RunMetrics.from_json(json.dumps(missing))
    extra = dict(blob, bogus=1)
    with pytest.raises(ValueError):
        RunMetrics.from_json(json.dumps(extra))
    mistyped = dict(blob, num_flows="four")
    with pytest.raises(ValueError):
        RunMetrics.from_json(json.dumps(mistyped))
    with pytest.raises(ValueError):
        RunMetrics.from_json("[1,2,3]")


def test_task_size_completion_ratio_stricter_than_throughput():
    """A flow meeting its deadline inside a failed task counts for
    application throughput but not for task-size completion."""
    topo = dumbbell(2)
    tasks = [
        make_task(0, 0.0, 5.0, [("L0", "R0", 1.0)], 0),                  # completes
        make_task(1, 0.0, 3.0, [("L1", "R1", 1.0), ("L1", "R1", 9.0)], 1),  # fails
    ]
    from repro.sched.pdq import PDQ

    m = summarize(Engine(topo, tasks, PDQ()).run())
    assert m.tasks_completed == 1
    # task 0's 1 byte of 11 total
    assert m.task_size_completion_ratio == pytest.approx(1 / 11)
    assert m.application_throughput >= m.task_size_completion_ratio


def test_task_size_equals_throughput_when_all_tasks_complete():
    topo = dumbbell(2)
    tasks = [make_task(i, 0.0, 50.0, [(f"L{i}", f"R{i}", 2.0)], i)
             for i in range(2)]
    m = summarize(Engine(topo, tasks, TapsScheduler()).run())
    assert m.task_size_completion_ratio == pytest.approx(1.0)
    assert m.application_throughput == pytest.approx(1.0)
