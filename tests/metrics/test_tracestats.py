"""Trace digest: headline counts from an event stream."""

from repro.metrics import TraceDigest, trace_digest
from repro.trace import (
    FlowCompleted,
    TaskAccept,
    TaskArrival,
    TaskReject,
    TrialBegin,
)


def _stream():
    return [
        TaskArrival(0.0, task_id=1, deadline=1.0, num_flows=1,
                    total_bytes=10.0),
        TrialBegin(0.0, task_id=1, attempt=1, flows=()),
        TaskAccept(0.0, task_id=1, victims=(), plans=()),
        TaskArrival(0.1, task_id=2, deadline=0.2, num_flows=1,
                    total_bytes=10.0),
        TrialBegin(0.1, task_id=2, attempt=1, flows=()),
        TaskReject(0.1, task_id=2, reason="would-miss", clause=2,
                   missing=((5, 2),), lateness=((5, 0.1),)),
        TaskReject(0.2, task_id=3, reason="deadline-expired", clause=None,
                   missing=(), lateness=()),
        FlowCompleted(0.5, flow_id=4, task_id=1, met_deadline=True),
        FlowCompleted(0.6, flow_id=6, task_id=1, met_deadline=False),
    ]


def test_digest_counts():
    d = trace_digest(_stream())
    assert d.events == 9
    assert d.tasks_arrived == 2
    assert d.tasks_accepted == 1
    assert d.tasks_rejected == 2
    assert d.trial_attempts == 2
    assert d.flows_completed == 2
    assert d.flows_met == 1
    assert d.rejects_by_clause == {"2": 1, "deadline-expired": 1}


def test_digest_lines_render():
    lines = trace_digest(_stream()).lines()
    text = "\n".join(lines)
    assert "tasks arrived:       2" in text
    assert "clause 2: 1" in text
    assert "deadline-expired: 1" in text
    assert "2 (1 met deadlines)" in text


def test_empty_digest():
    d = trace_digest([])
    assert d == TraceDigest()
    assert d.lines()  # renders without dividing by anything
