"""Per-link utilization accounting."""

import pytest

from repro.metrics.linkload import LinkLoadCollector
from repro.sched.fair import FairSharing
from repro.core.controller import TapsScheduler
from repro.sim.engine import Engine
from repro.workload.flow import make_task
from repro.workload.traces import dumbbell


def _run(topo, tasks, sched):
    load = LinkLoadCollector(topo)
    result = Engine(topo, tasks, sched, hooks=(load,)).run()
    load.finalize(result.flow_states)
    return load, result


def test_single_flow_charges_whole_path():
    topo = dumbbell(1)
    tasks = [make_task(0, 0.0, 10.0, [("L0", "R0", 2.0)], 0)]
    load, result = _run(topo, tasks, TapsScheduler())
    rows = load.utilization(horizon=result.finished_at)
    # 3 links on the path, each carried the full 2 bytes
    assert len(rows) == 3
    for row in rows:
        assert row.bytes_total == pytest.approx(2.0, rel=1e-4)
        assert row.bytes_useful == pytest.approx(2.0, rel=1e-4)
        assert row.bytes_wasted == pytest.approx(0.0, abs=1e-6)


def test_utilization_fraction():
    topo = dumbbell(1)  # capacity 1
    tasks = [make_task(0, 0.0, 10.0, [("L0", "R0", 2.0)], 0)]
    load, result = _run(topo, tasks, TapsScheduler())
    rows = load.utilization(horizon=4.0)
    # 2 byte-seconds over 4 s of capacity-1 → 50%
    for row in rows:
        assert row.utilization == pytest.approx(0.5, rel=1e-4)


def test_wasted_bytes_attributed_to_missed_flows():
    topo = dumbbell(2)
    tasks = [
        make_task(0, 0.0, 100.0, [("L0", "R0", 2.0)], 0),   # meets
        make_task(1, 0.0, 1.0, [("L1", "R1", 50.0)], 1),    # misses
    ]
    load, result = _run(topo, tasks, FairSharing())
    rows = {(r.src, r.dst): r for r in load.utilization(result.finished_at)}
    shared = rows[("SL", "SR")]
    assert shared.bytes_wasted > 0
    assert shared.bytes_useful == pytest.approx(2.0, rel=1e-3)


def test_hottest_orders_by_volume():
    topo = dumbbell(2)
    tasks = [
        make_task(0, 0.0, 100.0, [("L0", "R0", 5.0)], 0),
        make_task(1, 0.0, 100.0, [("L1", "R1", 1.0)], 1),
    ]
    load, result = _run(topo, tasks, FairSharing())
    top = load.hottest(result.finished_at, n=1)[0]
    # the shared middle link carries both flows' bytes
    assert (top.src, top.dst) == ("SL", "SR")
    assert top.bytes_total == pytest.approx(6.0, rel=1e-3)


def test_idle_links_absent():
    topo = dumbbell(3)
    tasks = [make_task(0, 0.0, 100.0, [("L0", "R0", 1.0)], 0)]
    load, result = _run(topo, tasks, FairSharing())
    rows = load.utilization(result.finished_at)
    touched = {(r.src, r.dst) for r in rows}
    assert ("L1", "SL") not in touched


def test_bad_horizon():
    load = LinkLoadCollector(dumbbell(1))
    with pytest.raises(ValueError):
        load.utilization(horizon=0.0)


# -- peak utilization under link-outage fault windows -------------------------
#
# The engine zeroes rates on down links *before* hooks see the advance,
# so peaks must reflect what the network physically carried — never the
# controller's pre-outage allocations.


def _middle_link(topo):
    return next(
        i for i, ln in enumerate(topo.links)
        if (ln.src, ln.dst) == ("SL", "SR")
    )


def _run_faulted(topo, tasks, faults, horizon=None):
    load = LinkLoadCollector(topo)
    result = Engine(
        topo, tasks, TapsScheduler(), hooks=(load,),
        faults=faults, horizon=horizon,
    ).run()
    load.finalize(result.flow_states)
    return load, result


def test_peak_zero_while_path_is_down():
    """An outage covering the whole (horizon-cut) run leaves no peaks:
    the allocation existed, but the link never physically carried it."""
    from repro.sim.faults import LinkFault

    topo = dumbbell(1)
    mid = _middle_link(topo)
    tasks = [make_task(0, 0.0, 10.0, [("L0", "R0", 2.0)], 0)]
    # control: same horizon, no fault — the link is busy immediately
    control, _ = _run_faulted(topo, tasks, faults=None, horizon=1.0)
    assert control.peak_utilization().get(mid, 0.0) > 0.0
    # outage spans past the horizon: nothing may register a peak
    load, _ = _run_faulted(
        topo, tasks, faults=[LinkFault(mid, 0.0, 5.0)], horizon=1.0
    )
    assert load.peak_utilization() == {}


def test_peak_reflects_only_post_recovery_transmission():
    """With an outage window early in the run, the recorded peaks come
    from the post-recovery retransmission, not the voided allocation."""
    from repro.sim.faults import LinkFault

    topo = dumbbell(1)
    mid = _middle_link(topo)
    tasks = [make_task(0, 0.0, 10.0, [("L0", "R0", 2.0)], 0)]
    load, result = _run_faulted(
        topo, tasks, faults=[LinkFault(mid, 0.0, 0.5)]
    )
    peaks = load.peak_utilization()
    # the flow finished after the link came back, at full exclusive rate
    assert result.finished_at > 0.5
    assert peaks[mid] == pytest.approx(1.0, rel=1e-6)
    # and per-flow byte accounting matches the delivered size, no
    # phantom bytes charged during the outage
    rows = {r.link_index: r for r in load.utilization(result.finished_at)}
    assert rows[mid].bytes_total == pytest.approx(2.0, rel=1e-4)


def test_peak_mid_run_outage_window_not_charged():
    """Two tasks queued behind a downed shared link register no peaks at
    all while it is out — allocations alone never count as carriage."""
    from repro.sim.faults import LinkFault

    topo = dumbbell(2)
    mid = _middle_link(topo)
    # both pairs share the middle link, so the outage idles everything
    tasks = [
        make_task(0, 0.0, 50.0, [("L0", "R0", 2.0)], 0),
        make_task(1, 0.0, 50.0, [("L1", "R1", 2.0)], 1),
    ]
    load, _ = _run_faulted(
        topo, tasks, faults=[LinkFault(mid, 0.0, 1.0)], horizon=1.0
    )
    assert load.peak_utilization() == {}
