"""ThroughputTimeSeries: the Fig. 14 collector."""

import numpy as np
import pytest

from repro.metrics.timeseries import ThroughputTimeSeries
from repro.sched.fair import FairSharing
from repro.core.controller import TapsScheduler
from repro.sim.engine import Engine
from repro.workload.flow import make_task
from repro.workload.traces import dumbbell


def _collect(scheduler, tasks, topo=None):
    topo = topo or dumbbell(4)
    c = ThroughputTimeSeries()
    result = Engine(topo, tasks, scheduler, hooks=(c,)).run()
    c.finalize(result.flow_states)
    return c, result


def test_empty_run():
    c = ThroughputTimeSeries()
    times, pct = c.sample()
    assert len(times) == 0


def test_single_successful_flow_is_100pct():
    tasks = [make_task(0, 0.0, 10.0, [("L0", "R0", 2.0)], 0)]
    c, _ = _collect(TapsScheduler(), tasks)
    times, pct = c.sample(50)
    busy = pct > 0
    assert busy.any()
    assert np.allclose(pct[busy], 100.0)


def test_doomed_flow_is_0pct():
    tasks = [make_task(0, 0.0, 1.0, [("L0", "R0", 10.0)], 0)]
    c, _ = _collect(FairSharing(quit_on_miss=False), tasks)
    times, pct = c.sample(50)
    # the flow transmits but never meets its deadline: nothing is useful
    assert np.allclose(pct, 0.0)


def test_mixed_traffic_instant_fraction():
    tasks = [
        make_task(0, 0.0, 100.0, [("L0", "R0", 10.0)], 0),  # succeeds
        make_task(1, 0.0, 1.0, [("L1", "R1", 10.0)], 1),    # doomed
    ]
    c, _ = _collect(FairSharing(quit_on_miss=False), tasks)
    useful, total = c.total_rate_at(0.5)
    assert useful == pytest.approx(0.5)
    assert total == pytest.approx(1.0)
    times, pct = c.sample(200)
    # while both transmit: 50%; once the doomed one finishes at 20: 100%
    early = pct[(times > 0.1) & (times < 10)]
    assert np.allclose(early, 50.0, atol=5)


def test_peak_normalization_shows_drain():
    tasks = [
        make_task(0, 0.0, 100.0, [("L0", "R0", 2.0)], 0),
        make_task(1, 0.0, 100.0, [("L1", "R1", 6.0)], 1),
    ]
    c, _ = _collect(TapsScheduler(), tasks)
    times, pct = c.sample(100, normalize="peak")
    assert pct.max() == pytest.approx(100.0)


def test_invalid_normalize_rejected():
    c = ThroughputTimeSeries()
    with pytest.raises(ValueError):
        c.sample(normalize="nonsense")


def test_mean_effective_pct():
    tasks = [make_task(0, 0.0, 10.0, [("L0", "R0", 2.0)], 0)]
    c, _ = _collect(TapsScheduler(), tasks)
    assert c.mean_effective_pct() == pytest.approx(100.0)


def test_finalize_fills_unsettled_flows():
    c = ThroughputTimeSeries()
    tasks = [make_task(0, 0.0, 10.0, [("L0", "R0", 2.0)], 0)]
    topo = dumbbell(1)
    result = Engine(topo, tasks, TapsScheduler(), hooks=()).run()
    # collector never saw hooks; finalize derives usefulness post-hoc
    c.finalize(result.flow_states)
    assert c._met[0] is True
