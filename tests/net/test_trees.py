"""Single-rooted tree: structure and closed-form routing (paper Fig. 5)."""

import pytest

from repro.net.trees import SingleRootedTree
from repro.util.errors import TopologyError


@pytest.fixture
def tree():
    return SingleRootedTree(servers_per_rack=3, racks_per_pod=2, pods=2)


class TestStructure:
    def test_host_count(self, tree):
        assert len(tree.hosts) == 3 * 2 * 2

    def test_switch_count(self, tree):
        # 1 core + 2 agg + 4 tor
        assert len(tree.switches) == 1 + 2 + 4

    def test_link_count(self, tree):
        # cables: hosts(12) + tor-agg(4) + agg-core(2) = 18 → 36 directed
        assert tree.num_links == 36

    def test_uniform_capacity(self, tree):
        assert tree.uniform_capacity() == tree.default_capacity

    def test_paper_dimensions_by_default(self):
        t = SingleRootedTree.__init__.__defaults__
        assert t[:3] == (40, 30, 30)  # 36,000 servers (not built here)

    def test_invalid_fanout(self):
        with pytest.raises(TopologyError):
            SingleRootedTree(servers_per_rack=0)

    def test_connected(self, tree):
        tree.validate()


class TestRouting:
    def test_same_rack_two_hops(self, tree):
        p = tree.shortest_path("h0_0_0", "h0_0_1")
        assert len(p) == 2  # host->tor->host

    def test_same_pod_four_hops(self, tree):
        p = tree.shortest_path("h0_0_0", "h0_1_0")
        assert len(p) == 4  # host->tor->agg->tor->host

    def test_cross_pod_six_hops(self, tree):
        p = tree.shortest_path("h0_0_0", "h1_1_2")
        assert len(p) == 6  # through the core

    def test_unique_candidate(self, tree):
        assert len(tree.candidate_paths("h0_0_0", "h1_0_0")) == 1

    def test_closed_form_matches_graph_search(self, tree):
        import networkx as nx

        g = tree.graph()
        for src, dst in [("h0_0_0", "h0_0_2"), ("h0_0_1", "h0_1_0"),
                         ("h0_1_2", "h1_0_1")]:
            closed = tree.shortest_path(src, dst)
            assert len(closed) == nx.shortest_path_length(g, src, dst)

    def test_path_links_chain(self, tree):
        p = tree.shortest_path("h0_0_0", "h1_1_1")
        links = tree.links
        for a, b in zip(p, p[1:]):
            assert links[a].dst == links[b].src
        assert links[p[0]].src == "h0_0_0"
        assert links[p[-1]].dst == "h1_1_1"

    def test_same_host_raises(self, tree):
        with pytest.raises(TopologyError):
            tree.shortest_path("h0_0_0", "h0_0_0")

    def test_non_host_raises(self, tree):
        with pytest.raises(TopologyError):
            tree.shortest_path("tor0_0", "h0_0_0")

    def test_malformed_host_raises(self, tree):
        with pytest.raises(TopologyError):
            tree.shortest_path("hX_Y_Z", "h0_0_0")
