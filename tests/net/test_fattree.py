"""k-ary fat-tree: structure and multi-path enumeration (paper §V-A)."""

import pytest

from repro.net.fattree import FatTree
from repro.util.errors import TopologyError


@pytest.fixture
def ft4():
    return FatTree(k=4)


class TestStructure:
    def test_host_count(self, ft4):
        assert len(ft4.hosts) == 4**3 // 4 == ft4.num_hosts

    def test_switch_counts(self, ft4):
        names = list(ft4.switches)
        assert sum(1 for s in names if s.startswith("c")) == 4  # (k/2)^2
        assert sum(1 for s in names if s.startswith("a")) == 8  # k*k/2
        assert sum(1 for s in names if s.startswith("e")) == 8

    def test_link_count(self, ft4):
        # cables: core-agg k*(k/2)*(k/2)=16, agg-edge 16, edge-host 16 → 96 directed
        assert ft4.num_links == 96

    def test_odd_k_rejected(self):
        with pytest.raises(TopologyError):
            FatTree(k=3)
        with pytest.raises(TopologyError):
            FatTree(k=0)

    def test_k2_minimal(self):
        t = FatTree(k=2)
        assert len(t.hosts) == 2
        t.validate()

    def test_connected(self, ft4):
        ft4.validate()


class TestMultipath:
    def test_same_edge_single_path(self, ft4):
        paths = ft4.candidate_paths("h0_0_0", "h0_0_1")
        assert len(paths) == 1
        assert len(paths[0]) == 2

    def test_same_pod_k_over_2_paths(self, ft4):
        paths = ft4.candidate_paths("h0_0_0", "h0_1_0")
        assert len(paths) == 2  # one per aggregation switch
        assert all(len(p) == 4 for p in paths)

    def test_cross_pod_core_squared_paths(self, ft4):
        paths = ft4.candidate_paths("h0_0_0", "h1_0_0")
        assert len(paths) == 4  # (k/2)^2 = one per core switch
        assert all(len(p) == 6 for p in paths)

    def test_paths_distinct(self, ft4):
        paths = ft4.candidate_paths("h0_0_0", "h3_1_1")
        assert len(set(paths)) == len(paths)

    def test_paths_share_only_access_links(self, ft4):
        paths = ft4.candidate_paths("h0_0_0", "h1_0_0")
        first, last = paths[0][0], paths[0][-1]
        inner = [set(p[1:-1]) for p in paths]
        for p in paths:
            assert p[0] == first and p[-1] == last
        # every pair of inner segments differs somewhere
        for i in range(len(inner)):
            for j in range(i + 1, len(inner)):
                assert inner[i] != inner[j]

    def test_max_paths_cap(self, ft4):
        assert len(ft4.candidate_paths("h0_0_0", "h1_0_0", max_paths=2)) == 2

    def test_paths_are_valid_chains(self, ft4):
        links = ft4.links
        for p in ft4.candidate_paths("h0_1_1", "h2_0_1"):
            assert links[p[0]].src == "h0_1_1"
            assert links[p[-1]].dst == "h2_0_1"
            for a, b in zip(p, p[1:]):
                assert links[a].dst == links[b].src

    def test_matches_graph_shortest_length(self, ft4):
        import networkx as nx

        g = ft4.graph()
        for src, dst in [("h0_0_0", "h0_0_1"), ("h0_0_0", "h0_1_0"),
                         ("h0_0_0", "h2_1_1")]:
            closed = ft4.candidate_paths(src, dst)
            expect = nx.shortest_path_length(g, src, dst)
            assert all(len(p) == expect for p in closed)
            # closed-form enumeration is exhaustive
            n_graph = sum(1 for _ in nx.all_shortest_paths(g, src, dst))
            assert len(closed) == n_graph

    def test_same_host_raises(self, ft4):
        with pytest.raises(TopologyError):
            ft4.candidate_paths("h0_0_0", "h0_0_0")
