"""FiConn(n, k): recursive backup-port construction."""

import pytest

from repro.net.ficonn import FiConn, free_ports, num_copies
from repro.util.errors import TopologyError


class TestFormulas:
    def test_b0_is_n(self):
        assert free_ports(4, 0) == 4
        assert free_ports(8, 0) == 8

    def test_b1(self):
        # g1 = n/2+1 copies, each keeps n/2 free
        assert free_ports(4, 1) == 3 * 2
        assert free_ports(8, 1) == 5 * 4

    def test_g(self):
        assert num_copies(4, 0) == 1
        assert num_copies(4, 1) == 3
        assert num_copies(4, 2) == free_ports(4, 1) // 2 + 1 == 4


class TestStructure:
    def test_ficonn0(self):
        f = FiConn(4, 0)
        assert f.num_servers == 4
        assert len(f.switches) == 1
        f.validate()

    def test_ficonn1_counts(self):
        f = FiConn(4, 1)
        assert f.num_servers == 3 * 4
        assert len(f.switches) == 3
        # level-1 links form K_3 among the copies
        assert len(f.level_links[1]) == 3
        f.validate()

    def test_ficonn2_counts(self):
        f = FiConn(4, 2)
        assert f.num_servers == 4 * 12
        assert len(f.level_links[2]) == 6  # K_4 among the four copies
        f.validate()

    def test_larger_n(self):
        f = FiConn(8, 1)
        assert f.num_servers == 5 * 8
        assert len(f.level_links[1]) == 10  # K_5
        f.validate()

    def test_backup_port_budget_respected(self):
        """No server ever carries more than 2 ports (switch + backup)."""
        f = FiConn(4, 2)
        for s in f.hosts:
            assert len(f.out_links(s)) <= 2

    def test_level_links_connect_distinct_copies(self):
        f = FiConn(4, 1)
        for a, b in f.level_links[1]:
            # copy label is the token right after 'f'
            assert a.split("_")[0] != b.split("_")[0]

    def test_invalid_params(self):
        with pytest.raises(TopologyError):
            FiConn(n=3)  # odd
        with pytest.raises(TopologyError):
            FiConn(n=0)
        with pytest.raises(TopologyError):
            FiConn(n=4, k=-1)


class TestScheduling:
    def test_multiple_equal_cost_paths_exist(self):
        """Cross-copy pairs can detour through a third copy — candidate
        sets on FiConn exceed one for some pairs."""
        f = FiConn(4, 1)
        hosts = list(f.hosts)
        richest = max(
            (len(f.candidate_paths(hosts[0], h)) for h in hosts[1:]),
        )
        assert richest >= 1  # sanity; diversity depends on pair

    def test_taps_runs_on_ficonn(self):
        from repro.core.controller import TapsScheduler
        from repro.metrics.summary import summarize
        from repro.sim.engine import Engine
        from repro.workload.generator import WorkloadConfig, generate_workload

        f = FiConn(4, 1)
        cfg = WorkloadConfig(num_tasks=8, mean_flows_per_task=3,
                             arrival_rate=200, seed=13)
        tasks = generate_workload(cfg, list(f.hosts))
        m = summarize(Engine(f, tasks, TapsScheduler()).run())
        assert 0.0 <= m.task_completion_ratio <= 1.0
        assert m.wasted_bandwidth_ratio == 0.0
