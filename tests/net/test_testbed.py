"""The Fig. 13 partial fat-tree testbed."""

import pytest

from repro.net.testbed import PartialFatTreeTestbed
from repro.util.errors import TopologyError


@pytest.fixture
def tb():
    return PartialFatTreeTestbed()


def test_eight_hosts_across_four_racks(tb):
    assert len(tb.hosts) == 8
    edges = [s for s in tb.switches if s.startswith("e")]
    assert len(edges) == 4


def test_two_pods_two_cores(tb):
    assert sum(1 for s in tb.switches if s.startswith("c")) == 2
    assert sum(1 for s in tb.switches if s.startswith("a")) == 4


def test_gigabit_links(tb):
    assert tb.uniform_capacity() == pytest.approx(1e9 / 8)


def test_connected(tb):
    tb.validate()


def test_same_rack_single_path(tb):
    paths = tb.candidate_paths("h0_0_0", "h0_0_1")
    assert len(paths) == 1 and len(paths[0]) == 2


def test_same_pod_two_paths(tb):
    paths = tb.candidate_paths("h0_0_0", "h0_1_0")
    assert len(paths) == 2 and all(len(p) == 4 for p in paths)


def test_cross_pod_two_paths_via_cores(tb):
    paths = tb.candidate_paths("h0_0_0", "h1_1_1")
    assert len(paths) == 2 and all(len(p) == 6 for p in paths)
    cores = {tb.links[p[3]].src for p in paths}  # 4th link leaves the core
    assert cores == {"c0", "c1"}


def test_chains_valid(tb):
    links = tb.links
    for p in tb.candidate_paths("h0_1_0", "h1_0_1"):
        for a, b in zip(p, p[1:]):
            assert links[a].dst == links[b].src


def test_same_host_raises(tb):
    with pytest.raises(TopologyError):
        tb.candidate_paths("h0_0_0", "h0_0_0")


def test_max_paths(tb):
    assert len(tb.candidate_paths("h0_0_0", "h1_0_0", max_paths=1)) == 1
