"""PathService across every topology family (shared behaviours)."""

import pytest

from repro.net.bcube import BCube
from repro.net.fattree import FatTree
from repro.net.ficonn import FiConn
from repro.net.paths import PathService
from repro.net.testbed import PartialFatTreeTestbed
from repro.net.trees import SingleRootedTree

TOPOLOGIES = {
    "tree": lambda: SingleRootedTree(2, 2, 2),
    "fat-tree": lambda: FatTree(4),
    "bcube": lambda: BCube(4, 1),
    "ficonn": lambda: FiConn(4, 1),
    "testbed": lambda: PartialFatTreeTestbed(),
}


@pytest.fixture(params=sorted(TOPOLOGIES), ids=sorted(TOPOLOGIES))
def topo(request):
    return TOPOLOGIES[request.param]()


def test_candidates_nonempty_for_all_pairs(topo):
    svc = PathService(topo, max_paths=4)
    hosts = list(topo.hosts)[:6]
    for src in hosts:
        for dst in hosts:
            if src == dst:
                continue
            paths = svc.candidates(src, dst)
            assert paths
            assert all(len(p) >= 1 for p in paths)


def test_paths_are_chains_ending_at_endpoints(topo):
    svc = PathService(topo, max_paths=4)
    hosts = list(topo.hosts)
    src, dst = hosts[0], hosts[-1]
    links = topo.links
    for p in svc.candidates(src, dst):
        assert links[p[0]].src == src
        assert links[p[-1]].dst == dst
        for a, b in zip(p, p[1:]):
            assert links[a].dst == links[b].src


def test_candidates_are_distinct(topo):
    svc = PathService(topo, max_paths=8)
    hosts = list(topo.hosts)
    paths = svc.candidates(hosts[0], hosts[-1])
    assert len(set(paths)) == len(paths)


def test_ecmp_deterministic_per_flow(topo):
    svc = PathService(topo, max_paths=8)
    hosts = list(topo.hosts)
    src, dst = hosts[0], hosts[-1]
    for fid in range(10):
        assert svc.ecmp_path(fid, src, dst) == svc.ecmp_path(fid, src, dst)


def test_max_paths_cap_respected(topo):
    svc = PathService(topo, max_paths=2)
    hosts = list(topo.hosts)
    for dst in hosts[1:5]:
        assert len(svc.candidates(hosts[0], dst)) <= 2
