"""Topology base class: construction, lookups, path computation."""

import pytest

from repro.net.link import Link
from repro.net.topology import Topology
from repro.util.errors import TopologyError


@pytest.fixture
def diamond():
    """a -> (s1|s2) -> b: two equal-cost 3-hop paths."""
    t = Topology(name="diamond")
    t.add_host("a")
    t.add_host("b")
    t.add_switch("s1")
    t.add_switch("s2")
    t.add_cable("a", "s1")
    t.add_cable("a", "s2")
    t.add_cable("s1", "b")
    t.add_cable("s2", "b")
    return t


class TestLink:
    def test_fields(self):
        l = Link(index=0, src="a", dst="b", capacity=10.0)
        assert l.capacity == 10.0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Link(index=0, src="a", dst="b", capacity=0)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Link(index=0, src="a", dst="a")


class TestConstruction:
    def test_counts(self, diamond):
        assert len(diamond.hosts) == 2
        assert len(diamond.switches) == 2
        assert diamond.num_links == 8  # 4 cables

    def test_dense_link_indices(self, diamond):
        assert [l.index for l in diamond.links] == list(range(8))

    def test_duplicate_node_rejected(self, diamond):
        with pytest.raises(TopologyError):
            diamond.add_host("a")
        with pytest.raises(TopologyError):
            diamond.add_switch("s1")

    def test_duplicate_link_rejected(self, diamond):
        with pytest.raises(TopologyError):
            diamond.add_link("a", "s1")

    def test_link_to_unknown_node_rejected(self, diamond):
        with pytest.raises(TopologyError):
            diamond.add_link("a", "nope")

    def test_link_lookup(self, diamond):
        l = diamond.link("a", "s1")
        assert (l.src, l.dst) == ("a", "s1")
        with pytest.raises(TopologyError):
            diamond.link("s1", "s2")

    def test_out_links(self, diamond):
        outs = {l.dst for l in diamond.out_links("a")}
        assert outs == {"s1", "s2"}
        with pytest.raises(TopologyError):
            diamond.out_links("ghost")

    def test_cable_capacity_override(self):
        t = Topology(default_capacity=5.0)
        t.add_host("x")
        t.add_host("y")
        ab, ba = t.add_cable("x", "y", capacity=2.0)
        assert ab.capacity == ba.capacity == 2.0


class TestUniformCapacity:
    def test_uniform(self, diamond):
        assert diamond.uniform_capacity() == diamond.default_capacity

    def test_heterogeneous_raises(self):
        t = Topology()
        t.add_host("x")
        t.add_host("y")
        t.add_link("x", "y", capacity=1.0)
        t.add_link("y", "x", capacity=2.0)
        with pytest.raises(TopologyError):
            t.uniform_capacity()

    def test_empty_raises(self):
        with pytest.raises(TopologyError):
            Topology().uniform_capacity()


class TestPaths:
    def test_shortest_path_is_link_indices(self, diamond):
        p = diamond.shortest_path("a", "b")
        assert len(p) == 2
        links = diamond.links
        assert links[p[0]].src == "a"
        assert links[p[-1]].dst == "b"
        # consecutive links chain
        assert links[p[0]].dst == links[p[1]].src

    def test_candidate_paths_enumerates_both(self, diamond):
        paths = diamond.candidate_paths("a", "b")
        assert len(paths) == 2
        mids = {diamond.links[p[0]].dst for p in paths}
        assert mids == {"s1", "s2"}

    def test_max_paths_caps(self, diamond):
        assert len(diamond.candidate_paths("a", "b", max_paths=1)) == 1

    def test_no_path_raises(self):
        t = Topology()
        t.add_host("a")
        t.add_host("b")
        with pytest.raises(TopologyError):
            t.shortest_path("a", "b")

    def test_same_endpoint_raises(self, diamond):
        with pytest.raises(TopologyError):
            diamond.candidate_paths("a", "a")

    def test_nodes_to_path_roundtrip(self, diamond):
        p = diamond.nodes_to_path(["a", "s1", "b"])
        assert [diamond.links[i].dst for i in p] == ["s1", "b"]

    def test_validate_connected(self, diamond):
        diamond.validate()

    def test_validate_detects_partition(self):
        t = Topology()
        t.add_host("a")
        t.add_host("b")
        t.add_host("c")
        t.add_cable("a", "b")
        with pytest.raises(TopologyError):
            t.validate()

    def test_graph_cache_invalidated_on_mutation(self, diamond):
        g1 = diamond.graph()
        diamond.add_host("c")
        diamond.add_cable("c", "s1")
        g2 = diamond.graph()
        assert g2.number_of_nodes() == g1.number_of_nodes() + 1
