"""BCube(n, k): structure and digit-correction multipath."""

import networkx as nx
import pytest

from repro.net.bcube import BCube
from repro.util.errors import TopologyError


@pytest.fixture
def b41():
    return BCube(n=4, k=1)


class TestStructure:
    def test_server_count(self, b41):
        assert b41.num_servers == 16
        assert len(b41.hosts) == 16

    def test_switch_count(self, b41):
        # k+1 levels × n^k switches = 2 × 4
        assert len(b41.switches) == 8

    def test_each_server_has_k_plus_1_ports(self, b41):
        for s in b41.hosts:
            assert len(b41.out_links(s)) == 2

    def test_each_switch_has_n_ports(self, b41):
        for sw in b41.switches:
            assert len(b41.out_links(sw)) == 4

    def test_switches_never_interconnect(self, b41):
        switch_set = set(b41.switches)
        for l in b41.links:
            assert not (l.src in switch_set and l.dst in switch_set)

    def test_k0_is_single_switch(self):
        b = BCube(n=3, k=0)
        assert b.num_servers == 3
        assert len(b.switches) == 1
        b.validate()

    def test_k2_scales(self):
        b = BCube(n=3, k=2)
        assert b.num_servers == 27
        assert len(b.switches) == 3 * 9
        b.validate()

    def test_invalid_params(self):
        with pytest.raises(TopologyError):
            BCube(n=1)
        with pytest.raises(TopologyError):
            BCube(n=4, k=-1)

    def test_connected(self, b41):
        b41.validate()


class TestRouting:
    def test_one_digit_diff_two_hops(self, b41):
        p = b41.candidate_paths("s00", "s01")
        assert len(p) == 1
        assert len(p[0]) == 2  # server -> switch -> server

    def test_two_digit_diff_two_paths(self, b41):
        paths = b41.candidate_paths("s00", "s11")
        assert len(paths) == 2  # 2! correction orders
        assert all(len(p) == 4 for p in paths)
        assert paths[0] != paths[1]

    def test_three_digit_diff_six_paths(self):
        b = BCube(n=3, k=2)
        paths = b.candidate_paths("s000", "s111")
        assert len(paths) == 6  # 3!
        assert all(len(p) == 6 for p in paths)
        assert len(set(paths)) == 6

    def test_max_paths_cap(self):
        b = BCube(n=3, k=2)
        assert len(b.candidate_paths("s000", "s111", max_paths=2)) == 2

    def test_paths_are_valid_chains(self, b41):
        links = b41.links
        for p in b41.candidate_paths("s00", "s33"):
            assert links[p[0]].src == "s00"
            assert links[p[-1]].dst == "s33"
            for x, y in zip(p, p[1:]):
                assert links[x].dst == links[y].src

    def test_intermediate_hops_are_servers_and_switches_alternating(self, b41):
        switch_set = set(b41.switches)
        for p in b41.candidate_paths("s00", "s11"):
            nodes = [b41.links[p[0]].src] + [b41.links[l].dst for l in p]
            for i, node in enumerate(nodes):
                assert (node in switch_set) == (i % 2 == 1)

    def test_matches_graph_shortest_length(self, b41):
        g = b41.graph()
        for src, dst in [("s00", "s01"), ("s00", "s11"), ("s02", "s31")]:
            expect = nx.shortest_path_length(g, src, dst)
            for p in b41.candidate_paths(src, dst):
                assert len(p) == expect

    def test_same_server_raises(self, b41):
        with pytest.raises(TopologyError):
            b41.candidate_paths("s00", "s00")

    def test_malformed_names_raise(self, b41):
        with pytest.raises(TopologyError):
            b41.candidate_paths("w0_0", "s00")
        with pytest.raises(TopologyError):
            b41.candidate_paths("s99", "s00")


class TestScheduling:
    def test_taps_runs_on_bcube(self, b41):
        """End-to-end: TAPS schedules a workload on the server-centric
        topology, exploiting the digit-correction multipath."""
        from repro.core.controller import TapsScheduler
        from repro.metrics.summary import summarize
        from repro.sim.engine import Engine
        from repro.workload.generator import WorkloadConfig, generate_workload

        cfg = WorkloadConfig(num_tasks=10, mean_flows_per_task=4,
                             arrival_rate=300, seed=9)
        tasks = generate_workload(cfg, list(b41.hosts))
        m = summarize(Engine(b41, tasks, TapsScheduler()).run())
        assert m.task_completion_ratio > 0.3
        assert m.wasted_bandwidth_ratio == 0.0
