"""PathService caching and flow-level ECMP."""

import pytest

from repro.net.fattree import FatTree
from repro.net.paths import PathService, ecmp_hash


@pytest.fixture
def svc():
    return PathService(FatTree(k=4))


class TestEcmpHash:
    def test_deterministic(self):
        assert ecmp_hash(5, "a", "b", 7) == ecmp_hash(5, "a", "b", 7)

    def test_in_range(self):
        for fid in range(50):
            assert 0 <= ecmp_hash(fid, "x", "y", 4) < 4

    def test_spreads_across_choices(self):
        picks = {ecmp_hash(fid, "h0", "h1", 4) for fid in range(100)}
        assert picks == {0, 1, 2, 3}

    def test_sensitive_to_endpoints(self):
        a = [ecmp_hash(i, "s1", "d1", 16) for i in range(40)]
        b = [ecmp_hash(i, "s2", "d2", 16) for i in range(40)]
        assert a != b

    def test_single_choice(self):
        assert ecmp_hash(123, "a", "b", 1) == 0

    def test_zero_choices_rejected(self):
        with pytest.raises(ValueError):
            ecmp_hash(1, "a", "b", 0)


class TestPathService:
    def test_candidates_cached(self, svc):
        p1 = svc.candidates("h0_0_0", "h1_0_0")
        p2 = svc.candidates("h0_0_0", "h1_0_0")
        assert p1 is p2  # same list object = cache hit

    def test_cache_info(self, svc):
        svc.candidates("h0_0_0", "h1_0_0")
        svc.candidates("h0_0_0", "h0_1_0")
        info = svc.cache_info()
        assert info["pairs"] == 2
        assert info["paths"] == 4 + 2

    def test_max_paths_respected(self):
        svc = PathService(FatTree(k=4), max_paths=2)
        assert len(svc.candidates("h0_0_0", "h1_0_0")) == 2

    def test_ecmp_path_is_a_candidate(self, svc):
        p = svc.ecmp_path(9, "h0_0_0", "h1_0_0")
        assert p in svc.candidates("h0_0_0", "h1_0_0")

    def test_ecmp_path_stable_per_flow(self, svc):
        assert svc.ecmp_path(9, "h0_0_0", "h1_0_0") == svc.ecmp_path(
            9, "h0_0_0", "h1_0_0"
        )

    def test_ecmp_spreads_flows(self, svc):
        paths = {svc.ecmp_path(i, "h0_0_0", "h1_0_0") for i in range(100)}
        assert len(paths) == 4
