"""PDQ: criticality ordering, exclusive links, early termination, flow lists."""

import pytest

from repro.sched.pdq import PDQ
from repro.sim.engine import Engine
from repro.sim.state import FlowStatus
from repro.workload.flow import make_task
from repro.workload.traces import dumbbell, fig1_trace, fig3_trace


def test_most_critical_flow_runs_alone_at_full_rate():
    topo = dumbbell(2)
    tasks = [
        make_task(0, 0.0, 9.0, [("L0", "R0", 1.0)], 0),   # later deadline
        make_task(1, 0.0, 3.0, [("L1", "R1", 1.0)], 1),   # more critical
    ]
    engine = Engine(topo, tasks, PDQ())
    sched = engine.scheduler
    sched.attach(topo, engine.path_service)
    for ts in engine.task_states:
        sched.on_task_arrival(ts, 0.0)
    sched.assign_rates(0.0)
    rates = {fs.flow.flow_id: fs.rate for fs in sched.active_flows}
    assert rates[1] == pytest.approx(1.0)
    assert rates[0] == pytest.approx(0.0)  # paused by the critical flow


def test_edf_then_sjf_ordering():
    topo = dumbbell(3)
    tasks = [
        make_task(0, 0.0, 5.0, [("L0", "R0", 3.0)], 0),  # same dl, larger
        make_task(1, 0.0, 5.0, [("L1", "R1", 1.0)], 1),  # same dl, smaller → first
        make_task(2, 0.0, 2.0, [("L2", "R2", 1.0)], 2),  # earliest dl → very first
    ]
    result = Engine(topo, tasks, PDQ()).run()
    by_id = {fs.flow.flow_id: fs for fs in result.flow_states}
    assert by_id[2].completed_at == pytest.approx(1.0)
    assert by_id[1].completed_at == pytest.approx(2.0)
    assert by_id[0].completed_at == pytest.approx(5.0)


def test_preemption_on_more_critical_arrival():
    topo = dumbbell(2)
    tasks = [
        make_task(0, 0.0, 10.0, [("L0", "R0", 5.0)], 0),
        make_task(1, 1.0, 3.0, [("L1", "R1", 1.0)], 1),  # arrives later, urgent
    ]
    result = Engine(topo, tasks, PDQ()).run()
    by_id = {fs.flow.flow_id: fs for fs in result.flow_states}
    # flow 1 preempts at t=1, finishes at 2; flow 0 resumes → 6
    assert by_id[1].completed_at == pytest.approx(2.0)
    assert by_id[0].completed_at == pytest.approx(6.0)
    assert by_id[0].met_deadline and by_id[1].met_deadline


def test_early_termination_kills_hopeless_flow():
    topo = dumbbell(1)
    # even alone at rate 1, 10 units cannot fit in a 5-unit deadline
    tasks = [make_task(0, 0.0, 5.0, [("L0", "R0", 10.0)], 0)]
    result = Engine(topo, tasks, PDQ()).run()
    fs = result.flow_states[0]
    assert fs.status is FlowStatus.TERMINATED
    assert fs.bytes_sent == 0.0  # killed before sending anything


def test_early_termination_frees_bandwidth_for_feasible_flow():
    topo = dumbbell(2)
    tasks = [
        make_task(0, 0.0, 2.0, [("L0", "R0", 1.0)], 0),   # critical, feasible
        make_task(1, 0.0, 2.5, [("L1", "R1", 2.4)], 1),   # doomed once 0 runs
    ]
    result = Engine(topo, tasks, PDQ()).run()
    by_id = {fs.flow.flow_id: fs for fs in result.flow_states}
    assert by_id[0].met_deadline
    # flow 1 was ET-killed (needs 2.4 < 2.5 alone, but is paused 1 unit)
    assert by_id[1].status is FlowStatus.TERMINATED


def test_no_early_termination_variant():
    topo = dumbbell(1)
    tasks = [make_task(0, 0.0, 5.0, [("L0", "R0", 10.0)], 0)]
    result = Engine(topo, tasks, PDQ(early_termination=False)).run()
    fs = result.flow_states[0]
    # transmits until the deadline kills it
    assert fs.bytes_sent == pytest.approx(5.0)


def test_disjoint_paths_run_concurrently():
    topo, tasks = fig3_trace()
    result = Engine(topo, tasks, PDQ()).run()
    # without a flow-list limit, plain PDQ completes all four here
    assert result.flows_met == 4


def test_flow_list_limit_reproduces_paper_fig3():
    topo, tasks = fig3_trace()
    result = Engine(topo, tasks, PDQ(flow_list_limit=1)).run()
    assert result.flows_met == 3
    missed = [fs for fs in result.flow_states if not fs.met_deadline]
    assert [fs.flow.flow_id for fs in missed] == [3]  # f4, as in the paper


def test_fig1_outcome_two_flows_no_tasks():
    topo, tasks = fig1_trace()
    result = Engine(topo, tasks, PDQ()).run()
    assert result.flows_met == 2
    assert result.tasks_completed == 0
    winners = sorted(fs.flow.flow_id for fs in result.flow_states if fs.met_deadline)
    assert winners == [0, 2]  # f11 and f21, per the paper's walk-through
