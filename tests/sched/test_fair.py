"""Fair Sharing: max-min fairness semantics."""

import pytest

from repro.net.topology import Topology
from repro.sched.fair import FairSharing
from repro.sim.engine import Engine
from repro.workload.flow import make_task
from repro.workload.traces import dumbbell, fig1_trace


def test_equal_split_on_shared_bottleneck():
    """n flows over one unit link each progress at 1/n."""
    topo = dumbbell(4)
    tasks = [
        make_task(i, 0.0, 100.0, [(f"L{i}", f"R{i}", 1.0)], i) for i in range(4)
    ]
    result = Engine(topo, tasks, FairSharing()).run()
    # all finish together: 4 flows at rate 1/4 for their first unit → but as
    # each needs exactly 1 unit, all complete at t=4
    for fs in result.flow_states:
        assert fs.completed_at == pytest.approx(4.0)


def test_share_grows_as_flows_finish():
    topo = dumbbell(2)
    tasks = [
        make_task(0, 0.0, 100.0, [("L0", "R0", 1.0)], 0),
        make_task(1, 0.0, 100.0, [("L1", "R1", 3.0)], 1),
    ]
    result = Engine(topo, tasks, FairSharing()).run()
    by_id = {fs.flow.flow_id: fs for fs in result.flow_states}
    # both at 1/2 until t=2 (flow0 done); flow1 then alone: 2 left at rate 1
    assert by_id[0].completed_at == pytest.approx(2.0)
    assert by_id[1].completed_at == pytest.approx(4.0)


def test_max_min_on_asymmetric_contention():
    """Classic max-min: flow A alone on link1 gets the slack that the
    contended flows cannot use."""
    topo = Topology(default_capacity=1.0)
    for n in ("a", "b", "c"):
        topo.add_host(n)
    topo.add_switch("s")
    topo.add_host("d")
    topo.add_cable("a", "s")
    topo.add_cable("b", "s")
    topo.add_cable("c", "s")
    topo.add_cable("s", "d")
    # two flows b->d and c->d share s->d with a->d: all three compete on
    # s->d (fair share 1/3 each)
    tasks = [
        make_task(0, 0.0, 100.0, [("a", "d", 1.0)], 0),
        make_task(1, 0.0, 100.0, [("b", "d", 1.0)], 1),
        make_task(2, 0.0, 100.0, [("c", "d", 1.0)], 2),
    ]
    engine = Engine(topo, tasks, FairSharing())
    result = engine.run()
    # perfectly symmetric: all complete at 3.0
    for fs in result.flow_states:
        assert fs.completed_at == pytest.approx(3.0)


def test_water_filling_two_bottlenecks():
    """Flow X crosses two links shared with different single-link flows;
    max-min gives X the min fair share and the others the residual."""
    topo = Topology(default_capacity=1.0)
    for n in ("a", "b", "x", "d", "e"):
        topo.add_host(n)
    topo.add_switch("s1")
    topo.add_switch("s2")
    topo.add_cable("x", "s1")
    topo.add_cable("a", "s1")
    topo.add_cable("s1", "s2")
    topo.add_cable("s2", "d")
    topo.add_cable("s2", "e")
    topo.add_cable("b", "s2")
    tasks = [
        make_task(0, 0.0, 1000.0, [("x", "d", 10.0)], 0),  # s1->s2 and s2->d
        make_task(1, 0.0, 1000.0, [("a", "d", 10.0)], 1),  # shares both
        make_task(2, 0.0, 1000.0, [("b", "e", 10.0)], 2),  # disjoint: s2->e? no: b->s2->e
    ]
    engine = Engine(topo, tasks, FairSharing())
    engine.scheduler.attach(topo, engine.path_service)
    sched = engine.scheduler
    # admit manually to inspect instantaneous rates
    for ts in engine.task_states:
        sched.on_task_arrival(ts, 0.0)
    sched.assign_rates(0.0)
    rates = {fs.flow.flow_id: fs.rate for fs in sched.active_flows}
    # flows 0,1 share s1->s2 and s2->d at 1/2; flow 2 is uncontended at 1
    assert rates[0] == pytest.approx(0.5)
    assert rates[1] == pytest.approx(0.5)
    assert rates[2] == pytest.approx(1.0)


def test_quit_on_miss_stops_flow():
    topo = dumbbell(1)
    tasks = [make_task(0, 0.0, 2.0, [("L0", "R0", 10.0)], 0)]
    result = Engine(topo, tasks, FairSharing()).run()
    fs = result.flow_states[0]
    assert fs.bytes_sent == pytest.approx(2.0)  # stopped at deadline


def test_deadline_oblivious_mode_finishes_late():
    topo = dumbbell(1)
    tasks = [make_task(0, 0.0, 2.0, [("L0", "R0", 10.0)], 0)]
    result = Engine(topo, tasks, FairSharing(quit_on_miss=False)).run()
    fs = result.flow_states[0]
    assert fs.completed_at == pytest.approx(10.0)
    assert not fs.met_deadline


def test_paper_fig1_fair_sharing():
    """Paper Fig. 1(b): 1 flow, 0 tasks."""
    topo, tasks = fig1_trace()
    result = Engine(topo, tasks, FairSharing()).run()
    assert result.flows_met == 1
    assert result.tasks_completed == 0
    # and the surviving flow is f21 (the size-1 flow), finishing exactly at 4
    winner = [fs for fs in result.flow_states if fs.met_deadline][0]
    assert winner.flow.flow_id == 2
    assert winner.completed_at == pytest.approx(4.0)


def test_accepts_every_task():
    topo = dumbbell(2)
    tasks = [make_task(i, 0.0, 0.001, [(f"L{i}", f"R{i}", 99.0)], i) for i in range(2)]
    result = Engine(topo, tasks, FairSharing()).run()
    assert all(ts.accepted for ts in result.task_states)
