"""Varys: coflow admission control with s/d reservations, FIFO, no preemption."""

import pytest

from repro.sched.varys import Varys
from repro.sim.engine import Engine
from repro.sim.state import FlowStatus
from repro.workload.flow import make_task
from repro.workload.traces import dumbbell, fig2_trace


def test_admitted_flow_completes_exactly_at_deadline():
    topo = dumbbell(1)
    tasks = [make_task(0, 0.0, 4.0, [("L0", "R0", 2.0)], 0)]
    result = Engine(topo, tasks, Varys()).run()
    fs = result.flow_states[0]
    assert fs.status is FlowStatus.COMPLETED
    assert fs.completed_at == pytest.approx(4.0, abs=1e-6)
    assert fs.met_deadline


def test_task_exceeding_capacity_rejected_whole():
    topo = dumbbell(2)
    # one task whose two flows each need rate 0.75 over the shared link
    tasks = [make_task(0, 0.0, 4.0,
                       [("L0", "R0", 3.0), ("L1", "R1", 3.0)], 0)]
    result = Engine(topo, tasks, Varys()).run()
    assert result.task_states[0].accepted is False
    assert all(fs.status is FlowStatus.REJECTED for fs in result.flow_states)
    assert all(fs.bytes_sent == 0.0 for fs in result.flow_states)


def test_fifo_no_preemption_matches_paper_fig2():
    """Paper Fig. 2(c): t1 (lax) admitted first starves t2 (urgent)."""
    topo, tasks = fig2_trace()
    result = Engine(topo, tasks, Varys()).run()
    by_tid = {ts.task.task_id: ts for ts in result.task_states}
    assert by_tid[0].accepted is True
    assert by_tid[1].accepted is False
    assert result.tasks_completed == 1


def test_admission_order_dependence():
    """FIFO admission: whichever task arrives first wins the reservation;
    the later one is rejected regardless of urgency — the arrival
    sensitivity the paper criticises ("later-arrived but more urgent
    tasks miss deadlines")."""
    topo = dumbbell(4)
    # each task demands 0.8 of the bottleneck — they cannot coexist
    lax = [("L0", "R0", 1.6), ("L1", "R1", 1.6)]      # dl 4 → 0.4 + 0.4
    urgent = [("L2", "R2", 0.8), ("L3", "R3", 0.8)]   # dl 2 → 0.4 + 0.4

    lax_first = [make_task(0, 0.0, 4.0, lax, 0), make_task(1, 0.0, 2.0, urgent, 2)]
    urgent_first = [make_task(0, 0.0, 2.0, urgent, 0), make_task(1, 0.0, 4.0, lax, 2)]

    r1 = Engine(topo, lax_first, Varys()).run()
    r2 = Engine(topo, urgent_first, Varys()).run()
    surv1 = [ts.task.task_id for ts in r1.task_states if ts.accepted]
    surv2 = [ts.task.task_id for ts in r2.task_states if ts.accepted]
    assert surv1 == [0] and surv2 == [0]  # first arrival always wins
    # the urgent task only completes when it happened to arrive first
    assert r1.tasks_completed == r2.tasks_completed == 1


def test_reservation_released_on_completion():
    topo = dumbbell(2)
    tasks = [
        make_task(0, 0.0, 2.0, [("L0", "R0", 2.0)], 0),   # rate 1 till t=2
        make_task(1, 3.0, 5.0, [("L1", "R1", 2.0)], 1),   # needs rate 1 at t=3
    ]
    result = Engine(topo, tasks, Varys()).run()
    assert result.tasks_completed == 2


def test_reservation_blocks_while_held():
    topo = dumbbell(2)
    tasks = [
        make_task(0, 0.0, 2.0, [("L0", "R0", 2.0)], 0),   # rate 1 till t=2
        make_task(1, 1.0, 3.0, [("L1", "R1", 1.5)], 1),   # needs 0.75 at t=1
    ]
    result = Engine(topo, tasks, Varys()).run()
    by_tid = {ts.task.task_id: ts for ts in result.task_states}
    assert by_tid[0].outcome.value == "completed"
    assert by_tid[1].accepted is False


def test_infeasible_demand_rejected():
    topo = dumbbell(1)
    # needs rate 1e12/1e-9 ≫ capacity → reject at admission
    tasks = [make_task(0, 0.0, 1e-9, [("L0", "R0", 1e12)], 0)]
    result = Engine(topo, tasks, Varys()).run()
    assert result.task_states[0].accepted is False


def test_multiple_flows_same_link_aggregate_demand():
    topo = dumbbell(3)
    # 3 flows of one task, each needing 0.4 on the shared middle link
    tasks = [make_task(0, 0.0, 5.0,
                       [(f"L{i}", f"R{i}", 2.0) for i in range(3)], 0)]
    result = Engine(topo, tasks, Varys()).run()
    # aggregate 1.2 > 1.0 → whole task rejected
    assert result.task_states[0].accepted is False
