"""Varys SEBF mode: smallest-effective-bottleneck-first coflow scheduling."""

import pytest

from repro.metrics.summary import summarize
from repro.sched.varys import Varys
from repro.sim.engine import Engine
from repro.sim.state import FlowStatus
from repro.workload.flow import make_task
from repro.workload.traces import dumbbell


def test_mode_validation():
    with pytest.raises(ValueError):
        Varys(mode="madd")
    assert Varys().mode == "deadline"


def test_smaller_coflow_scheduled_first():
    """Two coflows on one bottleneck: the small one finishes at its own
    Γ, the big one after both (SJF at coflow granularity)."""
    topo = dumbbell(2)
    tasks = [
        make_task(0, 0.0, 100.0, [("L0", "R0", 6.0)], 0),   # Γ = 6
        make_task(1, 0.0, 100.0, [("L1", "R1", 2.0)], 1),   # Γ = 2 → first
    ]
    result = Engine(topo, tasks, Varys(mode="sebf")).run()
    by_id = {fs.flow.flow_id: fs for fs in result.flow_states}
    assert by_id[1].completed_at == pytest.approx(2.0)
    assert by_id[0].completed_at == pytest.approx(8.0)


def test_madd_finishes_coflow_flows_together():
    """MADD paces a coflow's flows so none finishes before the coflow's
    bottleneck time (no wasted early completions)."""
    topo = dumbbell(2)
    # one coflow: flows of sizes 1 and 3 on disjoint access links but a
    # shared middle link → Γ = (1+3)/1 = 4
    tasks = [make_task(0, 0.0, 100.0,
                       [("L0", "R0", 1.0), ("L1", "R1", 3.0)], 0)]
    result = Engine(topo, tasks, Varys(mode="sebf")).run()
    ends = [fs.completed_at for fs in result.flow_states]
    assert ends[0] == pytest.approx(ends[1])
    assert ends[0] == pytest.approx(4.0)


def test_backfill_uses_leftover_capacity():
    """A lower-priority coflow on disjoint links runs concurrently."""
    topo = dumbbell(2)
    tasks = [
        make_task(0, 0.0, 100.0, [("L0", "R0", 2.0)], 0),
        make_task(1, 0.0, 100.0, [("L1", "R1", 4.0)], 1),
    ]
    # both cross the middle link: strict priority; sizes 2 then 4
    result = Engine(topo, tasks, Varys(mode="sebf")).run()
    by_id = {fs.flow.flow_id: fs for fs in result.flow_states}
    assert by_id[0].completed_at == pytest.approx(2.0)
    assert by_id[1].completed_at == pytest.approx(6.0)


def test_deadline_agnostic_runs_to_completion():
    topo = dumbbell(1)
    tasks = [make_task(0, 0.0, 1.0, [("L0", "R0", 5.0)], 0)]
    result = Engine(topo, tasks, Varys(mode="sebf")).run()
    fs = result.flow_states[0]
    assert fs.status is FlowStatus.COMPLETED
    assert fs.completed_at == pytest.approx(5.0)
    assert not fs.met_deadline


def test_admits_everything():
    topo = dumbbell(2)
    tasks = [
        make_task(0, 0.0, 0.5, [("L0", "R0", 9.0)], 0),
        make_task(1, 0.0, 0.5, [("L1", "R1", 9.0)], 1),
    ]
    result = Engine(topo, tasks, Varys(mode="sebf")).run()
    assert all(ts.accepted for ts in result.task_states)


def test_sebf_beats_fair_sharing_on_mean_cct():
    """The Varys paper's headline, measured: SEBF's mean coflow
    completion time beats fair sharing's on a mixed workload."""
    from repro.sched.fair import FairSharing

    topo = dumbbell(4)
    tasks = [
        make_task(0, 0.0, 1e3, [("L0", "R0", 1.0), ("L1", "R1", 1.0)], 0),
        make_task(1, 0.0, 1e3, [("L2", "R2", 6.0)], 2),
        make_task(2, 0.2, 1e3, [("L3", "R3", 2.0)], 3),
    ]
    sebf = summarize(Engine(topo, tasks, Varys(mode="sebf")).run())
    fair = summarize(
        Engine(topo, tasks, FairSharing(quit_on_miss=False)).run()
    )
    assert sebf.mean_task_completion_time < fair.mean_task_completion_time


def test_cct_metric_only_counts_fully_completed_tasks():
    topo = dumbbell(2)
    tasks = [
        make_task(0, 0.0, 100.0, [("L0", "R0", 2.0)], 0),
        make_task(1, 0.0, 0.5, [("L1", "R1", 50.0)], 1),  # rejected (needs 100× cap)
    ]
    m = summarize(Engine(topo, tasks, Varys(mode="deadline")).run())
    # only task 0's CCT counts, and deadline-mode MADD paces it to land
    # exactly on its deadline (the s/d reservation)
    assert m.mean_task_completion_time == pytest.approx(100.0, rel=1e-6)
    assert m.mean_flow_completion_time == pytest.approx(100.0, rel=1e-6)
