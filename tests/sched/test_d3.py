"""D3: FCFS greedy deadline-rate allocation."""

import pytest

from repro.sched.d3 import D3
from repro.sim.engine import Engine
from repro.sim.state import FlowStatus
from repro.workload.flow import make_task
from repro.workload.traces import dumbbell, fig1_trace


def _admit(topo, tasks):
    """Build an engine, deliver all t=0 arrivals, return the scheduler."""
    engine = Engine(topo, tasks, D3())
    sched = engine.scheduler
    sched.attach(topo, engine.path_service)
    for ts in engine.task_states:
        sched.on_task_arrival(ts, 0.0)
    sched.assign_rates(0.0)
    return sched


def test_request_rate_is_remaining_over_time_to_deadline():
    topo = dumbbell(1)
    tasks = [make_task(0, 0.0, 4.0, [("L0", "R0", 2.0)], 0)]
    sched = _admit(topo, tasks)
    fs = sched.active_flows[0]
    # alone on the link: request 2/4 = 0.5, leftover tops it up to capacity
    assert fs.rate == pytest.approx(1.0)


def test_fcfs_blocking_matches_paper_fig1():
    """Paper Fig. 1(c) walk-through: f11 (earlier) gets its request 1/2,
    f12 takes the remaining 1/2, later flows get 0 at t=0."""
    topo, tasks = fig1_trace()
    sched = _admit(topo, tasks)
    rates = {fs.flow.flow_id: fs.rate for fs in sched.active_flows}
    assert rates[0] == pytest.approx(0.5)  # f11 requests 2/4 granted
    assert rates[1] == pytest.approx(0.5)  # f12 requests 1, gets leftover
    assert rates[2] == pytest.approx(0.0)
    assert rates[3] == pytest.approx(0.0)


def test_fig1_outcome_one_flow_no_tasks():
    topo, tasks = fig1_trace()
    result = Engine(topo, tasks, D3()).run()
    assert result.flows_met == 1
    assert result.tasks_completed == 0
    winner = [fs for fs in result.flow_states if fs.met_deadline][0]
    assert winner.flow.flow_id == 0  # f11, the early large requester


def test_leftover_distribution_caps_at_capacity():
    topo = dumbbell(2)
    tasks = [
        make_task(0, 0.0, 10.0, [("L0", "R0", 1.0)], 0),
        make_task(1, 0.0, 10.0, [("L1", "R1", 1.0)], 1),
    ]
    sched = _admit(topo, tasks)
    total = sum(fs.rate for fs in sched.active_flows)
    assert total <= 1.0 + 1e-9  # never oversubscribe the bottleneck


def test_missed_flow_quits():
    topo = dumbbell(2)
    tasks = [
        make_task(0, 0.0, 2.0, [("L0", "R0", 10.0)], 0),
        make_task(1, 0.0, 50.0, [("L1", "R1", 10.0)], 1),
    ]
    result = Engine(topo, tasks, D3()).run()
    by_id = {fs.flow.flow_id: fs for fs in result.flow_states}
    assert by_id[0].status is FlowStatus.TERMINATED
    # after flow 0 quits at its deadline, flow 1 should still finish
    assert by_id[1].status is FlowStatus.COMPLETED


def test_rates_readjust_after_completion():
    topo = dumbbell(2)
    tasks = [
        make_task(0, 0.0, 100.0, [("L0", "R0", 1.0)], 0),
        make_task(1, 0.0, 100.0, [("L1", "R1", 5.0)], 1),
    ]
    result = Engine(topo, tasks, D3()).run()
    by_id = {fs.flow.flow_id: fs for fs in result.flow_states}
    # both requests are tiny; leftover split keeps them at 1/2 each;
    # flow 0 done at 2, then flow 1 runs at ~1 → 5-1=4 left → done ≈ 6
    assert by_id[1].completed_at == pytest.approx(6.0, rel=1e-3)


def test_admits_every_task():
    topo = dumbbell(1)
    tasks = [make_task(0, 0.0, 0.01, [("L0", "R0", 100.0)], 0)]
    result = Engine(topo, tasks, D3()).run()
    assert result.task_states[0].accepted is True


class TestAllocationPeriod:
    def test_validation(self):
        with pytest.raises(ValueError):
            D3(allocation_period=0)

    def test_default_no_change_points(self):
        assert D3().next_change(5.0) is None

    def test_periodic_refresh_updates_requests(self):
        """With periodic renegotiation a flow's request grows as its
        slack shrinks; behaviour converges to the event-driven model."""
        topo = dumbbell(2)
        tasks = [
            make_task(0, 0.0, 4.0, [("L0", "R0", 2.0)], 0),
            make_task(1, 0.0, 8.0, [("L1", "R1", 2.0)], 1),
        ]
        ideal = Engine(topo, tasks, D3()).run()
        rtt = Engine(topo, tasks, D3(allocation_period=0.05)).run()
        # both complete everything; the periodic variant does more work
        assert ideal.flows_met == rtt.flows_met == 2
        assert rtt.counters.rate_recomputes > ideal.counters.rate_recomputes

    def test_refresh_stops_when_idle(self):
        sched = D3(allocation_period=0.1)
        assert sched.next_change(0.0) is None  # no active flows yet
