"""Scheduler registry and the shared base-class helpers."""

import pytest

from repro.sched.base import edf_sjf_key, exclusive_full_rate
from repro.sched.registry import PAPER_ORDER, SCHEDULERS, make_scheduler
from repro.sim.state import FlowState
from repro.util.errors import ConfigurationError
from repro.workload.flow import Flow


def test_registry_has_paper_six_plus_extensions():
    assert set(SCHEDULERS) == {
        "Fair Sharing", "D3", "PDQ", "Baraat", "Varys", "TAPS", "D2TCP"
    }
    # the paper's legend order contains exactly the evaluated six
    assert set(PAPER_ORDER) == set(SCHEDULERS) - {"D2TCP"}


def test_extended_order_superset():
    from repro.sched.registry import EXTENDED_ORDER

    assert set(EXTENDED_ORDER) == set(SCHEDULERS)
    assert len(EXTENDED_ORDER) == len(SCHEDULERS)


def test_make_scheduler_fresh_instances():
    a, b = make_scheduler("PDQ"), make_scheduler("PDQ")
    assert a is not b
    assert a.name == "PDQ"


def test_make_scheduler_names_match():
    for name in SCHEDULERS:
        assert make_scheduler(name).name == name


def test_unknown_scheduler_raises():
    with pytest.raises(ConfigurationError):
        make_scheduler("MegaSched")


def _fs(fid, deadline, remaining, path=(0,)):
    f = Flow(flow_id=fid, task_id=0, src="a", dst="b",
             size=max(remaining, 1.0), release=0.0, deadline=deadline)
    st = FlowState(flow=f)
    st.remaining = remaining
    st.path = path
    return st


class TestEdfSjfKey:
    def test_deadline_dominates(self):
        early = _fs(0, deadline=1.0, remaining=100.0)
        late = _fs(1, deadline=2.0, remaining=1.0)
        assert edf_sjf_key(early) < edf_sjf_key(late)

    def test_sjf_breaks_deadline_ties(self):
        small = _fs(5, deadline=1.0, remaining=1.0)
        big = _fs(2, deadline=1.0, remaining=9.0)
        assert edf_sjf_key(small) < edf_sjf_key(big)

    def test_id_breaks_full_ties(self):
        a = _fs(1, deadline=1.0, remaining=1.0)
        b = _fs(2, deadline=1.0, remaining=1.0)
        assert edf_sjf_key(a) < edf_sjf_key(b)


class TestExclusiveFullRate:
    def test_winner_takes_all_links(self):
        flows = [_fs(0, 1.0, 1.0, path=(0, 1)), _fs(1, 2.0, 1.0, path=(1, 2))]
        exclusive_full_rate(flows, edf_sjf_key, capacity_of=lambda p: 1.0)
        assert flows[0].rate == 1.0
        assert flows[1].rate == 0.0  # shares link 1 with the winner

    def test_disjoint_paths_both_run(self):
        flows = [_fs(0, 1.0, 1.0, path=(0,)), _fs(1, 2.0, 1.0, path=(1,))]
        exclusive_full_rate(flows, edf_sjf_key, capacity_of=lambda p: 3.0)
        assert flows[0].rate == flows[1].rate == 3.0

    def test_priority_order_respected(self):
        # both want link 0; the more critical (earlier deadline) wins
        flows = [_fs(0, 9.0, 1.0, path=(0,)), _fs(1, 1.0, 1.0, path=(0,))]
        exclusive_full_rate(flows, edf_sjf_key, capacity_of=lambda p: 1.0)
        assert flows[0].rate == 0.0
        assert flows[1].rate == 1.0
