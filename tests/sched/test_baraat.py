"""Baraat: FIFO task order, SJF within a task, deadline-agnostic."""

import pytest

from repro.sched.baraat import Baraat
from repro.sim.engine import Engine
from repro.sim.state import FlowStatus
from repro.workload.flow import make_task
from repro.workload.traces import dumbbell, fig2_trace


def test_earlier_task_has_priority_regardless_of_deadline():
    topo = dumbbell(2)
    tasks = [
        make_task(0, 0.0, 50.0, [("L0", "R0", 3.0)], 0),  # lax deadline, first
        make_task(1, 1.0, 3.0, [("L1", "R1", 1.0)], 1),   # urgent, second
    ]
    result = Engine(topo, tasks, Baraat()).run()
    by_id = {fs.flow.flow_id: fs for fs in result.flow_states}
    # FIFO: task 0 keeps the link; the urgent task is starved until its
    # deadline passes and the no-useless-transmission courtesy stops it
    assert by_id[0].completed_at == pytest.approx(3.0)
    assert by_id[1].status is FlowStatus.TERMINATED
    assert not by_id[1].met_deadline


def test_sjf_within_task():
    topo = dumbbell(2)
    tasks = [
        make_task(0, 0.0, 50.0,
                  [("L0", "R0", 5.0), ("L1", "R1", 2.0)], 0),
    ]
    result = Engine(topo, tasks, Baraat()).run()
    by_id = {fs.flow.flow_id: fs for fs in result.flow_states}
    assert by_id[1].completed_at == pytest.approx(2.0)  # shorter first
    assert by_id[0].completed_at == pytest.approx(7.0)


def test_doomed_flow_wastes_until_deadline_then_stops():
    """Deadline-agnostic scheduling pushes the doomed flow, but the §V-A
    no-useless-transmission courtesy stops it once the deadline passes."""
    topo = dumbbell(1)
    tasks = [make_task(0, 0.0, 2.0, [("L0", "R0", 10.0)], 0)]
    result = Engine(topo, tasks, Baraat()).run()
    fs = result.flow_states[0]
    assert fs.status is FlowStatus.TERMINATED
    assert fs.bytes_sent == pytest.approx(2.0)  # wasted dribble


def test_oblivious_variant_transmits_past_deadline():
    topo = dumbbell(1)
    tasks = [make_task(0, 0.0, 2.0, [("L0", "R0", 10.0)], 0)]
    result = Engine(topo, tasks, Baraat(stop_missed_flows=False)).run()
    fs = result.flow_states[0]
    assert fs.status is FlowStatus.COMPLETED
    assert fs.completed_at == pytest.approx(10.0)
    assert not fs.met_deadline
    assert fs.bytes_sent == pytest.approx(10.0)


def test_fig2_t2_always_fails():
    """Paper Fig. 2(b): Baraat's FIFO makes the urgent task t2 miss."""
    topo, tasks = fig2_trace()
    result = Engine(topo, tasks, Baraat()).run()
    by_tid = {ts.task.task_id: ts for ts in result.task_states}
    assert by_tid[1].outcome.value == "failed"


def test_later_task_fills_idle_disjoint_links():
    """FIFO priority never blocks flows on disjoint paths."""
    topo = dumbbell(2)
    tasks = [
        make_task(0, 0.0, 50.0, [("L0", "R0", 2.0)], 0),
        make_task(1, 0.0, 50.0, [("L1", "R1", 2.0)], 1),
    ]
    # both cross the shared middle link — serialize
    result = Engine(topo, tasks, Baraat()).run()
    by_id = {fs.flow.flow_id: fs for fs in result.flow_states}
    assert by_id[0].completed_at == pytest.approx(2.0)
    assert by_id[1].completed_at == pytest.approx(4.0)


def test_task_serial_is_arrival_order_not_id():
    topo = dumbbell(2)
    tasks = [
        make_task(5, 1.0, 51.0, [("L0", "R0", 2.0)], 0),  # higher id, arrives later
        make_task(2, 0.0, 50.0, [("L1", "R1", 2.0)], 1),  # lower id, first
    ]
    result = Engine(topo, tasks, Baraat()).run()
    by_tid = {ts.task.task_id: ts for ts in result.task_states}
    f_first = by_tid[2].flow_states[0]
    f_second = by_tid[5].flow_states[0]
    assert f_first.completed_at == pytest.approx(2.0)
    assert f_second.completed_at == pytest.approx(4.0)
