"""D2TCP (fluid): deadline-weighted bandwidth tilt."""

import pytest

from repro.sched.d2tcp import D2TCP, D_MAX, D_MIN
from repro.sim.engine import Engine
from repro.sim.state import FlowStatus
from repro.workload.flow import make_task
from repro.workload.traces import dumbbell


def _admit(topo, tasks):
    engine = Engine(topo, tasks, D2TCP())
    sched = engine.scheduler
    sched.attach(topo, engine.path_service)
    for ts in engine.task_states:
        sched.on_task_arrival(ts, 0.0)
    sched.assign_rates(0.0)
    return sched


def test_urgent_flow_gets_larger_share():
    topo = dumbbell(2)
    tasks = [
        make_task(0, 0.0, 10.0, [("L0", "R0", 2.0)], 0),  # lax: d = 0.2/… small
        make_task(1, 0.0, 2.5, [("L1", "R1", 2.0)], 1),   # urgent: d near 1
    ]
    sched = _admit(topo, tasks)
    rates = {fs.flow.flow_id: fs.rate for fs in sched.active_flows}
    assert rates[1] > rates[0]
    assert rates[0] + rates[1] == pytest.approx(1.0)


def test_equal_urgency_fair_split():
    topo = dumbbell(2)
    tasks = [
        make_task(0, 0.0, 4.0, [("L0", "R0", 2.0)], 0),
        make_task(1, 0.0, 4.0, [("L1", "R1", 2.0)], 1),
    ]
    sched = _admit(topo, tasks)
    rates = [fs.rate for fs in sched.active_flows]
    assert rates[0] == pytest.approx(rates[1])


def test_deadline_factor_clamped():
    topo = dumbbell(1)
    tasks = [make_task(0, 0.0, 100.0, [("L0", "R0", 0.1)], 0)]
    sched = _admit(topo, tasks)
    fs = sched.active_flows[0]
    assert sched.deadline_factor(fs, 0.0, 1.0) == D_MIN
    # nearly-expired deadline clamps high
    assert sched.deadline_factor(fs, 99.99, 1.0) == D_MAX


def test_factor_past_deadline_is_max():
    topo = dumbbell(1)
    tasks = [make_task(0, 0.0, 1.0, [("L0", "R0", 5.0)], 0)]
    sched = _admit(topo, tasks)
    fs = sched.active_flows[0]
    assert sched.deadline_factor(fs, 2.0, 1.0) == D_MAX


def test_quit_on_miss():
    topo = dumbbell(1)
    tasks = [make_task(0, 0.0, 2.0, [("L0", "R0", 10.0)], 0)]
    result = Engine(topo, tasks, D2TCP()).run()
    fs = result.flow_states[0]
    assert fs.status is FlowStatus.TERMINATED
    assert fs.bytes_sent == pytest.approx(2.0)


def test_urgency_tilt_moves_bytes_toward_tight_flow():
    """The measurable D2TCP effect: a deadline-pressed flow receives
    strictly more bandwidth than under fair sharing (here +10%), cutting
    its miss margin — even when the tilt cannot fully rescue it (in a
    symmetric duel the fluid share converges to the flow's requirement
    from below, so completion flips are rare; this is consistent with the
    TAPS paper's §II criticism of flow-level deadline awareness)."""
    from repro.sched.fair import FairSharing

    def tight_bytes(scheduler):
        tasks = [
            make_task(0, 0.0, 3.5, [("L0", "R0", 2.0)], 0),  # needs 0.57
            make_task(1, 0.0, 9.0, [("L1", "R1", 2.0)], 1),
        ]
        result = Engine(dumbbell(2), tasks, scheduler).run()
        return [fs for fs in result.flow_states if fs.flow.flow_id == 0][0].bytes_sent

    d2, fair = tight_bytes(D2TCP()), tight_bytes(FairSharing())
    assert d2 > fair * 1.1
    assert d2 > 1.9  # nearly completes vs fair sharing's 1.75


def test_overload_matches_taps_paper_criticism():
    """§II: flow-level deadline awareness "cannot minimize the
    deadline-missing tasks" — on a contended workload D2TCP lands in the
    same band as Fair Sharing on task completion while TAPS clears both."""
    from repro.core.controller import TapsScheduler
    from repro.metrics.summary import summarize
    from repro.net.trees import SingleRootedTree
    from repro.sched.fair import FairSharing
    from repro.workload.generator import WorkloadConfig, generate_workload

    topo = SingleRootedTree(4, 3, 3)
    cfg = WorkloadConfig(num_tasks=25, mean_flows_per_task=8,
                         arrival_rate=300, seed=1)
    tasks = generate_workload(cfg, list(topo.hosts))
    d2 = summarize_run(topo, tasks, D2TCP())
    fs = summarize_run(topo, tasks, FairSharing())
    taps = summarize_run(topo, tasks, TapsScheduler())
    assert abs(d2.task_completion_ratio - fs.task_completion_ratio) < 0.15
    assert taps.task_completion_ratio > max(
        d2.task_completion_ratio, fs.task_completion_ratio
    )


def summarize_run(topo, tasks, scheduler):
    from repro.metrics.summary import summarize

    return summarize(Engine(topo, tasks, scheduler).run())


def test_whole_workload_terminates():
    from repro.workload.generator import WorkloadConfig, generate_workload
    from repro.net.trees import SingleRootedTree

    topo = SingleRootedTree(2, 2, 2)
    cfg = WorkloadConfig(num_tasks=12, mean_flows_per_task=4,
                         arrival_rate=400, seed=21)
    tasks = generate_workload(cfg, list(topo.hosts))
    result = Engine(topo, tasks, D2TCP()).run()
    for fs in result.flow_states:
        assert fs.status in (FlowStatus.COMPLETED, FlowStatus.TERMINATED)
