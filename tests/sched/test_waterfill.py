"""Weighted max-min fairness (the shared water-filling core)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sched.waterfill import weighted_max_min
from repro.sim.state import FlowState
from repro.workload.flow import Flow


def _fs(fid, path):
    f = Flow(flow_id=fid, task_id=0, src="a", dst="b",
             size=1.0, release=0.0, deadline=1.0)
    st_ = FlowState(flow=f)
    st_.path = path
    return st_


def test_equal_weights_equal_split():
    flows = [_fs(0, (0,)), _fs(1, (0,)), _fs(2, (0,))]
    rates = weighted_max_min(flows, [1, 1, 1], lambda l: 3.0)
    assert rates == pytest.approx([1.0, 1.0, 1.0])


def test_weights_tilt_shares():
    flows = [_fs(0, (0,)), _fs(1, (0,))]
    rates = weighted_max_min(flows, [2.0, 1.0], lambda l: 3.0)
    assert rates == pytest.approx([2.0, 1.0])


def test_uncontended_flow_gets_full_link():
    flows = [_fs(0, (0,)), _fs(1, (1,))]
    rates = weighted_max_min(flows, [1, 1], lambda l: 5.0)
    assert rates == pytest.approx([5.0, 5.0])


def test_classic_max_min_redistribution():
    # flows A,B share link 0; B also crosses link 1 with C.
    # link 1 (cap 1) is B and C's bottleneck: each gets 0.5;
    # A then picks up link 0's slack: 1.5.
    flows = [_fs(0, (0,)), _fs(1, (0, 1)), _fs(2, (1,))]
    rates = weighted_max_min(flows, [1, 1, 1],
                             lambda l: {0: 2.0, 1: 1.0}[l])
    assert rates == pytest.approx([1.5, 0.5, 0.5])


def test_base_consumption_respected():
    flows = [_fs(0, (0,))]
    rates = weighted_max_min(flows, [1.0], lambda l: 2.0, base={0: 1.5})
    assert rates == pytest.approx([0.5])


def test_mismatched_lengths_rejected():
    with pytest.raises(ValueError):
        weighted_max_min([_fs(0, (0,))], [1, 2], lambda l: 1.0)


def test_nonpositive_weight_rejected():
    with pytest.raises(ValueError):
        weighted_max_min([_fs(0, (0,))], [0.0], lambda l: 1.0)


@st.composite
def scenarios(draw):
    n_links = draw(st.integers(1, 4))
    n_flows = draw(st.integers(1, 6))
    flows, weights = [], []
    for i in range(n_flows):
        path = tuple(sorted(draw(
            st.sets(st.integers(0, n_links - 1), min_size=1, max_size=n_links)
        )))
        flows.append(_fs(i, path))
        weights.append(draw(st.floats(0.1, 5.0)))
    caps = {l: draw(st.floats(0.5, 10.0)) for l in range(n_links)}
    return flows, weights, caps


@settings(max_examples=150, deadline=None)
@given(scenarios())
def test_never_oversubscribes_and_work_conserving(scenario):
    flows, weights, caps = scenario
    rates = weighted_max_min(flows, weights, lambda l: caps[l])
    assert all(r >= 0 for r in rates)
    load = {}
    for fs, r in zip(flows, rates):
        for l in fs.path:
            load[l] = load.get(l, 0.0) + r
    for l, total in load.items():
        assert total <= caps[l] * (1 + 1e-9)
    # work conservation: every flow is bottlenecked somewhere
    for fs, r in zip(flows, rates):
        slack = min(caps[l] - load[l] for l in fs.path)
        assert slack <= 1e-6, "a flow left usable capacity unused"
