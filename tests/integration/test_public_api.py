"""The README/quickstart public API surface."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_quickstart_snippet_runs():
    """The exact flow promised in the package docstring."""
    topo = repro.SingleRootedTree(servers_per_rack=4, racks_per_pod=3, pods=3)
    tasks = repro.generate_workload(
        repro.WorkloadConfig(num_tasks=10), list(topo.hosts)
    )
    result = repro.Engine(topo, tasks, repro.TapsScheduler()).run()
    metrics = repro.summarize(result)
    assert 0.0 <= metrics.task_completion_ratio <= 1.0
    assert metrics.scheduler == "TAPS"


def test_all_six_schedulers_constructible_via_api():
    for name in ("Fair Sharing", "D3", "PDQ", "Baraat", "Varys", "TAPS"):
        assert repro.make_scheduler(name).name == name
