"""Chaos testing: random workloads × random faults × random TAPS configs.

Whatever combination of batch windows, control latency, preemption
policy, flow-table limits and link outages is thrown at the controller,
the load-bearing invariants must hold:

* the run terminates with every flow in a terminal state;
* byte accounting is conserved;
* an accepted task either completes in time or was explicitly dropped by
  a fault/backstop (never silently half-delivered);
* rejected tasks never transmit;
* under PROGRESS preemption and no faults, waste is exactly zero.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.controller import TapsScheduler
from repro.core.reject import PreemptionPolicy
from repro.sim.engine import Engine
from repro.sim.faults import LinkFault
from repro.sim.state import FlowStatus, TaskOutcome
from repro.workload.flow import make_task
from repro.workload.traces import dumbbell

N_PAIRS = 5


@st.composite
def chaos_case(draw):
    tasks = []
    fid = 0
    t = 0.0
    for tid in range(draw(st.integers(2, 7))):
        t += draw(st.floats(0.0, 1.5))
        specs = []
        for _ in range(draw(st.integers(1, 3))):
            pair = draw(st.integers(0, N_PAIRS - 1))
            specs.append((f"L{pair}", f"R{pair}", draw(st.floats(0.3, 3.0))))
        tasks.append(make_task(tid, t, t + draw(st.floats(0.5, 9.0)),
                               specs, fid))
        fid += len(specs)

    faults = []
    for _ in range(draw(st.integers(0, 3))):
        link = draw(st.integers(0, 4 * N_PAIRS + 1))  # any directed link
        start = draw(st.floats(0.0, 8.0))
        faults.append(LinkFault(link, start,
                                start + draw(st.floats(0.2, 5.0))))

    config = dict(
        preemption=draw(st.sampled_from(list(PreemptionPolicy))),
        batch_window=draw(st.sampled_from([0.0, 0.05, 0.3])),
        control_latency=draw(st.sampled_from([0.0, 0.02])),
        flow_table_limit=draw(st.sampled_from([None, 2, 4])),
        reallocate_inflight=draw(st.booleans()),
        priority=draw(st.sampled_from(["edf_sjf", "edf", "fifo"])),
    )
    return tasks, faults, config


@settings(max_examples=120, deadline=None)
@given(chaos_case())
def test_invariants_under_chaos(case):
    tasks, faults, config = case
    topo = dumbbell(N_PAIRS)
    sched = TapsScheduler(**config)
    result = Engine(topo, tasks, sched, faults=faults,
                    max_events=300_000).run()

    dropped = sched.stats.tasks_dropped_on_fault + sched.stats.backstop_kills
    for ts in result.task_states:
        if ts.accepted and ts.outcome is not TaskOutcome.COMPLETED:
            # an accepted-but-failed task is only legal as a fault/backstop
            # casualty or a preemption victim
            assert dropped + sched.stats.tasks_preempted > 0, config
        if ts.accepted is False:
            for fs in ts.flow_states:
                assert fs.bytes_sent == 0.0

    for fs in result.flow_states:
        assert fs.status in (
            FlowStatus.COMPLETED, FlowStatus.REJECTED, FlowStatus.TERMINATED
        )
        assert fs.bytes_sent + fs.remaining == pytest.approx(
            fs.flow.size, rel=1e-4
        )


@settings(max_examples=80, deadline=None)
@given(chaos_case())
def test_no_waste_without_faults_under_progress(case):
    tasks, _faults, config = case
    if config["preemption"] is not PreemptionPolicy.PROGRESS:
        return
    from repro.metrics.summary import summarize

    topo = dumbbell(N_PAIRS)
    sched = TapsScheduler(**config)
    result = Engine(topo, tasks, sched, max_events=300_000).run()
    m = summarize(result)
    # batch-window expiries can strand a pending task whose deadline
    # passes mid-window; those flows never transmitted, so still no waste
    assert m.wasted_bandwidth_ratio == pytest.approx(0.0, abs=1e-12)
