"""Capability tests at the paper's published sizes (§V-A).

Full paper-scale *sweeps* run offline (`--scale paper`); these tests pin
that the substrate genuinely handles the published dimensions — the
36,000-server tree and the k=32 fat-tree — and that TAPS schedules
thousands of flows on them in seconds.
"""

import pytest

from repro.core.controller import TapsScheduler
from repro.metrics.summary import summarize
from repro.net.fattree import FatTree
from repro.net.trees import SingleRootedTree
from repro.sim.engine import Engine
from repro.workload.generator import WorkloadConfig, generate_workload


@pytest.fixture(scope="module")
def paper_tree():
    return SingleRootedTree()  # 40 × 30 × 30 defaults


class TestPaperTopologies:
    def test_tree_dimensions(self, paper_tree):
        assert len(paper_tree.hosts) == 36_000
        # cables: 36000 host + 900 tor-agg + 30 agg-core → ×2 directed
        assert paper_tree.num_links == 2 * (36_000 + 900 + 30)

    def test_tree_routing_closed_form(self, paper_tree):
        p = paper_tree.shortest_path("h0_0_0", "h29_29_39")
        assert len(p) == 6
        p2 = paper_tree.shortest_path("h5_3_1", "h5_3_2")
        assert len(p2) == 2

    def test_fat_tree_k32_dimensions(self):
        ft = FatTree(32)
        assert len(ft.hosts) == 8192
        assert len(ft.candidate_paths("h0_0_0", "h31_15_15")) == 256

    def test_taps_runs_at_paper_topology_scale(self, paper_tree):
        """30 tasks of ~100 flows on all 36k hosts — the paper's setup
        with the flow count held at a CI-friendly fraction."""
        cfg = WorkloadConfig(num_tasks=30, mean_flows_per_task=100,
                             arrival_rate=100, seed=1)
        tasks = generate_workload(cfg, list(paper_tree.hosts))
        sched = TapsScheduler()
        m = summarize(Engine(paper_tree, tasks, sched).run())
        assert m.num_flows > 2000
        assert 0.0 < m.task_completion_ratio < 1.0
        assert m.wasted_bandwidth_ratio == 0.0
        assert sched.stats.backstop_kills == 0
