"""CLI entry point (argument parsing and end-to-end subcommands)."""

import pytest

from repro.cli import main


def test_motivation_subcommand(capsys):
    assert main(["motivation"]) == 0
    out = capsys.readouterr().out
    assert "fig1" in out and "fig2" in out and "fig3" in out
    assert "MISMATCH" not in out


def test_nphard_subcommand(capsys):
    assert main(["nphard"]) == 0
    out = capsys.readouterr().out
    assert "hamiltonian" in out.lower()
    assert "True" in out and "False" in out


def test_figure_subcommand_fig14(capsys):
    assert main(["figure", "fig14"]) == 0
    out = capsys.readouterr().out
    assert "fig14" in out
    assert "TAPS" in out and "Fair Sharing" in out


def test_figure_rejects_unknown(capsys):
    with pytest.raises(SystemExit):
        main(["figure", "fig99"])


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_scale_rejected():
    with pytest.raises(SystemExit):
        main(["figure", "fig14", "--scale", "galactic"])


def test_zoo_subcommand(capsys):
    assert main(["zoo"]) == 0
    out = capsys.readouterr().out
    assert "fat-tree" in out and "bcube" in out and "ficonn" in out


def test_optimality_subcommand(capsys):
    assert main(["optimality", "--instances", "2"]) == 0
    out = capsys.readouterr().out
    assert "mean gap" in out


def test_report_subcommand(tmp_path, capsys):
    out = tmp_path / "rep.md"
    assert main(["report", "--out", str(out), "--figures", "fig14"]) == 0
    assert out.exists()
    assert "fig14" in out.read_text()


def test_figure_csv_flag(tmp_path, capsys):
    out = tmp_path / "fig14.csv"
    assert main(["figure", "fig14", "--csv", str(out)]) == 0
    # fig14 is a time-series figure: csv politely skipped
    assert "csv skipped" in capsys.readouterr().out
    assert not out.exists()


def test_run_then_audit_roundtrip(tmp_path, capsys):
    trace = tmp_path / "run.jsonl"
    assert main(["run", "--tasks", "8", "--trace", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "tasks arrived:       8" in out
    assert trace.exists()
    assert main(["audit", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "audit OK: 0 violations" in out
    assert "scheduler: TAPS" in out


def test_run_with_fault_audits_clean(tmp_path, capsys):
    trace = tmp_path / "faulted.jsonl"
    assert main(["run", "--tasks", "8", "--fault", "0", "0.005", "0.02",
                 "--trace", str(trace)]) == 0
    assert main(["audit", str(trace)]) == 0
    assert "link state changes" in capsys.readouterr().out


def test_run_out_dir_then_stats_roundtrip(tmp_path, capsys):
    """``run --out-dir`` writes the artifact bundle; ``stats`` renders a
    report from those artifacts alone (no re-simulation)."""
    run_dir = tmp_path / "run1"
    assert main(["run", "--tasks", "8", "--out-dir", str(run_dir)]) == 0
    capsys.readouterr()
    for name in ("trace.jsonl", "telemetry.jsonl", "telemetry.prom"):
        assert (run_dir / name).exists(), name
    # the trace in the bundle is a valid audit target too
    assert main(["audit", str(run_dir / "trace.jsonl")]) == 0
    capsys.readouterr()
    assert main(["stats", str(run_dir)]) == 0
    out = capsys.readouterr().out
    assert "Telemetry report" in out
    assert "Admission latency" in out and "p99" in out
    assert "accepted" in out
    assert "link" in out  # per-link peak utilization section
    assert "Span-time breakdown" in out
    # stats also accepts the telemetry file path directly
    assert main(["stats", str(run_dir / "telemetry.jsonl")]) == 0
    assert capsys.readouterr().out == out


def test_stats_rejects_corrupt_telemetry(tmp_path, capsys):
    run_dir = tmp_path / "run1"
    assert main(["run", "--tasks", "4", "--out-dir", str(run_dir)]) == 0
    capsys.readouterr()
    tele = run_dir / "telemetry.jsonl"
    tele.write_text('{"kind":"trace-header","schema":1}\n')
    assert main(["stats", str(run_dir)]) == 1
    assert "not a telemetry file" in capsys.readouterr().err
    assert main(["stats", str(tmp_path / "nowhere")]) == 1
    assert "no telemetry" in capsys.readouterr().err


@pytest.fixture(scope="module")
def cli_run_dir(tmp_path_factory):
    """One ``run --out-dir`` bundle shared by the diagnosis-layer tests.

    24 tasks at seed 7 is the CI smoke workload: it is known to produce
    both accepted and rejected tasks, so ``explain`` has work to do.
    """
    run_dir = tmp_path_factory.mktemp("cli") / "run"
    assert main(["run", "--tasks", "24", "--seed", "7",
                 "--out-dir", str(run_dir)]) == 0
    return run_dir


def test_stats_json_flag(cli_run_dir, capsys):
    import json

    capsys.readouterr()
    assert main(["stats", str(cli_run_dir), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == 1
    assert doc["decisions"]["accepted"] + doc["decisions"]["rejected"] == 24
    assert doc["admission_latency"]["count"] > 0
    assert doc["links"] and all("peak" in row for row in doc["links"])


def test_timeline_subcommand(cli_run_dir, capsys):
    import json

    capsys.readouterr()
    assert main(["timeline", str(cli_run_dir)]) == 0
    out = capsys.readouterr().out
    assert "perfetto" in out
    chrome = cli_run_dir / "trace.chrome.json"
    assert chrome.exists()
    events = json.loads(chrome.read_text())
    assert isinstance(events, list) and events
    assert all(k in ev for ev in events for k in ("ph", "ts", "pid", "tid"))


def test_explain_subcommand(cli_run_dir, capsys):
    capsys.readouterr()
    assert main(["explain", str(cli_run_dir)]) == 0
    out = capsys.readouterr().out
    assert "REJECTED" in out
    assert "clause" in out
    assert ("auditor cross-check: clause evidence consistent "
            "(0 reject-rule violations)") in out


def test_explain_single_task_json(cli_run_dir, capsys):
    import json

    capsys.readouterr()
    assert main(["explain", str(cli_run_dir), "--json"]) == 0
    verdicts = json.loads(capsys.readouterr().out)
    assert verdicts, "seed 7 must leave tasks to explain"
    rejected = next(v for v in verdicts if v["outcome"] == "rejected")
    assert rejected["clause_consistent"] is True
    # single-task mode returns exactly that verdict
    assert main(["explain", str(cli_run_dir),
                 "--task", str(rejected["task"]), "--json"]) == 0
    solo = json.loads(capsys.readouterr().out)
    assert len(solo) == 1 and solo[0]["task"] == rejected["task"]
    # unknown task id is a clean CLI error
    assert main(["explain", str(cli_run_dir), "--task", "10000"]) == 1
    assert "does not appear" in capsys.readouterr().err


def test_diff_identical_runs_clean(cli_run_dir, tmp_path, capsys):
    """Diffing a bundle against a byte-identical copy of itself: exit 0,
    zero findings, traces flagged byte-identical."""
    import json
    import shutil

    clone = tmp_path / "clone"
    shutil.copytree(cli_run_dir, clone)
    capsys.readouterr()
    assert main(["diff", str(cli_run_dir), str(clone), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["traces_identical"] is True
    assert doc["regressions"] == 0 and doc["warnings"] == 0
    assert doc["deltas"] == []
    assert doc["metrics_compared"] > 0


def test_diff_flags_count_regression(cli_run_dir, tmp_path, capsys):
    run_b = tmp_path / "worse"
    assert main(["run", "--tasks", "24", "--seed", "3",
                 "--fault", "0", "0.01", "0.05",
                 "--out-dir", str(run_b)]) == 0
    capsys.readouterr()
    # seed 3 + fault rejects more tasks than seed 7: blocking regression
    assert main(["diff", str(cli_run_dir), str(run_b)]) == 1
    out = capsys.readouterr().out
    assert "traces differ" in out
    assert "[regression " in out
    assert "regression(s)" in out


def test_diff_unloadable_operand_exits_2(tmp_path, capsys):
    missing = tmp_path / "nowhere"
    assert main(["diff", str(missing), str(missing)]) == 2
    assert "error:" in capsys.readouterr().err


def test_audit_fails_on_corrupted_trace(tmp_path, capsys):
    """Flip one committed plan so its slices overlap another flow's: the
    CLI must exit non-zero and name the violated invariant."""
    import json

    trace = tmp_path / "run.jsonl"
    assert main(["run", "--tasks", "8", "--trace", str(trace)]) == 0
    capsys.readouterr()
    lines = trace.read_text().splitlines()
    for i, line in enumerate(lines):
        d = json.loads(line)
        if d.get("kind") == "task-accept" and len(d["plans"]) >= 1:
            clone = dict(d["plans"][0])
            clone["flow"] = 99999  # same path+slices, different flow
            d["plans"] = d["plans"] + [clone]
            lines[i] = json.dumps(d, separators=(",", ":"))
            break
    else:
        raise AssertionError("no task-accept event in the trace")
    trace.write_text("\n".join(lines) + "\n")
    assert main(["audit", str(trace)]) == 1
    out = capsys.readouterr().out
    assert "audit FAILED" in out
    assert "exclusive-link" in out
