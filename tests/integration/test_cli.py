"""CLI entry point (argument parsing and end-to-end subcommands)."""

import pytest

from repro.cli import main


def test_motivation_subcommand(capsys):
    assert main(["motivation"]) == 0
    out = capsys.readouterr().out
    assert "fig1" in out and "fig2" in out and "fig3" in out
    assert "MISMATCH" not in out


def test_nphard_subcommand(capsys):
    assert main(["nphard"]) == 0
    out = capsys.readouterr().out
    assert "hamiltonian" in out.lower()
    assert "True" in out and "False" in out


def test_figure_subcommand_fig14(capsys):
    assert main(["figure", "fig14"]) == 0
    out = capsys.readouterr().out
    assert "fig14" in out
    assert "TAPS" in out and "Fair Sharing" in out


def test_figure_rejects_unknown(capsys):
    with pytest.raises(SystemExit):
        main(["figure", "fig99"])


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_scale_rejected():
    with pytest.raises(SystemExit):
        main(["figure", "fig14", "--scale", "galactic"])


def test_zoo_subcommand(capsys):
    assert main(["zoo"]) == 0
    out = capsys.readouterr().out
    assert "fat-tree" in out and "bcube" in out and "ficonn" in out


def test_optimality_subcommand(capsys):
    assert main(["optimality", "--instances", "2"]) == 0
    out = capsys.readouterr().out
    assert "mean gap" in out


def test_report_subcommand(tmp_path, capsys):
    out = tmp_path / "rep.md"
    assert main(["report", "--out", str(out), "--figures", "fig14"]) == 0
    assert out.exists()
    assert "fig14" in out.read_text()


def test_figure_csv_flag(tmp_path, capsys):
    out = tmp_path / "fig14.csv"
    assert main(["figure", "fig14", "--csv", str(out)]) == 0
    # fig14 is a time-series figure: csv politely skipped
    assert "csv skipped" in capsys.readouterr().out
    assert not out.exists()


def test_run_then_audit_roundtrip(tmp_path, capsys):
    trace = tmp_path / "run.jsonl"
    assert main(["run", "--tasks", "8", "--trace", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "tasks arrived:       8" in out
    assert trace.exists()
    assert main(["audit", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "audit OK: 0 violations" in out
    assert "scheduler: TAPS" in out


def test_run_with_fault_audits_clean(tmp_path, capsys):
    trace = tmp_path / "faulted.jsonl"
    assert main(["run", "--tasks", "8", "--fault", "0", "0.005", "0.02",
                 "--trace", str(trace)]) == 0
    assert main(["audit", str(trace)]) == 0
    assert "link state changes" in capsys.readouterr().out


def test_run_out_dir_then_stats_roundtrip(tmp_path, capsys):
    """``run --out-dir`` writes the artifact bundle; ``stats`` renders a
    report from those artifacts alone (no re-simulation)."""
    run_dir = tmp_path / "run1"
    assert main(["run", "--tasks", "8", "--out-dir", str(run_dir)]) == 0
    capsys.readouterr()
    for name in ("trace.jsonl", "telemetry.jsonl", "telemetry.prom"):
        assert (run_dir / name).exists(), name
    # the trace in the bundle is a valid audit target too
    assert main(["audit", str(run_dir / "trace.jsonl")]) == 0
    capsys.readouterr()
    assert main(["stats", str(run_dir)]) == 0
    out = capsys.readouterr().out
    assert "Telemetry report" in out
    assert "Admission latency" in out and "p99" in out
    assert "accepted" in out
    assert "link" in out  # per-link peak utilization section
    assert "Span-time breakdown" in out
    # stats also accepts the telemetry file path directly
    assert main(["stats", str(run_dir / "telemetry.jsonl")]) == 0
    assert capsys.readouterr().out == out


def test_stats_rejects_corrupt_telemetry(tmp_path, capsys):
    run_dir = tmp_path / "run1"
    assert main(["run", "--tasks", "4", "--out-dir", str(run_dir)]) == 0
    capsys.readouterr()
    tele = run_dir / "telemetry.jsonl"
    tele.write_text('{"kind":"trace-header","schema":1}\n')
    assert main(["stats", str(run_dir)]) == 1
    assert "not a telemetry file" in capsys.readouterr().err
    assert main(["stats", str(tmp_path / "nowhere")]) == 1
    assert "no telemetry" in capsys.readouterr().err


def test_audit_fails_on_corrupted_trace(tmp_path, capsys):
    """Flip one committed plan so its slices overlap another flow's: the
    CLI must exit non-zero and name the violated invariant."""
    import json

    trace = tmp_path / "run.jsonl"
    assert main(["run", "--tasks", "8", "--trace", str(trace)]) == 0
    capsys.readouterr()
    lines = trace.read_text().splitlines()
    for i, line in enumerate(lines):
        d = json.loads(line)
        if d.get("kind") == "task-accept" and len(d["plans"]) >= 1:
            clone = dict(d["plans"][0])
            clone["flow"] = 99999  # same path+slices, different flow
            d["plans"] = d["plans"] + [clone]
            lines[i] = json.dumps(d, separators=(",", ":"))
            break
    else:
        raise AssertionError("no task-accept event in the trace")
    trace.write_text("\n".join(lines) + "\n")
    assert main(["audit", str(trace)]) == 1
    out = capsys.readouterr().out
    assert "audit FAILED" in out
    assert "exclusive-link" in out
