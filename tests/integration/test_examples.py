"""Every shipped example must run clean end-to-end.

Deliverable insurance: the examples are the first thing a new user runs;
these smoke tests execute each one in a subprocess and sanity-check its
output so API drift cannot silently break them.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))

#: a string each example must print (proof it did its real work)
EXPECTED_SNIPPET = {
    "quickstart.py": "TAPS",
    "motivation_examples.py": "[match]",
    "deadline_sweep.py": "task_completion_ratio",
    "testbed_throughput.py": "Fair Sharing",
    "sdn_protocol_trace.py": "control-plane transcript",
    "nphard_reduction.py": "2-factor",
    "gantt_schedules.py": "TAPS committed slices",
    "websearch_incast.py": "aggregations",
    "link_failure_rerouting.py": "outages injected",
    "trace_workflow.py": "hottest links",
}


def test_every_example_has_an_expectation():
    assert set(EXAMPLES) == set(EXPECTED_SNIPPET)


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert EXPECTED_SNIPPET[name] in proc.stdout
    assert "Traceback" not in proc.stderr
