"""Cross-scheduler invariants on realistic workloads.

Every policy, same traffic, one engine: these tests assert the physics
(capacity conservation, progress accounting) and the paper's qualitative
claims that must hold at any load.
"""

import pytest

from repro.metrics.summary import summarize
from repro.net.paths import PathService
from repro.sched.registry import PAPER_ORDER, make_scheduler
from repro.sim.engine import Engine
from repro.sim.state import FlowStatus


@pytest.fixture(scope="module")
def results(request):
    """One run of every scheduler on a shared 36-host workload."""
    from repro.net.trees import SingleRootedTree
    from repro.workload.generator import WorkloadConfig, generate_workload

    topo = SingleRootedTree(servers_per_rack=4, racks_per_pod=3, pods=3)
    cfg = WorkloadConfig(num_tasks=25, mean_flows_per_task=8,
                         arrival_rate=300, seed=11)
    tasks = generate_workload(cfg, list(topo.hosts))
    paths = PathService(topo)
    out = {}
    for name in PAPER_ORDER:
        out[name] = Engine(topo, tasks, make_scheduler(name),
                           path_service=paths).run()
    return out


def test_every_flow_reaches_terminal_state(results):
    for name, result in results.items():
        for fs in result.flow_states:
            assert fs.status in (
                FlowStatus.COMPLETED, FlowStatus.REJECTED, FlowStatus.TERMINATED
            ), f"{name}: flow {fs.flow.flow_id} stuck in {fs.status}"


def test_progress_conservation(results):
    for name, result in results.items():
        for fs in result.flow_states:
            assert fs.bytes_sent + fs.remaining == pytest.approx(
                fs.flow.size, rel=1e-4
            ), f"{name}: flow {fs.flow.flow_id} leaks bytes"


def test_completed_flows_fully_sent(results):
    for name, result in results.items():
        for fs in result.flow_states:
            if fs.status is FlowStatus.COMPLETED:
                assert fs.bytes_sent == pytest.approx(fs.flow.size, rel=1e-4)


def test_task_outcome_consistent_with_flows(results):
    from repro.sim.state import TaskOutcome

    for name, result in results.items():
        for ts in result.task_states:
            all_met = all(fs.met_deadline for fs in ts.flow_states)
            assert (ts.outcome is TaskOutcome.COMPLETED) == all_met, name


def test_taps_leads_task_completion(results):
    metrics = {n: summarize(r) for n, r in results.items()}
    taps = metrics["TAPS"].task_completion_ratio
    for name in ("Fair Sharing", "Baraat", "Varys", "D3", "PDQ"):
        assert taps >= metrics[name].task_completion_ratio - 0.05, (
            f"TAPS {taps:.2f} vs {name} "
            f"{metrics[name].task_completion_ratio:.2f}"
        )


def test_fair_sharing_trails_field(results):
    metrics = {n: summarize(r) for n, r in results.items()}
    fair = metrics["Fair Sharing"].task_completion_ratio
    assert metrics["TAPS"].task_completion_ratio >= fair


def test_admission_schedulers_have_zero_waste(results):
    for name in ("TAPS", "Varys"):
        m = summarize(results[name])
        assert m.wasted_bandwidth_ratio <= 1e-9, name


def test_waste_ordering(results):
    """Fig. 8's robust orderings: Fair Sharing wastes the most; Baraat's
    deadline-agnostic scheduling wastes more than PDQ's ET; admission
    schedulers waste nothing."""
    metrics = {n: summarize(r) for n, r in results.items()}
    waste = {n: m.wasted_bandwidth_ratio for n, m in metrics.items()}
    assert waste["Fair Sharing"] == max(waste.values())
    assert waste["Baraat"] >= waste["PDQ"]
    assert waste["TAPS"] == waste["Varys"] == 0.0


def test_engines_deterministic(results):
    """Replaying a scheduler on the same workload reproduces every metric."""
    from repro.net.trees import SingleRootedTree
    from repro.workload.generator import WorkloadConfig, generate_workload

    topo = SingleRootedTree(servers_per_rack=4, racks_per_pod=3, pods=3)
    cfg = WorkloadConfig(num_tasks=25, mean_flows_per_task=8,
                         arrival_rate=300, seed=11)
    tasks = generate_workload(cfg, list(topo.hosts))
    again = Engine(topo, tasks, make_scheduler("TAPS")).run()
    first = results["TAPS"]
    assert summarize(again).as_dict() == summarize(first).as_dict()


def test_link_capacity_never_oversubscribed():
    """Sampled instantaneous rates never exceed capacity on any link."""
    from repro.net.trees import SingleRootedTree
    from repro.workload.generator import WorkloadConfig, generate_workload

    topo = SingleRootedTree(servers_per_rack=2, racks_per_pod=2, pods=2)
    cfg = WorkloadConfig(num_tasks=12, mean_flows_per_task=4,
                         arrival_rate=500, seed=5)
    tasks = generate_workload(cfg, list(topo.hosts))
    cap = topo.uniform_capacity()

    class LinkAudit:
        def __init__(self):
            self.violations = []

        def on_advance(self, t0, t1, active):
            load = {}
            for fs in active:
                if fs.rate > 0:
                    for l in fs.path:
                        load[l] = load.get(l, 0.0) + fs.rate
            for l, r in load.items():
                if r > cap * (1 + 1e-6):
                    self.violations.append((t0, l, r))

    for name in PAPER_ORDER:
        audit = LinkAudit()
        Engine(topo, tasks, make_scheduler(name), hooks=(audit,)).run()
        assert not audit.violations, f"{name}: {audit.violations[:3]}"
