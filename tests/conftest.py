"""Shared fixtures: small topologies, workloads, and scheduler factories."""

from __future__ import annotations

import pytest

from repro.net.fattree import FatTree
from repro.net.testbed import PartialFatTreeTestbed
from repro.net.trees import SingleRootedTree
from repro.workload.generator import WorkloadConfig, generate_workload
from repro.workload.traces import dumbbell


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Keep the experiment executor's default result cache out of the real
    ``~/.cache`` during tests (CLI commands cache by default)."""
    monkeypatch.setenv("REPRO_TAPS_CACHE", str(tmp_path / "result-cache"))


@pytest.fixture
def tiny_tree():
    """2×2×2 single-rooted tree (8 hosts) — unique paths."""
    return SingleRootedTree(servers_per_rack=2, racks_per_pod=2, pods=2)


@pytest.fixture
def small_tree():
    """4×3×3 single-rooted tree (36 hosts) — the SMALL experiment scale."""
    return SingleRootedTree(servers_per_rack=4, racks_per_pod=3, pods=3)


@pytest.fixture
def fat_tree4():
    """k=4 fat-tree (16 hosts, 4 equal-cost inter-pod paths)."""
    return FatTree(k=4)


@pytest.fixture
def testbed():
    return PartialFatTreeTestbed()


@pytest.fixture
def bottleneck():
    """4-pair dumbbell with unit capacity (motivation-example substrate)."""
    return dumbbell(4)


@pytest.fixture
def small_workload(small_tree):
    """30 tasks × ~8 flows on the small tree, seeded."""
    cfg = WorkloadConfig(
        num_tasks=30, mean_flows_per_task=8, arrival_rate=300, seed=42
    )
    return generate_workload(cfg, list(small_tree.hosts))


@pytest.fixture(
    params=["Fair Sharing", "D3", "PDQ", "Baraat", "Varys", "TAPS"],
    ids=["fair", "d3", "pdq", "baraat", "varys", "taps"],
)
def any_scheduler(request):
    """A fresh instance of each of the six schedulers."""
    from repro.sched.registry import make_scheduler

    return make_scheduler(request.param)
