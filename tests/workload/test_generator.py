"""Workload generator: §V-A distributions, reproducibility, validation."""

import numpy as np
import pytest

from repro.util.errors import ConfigurationError
from repro.util.units import KB, ms
from repro.workload.generator import WorkloadConfig, generate_workload, workload_stats

HOSTS = [f"h{i}" for i in range(20)]


def _gen(**kw):
    cfg = WorkloadConfig(**{**dict(num_tasks=50, seed=3), **kw})
    return generate_workload(cfg, HOSTS)


class TestConfigValidation:
    def test_defaults_are_paper(self):
        cfg = WorkloadConfig()
        assert cfg.mean_deadline == pytest.approx(40 * ms)
        assert cfg.mean_flow_size == pytest.approx(200 * KB)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_tasks", 0),
            ("arrival_rate", 0.0),
            ("mean_deadline", -1.0),
            ("mean_flow_size", 0.0),
            ("mean_flows_per_task", 0.5),
            ("flows_per_task_dist", "weibull"),
        ],
    )
    def test_invalid_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            WorkloadConfig(**{field: value})

    def test_with_returns_modified_copy(self):
        a = WorkloadConfig()
        b = a.with_(num_tasks=99)
        assert b.num_tasks == 99
        assert a.num_tasks == 30


class TestGeneration:
    def test_reproducible(self):
        t1, t2 = _gen(), _gen()
        assert len(t1) == len(t2)
        for a, b in zip(t1, t2):
            assert a.arrival == b.arrival
            assert a.deadline == b.deadline
            assert [f.size for f in a.flows] == [f.size for f in b.flows]

    def test_seed_changes_output(self):
        t1 = _gen(seed=1)
        t2 = _gen(seed=2)
        assert [a.arrival for a in t1] != [a.arrival for a in t2]

    def test_task_ids_dense_and_sorted_by_arrival(self):
        tasks = _gen()
        assert [t.task_id for t in tasks] == list(range(len(tasks)))
        arrivals = [t.arrival for t in tasks]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] == 0.0

    def test_flow_ids_dense(self):
        tasks = _gen()
        ids = [f.flow_id for t in tasks for f in t.flows]
        assert ids == list(range(len(ids)))

    def test_flows_share_arrival_and_deadline(self):
        for t in _gen():
            assert all(f.release == t.arrival for f in t.flows)
            assert all(f.deadline == t.deadline for f in t.flows)

    def test_endpoints_valid(self):
        for t in _gen():
            for f in t.flows:
                assert f.src in HOSTS and f.dst in HOSTS and f.src != f.dst

    def test_sizes_floored(self):
        tasks = _gen(mean_flow_size=2 * KB, flow_size_sigma_frac=2.0)
        assert min(f.size for t in tasks for f in t.flows) >= 1 * KB

    def test_deadlines_floored(self):
        tasks = _gen(mean_deadline=0.1 * ms, min_deadline=1 * ms)
        assert min(t.deadline - t.arrival for t in tasks) >= 1 * ms

    def test_constant_flow_count(self):
        tasks = _gen(flows_per_task_dist="constant", mean_flows_per_task=7)
        assert {t.num_flows for t in tasks} == {7}

    def test_poisson_flow_count_at_least_one(self):
        tasks = _gen(mean_flows_per_task=1.1)
        assert min(t.num_flows for t in tasks) >= 1

    def test_needs_two_hosts(self):
        with pytest.raises(ConfigurationError):
            generate_workload(WorkloadConfig(), ["only"])


class TestStatistics:
    def test_arrival_rate_approximate(self):
        tasks = _gen(num_tasks=2000, arrival_rate=100.0)
        gaps = np.diff([t.arrival for t in tasks])
        assert np.mean(gaps) == pytest.approx(1 / 100.0, rel=0.1)

    def test_mean_deadline_approximate(self):
        tasks = _gen(num_tasks=3000, mean_deadline=40 * ms)
        slacks = [t.deadline - t.arrival for t in tasks]
        assert np.mean(slacks) == pytest.approx(40 * ms, rel=0.1)

    def test_mean_size_approximate(self):
        tasks = _gen(num_tasks=1000, mean_flow_size=200 * KB)
        sizes = [f.size for t in tasks for f in t.flows]
        assert np.mean(sizes) == pytest.approx(200 * KB, rel=0.05)

    def test_mean_flow_count_approximate(self):
        tasks = _gen(num_tasks=1500, mean_flows_per_task=12)
        counts = [t.num_flows for t in tasks]
        assert np.mean(counts) == pytest.approx(12, rel=0.1)

    def test_workload_stats_fields(self):
        tasks = _gen()
        stats = workload_stats(tasks)
        assert stats["num_tasks"] == len(tasks)
        assert stats["num_flows"] == sum(t.num_flows for t in tasks)
        assert stats["total_bytes"] == pytest.approx(
            sum(t.total_size for t in tasks)
        )
        assert stats["horizon"] == max(t.deadline for t in tasks)

    def test_sweep_knob_isolation(self):
        """Changing one knob must not reshuffle unrelated draws (child
        streams) — endpoints stay identical across a deadline sweep."""
        a = _gen(mean_deadline=20 * ms)
        b = _gen(mean_deadline=60 * ms)
        ea = [(f.src, f.dst) for t in a for f in t.flows]
        eb = [(f.src, f.dst) for t in b for f in t.flows]
        assert ea == eb
