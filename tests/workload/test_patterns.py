"""Structured application workloads (§II patterns)."""

import pytest

from repro.util.errors import ConfigurationError
from repro.workload.patterns import (
    cosmos_workload,
    mapreduce_workload,
    partition_aggregate_task,
    shuffle_task,
    websearch_workload,
)

HOSTS = [f"h{i}" for i in range(30)]


class TestPartitionAggregate:
    def test_all_flows_converge_on_aggregator(self):
        t = partition_aggregate_task(
            0, aggregator="h0", workers=["h1", "h2", "h3"],
            flow_size=1000.0, arrival=0.0, deadline=1.0, first_flow_id=0,
        )
        assert t.num_flows == 3
        assert {f.dst for f in t.flows} == {"h0"}
        assert {f.src for f in t.flows} == {"h1", "h2", "h3"}

    def test_aggregator_not_worker(self):
        with pytest.raises(ConfigurationError):
            partition_aggregate_task(0, "h0", ["h0", "h1"], 1.0, 0.0, 1.0, 0)

    def test_needs_workers(self):
        with pytest.raises(ConfigurationError):
            partition_aggregate_task(0, "h0", [], 1.0, 0.0, 1.0, 0)

    def test_size_jitter(self):
        import numpy as np

        t = partition_aggregate_task(
            0, "h0", [f"h{i}" for i in range(1, 20)], 1000.0, 0.0, 1.0, 0,
            size_jitter=np.random.default_rng(1),
        )
        sizes = {f.size for f in t.flows}
        assert len(sizes) > 1  # jittered
        assert all(s > 0 for s in sizes)


class TestShuffle:
    def test_pairwise_flows(self):
        t = shuffle_task(0, ["m0", "m1"], ["r0", "r1", "r2"],
                         bytes_per_pair=500.0, arrival=0.0, deadline=1.0,
                         first_flow_id=10)
        assert t.num_flows == 2 * 3
        assert [f.flow_id for f in t.flows] == list(range(10, 16))
        pairs = {(f.src, f.dst) for f in t.flows}
        assert len(pairs) == 6

    def test_disjoint_sets_required(self):
        with pytest.raises(ConfigurationError):
            shuffle_task(0, ["a"], ["a", "b"], 1.0, 0.0, 1.0, 0)

    def test_nonempty_required(self):
        with pytest.raises(ConfigurationError):
            shuffle_task(0, [], ["r"], 1.0, 0.0, 1.0, 0)


class TestPresets:
    @pytest.mark.parametrize("builder", [
        websearch_workload, mapreduce_workload, cosmos_workload,
    ])
    def test_structural_validity(self, builder):
        tasks = builder(HOSTS, num_tasks=6, fanout_scale=0.1, seed=3)
        assert len(tasks) == 6
        fids = [f.flow_id for t in tasks for f in t.flows]
        assert fids == list(range(len(fids)))
        for t in tasks:
            assert t.deadline > t.arrival
            for f in t.flows:
                assert f.src in HOSTS and f.dst in HOSTS and f.src != f.dst

    def test_websearch_fanout_band(self):
        many_hosts = [f"g{i}" for i in range(150)]
        tasks = websearch_workload(many_hosts, num_tasks=10,
                                   fanout_scale=0.2, seed=1)
        for t in tasks:
            assert 0.2 * 88 - 1 <= t.num_flows <= 0.2 * 120 + 1

    def test_websearch_is_incast(self):
        tasks = websearch_workload(HOSTS, num_tasks=5, fanout_scale=0.1, seed=2)
        for t in tasks:
            assert len({f.dst for f in t.flows}) == 1

    def test_mapreduce_is_allpairs(self):
        tasks = mapreduce_workload(HOSTS, num_tasks=4, fanout_scale=0.5, seed=2)
        for t in tasks:
            srcs = {f.src for f in t.flows}
            dsts = {f.dst for f in t.flows}
            assert t.num_flows == len(srcs) * len(dsts)

    def test_needs_enough_hosts(self):
        with pytest.raises(ConfigurationError):
            websearch_workload(["a", "b"], fanout_scale=1.0)

    def test_deterministic(self):
        a = cosmos_workload(HOSTS, num_tasks=5, fanout_scale=0.1, seed=7)
        b = cosmos_workload(HOSTS, num_tasks=5, fanout_scale=0.1, seed=7)
        assert [(f.src, f.dst, f.size) for t in a for f in t.flows] == \
            [(f.src, f.dst, f.size) for t in b for f in t.flows]


class TestEndToEnd:
    def test_incast_contends_at_aggregator(self):
        """The pattern's point: fair sharing chokes on the shared access
        link while TAPS serializes into it — run both and compare."""
        from repro.core.controller import TapsScheduler
        from repro.metrics.summary import summarize
        from repro.net.trees import SingleRootedTree
        from repro.sched.fair import FairSharing
        from repro.sim.engine import Engine

        topo = SingleRootedTree(4, 3, 3)
        tasks = websearch_workload(list(topo.hosts), num_tasks=12,
                                   fanout_scale=0.08, seed=5)
        taps = summarize(Engine(topo, tasks, TapsScheduler()).run())
        fair = summarize(Engine(topo, tasks, FairSharing()).run())
        assert taps.task_completion_ratio >= fair.task_completion_ratio
