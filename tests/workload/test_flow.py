"""Flow/Task record validation."""

import pytest

from repro.workload.flow import Flow, Task, make_task


def _flow(**kw):
    base = dict(flow_id=0, task_id=0, src="a", dst="b",
                size=100.0, release=0.0, deadline=1.0)
    base.update(kw)
    return Flow(**base)


class TestFlow:
    def test_valid(self):
        f = _flow()
        assert f.slack == 1.0

    def test_expected_time(self):
        assert _flow(size=200.0).expected_time(capacity=100.0) == 2.0

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            _flow(size=0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            _flow(size=-5)

    def test_deadline_before_release_rejected(self):
        with pytest.raises(ValueError):
            _flow(release=2.0, deadline=1.0)

    def test_deadline_equal_release_rejected(self):
        with pytest.raises(ValueError):
            _flow(release=1.0, deadline=1.0)

    def test_self_traffic_rejected(self):
        with pytest.raises(ValueError):
            _flow(src="a", dst="a")

    def test_frozen(self):
        with pytest.raises(AttributeError):
            _flow().size = 5


class TestTask:
    def test_make_task(self):
        t = make_task(3, arrival=1.0, deadline=2.0,
                      flow_specs=[("a", "b", 10.0), ("c", "d", 20.0)],
                      first_flow_id=7)
        assert t.num_flows == 2
        assert [f.flow_id for f in t.flows] == [7, 8]
        assert all(f.task_id == 3 for f in t.flows)
        assert t.total_size == 30.0

    def test_empty_task_rejected(self):
        with pytest.raises(ValueError):
            Task(task_id=0, arrival=0.0, deadline=1.0, flows=())

    def test_mismatched_task_id_rejected(self):
        f = _flow(task_id=9)
        with pytest.raises(ValueError):
            Task(task_id=0, arrival=0.0, deadline=1.0, flows=(f,))

    def test_mismatched_release_rejected(self):
        f = _flow(release=0.5, deadline=1.0)
        with pytest.raises(ValueError):
            Task(task_id=0, arrival=0.0, deadline=1.0, flows=(f,))

    def test_mismatched_deadline_rejected(self):
        f = _flow(deadline=0.9)
        with pytest.raises(ValueError):
            Task(task_id=0, arrival=0.0, deadline=1.0, flows=(f,))

    def test_flows_share_task_deadline(self):
        t = make_task(0, 0.0, 4.0, [("a", "b", 1.0), ("c", "d", 2.0)], 0)
        assert {f.deadline for f in t.flows} == {4.0}
