"""Hand-written traces of the paper's worked examples."""

import pytest

from repro.workload.traces import (
    dumbbell,
    fig1_trace,
    fig2_trace,
    fig3_topology,
    fig3_trace,
    testbed_trace as make_testbed_trace,
)


class TestDumbbell:
    def test_structure(self):
        t = dumbbell(4)
        assert len(t.hosts) == 8
        assert len(t.switches) == 2

    def test_every_pair_crosses_the_middle(self):
        t = dumbbell(3)
        mid = t.link("SL", "SR").index
        for i in range(3):
            assert mid in t.shortest_path(f"L{i}", f"R{i}")

    def test_unit_capacity(self):
        assert dumbbell(2).uniform_capacity() == 1.0


class TestFig1:
    def test_matches_paper_table(self):
        _, tasks = fig1_trace()
        assert len(tasks) == 2
        t1, t2 = tasks
        assert [f.size for f in t1.flows] == [2.0, 4.0]
        assert [f.size for f in t2.flows] == [1.0, 3.0]
        assert t1.deadline == t2.deadline == 4.0

    def test_all_arrive_simultaneously(self):
        _, tasks = fig1_trace()
        assert {t.arrival for t in tasks} == {0.0}

    def test_flow_order_is_paper_order(self):
        _, tasks = fig1_trace()
        ids = [f.flow_id for t in tasks for f in t.flows]
        assert ids == [0, 1, 2, 3]  # f11, f12, f21, f22


class TestFig2:
    def test_matches_paper_table(self):
        _, tasks = fig2_trace()
        t1, t2 = tasks
        assert all(f.size == 1.0 for f in t1.flows + t2.flows)
        assert t1.deadline == 4.0
        assert t2.deadline == 2.0


class TestFig3:
    def test_topology_shape(self):
        topo = fig3_topology()
        assert len(topo.hosts) == 4
        assert len(topo.switches) == 5

    def test_flows_match_paper_table(self):
        _, tasks = fig3_trace()
        specs = [
            (t.flows[0].src, t.flows[0].dst, t.flows[0].size, t.deadline)
            for t in tasks
        ]
        assert specs == [
            ("1", "2", 1.0, 1.0),
            ("1", "4", 1.0, 2.0),
            ("3", "2", 1.0, 2.0),
            ("3", "4", 2.0, 3.0),
        ]

    def test_contention_structure(self):
        """The link-sharing relations the paper's walk-through relies on."""
        topo, _ = fig3_trace()
        p_f1 = topo.shortest_path("1", "2")
        p_f3 = topo.shortest_path("3", "2")
        p_f4 = topo.shortest_path("3", "4")
        # f1 and f3 share the S5->2 link
        assert set(p_f1) & set(p_f3)
        # f3 and f4 share the 3->S3 (and S3->S5) links
        assert set(p_f3) & set(p_f4)
        # f2 has a detour disjoint from f1 beyond the first hop
        candidates = topo.candidate_paths("1", "4")
        assert len(candidates) == 2

    def test_optimal_schedule_exists(self):
        """The paper's Fig. 3(b) optimal allocation is feasible: all four
        flows can complete by their deadlines (TAPS finds it; asserted in
        the motivation tests)."""
        topo, tasks = fig3_trace()
        total = sum(t.total_size for t in tasks)
        assert total == 5.0  # 5 size units across disjoint-enough links


class TestTestbedTrace:
    def test_defaults(self):
        topo, tasks = make_testbed_trace()
        assert len(topo.hosts) == 8
        assert len(tasks) == 100
        assert all(t.num_flows == 1 for t in tasks)

    def test_burst_window(self):
        _, tasks = make_testbed_trace(burst_window=1e-3)
        assert max(t.arrival for t in tasks) < 5e-3  # bursty

    def test_seeded(self):
        _, a = make_testbed_trace(seed=3)
        _, b = make_testbed_trace(seed=3)
        assert [t.arrival for t in a] == [t.arrival for t in b]
