"""Property-based tests of the workload generator."""

from hypothesis import given, settings, strategies as st

from repro.workload.generator import WorkloadConfig, generate_workload

HOSTS = [f"h{i}" for i in range(8)]


@st.composite
def configs(draw):
    return WorkloadConfig(
        num_tasks=draw(st.integers(1, 40)),
        arrival_rate=draw(st.floats(1.0, 1000.0)),
        mean_deadline=draw(st.floats(1e-3, 1.0)),
        mean_flow_size=draw(st.floats(2e3, 1e6)),
        flow_size_sigma_frac=draw(st.floats(0.0, 1.5)),
        mean_flows_per_task=draw(st.floats(1.0, 20.0)),
        flows_per_task_dist=draw(st.sampled_from(["poisson", "constant"])),
        seed=draw(st.integers(0, 2**31)),
    )


@settings(max_examples=60, deadline=None)
@given(configs())
def test_structural_invariants(cfg):
    tasks = generate_workload(cfg, HOSTS)
    assert len(tasks) == cfg.num_tasks
    # dense, arrival-ordered task ids
    assert [t.task_id for t in tasks] == list(range(cfg.num_tasks))
    arrivals = [t.arrival for t in tasks]
    assert arrivals == sorted(arrivals)
    # dense flow ids across the workload
    fids = [f.flow_id for t in tasks for f in t.flows]
    assert fids == list(range(len(fids)))


@settings(max_examples=60, deadline=None)
@given(configs())
def test_value_invariants(cfg):
    tasks = generate_workload(cfg, HOSTS)
    for t in tasks:
        assert t.deadline > t.arrival
        assert t.deadline - t.arrival >= cfg.min_deadline - 1e-12
        assert t.num_flows >= 1
        for f in t.flows:
            assert f.size >= cfg.min_flow_size - 1e-9
            assert f.src in HOSTS and f.dst in HOSTS
            assert f.src != f.dst
            assert f.release == t.arrival
            assert f.deadline == t.deadline


@settings(max_examples=30, deadline=None)
@given(configs())
def test_determinism(cfg):
    a = generate_workload(cfg, HOSTS)
    b = generate_workload(cfg, HOSTS)
    assert [(t.arrival, t.deadline, t.num_flows) for t in a] == \
        [(t.arrival, t.deadline, t.num_flows) for t in b]
    assert [(f.src, f.dst, f.size) for t in a for f in t.flows] == \
        [(f.src, f.dst, f.size) for t in b for f in t.flows]


@settings(max_examples=30, deadline=None)
@given(configs(), st.integers(0, 2**31))
def test_seed_sensitivity(cfg, other_seed):
    if other_seed == cfg.seed:
        return
    a = generate_workload(cfg, HOSTS)
    b = generate_workload(cfg.with_(seed=other_seed), HOSTS)
    # arrival sequences should differ for non-trivial workloads
    if cfg.num_tasks >= 5:
        assert [t.arrival for t in a] != [t.arrival for t in b]
