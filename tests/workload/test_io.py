"""Workload trace (de)serialisation."""

import json

import pytest

from repro.util.errors import ConfigurationError
from repro.workload.generator import WorkloadConfig, generate_workload
from repro.workload.io import (
    FORMAT,
    load_tasks,
    save_tasks,
    tasks_from_dict,
    tasks_to_dict,
)
from repro.workload.traces import fig1_trace

HOSTS = [f"h{i}" for i in range(6)]


def _workload():
    cfg = WorkloadConfig(num_tasks=8, mean_flows_per_task=3, seed=5)
    return generate_workload(cfg, HOSTS)


def test_roundtrip_dict():
    tasks = _workload()
    back = tasks_from_dict(tasks_to_dict(tasks))
    assert len(back) == len(tasks)
    for a, b in zip(tasks, back):
        assert a.task_id == b.task_id
        assert a.arrival == b.arrival
        assert a.deadline == b.deadline
        assert [(f.flow_id, f.src, f.dst, f.size) for f in a.flows] == \
            [(f.flow_id, f.src, f.dst, f.size) for f in b.flows]


def test_roundtrip_file(tmp_path):
    tasks = _workload()
    p = tmp_path / "trace.json"
    save_tasks(tasks, p)
    back = load_tasks(p)
    assert tasks_to_dict(back) == tasks_to_dict(tasks)


def test_file_is_valid_json(tmp_path):
    p = tmp_path / "trace.json"
    save_tasks(_workload(), p)
    data = json.loads(p.read_text())
    assert data["format"] == FORMAT


def test_flows_inherit_task_timing():
    _, tasks = fig1_trace()
    back = tasks_from_dict(tasks_to_dict(tasks))
    for t in back:
        for f in t.flows:
            assert f.release == t.arrival
            assert f.deadline == t.deadline


def test_bad_format_rejected():
    with pytest.raises(ConfigurationError):
        tasks_from_dict({"format": "something-else", "tasks": []})


def test_replay_equivalence(tmp_path):
    """A reloaded trace produces byte-identical simulation results."""
    from repro.core.controller import TapsScheduler
    from repro.metrics.summary import summarize
    from repro.sim.engine import Engine
    from repro.workload.traces import dumbbell

    topo = dumbbell(3)
    cfg = WorkloadConfig(num_tasks=6, mean_flows_per_task=2,
                         mean_flow_size=1.0, min_flow_size=0.2,
                         mean_deadline=2.0, arrival_rate=2.0, seed=9)
    tasks = generate_workload(cfg, list(topo.hosts))
    p = tmp_path / "t.json"
    save_tasks(tasks, p)
    m1 = summarize(Engine(topo, tasks, TapsScheduler()).run())
    m2 = summarize(Engine(topo, load_tasks(p), TapsScheduler()).run())
    assert m1.as_dict() == m2.as_dict()