"""Event vocabulary and recorder: round-trips, ring buffer, determinism."""

import json

import pytest

from repro.trace import (
    EVENT_TYPES,
    PlanRecord,
    SCHEMA_VERSION,
    SliceStart,
    TaskAccept,
    TaskArrival,
    TaskReject,
    TraceRecorder,
    TrialBegin,
    event_from_json,
    load_jsonl,
)


def _sample_events():
    plan = PlanRecord(flow_id=7, task_id=3, path=(1, 4, 9),
                      slices=(0.0, 0.5, 0.75, 1.0), completion=1.0,
                      deadline=1.2)
    return [
        TaskArrival(0.0, task_id=3, deadline=1.2, num_flows=2,
                    total_bytes=4096.0),
        TrialBegin(0.0, task_id=3, attempt=1,
                   flows=((7, 1.2, 2048.0, 0.0), (8, 1.2, 2048.0, 0.0))),
        TaskAccept(0.0, task_id=3, victims=(1,), plans=(plan,)),
        TaskReject(0.1, task_id=4, reason="would-miss", clause=3,
                   missing=((9, 2),), lateness=((9, 0.05),),
                   victim_ratio=0.6, new_ratio=0.2),
        SliceStart(0.2, flow_id=7, task_id=3, path=(1, 4, 9)),
    ]


class TestRoundTrip:
    @pytest.mark.parametrize("event", _sample_events(),
                             ids=lambda e: e.kind)
    def test_json_round_trip_is_identity(self, event):
        rebuilt = event_from_json(json.loads(json.dumps(event.to_json())))
        assert rebuilt == event

    def test_every_kind_is_registered_and_distinct(self):
        kinds = [cls.kind for cls in EVENT_TYPES.values()]
        assert len(kinds) == len(set(kinds))
        for kind, cls in EVENT_TYPES.items():
            assert cls.kind == kind

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown trace event kind"):
            event_from_json({"kind": "no-such-event", "seq": 0, "t": 0.0})

    def test_plan_record_round_trip(self):
        plan = PlanRecord(flow_id=1, task_id=2, path=(5,),
                          slices=(0.125, 0.25), completion=0.25, deadline=0.5)
        assert PlanRecord.from_json(plan.to_json()) == plan


class TestRecorder:
    def test_sequence_numbers_and_counts(self):
        rec = TraceRecorder()
        for ev in _sample_events():
            rec.emit(ev)
        assert [e.seq for e in rec.events] == [0, 1, 2, 3, 4]
        assert rec.emitted == 5
        assert not rec.truncated
        assert [e.kind for e in rec.events_of_kind("task-accept")] \
            == ["task-accept"]

    def test_ring_overflow_drops_oldest_and_counts(self):
        rec = TraceRecorder(capacity=3)
        for ev in _sample_events():
            rec.emit(ev)
        assert len(rec) == 3
        assert rec.dropped == 2
        assert rec.truncated
        assert [e.seq for e in rec.events] == [2, 3, 4]  # oldest gone

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)

    def test_jsonl_round_trip(self, tmp_path):
        rec = TraceRecorder(meta={"scheduler": "TAPS"})
        rec.set_meta(priority="edf_sjf")
        for ev in _sample_events():
            rec.emit(ev)
        path = rec.to_jsonl(tmp_path / "trace.jsonl")
        loaded = load_jsonl(path)
        assert loaded.schema == SCHEMA_VERSION
        assert loaded.meta == {"scheduler": "TAPS", "priority": "edf_sjf"}
        assert loaded.emitted == 5
        assert not loaded.truncated
        assert loaded.events == rec.events

    def test_dumps_is_deterministic(self):
        def build():
            rec = TraceRecorder(meta={"b": 2, "a": 1})
            for ev in _sample_events():
                rec.emit(ev)
            return rec.dumps()

        assert build() == build()

    def test_load_rejects_foreign_files(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty trace"):
            load_jsonl(empty)
        with pytest.raises(ValueError, match="not a trace file"):
            load_jsonl(['{"kind":"task-arrival"}'])
        with pytest.raises(ValueError, match="unsupported trace schema"):
            load_jsonl(['{"kind":"trace-header","schema":999}'])

    def test_clear_resets_everything(self):
        rec = TraceRecorder(capacity=2)
        for ev in _sample_events():
            rec.emit(ev)
        rec.clear()
        assert len(rec) == 0 and rec.emitted == 0 and rec.dropped == 0
