"""The invariant auditor, exercised on clean and deliberately corrupted
traces — a clean run passes; each seeded corruption is pinned to the
invariant that must catch it."""

import dataclasses

import pytest

from repro.core.controller import TapsScheduler
from repro.net.fattree import FatTree
from repro.net.paths import PathService
from repro.sim.engine import Engine
from repro.trace import (
    FlowCompleted,
    PlanRecord,
    Preemption,
    SliceEnd,
    SliceStart,
    TaskAccept,
    TaskArrival,
    TaskReject,
    TraceRecorder,
    TrialBegin,
    TrialRollback,
    audit_events,
    audit_trace,
)
from repro.workload.generator import WorkloadConfig, generate_workload


def _plan(flow_id, task_id, path, slices, deadline):
    return PlanRecord(flow_id=flow_id, task_id=task_id, path=tuple(path),
                      slices=tuple(slices), completion=slices[-1],
                      deadline=deadline)


def _stamp(events):
    """Assign sequence numbers the way a recorder would."""
    for i, ev in enumerate(events):
        ev.seq = i
    return events


def _clean_stream():
    """A minimal legal trace: two tasks, one accept, one clause-3 reject."""
    return _stamp([
        TaskArrival(0.0, task_id=1, deadline=1.0, num_flows=1,
                    total_bytes=100.0),
        TrialBegin(0.0, task_id=1, attempt=1, flows=((10, 1.0, 100.0, 0.0),)),
        TaskAccept(0.0, task_id=1, victims=(),
                   plans=(_plan(10, 1, (5, 6), (0.0, 0.5), 1.0),)),
        SliceStart(0.0, flow_id=10, task_id=1, path=(5, 6)),
        TaskArrival(0.1, task_id=2, deadline=0.4, num_flows=1,
                    total_bytes=50.0),
        TrialBegin(0.1, task_id=2, attempt=1,
                   flows=((20, 0.4, 50.0, 0.1), (10, 1.0, 80.0, 0.0))),
        TaskReject(0.1, task_id=2, reason="would-miss", clause=2,
                   missing=((20, 2),), lateness=((20, 0.2),)),
        SliceEnd(0.5, flow_id=10, task_id=1),
        FlowCompleted(0.5, flow_id=10, task_id=1, met_deadline=True),
    ])


def _first_invariants(report):
    return {v.invariant for v in report.violations}


class TestCleanTraces:
    def test_synthetic_clean_stream_passes(self):
        report = audit_events(_clean_stream())
        assert report.ok, report.summary()
        assert report.events_audited == 9

    def test_real_run_passes_and_violations_pin_to_events(self):
        topo = FatTree(k=4)
        cfg = WorkloadConfig(seed=5, num_tasks=10, arrival_rate=300.0,
                             mean_deadline=0.1, mean_flow_size=300_000.0,
                             mean_flows_per_task=4.0)
        tasks = generate_workload(cfg, list(topo.hosts))
        recorder = TraceRecorder()
        Engine(topo, tasks, TapsScheduler(),
               path_service=PathService(topo, max_paths=4),
               trace=recorder).run()
        report = audit_trace(recorder)
        assert report.ok, report.summary()
        assert report.counts["task-arrival"] == 10
        assert report.counts["run-end"] == 1

    def test_truncated_recorder_is_flagged_unsound(self):
        rec = TraceRecorder(capacity=2)
        for ev in _clean_stream():
            rec.emit(ev)
        report = audit_trace(rec)
        assert report.truncated
        assert "unsound" in report.summary()


class TestCorruptedPlans:
    def test_mutated_slice_overlap_is_caught(self):
        """Corrupt a committed plan table so two flows' slices overlap on a
        shared link — the exclusive-link invariant must name the collision."""
        events = _clean_stream()
        accept = events[2]
        overlapping = accept.plans + (
            _plan(11, 1, (6, 7), (0.25, 0.75), 1.0),  # link 6 ∩ [0.25,0.5)
        )
        events[2] = dataclasses.replace(accept, plans=overlapping)
        events[2].seq = accept.seq
        report = audit_events(events)
        assert not report.ok
        v = report.first_violation
        assert v.invariant == "exclusive-link"
        assert v.seq == accept.seq
        assert v.context["link"] == 6
        assert set(v.context["flows"]) == {10, 11}

    def test_committed_plan_past_deadline_is_caught(self):
        events = _clean_stream()
        accept = events[2]
        late = (_plan(10, 1, (5, 6), (0.0, 1.5), 1.0),)  # completes at 1.5
        events[2] = dataclasses.replace(accept, plans=late)
        events[2].seq = accept.seq
        report = audit_events(events)
        assert "deadline-at-commit" in _first_invariants(report)

    def test_inconsistent_completion_is_caught(self):
        events = _clean_stream()
        accept = events[2]
        plan = dataclasses.replace(accept.plans[0], completion=0.3)
        events[2] = dataclasses.replace(accept, plans=(plan,))
        events[2].seq = accept.seq
        report = audit_events(events)
        assert "plan-consistency" in _first_invariants(report)


class TestCorruptedRejects:
    def test_skipped_reject_clause_is_caught(self):
        """Strip the clause from a would-miss rejection — the auditor must
        refuse a rejection that cannot name which rule clause fired."""
        events = _clean_stream()
        reject = events[6]
        events[6] = dataclasses.replace(reject, clause=None)
        events[6].seq = reject.seq
        report = audit_events(events)
        assert not report.ok
        v = report.first_violation
        assert v.invariant == "reject-rule"
        assert "no reject-rule clause" in v.message

    def test_misattributed_clause_is_caught(self):
        """Claim clause 1 (several tasks missing) when the evidence shows
        only the newcomer's own flows missing."""
        events = _clean_stream()
        reject = events[6]
        events[6] = dataclasses.replace(reject, clause=1)
        events[6].seq = reject.seq
        report = audit_events(events)
        assert "reject-rule" in _first_invariants(report)

    def test_clause3_wrong_direction_is_caught(self):
        """A clause-3 rejection where the victim's recorded ratio is
        strictly below the newcomer's should have been a preemption."""
        events = _clean_stream()
        reject = events[6]
        events[6] = dataclasses.replace(
            reject, clause=3, missing=((30, 3),), lateness=((30, 0.1),),
            victim_ratio=0.1, new_ratio=0.9,
        )
        events[6].seq = reject.seq
        report = audit_events(events)
        assert "reject-rule" in _first_invariants(report)

    def test_rollback_under_never_policy_is_caught(self):
        events = _stamp([
            TrialBegin(0.0, task_id=2, attempt=1, flows=()),
            TrialRollback(0.0, task_id=2, attempt=1, victim_task_id=1,
                          victim_ratio=0.0, new_ratio=0.5),
        ])
        report = audit_events(events, meta={"preemption": "never"})
        assert "reject-rule" in _first_invariants(report)
        assert "'never'" in report.first_violation.message

    def test_rollback_with_inverted_ratios_is_caught(self):
        events = _stamp([
            TrialRollback(0.0, task_id=2, attempt=1, victim_task_id=1,
                          victim_ratio=0.9, new_ratio=0.1),
        ])
        report = audit_events(events)
        assert "reject-rule" in _first_invariants(report)


class TestPriorityAndTimeline:
    def test_unsorted_ftmp_is_caught(self):
        events = _clean_stream()
        trial = events[5]
        events[5] = dataclasses.replace(
            trial, flows=tuple(reversed(trial.flows))
        )
        events[5].seq = trial.seq
        report = audit_events(events, meta={"priority": "edf_sjf"})
        assert "priority-order" in _first_invariants(report)

    def test_physical_double_booking_is_caught(self):
        """A second flow starts on a link another flow still holds."""
        events = _clean_stream()
        events.insert(4, SliceStart(0.05, flow_id=99, task_id=1, path=(6,)))
        _stamp(events)
        report = audit_events(events)
        assert not report.ok
        assert report.first_violation.invariant == "slice-exclusive"
        assert report.first_violation.context["holder"] == 10

    def test_same_instant_handoff_is_legal(self):
        """Half-open slices: flow A ends and flow B starts at the same
        instant on the same link — legal, ends resolve first."""
        events = _clean_stream()
        events.insert(8, SliceStart(0.5, flow_id=99, task_id=1, path=(5, 6)))
        _stamp(events)
        report = audit_events(events)
        assert report.ok, report.summary()

    def test_accepted_task_missing_deadline_without_faults_is_caught(self):
        events = _clean_stream()
        done = events[-1]
        events[-1] = dataclasses.replace(done, met_deadline=False)
        events[-1].seq = done.seq
        report = audit_events(events)
        assert "deadline-met" in _first_invariants(report)

    def test_preempted_task_is_exempt_from_deadline_met(self):
        events = _clean_stream()
        events.insert(7, Preemption(0.2, victim_task_id=1, by_task_id=2,
                                    killed_flows=(10,)))
        done = events[-1]
        events[-1] = dataclasses.replace(done, met_deadline=False)
        _stamp(events)
        report = audit_events(events)
        assert report.ok, report.summary()

    def test_sequence_regression_is_caught(self):
        events = _clean_stream()
        events[3].seq = 1  # duplicate of an earlier seq
        report = audit_events(events)
        assert "well-formed" in _first_invariants(report)

    def test_time_regression_is_caught(self):
        events = _clean_stream()
        events[4].time = 0.05
        events[5].time = 0.01  # jumps backwards
        report = audit_events(events)
        assert "well-formed" in _first_invariants(report)


class TestCorruptedJsonlEndToEnd:
    def test_corruption_survives_export_and_reload(self, tmp_path):
        """The acceptance-criteria path: corrupt, export, reload, audit."""
        events = _clean_stream()
        accept = events[2]
        events[2] = dataclasses.replace(
            accept,
            plans=accept.plans + (_plan(11, 1, (6,), (0.1, 0.4), 1.0),),
        )
        events[2].seq = accept.seq
        rec = TraceRecorder()
        for ev in events:
            rec.emit(ev)
        path = rec.to_jsonl(tmp_path / "corrupt.jsonl")

        from repro.trace import load_jsonl

        report = audit_trace(load_jsonl(path))
        assert not report.ok
        assert report.first_violation.invariant == "exclusive-link"
