"""Markdown report generation."""

import pytest

from repro.exp.configs import Scale
from repro.exp.runner import figure_markdown, generate_report, motivation_markdown

MICRO = Scale(
    name="micro-report",
    servers_per_rack=2, racks_per_pod=2, pods=2,
    fat_tree_k=4, num_tasks=6, mean_flows_per_task=3,
    arrival_rate=300.0, seeds=(1,),
)

MICRO2 = MICRO.with_(name="micro-2seed", seeds=(1, 2))


def test_motivation_markdown_table():
    md = motivation_markdown()
    assert "### fig1" in md and "### fig3" in md
    assert "| TAPS | 2 | 1 | yes |" in md
    assert "NO" not in md


def test_generate_report_single_figure(tmp_path):
    out = generate_report(tmp_path / "r.md", MICRO, figures=["fig14"])
    text = out.read_text()
    assert text.startswith("# TAPS reproduction")
    assert "## fig14" in text
    assert "Fair Sharing" in text
    assert "micro-report" in text


def test_generate_report_sweep_figure(tmp_path):
    out = generate_report(tmp_path / "r.md", MICRO, figures=["fig12"])
    text = out.read_text()
    assert "## fig12" in text
    assert "task_completion_ratio" in text
    assert "num_tasks" in text


def test_multi_seed_report_uses_ci(tmp_path):
    out = generate_report(tmp_path / "r.md", MICRO2, figures=["fig12"])
    assert "±" in out.read_text()


def test_figure_markdown_structure():
    from repro.exp.figures import run_figure

    run = run_figure("fig14", MICRO)
    md = figure_markdown(run, MICRO, took=1.23)
    assert md.startswith("## fig14")
    assert "1.2s" in md
    assert "```" in md
