"""Executor semantics: serial ≡ parallel ≡ cached, plus cache behavior.

The contract under test is the tentpole guarantee: for any grid, the
declarative executor path (``SweepGrid`` → ``SimJob`` fan-out) produces
``SweepResult`` series/raw and CSV bytes **bit-identical** to the
historical callable-based serial ``run_sweep``, whether points ran
in-process, across a process pool, or out of the content-addressed
result cache.
"""

from __future__ import annotations

from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exp.executor import (
    ExecutorConfig,
    ResultCache,
    SimJob,
    TopologySpec,
    build_topology,
    default_cache_dir,
    execute_jobs,
    make_executor,
    run_job,
    topology_spec,
)
from repro.exp.sweep import SweepGrid, run_sweep, run_sweep_grid
from repro.util.errors import ConfigurationError
from repro.workload.generator import WorkloadConfig, generate_workload

DUMBBELL = topology_spec("dumbbell", n_pairs=6, capacity=1.0)


def _base_config(**overrides) -> WorkloadConfig:
    base = dict(
        num_tasks=4, mean_flows_per_task=2, arrival_rate=2.0,
        mean_deadline=2.0, mean_flow_size=1.0, min_flow_size=0.1,
    )
    base.update(overrides)
    return WorkloadConfig(**base)


def _grid(values, schedulers, seeds) -> SweepGrid:
    return SweepGrid(
        topology=DUMBBELL,
        base_workload=_base_config(),
        param_name="mean_deadline",
        param_values=tuple(values),
        schedulers=tuple(schedulers),
        seeds=tuple(seeds),
        max_paths=4,
    )


def _reference(values, schedulers, seeds):
    """The historical callable-based serial sweep on the same grid."""
    holder = {}

    def topo():
        return holder.setdefault("t", DUMBBELL.build())

    def workload(value, seed):
        cfg = _base_config(mean_deadline=value, seed=seed)
        return generate_workload(cfg, list(topo().hosts))

    return run_sweep(
        topo, workload, "mean_deadline", list(values),
        schedulers=tuple(schedulers), seeds=tuple(seeds), max_paths=4,
    )


def _csv_bytes(sweep, tmp_path: Path, name: str) -> bytes:
    p = tmp_path / name
    sweep.to_csv(p)
    return p.read_bytes()


# -- equivalence ---------------------------------------------------------------


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    values=st.lists(
        st.floats(min_value=0.5, max_value=8.0, allow_nan=False),
        min_size=1, max_size=3, unique=True,
    ),
    schedulers=st.lists(
        st.sampled_from(["Fair Sharing", "TAPS", "PDQ", "Varys"]),
        min_size=1, max_size=2, unique=True,
    ),
    seeds=st.lists(st.integers(min_value=0, max_value=50),
                   min_size=1, max_size=2, unique=True),
)
def test_grid_matches_callable_sweep(values, schedulers, seeds, tmp_path):
    """Property: on random small grids the declarative serial path equals
    the callable-based reference — series, raw, and CSV bytes."""
    ref = _reference(values, schedulers, seeds)
    new = run_sweep_grid(_grid(values, schedulers, seeds))
    assert new.series == ref.series
    assert new.raw == ref.raw
    assert _csv_bytes(new, tmp_path, "new.csv") == \
        _csv_bytes(ref, tmp_path, "ref.csv")


def test_parallel_matches_serial(tmp_path):
    """Pool fan-out (jobs=2) is bit-identical to serial, including the
    wide- and long-format CSV bytes, across all six paper schedulers."""
    from repro.sched.registry import PAPER_ORDER

    values, seeds = (1.0, 4.0), (1, 2)
    grid = _grid(values, PAPER_ORDER, seeds)
    serial = run_sweep_grid(grid)
    parallel = run_sweep_grid(grid, ExecutorConfig(jobs=2))
    assert parallel.series == serial.series
    assert parallel.raw == serial.raw
    assert _csv_bytes(parallel, tmp_path, "par.csv") == \
        _csv_bytes(serial, tmp_path, "ser.csv")
    wide_p = tmp_path / "wide_p.csv"
    wide_s = tmp_path / "wide_s.csv"
    parallel.to_csv(wide_p, metric="task_completion_ratio")
    serial.to_csv(wide_s, metric="task_completion_ratio")
    assert wide_p.read_bytes() == wide_s.read_bytes()


def test_results_positional_not_completion_ordered():
    """execute_jobs aligns results with input order even when the same
    job list is permuted — order of definition decides, not completion."""
    jobs = [
        SimJob(DUMBBELL, _base_config(seed=s), sched, 4)
        for s in (1, 2) for sched in ("Fair Sharing", "TAPS")
    ]
    forward = execute_jobs(jobs)
    backward = execute_jobs(list(reversed(jobs)))
    assert forward == list(reversed(backward))


# -- cache semantics -----------------------------------------------------------


@pytest.fixture
def job() -> SimJob:
    return SimJob(DUMBBELL, _base_config(seed=3), "TAPS", 4)


def test_cache_hit_on_identical_spec(tmp_path, job):
    cache = ResultCache(tmp_path)
    first = execute_jobs([job], ExecutorConfig(cache=cache))[0]
    assert (cache.stats.hits, cache.stats.misses) == (0, 1)
    again = execute_jobs([job], ExecutorConfig(cache=cache))[0]
    assert again == first
    assert (cache.stats.hits, cache.stats.misses) == (1, 1)


def test_cache_misses_on_changed_seed_or_scheduler(tmp_path, job):
    cache = ResultCache(tmp_path)
    execute_jobs([job], ExecutorConfig(cache=cache))
    other_seed = SimJob(job.topology, job.workload.with_(seed=4),
                        job.scheduler, job.max_paths)
    other_sched = SimJob(job.topology, job.workload, "PDQ", job.max_paths)
    other_paths = SimJob(job.topology, job.workload, job.scheduler, 2)
    execute_jobs([other_seed, other_sched, other_paths],
                 ExecutorConfig(cache=cache))
    assert cache.stats.hits == 0
    assert cache.stats.misses == 4


def test_cache_misses_on_schema_version_bump(tmp_path, job, monkeypatch):
    """Bumping either schema version must retire every existing entry."""
    cache = ResultCache(tmp_path)
    execute_jobs([job], ExecutorConfig(cache=cache))

    import repro.exp.executor as executor_mod

    for attr in ("WORKLOAD_SCHEMA_VERSION", "RESULT_SCHEMA_VERSION"):
        old_digest = job.digest()
        monkeypatch.setattr(executor_mod, attr,
                            getattr(executor_mod, attr) + 1)
        assert job.digest() != old_digest
        fresh = ResultCache(tmp_path)
        assert fresh.get(job) is None
        assert fresh.stats.misses == 1
        monkeypatch.undo()


def test_no_cache_bypasses_store(tmp_path, job):
    execute_jobs([job], ExecutorConfig(cache=None))
    assert list(tmp_path.rglob("*.json")) == []
    cfg = make_executor(jobs=None, cache_dir=tmp_path, use_cache=False)
    assert cfg.cache is None


def test_corrupted_entry_recomputes(tmp_path, job):
    cache = ResultCache(tmp_path)
    clean = execute_jobs([job], ExecutorConfig(cache=cache))[0]
    [entry] = tmp_path.rglob("*.json")

    for corruption in ("{not json", '{"schema": 999}',
                       '{"schema": 1, "scheduler": "TAPS"}'):
        entry.write_text(corruption)
        cache2 = ResultCache(tmp_path)
        recomputed = execute_jobs([job], ExecutorConfig(cache=cache2))[0]
        assert recomputed == clean
        assert cache2.stats.invalidations == 1
        assert cache2.stats.misses == 1
        # the bad entry was overwritten with a good one
        cache3 = ResultCache(tmp_path)
        assert cache3.get(job) == clean


def test_warm_cache_runs_zero_engines(tmp_path):
    """A fully-warm batch never constructs an Engine (all points served
    from disk): misses == 0 and hits == grid size."""
    grid = _grid((1.0, 3.0), ("Fair Sharing", "TAPS"), (1,))
    cold = ResultCache(tmp_path)
    first = run_sweep_grid(grid, ExecutorConfig(cache=cold))
    warm = ResultCache(tmp_path)
    import repro.sim.engine as engine_mod

    calls = []
    original = engine_mod.Engine.run

    def counting_run(self):
        calls.append(1)
        return original(self)

    engine_mod.Engine.run = counting_run
    try:
        second = run_sweep_grid(grid, ExecutorConfig(cache=warm))
    finally:
        engine_mod.Engine.run = original
    assert calls == []
    assert warm.stats.misses == 0
    assert warm.stats.hits == len(grid.jobs())
    assert second.raw == first.raw


# -- spec plumbing -------------------------------------------------------------


def test_topology_spec_validates_factory():
    with pytest.raises(ConfigurationError):
        topology_spec("moebius_strip", k=4)
    with pytest.raises(ConfigurationError):
        TopologySpec("nope")


def test_topology_build_memoized():
    t1 = build_topology(DUMBBELL, 4)
    t2 = build_topology(DUMBBELL, 4)
    assert t1 is t2
    assert build_topology(DUMBBELL, 2) is not t1


def test_digest_stable_under_kwarg_order():
    a = topology_spec("dumbbell", n_pairs=6, capacity=1.0)
    b = topology_spec("dumbbell", capacity=1.0, n_pairs=6)
    assert a == b
    assert SimJob(a, _base_config(), "TAPS", 4).digest() == \
        SimJob(b, _base_config(), "TAPS", 4).digest()


def test_run_job_matches_direct_engine():
    from repro.metrics.summary import summarize
    from repro.net.paths import PathService
    from repro.sched.registry import make_scheduler
    from repro.sim.engine import Engine

    job = SimJob(DUMBBELL, _base_config(seed=9), "Varys", 4)
    topo = DUMBBELL.build()
    tasks = generate_workload(job.workload, list(topo.hosts))
    direct = summarize(Engine(
        topo, tasks, make_scheduler("Varys"),
        path_service=PathService(topo, max_paths=4),
    ).run())
    assert run_job(job) == direct


def test_executor_jobs_validation():
    with pytest.raises(ConfigurationError):
        ExecutorConfig(jobs=-1).effective_jobs()
    assert ExecutorConfig(jobs=0).effective_jobs() >= 1
    assert ExecutorConfig(jobs=3).effective_jobs() == 3


def test_default_cache_dir_honors_env(monkeypatch):
    monkeypatch.setenv("REPRO_TAPS_CACHE", "/tmp/somewhere-else")
    assert default_cache_dir() == Path("/tmp/somewhere-else")


def test_sweep_grid_rejects_unknown_param():
    with pytest.raises(ConfigurationError):
        SweepGrid(
            topology=DUMBBELL,
            base_workload=_base_config(),
            param_name="mean_pomposity",
            param_values=(1.0,),
        )
