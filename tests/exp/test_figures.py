"""Figure runners at a test-sized scale: structure + headline shapes.

Full-fidelity shape assertions (orderings across all nine sweep points)
live in the benchmarks; here a micro scale verifies the machinery and the
robust claims (TAPS wins on average, waste ordering).
"""

import numpy as np
import pytest

from repro.exp.configs import SMALL, Scale
from repro.exp.figures import FIGURES, run_figure
from repro.util.errors import ConfigurationError

#: micro scale: one-second figure runs for CI
MICRO = Scale(
    name="micro",
    servers_per_rack=2,
    racks_per_pod=2,
    pods=2,
    fat_tree_k=4,
    num_tasks=10,
    mean_flows_per_task=4,
    arrival_rate=300.0,
    seeds=(1,),
)


@pytest.fixture(scope="module")
def fig6_run():
    return run_figure("fig6", MICRO)


def test_unknown_figure_rejected():
    with pytest.raises(ConfigurationError):
        run_figure("fig99")


def test_registry_covers_paper_evaluation():
    assert set(FIGURES) == {
        "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig14"
    }


def test_fig6_structure(fig6_run):
    sweep = fig6_run.sweep
    assert sweep is not None
    assert sweep.param_name == "mean_deadline"
    assert len(sweep.param_values) == 9
    assert set(sweep.schedulers) == {
        "Fair Sharing", "D3", "PDQ", "Baraat", "Varys", "TAPS"
    }


def test_fig6_taps_wins_on_average(fig6_run):
    sweep = fig6_run.sweep
    taps = sweep.mean_over_values("TAPS", "task_completion_ratio")
    for other in ("Fair Sharing", "Baraat", "Varys"):
        assert taps >= sweep.mean_over_values(other, "task_completion_ratio")


def test_fig6_curves_rise_with_deadline(fig6_run):
    sweep = fig6_run.sweep
    for sched in sweep.schedulers:
        series = sweep.series[sched]["task_completion_ratio"]
        assert series[-1] >= series[0] - 0.15  # allow sampling noise


def test_fig8_reuses_fig6_series(fig6_run):
    run8 = run_figure("fig8", MICRO)
    assert run8.sweep is not None
    assert run8.primary_metrics == ("wasted_bandwidth_ratio",)
    # Varys/TAPS reject-before-transmit → (near-)zero waste
    assert run8.sweep.mean_over_values("TAPS", "wasted_bandwidth_ratio") \
        <= 1e-9
    assert run8.sweep.mean_over_values("Varys", "wasted_bandwidth_ratio") \
        <= 1e-9


def test_fig7_runs_on_fat_tree():
    run = run_figure("fig7", MICRO)
    assert run.sweep is not None
    # TAPS at least matches the field on the multi-rooted topology
    taps = run.sweep.mean_over_values("TAPS", "task_completion_ratio")
    fair = run.sweep.mean_over_values("Fair Sharing", "task_completion_ratio")
    assert taps >= fair


def test_fig9_sweeps_flow_size():
    run = run_figure("fig9", MICRO)
    assert run.sweep.param_name == "mean_flow_size"
    # completion falls (or at least does not rise) as flows grow
    for sched in run.sweep.schedulers:
        s = run.sweep.series[sched]["task_completion_ratio"]
        assert s[0] >= s[-1] - 0.15


def test_fig10_single_flow_tasks():
    run = run_figure("fig10", MICRO)
    sweep = run.sweep
    # task ≡ flow ⇒ both ratios coincide for every scheduler and value
    for sched in sweep.schedulers:
        t = sweep.series[sched]["task_completion_ratio"]
        f = sweep.series[sched]["flow_completion_ratio"]
        assert t == pytest.approx(f, abs=1e-9)


def test_fig11_rescales_x_axis():
    run = run_figure("fig11", MICRO)
    values = run.sweep.param_values
    # paper 400..2000 at default 1200 → ratios ⅓..1⅔ of the micro default 4
    assert values[0] == pytest.approx(round(4 * 400 / 1200))
    assert values[-1] == pytest.approx(round(4 * 2000 / 1200))


def test_fig12_task_count_sweep():
    run = run_figure("fig12", MICRO)
    assert run.sweep.param_values == [30, 60, 90, 120, 150, 180, 210, 240, 270]


def test_fig14_timeseries():
    run = run_figure("fig14", MICRO)
    assert set(run.timeseries) == {"TAPS", "Fair Sharing"}
    t_taps, pct_taps = run.timeseries["TAPS"]
    t_fs, pct_fs = run.timeseries["Fair Sharing"]
    assert len(pct_taps) == len(pct_fs) == 100
    # headline: TAPS ~100% effective, Fair Sharing materially lower
    busy_taps = pct_taps[pct_taps > 0]
    busy_fs = pct_fs[pct_fs > 0]
    assert busy_taps.mean() > 95.0
    assert busy_fs.mean() < busy_taps.mean() - 10.0
