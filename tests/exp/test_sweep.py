"""Sweep runner mechanics on a tiny grid."""

import pytest

from repro.exp.sweep import run_sweep
from repro.workload.generator import WorkloadConfig, generate_workload
from repro.workload.traces import dumbbell


@pytest.fixture(scope="module")
def tiny_sweep():
    topo_holder = {}

    def topo():
        return topo_holder.setdefault("t", dumbbell(6))

    def workload(deadline, seed):
        cfg = WorkloadConfig(
            num_tasks=6, mean_flows_per_task=2, arrival_rate=1.0,
            mean_deadline=deadline, mean_flow_size=1.0,
            min_flow_size=0.1, seed=seed,
        )
        hosts = list(topo().hosts)
        return generate_workload(cfg, hosts)

    return run_sweep(
        topo, workload,
        param_name="mean_deadline",
        param_values=[1.0, 5.0],
        schedulers=("Fair Sharing", "TAPS"),
        seeds=(1, 2),
    )


def test_series_aligned_with_values(tiny_sweep):
    for sched in tiny_sweep.schedulers:
        for metric, series in tiny_sweep.series[sched].items():
            assert len(series) == len(tiny_sweep.param_values)


def test_all_metrics_present(tiny_sweep):
    for sched in tiny_sweep.schedulers:
        assert set(tiny_sweep.series[sched]) == {
            "task_completion_ratio",
            "task_size_completion_ratio",
            "flow_completion_ratio",
            "application_throughput",
            "wasted_bandwidth_ratio",
            "task_wasted_ratio",
        }


def test_raw_keyed_by_sched_value_seed(tiny_sweep):
    assert ("TAPS", 1.0, 1) in tiny_sweep.raw
    assert ("Fair Sharing", 5.0, 2) in tiny_sweep.raw


def test_means_are_seed_averages(tiny_sweep):
    for v_idx, value in enumerate(tiny_sweep.param_values):
        per_seed = [
            tiny_sweep.raw[("TAPS", value, s)].task_completion_ratio
            for s in (1, 2)
        ]
        mean = tiny_sweep.series["TAPS"]["task_completion_ratio"][v_idx]
        assert mean == pytest.approx(sum(per_seed) / 2)


def test_metric_accessor(tiny_sweep):
    assert tiny_sweep.metric("TAPS", "task_completion_ratio") == \
        tiny_sweep.series["TAPS"]["task_completion_ratio"]


def test_longer_deadlines_do_not_hurt(tiny_sweep):
    """Monotone sanity: mean ratios should not collapse as slack grows."""
    for sched in tiny_sweep.schedulers:
        s = tiny_sweep.series[sched]["task_completion_ratio"]
        assert s[-1] >= s[0] - 0.35


def test_to_csv_wide_format(tiny_sweep, tmp_path):
    p = tmp_path / "wide.csv"
    tiny_sweep.to_csv(p, metric="task_completion_ratio")
    import csv

    rows = list(csv.reader(p.open()))
    assert rows[0][0] == "mean_deadline"
    assert len(rows) == 1 + len(tiny_sweep.schedulers)
    assert {r[0] for r in rows[1:]} == set(tiny_sweep.schedulers)
    # one column per parameter value
    assert all(len(r) == 1 + len(tiny_sweep.param_values) for r in rows)


def test_to_csv_long_format(tiny_sweep, tmp_path):
    p = tmp_path / "long.csv"
    tiny_sweep.to_csv(p)
    import csv

    rows = list(csv.reader(p.open()))
    assert rows[0] == ["scheduler", "mean_deadline", "seed", "metric", "value"]
    # 2 schedulers × 2 values × 2 seeds × ≥10 numeric metrics
    assert len(rows) > 2 * 2 * 2 * 10
    # values parse as floats
    for r in rows[1:5]:
        float(r[-1])
