"""Experiment scales."""

import pytest

from repro.exp.configs import MEDIUM, PAPER, SCALES, SMALL


def test_three_scales_registered():
    assert set(SCALES) == {"small", "medium", "paper"}


def test_paper_scale_matches_publication():
    assert PAPER.servers_per_rack == 40
    assert PAPER.racks_per_pod == 30
    assert PAPER.pods == 30
    assert PAPER.fat_tree_k == 32
    assert PAPER.mean_flows_per_task == 1200
    assert PAPER.num_tasks == 30


def test_small_scale_builds_small_topologies():
    topo = SMALL.single_rooted()
    assert len(topo.hosts) == 36
    ft = SMALL.fat_tree()
    assert len(ft.hosts) == 16


def test_workload_config_inherits_scale():
    cfg = SMALL.workload_config()
    assert cfg.num_tasks == SMALL.num_tasks
    assert cfg.mean_flows_per_task == SMALL.mean_flows_per_task


def test_workload_config_overrides():
    cfg = SMALL.workload_config(mean_deadline=0.123)
    assert cfg.mean_deadline == 0.123
    assert cfg.num_tasks == SMALL.num_tasks


def test_with_replaces_fields():
    s = SMALL.with_(num_tasks=99)
    assert s.num_tasks == 99
    assert SMALL.num_tasks != 99


def test_medium_larger_than_small():
    assert len(MEDIUM.single_rooted().hosts) > len(SMALL.single_rooted().hosts)
