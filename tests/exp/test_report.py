"""ASCII report rendering."""

import numpy as np

from repro.exp.report import render_summary_line, render_sweep, render_timeseries
from repro.exp.sweep import SweepResult


def _sweep():
    s = SweepResult(
        param_name="mean_deadline",
        param_values=[0.02, 0.04],
        schedulers=["TAPS", "Fair Sharing"],
    )
    metrics = ["task_completion_ratio", "flow_completion_ratio",
               "application_throughput", "wasted_bandwidth_ratio",
               "task_wasted_ratio"]
    s.series = {
        "TAPS": {m: [0.9, 0.95] for m in metrics},
        "Fair Sharing": {m: [0.3, 0.4] for m in metrics},
    }
    return s


def test_render_sweep_has_all_rows():
    out = render_sweep(_sweep(), "task_completion_ratio", title="T")
    assert "T" in out
    assert "TAPS" in out and "Fair Sharing" in out
    assert "20ms" in out and "40ms" in out
    assert "0.900" in out and "0.300" in out


def test_render_sweep_exclude():
    out = render_sweep(_sweep(), "task_completion_ratio",
                       exclude=("Fair Sharing",))
    assert "Fair Sharing" not in out


def test_render_sweep_size_units():
    s = _sweep()
    s.param_name = "mean_flow_size"
    s.param_values = [60e3, 300e3]
    out = render_sweep(s, "task_completion_ratio")
    assert "60KB" in out and "300KB" in out


def test_render_sweep_plain_numbers():
    s = _sweep()
    s.param_name = "num_tasks"
    s.param_values = [30, 270]
    out = render_sweep(s, "task_completion_ratio")
    assert "30" in out and "270" in out


def test_render_timeseries_sparklines():
    series = {
        "TAPS": (np.linspace(0, 1, 50), np.full(50, 100.0)),
        "Fair Sharing": (np.linspace(0, 1, 50), np.full(50, 60.0)),
    }
    out = render_timeseries(series, title="fig14")
    assert "fig14" in out
    assert "TAPS" in out
    assert "mean=100%" in out
    assert "mean=60%" in out


def test_render_timeseries_empty():
    out = render_timeseries({"X": (np.zeros(0), np.zeros(0))})
    assert "no data" in out


def test_render_summary_line():
    out = render_summary_line(_sweep(), "task_completion_ratio")
    assert out.startswith("task_completion_ratio:")
    assert "TAPS=0.925" in out


def test_render_sweep_with_ci_multi_seed():
    from repro.exp.report import render_sweep_with_ci
    from repro.metrics.summary import RunMetrics

    s = _sweep()

    def _m(v):
        return RunMetrics(
            scheduler="TAPS", topology="t", num_tasks=1, num_flows=1,
            tasks_completed=0, flows_met=0, flows_rejected=0,
            flows_terminated=0, task_completion_ratio=v,
            flow_completion_ratio=v, application_throughput=v,
            wasted_bandwidth_ratio=0.0, task_wasted_ratio=0.0,
            total_bytes=1.0, useful_bytes=v, wasted_bytes=0.0,
        )

    for value in s.param_values:
        for seed, v in ((1, 0.8), (2, 1.0)):
            s.raw[("TAPS", value, seed)] = _m(v)
            s.raw[("Fair Sharing", value, seed)] = _m(v / 2)
    out = render_sweep_with_ci(s, "task_completion_ratio", title="ci")
    assert "±" in out
    assert "0.900" in out  # the mean of 0.8 and 1.0


def test_render_sweep_with_ci_single_seed_plain():
    from repro.exp.report import render_sweep_with_ci
    from repro.metrics.summary import RunMetrics

    s = _sweep()
    for value in s.param_values:
        s.raw[("TAPS", value, 1)] = RunMetrics(
            scheduler="TAPS", topology="t", num_tasks=1, num_flows=1,
            tasks_completed=0, flows_met=0, flows_rejected=0,
            flows_terminated=0, task_completion_ratio=0.5,
            flow_completion_ratio=0.5, application_throughput=0.5,
            wasted_bandwidth_ratio=0.0, task_wasted_ratio=0.0,
            total_bytes=1.0, useful_bytes=0.5, wasted_bytes=0.0,
        )
    out = render_sweep_with_ci(s, "task_completion_ratio",
                               exclude=("Fair Sharing",))
    # the "±" appears only in the header, not in single-seed data rows
    data_rows = [l for l in out.splitlines() if l.lstrip().startswith("TAPS")]
    assert data_rows and all("±" not in row for row in data_rows)
