"""Seed-level statistics over sweep raw data."""

import pytest

from repro.exp.stats import SeriesStats, dominance_fraction, seed_stats, t95
from repro.exp.sweep import SweepResult
from repro.metrics.summary import RunMetrics


def _metrics(scheduler, value):
    return RunMetrics(
        scheduler=scheduler, topology="t", num_tasks=10, num_flows=10,
        tasks_completed=int(value * 10), flows_met=0, flows_rejected=0,
        flows_terminated=0, task_completion_ratio=value,
        flow_completion_ratio=value, application_throughput=value,
        wasted_bandwidth_ratio=0.0, task_wasted_ratio=0.0,
        total_bytes=1.0, useful_bytes=value, wasted_bytes=0.0,
    )


@pytest.fixture
def sweep():
    s = SweepResult(param_name="x", param_values=[1.0, 2.0],
                    schedulers=["A", "B"])
    data = {
        ("A", 1.0, 1): 0.5, ("A", 1.0, 2): 0.7,
        ("A", 2.0, 1): 0.8, ("A", 2.0, 2): 0.6,
        ("B", 1.0, 1): 0.4, ("B", 1.0, 2): 0.5,
        ("B", 2.0, 1): 0.9, ("B", 2.0, 2): 0.5,
    }
    for key, v in data.items():
        s.raw[key] = _metrics(key[0], v)
    return s


def test_t95_values():
    assert t95(1) == pytest.approx(12.706)
    assert t95(10) == pytest.approx(2.228)
    assert t95(100) == pytest.approx(1.96)
    with pytest.raises(ValueError):
        t95(0)


def test_seed_stats_means(sweep):
    stats = seed_stats(sweep, "A", "task_completion_ratio")
    assert stats.n == 2
    assert stats.mean == pytest.approx((0.6, 0.7))


def test_seed_stats_ci_positive_with_spread(sweep):
    stats = seed_stats(sweep, "A", "task_completion_ratio")
    assert all(c > 0 for c in stats.ci95)


def test_seed_stats_unknown_scheduler(sweep):
    with pytest.raises(ValueError):
        seed_stats(sweep, "Z", "task_completion_ratio")


def test_single_seed_zero_ci():
    s = SweepResult(param_name="x", param_values=[1.0], schedulers=["A"])
    s.raw[("A", 1.0, 1)] = _metrics("A", 0.5)
    stats = seed_stats(s, "A", "task_completion_ratio")
    assert stats.ci95 == (0.0,)
    assert stats.std == (0.0,)


def test_dominance_fraction(sweep):
    # A >= B at (1.0,1), (1.0,2), (2.0,2); loses at (2.0,1) → 3/4
    frac = dominance_fraction(sweep, "A", "B", "task_completion_ratio")
    assert frac == pytest.approx(0.75)


def test_dominance_requires_pairs():
    s = SweepResult(param_name="x", param_values=[1.0], schedulers=["A"])
    s.raw[("A", 1.0, 1)] = _metrics("A", 0.5)
    with pytest.raises(ValueError):
        dominance_fraction(s, "A", "B", "task_completion_ratio")


def test_dominance_on_real_sweep():
    """TAPS dominates Fair Sharing at every (point, seed) of a tiny grid."""
    from repro.exp.sweep import run_sweep
    from repro.workload.generator import WorkloadConfig, generate_workload
    from repro.workload.traces import dumbbell

    holder = {}

    def topo():
        return holder.setdefault("t", dumbbell(5))

    def workload(deadline, seed):
        cfg = WorkloadConfig(num_tasks=8, mean_flows_per_task=2,
                             arrival_rate=2.0, mean_flow_size=1.0,
                             min_flow_size=0.2, mean_deadline=deadline,
                             seed=seed)
        return generate_workload(cfg, list(topo().hosts))

    sweep = run_sweep(topo, workload, "mean_deadline", [2.0, 4.0],
                      schedulers=("Fair Sharing", "TAPS"), seeds=(1, 2))
    frac = dominance_fraction(sweep, "TAPS", "Fair Sharing",
                              "task_completion_ratio")
    assert frac == 1.0