"""The paper's worked examples must reproduce exactly."""

from repro.exp.motivation import run_all, run_fig1, run_fig2, run_fig3


def test_fig1_matches_paper():
    for outcome in run_fig1():
        assert outcome.matches_paper, (
            f"{outcome.scheduler}: measured {outcome.flows_met}/"
            f"{outcome.tasks_completed}, paper {outcome.paper_flows}/"
            f"{outcome.paper_tasks}"
        )


def test_fig2_taps_beats_baraat_and_varys():
    outcomes = {o.scheduler: o for o in run_fig2()}
    assert outcomes["TAPS"].tasks_completed == 2
    assert outcomes["Varys"].tasks_completed == 1
    assert outcomes["Baraat"].tasks_completed <= 1
    # and every published value that is pinned matches
    for o in outcomes.values():
        assert o.matches_paper


def test_fig3_global_beats_pdq():
    outcomes = {o.scheduler: o for o in run_fig3()}
    assert outcomes["TAPS"].flows_met == 4
    assert outcomes["PDQ"].flows_met == 3
    for o in outcomes.values():
        assert o.matches_paper


def test_run_all_covers_three_examples():
    all_results = run_all()
    assert set(all_results) == {"fig1", "fig2", "fig3"}
    assert all(len(v) >= 2 for v in all_results.values())
