"""Shape-claim registry."""

import pytest

from repro.exp.shapes import SHAPES, check_shapes
from repro.exp.sweep import SweepResult


def _sweep(series):
    s = SweepResult(param_name="x", param_values=[1.0, 2.0],
                    schedulers=list(series))
    metrics = ["task_completion_ratio", "flow_completion_ratio",
               "wasted_bandwidth_ratio"]
    s.series = {
        sched: {m: vals.get(m, [0.0, 0.0]) for m in metrics}
        for sched, vals in series.items()
    }
    return s


def test_every_sweep_figure_has_claims():
    for fid in ("fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"):
        assert SHAPES[fid], fid


def test_taps_leads_claim():
    good = _sweep({
        "TAPS": {"task_completion_ratio": [0.8, 0.9]},
        "Fair Sharing": {"task_completion_ratio": [0.3, 0.4]},
    })
    results = dict(check_shapes("fig6", good))
    assert results["TAPS leads every scheduler on mean task_completion_ratio"]

    bad = _sweep({
        "TAPS": {"task_completion_ratio": [0.3, 0.4]},
        "Fair Sharing": {"task_completion_ratio": [0.8, 0.9]},
    })
    results = dict(check_shapes("fig6", bad))
    assert not results[
        "TAPS leads every scheduler on mean task_completion_ratio"
    ]


def test_trend_claims():
    rising = _sweep({"TAPS": {"task_completion_ratio": [0.2, 0.9]}})
    falling = _sweep({"TAPS": {"task_completion_ratio": [0.9, 0.2]}})
    assert dict(check_shapes("fig6", rising))[
        "every scheduler's task_completion_ratio rises along the sweep"
    ]
    assert not dict(check_shapes("fig6", falling))[
        "every scheduler's task_completion_ratio rises along the sweep"
    ]
    # fig9 expects the opposite trend
    assert dict(check_shapes("fig9", falling))[
        "every scheduler's task_completion_ratio falls along the sweep"
    ]


def test_waste_claims():
    s = _sweep({
        "Fair Sharing": {"wasted_bandwidth_ratio": [0.2, 0.2]},
        "TAPS": {"wasted_bandwidth_ratio": [0.0, 0.0]},
        "Varys": {"wasted_bandwidth_ratio": [0.0, 0.0]},
    })
    results = dict(check_shapes("fig8", s))
    assert all(results.values())


def test_unknown_figure_no_claims():
    assert check_shapes("fig99", _sweep({"TAPS": {}})) == []


def test_small_scale_fig12_claims_hold_end_to_end():
    """The registry agrees with the benchmarks on a real (micro) run."""
    from repro.exp.configs import Scale
    from repro.exp.figures import run_figure

    micro = Scale(name="micro-shapes", servers_per_rack=2, racks_per_pod=2,
                  pods=2, fat_tree_k=4, num_tasks=8, mean_flows_per_task=3,
                  arrival_rate=300.0, seeds=(1,))
    run = run_figure("fig12", micro)
    checks = check_shapes("fig12", run.sweep)
    assert checks
    assert all(holds for _, holds in checks)
