"""Fig. 4 message exchange: the instrumented control plane."""

import pytest

from repro.sdn.messages import (
    AcceptReply,
    InstallEntry,
    ProbePacket,
    RejectReply,
    TermPacket,
    WithdrawEntry,
)
from repro.sdn.protocol import ProtocolDriver
from repro.sdn.server import SenderAgent
from repro.util.units import Gbps
from repro.workload.flow import make_task
from repro.workload.traces import testbed_trace as make_testbed_trace
from repro.net.testbed import PartialFatTreeTestbed


@pytest.fixture
def small_run():
    topo, tasks = make_testbed_trace(num_flows=20, seed=5)
    driver = ProtocolDriver(topo, tasks)
    result = driver.run()
    return driver, result


class TestTranscript:
    def test_probe_per_task_sender(self, small_run):
        driver, result = small_run
        probes = driver.transcript.of_type(ProbePacket)
        # single-flow tasks: exactly one probe per task
        assert len(probes) == len(result.task_states)

    def test_every_task_answered(self, small_run):
        driver, result = small_run
        accepted = {m.task_id for m in driver.transcript.of_type(AcceptReply)}
        rejected = {m.task_id for m in driver.transcript.of_type(RejectReply)}
        assert accepted | rejected == {ts.task.task_id for ts in result.task_states}
        assert not (accepted & rejected)

    def test_accepts_match_admission(self, small_run):
        driver, result = small_run
        accepted = {m.task_id for m in driver.transcript.of_type(AcceptReply)}
        for ts in result.task_states:
            assert (ts.task.task_id in accepted) == bool(ts.accepted)

    def test_accept_carries_slices_and_path(self, small_run):
        driver, _ = small_run
        for m in driver.transcript.of_type(AcceptReply):
            assert m.slices.measure() > 0
            assert len(m.path_nodes) >= 3  # src, ≥1 switch, dst

    def test_term_for_every_completed_flow(self, small_run):
        driver, result = small_run
        terms = {m.flow_id for m in driver.transcript.of_type(TermPacket)}
        done = {fs.flow.flow_id for fs in result.flow_states
                if fs.status.value == "completed"}
        assert terms == done

    def test_installs_withdrawn_after_completion(self, small_run):
        driver, _ = small_run
        installed = {}
        for m in driver.transcript.of_type(InstallEntry):
            installed.setdefault(m.flow_id, set()).add(m.switch)
        withdrawn = {}
        for m in driver.transcript.of_type(WithdrawEntry):
            withdrawn.setdefault(m.flow_id, set()).add(m.switch)
        terms = {m.flow_id for m in driver.transcript.of_type(TermPacket)}
        for fid in terms:
            assert withdrawn.get(fid) == installed.get(fid)

    def test_tables_empty_after_run(self, small_run):
        driver, _ = small_run
        assert all(len(sw.table) == 0 for sw in driver.switches.values())

    def test_rejected_tasks_get_no_installs(self, small_run):
        driver, result = small_run
        installed = {m.flow_id for m in driver.transcript.of_type(InstallEntry)}
        for ts in result.task_states:
            if ts.accepted is False:
                for fs in ts.flow_states:
                    assert fs.flow.flow_id not in installed


class TestTableLimits:
    def test_tight_install_limit_counts_refusals(self):
        topo, tasks = make_testbed_trace(num_flows=30, seed=6)
        driver = ProtocolDriver(topo, tasks, table_capacity=2000, install_limit=1)
        driver.run()
        # with one entry per switch, concurrent flows through a shared
        # switch must overflow at least once
        assert driver.transcript.installs_refused > 0


class TestSenderAgent:
    def test_probe_contains_task_variables(self):
        topo = PartialFatTreeTestbed()
        task = make_task(0, 0.0, 1.0,
                         [("h0_0_0", "h1_0_0", 1000.0),
                          ("h0_0_0", "h0_1_0", 2000.0)], 0)
        agent = SenderAgent(host="h0_0_0", capacity=1 * Gbps)
        probe = agent.probe_for(task, now=0.0)
        assert probe.flow_ids == (0, 1)
        assert probe.sizes == (1000.0, 2000.0)
        assert probe.deadline == 1.0
        # agent now tracks E_ij for both local flows
        assert agent.flows[0].expected_time == pytest.approx(1000.0 / Gbps)

    def test_probe_for_foreign_task_raises(self):
        from repro.util.errors import SimulationError

        task = make_task(0, 0.0, 1.0, [("h0_0_0", "h1_0_0", 1.0)], 0)
        agent = SenderAgent(host="h1_1_1", capacity=1.0)
        with pytest.raises(SimulationError):
            agent.probe_for(task, 0.0)

    def test_sending_only_inside_slices(self):
        from repro.sdn.messages import AcceptReply
        from repro.util.intervals import IntervalSet

        task = make_task(0, 0.0, 10.0, [("h0_0_0", "h1_0_0", 2.0)], 0)
        agent = SenderAgent(host="h0_0_0", capacity=1.0)
        agent.probe_for(task, 0.0)
        agent.on_accept(AcceptReply(
            time=0.0, sender="controller", task_id=0, flow_id=0,
            slices=IntervalSet([(1.0, 2.0), (5.0, 6.0)]),
            path_nodes=("h0_0_0", "e0_0", "h1_0_0"),
        ))
        assert not agent.sending_at(0, 0.5)
        assert agent.sending_at(0, 1.5)
        assert not agent.sending_at(0, 3.0)
        assert agent.sending_at(0, 5.5)

    def test_advance_emits_term_when_done(self):
        from repro.sdn.messages import AcceptReply
        from repro.util.intervals import IntervalSet

        task = make_task(0, 0.0, 10.0, [("h0_0_0", "h1_0_0", 2.0)], 0)
        agent = SenderAgent(host="h0_0_0", capacity=1.0)
        agent.probe_for(task, 0.0)
        agent.on_accept(AcceptReply(
            time=0.0, sender="controller", task_id=0, flow_id=0,
            slices=IntervalSet([(0.0, 2.0)]),
            path_nodes=("h0_0_0", "e0_0", "h1_0_0"),
        ))
        assert agent.advance(0, 1.0, now=1.0) is None
        term = agent.advance(0, 1.0, now=2.0)
        assert term is not None and term.flow_id == 0


class TestUpdateReplies:
    def test_reallocation_pushes_updates_to_inflight_senders(self):
        """An urgent newcomer moves the incumbent's slices; the controller
        must push the new pre-allocation (UpdateReply) to its sender."""
        from repro.sdn.messages import UpdateReply
        from repro.workload.traces import dumbbell

        topo = dumbbell(2)
        tasks = [
            make_task(0, 0.0, 10.0, [("L0", "R0", 2.0)], 0),   # lax
            make_task(1, 0.5, 2.5, [("L1", "R1", 1.0)], 1),    # urgent
        ]
        driver = ProtocolDriver(topo, tasks)
        result = driver.run()
        assert result.tasks_completed == 2
        updates = driver.transcript.of_type(UpdateReply)
        assert any(u.flow_id == 0 for u in updates)

    def test_no_updates_without_plan_changes(self):
        from repro.sdn.messages import UpdateReply
        from repro.workload.traces import dumbbell

        topo = dumbbell(2)
        # disjoint-in-time tasks: the second arrives after the first ends
        tasks = [
            make_task(0, 0.0, 5.0, [("L0", "R0", 1.0)], 0),
            make_task(1, 2.0, 7.0, [("L1", "R1", 1.0)], 1),
        ]
        driver = ProtocolDriver(topo, tasks)
        driver.run()
        assert driver.transcript.count(UpdateReply) == 0

    def test_rerouted_update_reinstalls_switch_entries(self):
        """On a fat-tree a newcomer can push the incumbent to another
        path; the transcript then shows withdraw+install for it."""
        from repro.net.fattree import FatTree
        from repro.sdn.messages import UpdateReply

        topo = FatTree(4)
        cap = topo.uniform_capacity()
        tasks = [
            make_task(0, 0.0, 1.0, [("h0_0_0", "h1_0_0", cap * 0.1)], 0),
            make_task(1, 0.001, 0.2, [("h0_1_0", "h1_1_0", cap * 0.1)], 1),
        ]
        driver = ProtocolDriver(topo, tasks)
        result = driver.run()
        updates = driver.transcript.of_type(UpdateReply)
        # plans for flow 0 were recomputed (slices at least re-timed)
        assert result.tasks_completed == 2
        # reroutes, when they happen, must re-program switches coherently
        for u in updates:
            if u.rerouted:
                installs = [
                    m for m in driver.transcript.of_type(InstallEntry)
                    if m.flow_id == u.flow_id
                ]
                assert installs


class TestClockSkew:
    def _agent(self, skew):
        from repro.sdn.messages import AcceptReply
        from repro.util.intervals import IntervalSet

        task = make_task(0, 0.0, 10.0, [("h0_0_0", "h1_0_0", 2.0)], 0)
        agent = SenderAgent(host="h0_0_0", capacity=1.0, clock_skew=skew)
        agent.probe_for(task, 0.0)
        agent.on_accept(AcceptReply(
            time=0.0, sender="controller", task_id=0, flow_id=0,
            slices=IntervalSet([(1.0, 2.0)]),
            path_nodes=("h0_0_0", "e0_0", "h1_0_0"),
        ))
        return agent

    def test_synchronised_sender_never_violates(self):
        agent = self._agent(skew=0.0)
        for t in (0.5, 1.0, 1.5, 1.99, 2.5):
            assert not agent.slice_violation(0, t)

    def test_fast_clock_starts_early(self):
        agent = self._agent(skew=0.3)  # local clock runs ahead
        # at true t=0.8 the local clock reads 1.1 → inside the slice
        assert agent.sending_at(0, 0.8)
        assert agent.slice_violation(0, 0.8)
        # at true t=1.5 both clocks agree the slice is live
        assert agent.sending_at(0, 1.5)
        assert not agent.slice_violation(0, 1.5)

    def test_slow_clock_overruns_the_slice(self):
        agent = self._agent(skew=-0.3)
        # at true t=2.2 the local clock reads 1.9 → still transmitting
        assert agent.sending_at(0, 2.2)
        assert agent.slice_violation(0, 2.2)

    def test_violation_window_equals_skew(self):
        import numpy as np

        agent = self._agent(skew=0.25)
        probes = np.linspace(0.0, 3.0, 1201)
        violating = sum(agent.slice_violation(0, float(t)) for t in probes)
        window = violating * (3.0 / 1200)
        assert window == pytest.approx(0.25, abs=0.02)


def test_sender_on_reject_marks_flows_done():
    from repro.sdn.messages import RejectReply

    task = make_task(0, 0.0, 1.0, [("h0_0_0", "h1_0_0", 1000.0)], 0)
    agent = SenderAgent(host="h0_0_0", capacity=1.0)
    agent.probe_for(task, 0.0)
    agent.on_reject(RejectReply(time=0.0, sender="controller",
                                task_id=0, reason="reject rule"))
    assert agent.flows[0].done
    assert not agent.sending_at(0, 0.5)
