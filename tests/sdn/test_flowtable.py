"""Switch flow tables with the §IV-C size limits."""

import pytest

from repro.sdn.switch import FlowTable, SdnSwitch
from repro.util.errors import ConfigurationError


class TestFlowTable:
    def test_install_and_lookup(self):
        t = FlowTable()
        assert t.install(1, "next-hop")
        assert t.lookup(1) == "next-hop"
        assert len(t) == 1

    def test_missing_lookup(self):
        assert FlowTable().lookup(99) is None

    def test_withdraw(self):
        t = FlowTable()
        t.install(1, "x")
        assert t.withdraw(1)
        assert not t.withdraw(1)
        assert t.lookup(1) is None

    def test_install_limit_enforced(self):
        t = FlowTable(capacity=10, install_limit=3)
        for i in range(3):
            assert t.install(i, "p")
        assert not t.install(99, "p")
        assert t.rejected_installs == 1
        assert len(t) == 3

    def test_reinstall_same_flow_updates(self):
        t = FlowTable(capacity=10, install_limit=1)
        assert t.install(1, "a")
        assert t.install(1, "b")  # update, not a new entry
        assert t.lookup(1) == "b"

    def test_withdraw_frees_slot(self):
        t = FlowTable(capacity=10, install_limit=1)
        t.install(1, "a")
        t.withdraw(1)
        assert t.install(2, "b")

    def test_paper_defaults(self):
        t = FlowTable()
        assert t.capacity == 2000
        assert t.install_limit == 1000

    def test_limit_above_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            FlowTable(capacity=10, install_limit=11)

    def test_utilization(self):
        t = FlowTable(capacity=10, install_limit=4)
        t.install(1, "a")
        assert t.utilization() == pytest.approx(0.25)


class TestSdnSwitch:
    def test_forward_counts(self):
        sw = SdnSwitch(name="s1")
        sw.table.install(7, "next")
        assert sw.forward(7) == "next"
        assert sw.forward(8) is None
        assert sw.forwarded == 1
        assert sw.dropped == 1
