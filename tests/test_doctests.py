"""Doctest runner for modules whose docstrings carry executable examples.

Keeps the README/quickstart snippets honest: if the public API drifts,
these fail before a user's copy-paste does.
"""

import doctest

import pytest

import repro
import repro.util.units


@pytest.mark.parametrize("module", [repro, repro.util.units],
                         ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    # ensure the quickstart example actually ran (repro has one)
    assert result.failed == 0
    if module is repro:
        assert result.attempted > 0
