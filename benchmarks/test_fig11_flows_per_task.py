"""Paper Fig. 11 — task completion ratio vs flows per task (task diffusion).

Shapes: more flows per task → lower completion for everyone; TAPS
degrades slowest ("the awareness of task plays the most important role").
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.exp.figures import run_figure
from repro.exp.report import render_sweep


def test_fig11_flows_per_task(benchmark, bench_scale, record_table):
    run = run_once(benchmark, lambda: run_figure("fig11", bench_scale))
    sweep = run.sweep
    record_table(
        "fig11",
        render_sweep(sweep, "task_completion_ratio",
                     title=f"fig11 flows/task ({bench_scale.name} scale)\n"
                           f"(x rescaled from the paper's 400…2000)"),
    )

    task = {s: np.array(sweep.series[s]["task_completion_ratio"])
            for s in sweep.schedulers}
    for s, series in task.items():
        assert series[0] >= series[-1] - 0.1, f"{s} should fall with diffusion"
    taps = task["TAPS"]
    for other, series in task.items():
        assert taps.mean() >= series.mean() - 1e-9, f"TAPS below {other}"
