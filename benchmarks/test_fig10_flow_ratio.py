"""Paper Fig. 10 — single-flow tasks: pure *flow* completion ratio.

Here task ≡ flow, isolating routing + scheduling quality from task-level
admission.  Shapes: TAPS still leads ("the near-optimal property"); PDQ
beats Varys more clearly than in the task-level plots.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.exp.figures import run_figure
from repro.exp.report import render_sweep


def test_fig10_single_flow_tasks(benchmark, bench_scale, record_table):
    run = run_once(benchmark, lambda: run_figure("fig10", bench_scale))
    sweep = run.sweep
    record_table(
        "fig10",
        render_sweep(sweep, "flow_completion_ratio",
                     title=f"fig10 single-flow tasks ({bench_scale.name} scale)"),
    )

    flow = {s: np.array(sweep.series[s]["flow_completion_ratio"])
            for s in sweep.schedulers}
    taps = flow["TAPS"]
    # single-flow tasks on a single-path tree reduce TAPS and (centrally
    # emulated) PDQ to near-identical EDF/SJF schedules: require TAPS to
    # be within noise of the leader and strictly ahead of the rest
    for other, series in flow.items():
        slack = 0.01 if other == "PDQ" else 1e-9
        assert taps.mean() >= series.mean() - slack, f"TAPS below {other}"
    # PDQ > Varys is the paper's called-out contrast in this figure
    assert flow["PDQ"].mean() >= flow["Varys"].mean()
