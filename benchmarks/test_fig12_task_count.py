"""Paper Fig. 12 — task completion ratio vs task count (30–270).

Shapes: more concurrent tasks → lower completion; TAPS leads throughout.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.exp.figures import run_figure
from repro.exp.report import render_sweep


def test_fig12_task_count(benchmark, bench_scale, record_table):
    run = run_once(benchmark, lambda: run_figure("fig12", bench_scale))
    sweep = run.sweep
    record_table(
        "fig12",
        render_sweep(sweep, "task_completion_ratio",
                     title=f"fig12 task count ({bench_scale.name} scale)"),
    )

    task = {s: np.array(sweep.series[s]["task_completion_ratio"])
            for s in sweep.schedulers}
    for s, series in task.items():
        assert series[0] >= series[-1] - 0.1, f"{s} should fall with load"
    taps = task["TAPS"]
    for other, series in task.items():
        assert taps.mean() >= series.mean() - 1e-9, f"TAPS below {other}"
