"""Paper Fig. 3 — global scheduling vs PDQ (worked example).

Asserts the published outcome on the 4-host/5-switch topology: PDQ (flow
list full at its switches) completes 3 of 4 flows; TAPS' global multipath
schedule completes all 4, giving f4 the split (0,1) ∪ (2,3).
"""

from benchmarks.conftest import run_once
from repro.exp.motivation import run_fig3


def test_fig3_global_scheduling(benchmark, record_table):
    outcomes = run_once(benchmark, run_fig3)
    by_name = {o.scheduler: o for o in outcomes}
    assert by_name["PDQ"].flows_met == 3
    assert by_name["TAPS"].flows_met == 4
    lines = ["fig3: scheduler  flows_met (of 4)"]
    for o in outcomes:
        lines.append(f"  {o.scheduler:14s} {o.flows_met}")
    record_table("fig3", "\n".join(lines))
