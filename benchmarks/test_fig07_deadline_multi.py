"""Paper Fig. 7 — task completion ratio vs mean deadline on the
multi-rooted fat-tree (baselines extended with flow-level ECMP, §V-A).

Shapes: same ordering as Fig. 6 — TAPS on top — with rising curves.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.exp.figures import run_figure
from repro.exp.report import render_sweep


def test_fig7_multirooted(benchmark, bench_scale, record_table):
    run = run_once(benchmark, lambda: run_figure("fig7", bench_scale))
    sweep = run.sweep
    record_table(
        "fig7",
        render_sweep(sweep, "task_completion_ratio",
                     title=f"fig7 fat-tree ({bench_scale.name} scale)"),
    )

    task = {s: np.array(sweep.series[s]["task_completion_ratio"])
            for s in sweep.schedulers}
    taps = task["TAPS"]
    for other, series in task.items():
        assert taps.mean() >= series.mean() - 1e-9, f"TAPS below {other}"
    for s, series in task.items():
        assert series[-1] >= series[0] - 0.1, f"{s} does not improve"
