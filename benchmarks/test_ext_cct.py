"""Extension — average coflow completion time (the Baraat/Varys objective).

The paper criticises Baraat and Varys for optimising *completion time*
instead of deadlines; this bench runs their home game: a deadline-lax
workload judged on mean task (coflow) completion time.  Expected shapes
(from the Baraat/Varys papers): coflow-aware serialisation (Baraat FIFO,
Varys SEBF) beats per-flow fair sharing on mean CCT, and SEBF's
shortest-bottleneck-first ordering is the strongest of the three.
"""

from benchmarks.conftest import run_once
from repro.metrics.summary import summarize
from repro.net.paths import PathService
from repro.sched.baraat import Baraat
from repro.sched.fair import FairSharing
from repro.sched.varys import Varys
from repro.sim.engine import Engine
from repro.workload.generator import generate_workload


def test_ext_mean_cct(benchmark, bench_scale, record_table):
    topo = bench_scale.single_rooted()
    paths = PathService(topo, max_paths=bench_scale.max_paths)
    # deadline-lax so nothing is killed: everything runs to completion
    cfg = bench_scale.workload_config(mean_deadline=100.0, seed=53)
    tasks = generate_workload(cfg, list(topo.hosts))

    schedulers = {
        "Fair Sharing": lambda: FairSharing(quit_on_miss=False),
        "Baraat": lambda: Baraat(stop_missed_flows=False),
        "Varys SEBF": lambda: Varys(mode="sebf"),
    }

    def run_all():
        out = {}
        for label, factory in schedulers.items():
            m = summarize(
                Engine(topo, tasks, factory(), path_service=paths).run()
            )
            out[label] = m
        return out

    results = run_once(benchmark, run_all)

    lines = ["mean coflow completion time (deadline-lax workload):",
             "  scheduler      mean CCT (ms)  mean FCT (ms)"]
    for label, m in results.items():
        lines.append(
            f"  {label:13s} {m.mean_task_completion_time * 1e3:10.2f}"
            f"     {m.mean_flow_completion_time * 1e3:10.2f}"
        )
    record_table("ext_cct", "\n".join(lines))

    cct = {l: m.mean_task_completion_time for l, m in results.items()}
    # every task completes under all three (lax deadlines)
    for m in results.values():
        assert m.num_tasks > 0
    # coflow-aware scheduling beats per-flow fair sharing on mean CCT
    assert cct["Varys SEBF"] <= cct["Fair Sharing"]
    assert cct["Baraat"] <= cct["Fair Sharing"] * 1.05
