"""Ablation — the reject rule's case-3 comparison (DESIGN.md §2 knob).

The paper's "completion ratio" comparison is ambiguous for a newcomer that
has sent nothing; this bench measures all three readings on the same
workload:

* PROGRESS (literal): incumbents never preempted once transmitting;
* PROSPECTIVE: victims with missing flows always preempted;
* NEVER: plain admission control (Varys-style, but with reallocation).

Expectation: PROSPECTIVE ≥ PROGRESS ≥ NEVER on task completion (extra
freedom never hurts the count), and only PROSPECTIVE produces waste.
"""

from benchmarks.conftest import run_once
from repro.core.controller import TapsScheduler
from repro.core.reject import PreemptionPolicy
from repro.metrics.summary import summarize
from repro.net.paths import PathService
from repro.sim.engine import Engine
from repro.workload.generator import generate_workload


def test_ablation_preemption_policy(benchmark, bench_scale, record_table):
    topo = bench_scale.single_rooted()
    paths = PathService(topo, max_paths=bench_scale.max_paths)
    cfg = bench_scale.workload_config(seed=17)
    tasks = generate_workload(cfg, list(topo.hosts))

    def run_all():
        out = {}
        for policy in PreemptionPolicy:
            sched = TapsScheduler(preemption=policy)
            result = Engine(topo, tasks, sched, path_service=paths).run()
            out[policy.value] = (summarize(result), sched.stats)
        return out

    results = run_once(benchmark, run_all)

    lines = ["ablation: preemption policy  task_ratio  waste  preempted"]
    for policy, (m, stats) in results.items():
        lines.append(
            f"  {policy:12s} {m.task_completion_ratio:.3f}"
            f"  {m.wasted_bandwidth_ratio:.4f}  {stats.tasks_preempted}"
        )
    record_table("ablation_preemption", "\n".join(lines))

    progress = results["progress"][0].task_completion_ratio
    never = results["never"][0].task_completion_ratio
    assert progress >= never - 1e-9
    # only prospective preemption can create waste
    assert results["progress"][0].wasted_bandwidth_ratio <= 1e-9
    assert results["never"][0].wasted_bandwidth_ratio <= 1e-9
