"""Ablation — what Alg. 1's global reallocation of in-flight flows buys.

TAPS re-path-calculates *all* of Ftmp on each arrival (moving committed
flows to new slices/paths).  The incremental variant freezes existing
plans and only packs newcomers — Varys-like rigidity with TAPS' slice
packing.  The gap between them is the measured value of the paper's
headline mechanism (and its compute cost, visible in the planner-work
counters).
"""

from benchmarks.conftest import run_once
from repro.core.controller import TapsScheduler
from repro.metrics.summary import summarize
from repro.net.paths import PathService
from repro.sim.engine import Engine
from repro.workload.generator import generate_workload


def test_ablation_global_reallocation(benchmark, bench_scale, record_table):
    topo = bench_scale.single_rooted()
    paths = PathService(topo, max_paths=bench_scale.max_paths)

    def run_all():
        out = {}
        for seed in (17, 18, 19):
            cfg = bench_scale.workload_config(seed=seed)
            tasks = generate_workload(cfg, list(topo.hosts))
            for label, realloc in (("full", True), ("incremental", False)):
                sched = TapsScheduler(reallocate_inflight=realloc)
                m = summarize(
                    Engine(topo, tasks, sched, path_service=paths).run()
                )
                key = (label, seed)
                out[key] = (m.task_completion_ratio, sched.stats.flows_planned)
        return out

    results = run_once(benchmark, run_all)

    lines = ["reallocation ablation: mode  seed  task_ratio  flows_planned"]
    full_mean = inc_mean = 0.0
    for (label, seed), (ratio, planned) in sorted(results.items()):
        lines.append(f"  {label:11s} {seed}  {ratio:.3f}  {planned}")
        if label == "full":
            full_mean += ratio / 3
        else:
            inc_mean += ratio / 3
    lines.append(f"  means: full={full_mean:.3f} incremental={inc_mean:.3f}")
    record_table("ablation_reallocation", "\n".join(lines))

    # global reallocation never hurts, and its planner does more work
    assert full_mean >= inc_mean - 1e-9
    for seed in (17, 18, 19):
        assert results[("full", seed)][1] >= results[("incremental", seed)][1]
