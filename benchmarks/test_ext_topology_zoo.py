"""Extension — TAPS across the architectures the paper cites (§II).

"Applicability to general data center network topologies" is a TAPS
design goal; the paper evaluates two (single-rooted tree, fat-tree).
This bench runs the same relative load on all four cited families —
tree, fat-tree, BCube, FiConn — and checks that the multipath families
beat the single-path tree at equal per-host load.
"""

from benchmarks.conftest import run_once
from repro.core.controller import TapsScheduler
from repro.metrics.summary import summarize
from repro.net.bcube import BCube
from repro.net.fattree import FatTree
from repro.net.ficonn import FiConn
from repro.net.paths import PathService
from repro.net.trees import SingleRootedTree
from repro.sim.engine import Engine
from repro.workload.generator import generate_workload


def test_ext_topology_zoo(benchmark, bench_scale, record_table):
    topologies = {
        "single-rooted": SingleRootedTree(2, 2, 4),  # 16 hosts, 1 path
        "fat-tree k=4": FatTree(4),                  # 16 hosts, ≤4 paths
        "bcube n=4 k=1": BCube(4, 1),                # 16 hosts, ≤2 paths
        "ficonn n=4 k=1": FiConn(4, 1),              # 12 hosts
    }

    def run_all():
        out = {}
        for label, topo in topologies.items():
            hosts = list(topo.hosts)
            cfg = bench_scale.workload_config(
                # equal offered load per host across different host counts
                num_tasks=2 * len(hosts),
                mean_flows_per_task=4,
                seed=41,
            )
            tasks = generate_workload(cfg, hosts)
            paths = PathService(topo, max_paths=bench_scale.max_paths)
            m = summarize(
                Engine(topo, tasks, TapsScheduler(), path_service=paths).run()
            )
            out[label] = m
        return out

    results = run_once(benchmark, run_all)

    lines = ["topology zoo: TAPS on the paper's cited architectures",
             "  topology        hosts  task_ratio  flow_ratio  waste"]
    for label, m in results.items():
        hosts = len(topologies[label].hosts)
        lines.append(
            f"  {label:15s} {hosts:>4d}  {m.task_completion_ratio:.3f}"
            f"       {m.flow_completion_ratio:.3f}      "
            f"{m.wasted_bandwidth_ratio:.3f}"
        )
    record_table("ext_topology_zoo", "\n".join(lines))

    # multipath fabrics beat the oversubscribed single-rooted tree
    tree = results["single-rooted"].task_completion_ratio
    assert results["fat-tree k=4"].task_completion_ratio >= tree
    assert results["bcube n=4 k=1"].task_completion_ratio >= tree
    # admission keeps waste at zero everywhere
    for m in results.values():
        assert m.wasted_bandwidth_ratio <= 1e-9
