"""Micro-benchmarks of the hot paths (per the HPC guide: measure first).

These are the operations the controller performs per task arrival:
interval union/complement/fit, full path calculation over Ftmp, and one
complete engine run — giving a cost model for scaling to the paper sizes.
"""

import numpy as np

from repro.core.allocation import path_calculation
from repro.core.occupancy import OccupancyLedger
from repro.net.paths import PathService
from repro.net.fattree import FatTree
from repro.sim.engine import Engine
from repro.sim.state import FlowState
from repro.util.intervals import IntervalSet, union_all
from repro.workload.flow import Flow
from repro.workload.generator import generate_workload


def _dense_set(n, rng):
    s = IntervalSet()
    t = 0.0
    for _ in range(n):
        t += rng.uniform(0.1, 1.0)
        s.add(t, t + rng.uniform(0.05, 0.5))
        t += 0.6
    return s


def test_bench_interval_union(benchmark):
    rng = np.random.default_rng(1)
    sets = [_dense_set(50, rng) for _ in range(6)]
    out = benchmark(lambda: union_all(sets))
    assert out.measure() > 0


def test_bench_interval_complement_and_fit(benchmark):
    rng = np.random.default_rng(2)
    occ = _dense_set(100, rng)

    def work():
        idle = occ.complement(0.0, occ.end() + 100.0)
        return idle.first_fit(5.0, after=1.0)

    slices = benchmark(work)
    assert abs(slices.measure() - 5.0) < 1e-6


def test_bench_path_calculation_200_flows(benchmark):
    topo = FatTree(k=4)
    paths = PathService(topo, max_paths=4)
    hosts = list(topo.hosts)
    rng = np.random.default_rng(3)
    flows = []
    for i in range(200):
        src, dst = rng.choice(len(hosts), size=2, replace=False)
        f = Flow(flow_id=i, task_id=i, src=hosts[src], dst=hosts[dst],
                 size=float(rng.uniform(1e4, 4e5)), release=0.0,
                 deadline=float(rng.uniform(0.01, 0.1)))
        flows.append(FlowState(flow=f))

    cap = topo.uniform_capacity()

    def work():
        for fs in flows:
            fs.remaining = fs.flow.size
        return path_calculation(flows, OccupancyLedger(), paths, cap, 0.0, 10.0)

    plans = benchmark(work)
    assert len(plans) == 200


def test_bench_full_engine_run(benchmark, bench_scale):
    from repro.core.controller import TapsScheduler

    topo = bench_scale.single_rooted()
    cfg = bench_scale.workload_config(seed=31)
    tasks = generate_workload(cfg, list(topo.hosts))
    paths = PathService(topo, max_paths=bench_scale.max_paths)

    def work():
        return Engine(topo, tasks, TapsScheduler(), path_service=paths).run()

    result = benchmark.pedantic(work, rounds=3, iterations=1)
    assert result.counters.completions > 0
