"""Ablation — the Ftmp sort order (Alg. 1 line 9: "EDF and SJF").

The paper prescribes EDF with an SJF tie-break but does not justify it;
this bench sweeps four orderings on the same workloads.  Expected: the
deadline-aware orderings (edf_sjf, edf) beat size-only and release-only
orderings on task completion.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.controller import TapsScheduler
from repro.metrics.summary import summarize
from repro.net.paths import PathService
from repro.sim.engine import Engine
from repro.workload.generator import generate_workload

PRIORITIES = ("edf_sjf", "edf", "sjf", "fifo")


def test_ablation_ftmp_priority(benchmark, bench_scale, record_table):
    topo = bench_scale.single_rooted()
    paths = PathService(topo, max_paths=bench_scale.max_paths)
    seeds = (61, 62, 63)

    def run_all():
        out = {p: [] for p in PRIORITIES}
        for seed in seeds:
            cfg = bench_scale.workload_config(seed=seed)
            tasks = generate_workload(cfg, list(topo.hosts))
            for p in PRIORITIES:
                m = summarize(
                    Engine(topo, tasks, TapsScheduler(priority=p),
                           path_service=paths).run()
                )
                out[p].append(m.task_completion_ratio)
        return {p: float(np.mean(v)) for p, v in out.items()}

    means = run_once(benchmark, run_all)

    lines = ["Ftmp priority ablation (mean task ratio over 3 seeds):"]
    for p, v in means.items():
        lines.append(f"  {p:8s} {v:.3f}")
    record_table("ablation_priority", "\n".join(lines))

    # the paper's ordering leads (or ties) the deadline-blind variants
    assert means["edf_sjf"] >= means["fifo"] - 1e-9
    assert means["edf_sjf"] >= means["sjf"] - 1e-9
    # and pure EDF is close to EDF+SJF (the tie-break is a refinement)
    assert abs(means["edf_sjf"] - means["edf"]) <= 0.1
